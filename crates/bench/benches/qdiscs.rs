//! Queue-discipline micro-benchmarks: enqueue/dequeue cycles for every
//! qdisc in the workspace, including pFabric's O(n) rank scans at its
//! paper-configured depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use netsim::ids::{FlowId, NodeId};
use netsim::packet::Packet;
use netsim::queue::{DropTailQdisc, Qdisc, RedEcnQdisc, StrictPrioQdisc};
use netsim::time::SimTime;
use pfabric::PFabricQdisc;

fn pkt(i: u64) -> Packet {
    let mut p = Packet::data(FlowId(i % 37), NodeId(0), NodeId(1), i * 1460, 1460);
    p.prio = (i % 8) as u8;
    p.rank = (i * 7919) % 1_000_000;
    p
}

fn cycle(q: &mut dyn Qdisc, n: u64) {
    let now = SimTime::ZERO;
    // Fill half, then steady-state enqueue+dequeue.
    for i in 0..n / 2 {
        let _ = q.enqueue(pkt(i), now);
    }
    for i in n / 2..n {
        let _ = q.enqueue(pkt(i), now);
        let _ = q.dequeue(now);
    }
    while q.dequeue(now).is_some() {}
}

fn bench_qdiscs(c: &mut Criterion) {
    let mut g = c.benchmark_group("qdisc_cycle");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_with_input(BenchmarkId::new("droptail", 225), &n, |b, &n| {
        b.iter(|| {
            let mut q = DropTailQdisc::new(225);
            cycle(&mut q, n);
        })
    });
    g.bench_with_input(BenchmarkId::new("red_ecn", 225), &n, |b, &n| {
        b.iter(|| {
            let mut q = RedEcnQdisc::new(225, 65);
            cycle(&mut q, n);
        })
    });
    g.bench_with_input(BenchmarkId::new("strict_prio8", 500), &n, |b, &n| {
        b.iter(|| {
            let mut q = StrictPrioQdisc::new(8, 500, 65);
            cycle(&mut q, n);
        })
    });
    g.bench_with_input(BenchmarkId::new("pfabric", 76), &n, |b, &n| {
        b.iter(|| {
            let mut q = PFabricQdisc::new(76);
            cycle(&mut q, n);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_qdiscs);
criterion_main!(benches);
