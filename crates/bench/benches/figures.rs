//! One benchmark per paper figure: each runs the corresponding experiment
//! harness at reduced scale and reports wall-clock cost. These double as
//! always-compiled smoke tests that every figure's pipeline works; the
//! full-scale numbers come from `cargo run --release -p experiments --bin
//! run_all`.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{figs, ExpOpts};

fn tiny_opts() -> ExpOpts {
    ExpOpts {
        flows: 60,
        loads: vec![0.3, 0.7],
        hosts_per_rack: 5,
        quick: true,
        ..ExpOpts::quick()
    }
}

macro_rules! fig_bench {
    ($fn_name:ident, $module:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let opts = tiny_opts();
            let mut g = c.benchmark_group("figures");
            g.sample_size(10);
            g.warm_up_time(std::time::Duration::from_millis(500));
            g.measurement_time(std::time::Duration::from_secs(2));
            g.bench_function(stringify!($module), |b| {
                b.iter(|| {
                    let fig = figs::$module::run(&opts);
                    assert!(!fig.xs.is_empty());
                    fig
                })
            });
            g.finish();
        }
    };
}

fig_bench!(bench_fig01, fig01);
fig_bench!(bench_fig02, fig02);
fig_bench!(bench_fig03, fig03);
fig_bench!(bench_fig04, fig04);
fig_bench!(bench_fig09a, fig09a);
fig_bench!(bench_fig09b, fig09b);
fig_bench!(bench_fig09c, fig09c);
fig_bench!(bench_fig10a, fig10a);
fig_bench!(bench_fig10b, fig10b);
fig_bench!(bench_fig10c, fig10c);
fig_bench!(bench_fig12a, fig12a);
fig_bench!(bench_fig12b, fig12b);
fig_bench!(bench_fig13a, fig13a);
fig_bench!(bench_fig13b, fig13b);
fig_bench!(bench_micro_probing, micro_probing);

// fig11 returns two results (11a + 11b), so it gets a hand-rolled bench.
fn bench_fig11(c: &mut Criterion) {
    let opts = tiny_opts();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("fig11", |b| {
        b.iter(|| {
            let figs = figs::fig11::run(&opts);
            assert_eq!(figs.len(), 2);
            figs
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig01,
    bench_fig02,
    bench_fig03,
    bench_fig04,
    bench_fig09a,
    bench_fig09b,
    bench_fig09c,
    bench_fig10a,
    bench_fig10b,
    bench_fig10c,
    bench_fig11,
    bench_fig12a,
    bench_fig12b,
    bench_fig13a,
    bench_fig13b,
    bench_micro_probing
);
criterion_main!(benches);
