//! Arbitration control-plane micro-benchmarks: the cost of one Algorithm-1
//! decision as the per-link flow population grows. This bounds the
//! processing overhead the paper's §3.1.2 scalability argument is about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use netsim::ids::FlowId;
use netsim::time::{Rate, SimTime};
use pase::{FlowEntry, LinkArbitrator, PaseConfig};

fn entry(i: u64) -> FlowEntry {
    FlowEntry {
        remaining: 1_000 + (i * 7919) % 1_000_000,
        deadline: None,
        demand: Rate::from_mbps(100 + (i % 10) * 100),
        task: None,
        last_update: SimTime::ZERO,
    }
}

fn bench_decide(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbitration_decide");
    for &n in &[10u64, 100, 1000] {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("update_and_decide", n), &n, |b, &n| {
            let cfg = PaseConfig::default();
            let mut arb = LinkArbitrator::new(Rate::from_gbps(10), &cfg);
            for i in 0..n {
                arb.update(FlowId(i), entry(i));
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                arb.update_and_decide(FlowId(i % n), entry(i))
            })
        });
    }
    g.finish();
}

fn bench_top_queue_demand(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbitration_delegation");
    for &n in &[10u64, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("top_queue_demand", n), &n, |b, &n| {
            let cfg = PaseConfig::default();
            let mut arb = LinkArbitrator::new(Rate::from_gbps(10), &cfg);
            for i in 0..n {
                arb.update(FlowId(i), entry(i));
            }
            b.iter(|| arb.top_queue_demand())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decide, bench_top_queue_demand);
criterion_main!(benches);
