//! Engine micro-benchmarks: scheduler throughput and end-to-end packet
//! processing rates for each transport scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use netsim::event::EventKind;
use netsim::prelude::*;
use workloads::{RunSpec, Scenario, Scheme};

/// Raw scheduler throughput: schedule + pop cycles.
fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    for &n in &[1_000u64, 10_000, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = netsim::engine::Scheduler::new();
                for i in 0..n {
                    s.schedule_at(
                        SimTime::from_nanos(i * 37 % 1_000_000),
                        NodeId((i % 64) as u32),
                        EventKind::PluginTimer(i),
                    );
                }
                let mut popped = 0u64;
                while s.pop().is_some() {
                    popped += 1;
                }
                assert_eq!(popped, n);
            })
        });
    }
    g.finish();
}

/// Whole-stack events/second: a fixed small workload per scheme. The
/// reported time divided by the event count gives ns/event.
fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheme_events");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let scenario = Scenario::all_to_all_intra(8, 60);
    for scheme in [Scheme::Dctcp, Scheme::Pdq, Scheme::PFabric, Scheme::Pase] {
        g.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let m = RunSpec::new(scheme, scenario, 0.6, 7).run();
                assert!(m.n_completed > 0);
                m.events
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_schemes);
criterion_main!(benches);
