//! `netsim-bench`: run the deterministic benchmark scenarios and emit
//! `BENCH_netsim.json` (see the crate docs and DESIGN.md §8).
//!
//! Usage: `netsim-bench [--quick] [--iters N] [--scenario NAME[,NAME]]
//! [--chaos-seeds N] [--jobs N] [--out PATH]`. The JSON document goes to
//! stdout, and additionally to `--out` when given; progress lines go to
//! stderr. `--jobs` (default: detected cores, `NETSIM_JOBS` overrides)
//! parallelizes chaos-storm/gray-storm case execution without changing
//! the executed event sequence.

fn main() {
    let opts = bench::BenchOpts::from_args(std::env::args().skip(1));
    let results = bench::run(&opts);
    let json = bench::render_json(&results, &opts);
    bench::validate_report(&json).expect("rendered benchmark document must be a consistent report");
    if let Some(path) = &opts.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("bench results written to {}", path.display());
    }
    print!("{json}");
}
