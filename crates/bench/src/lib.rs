//! Deterministic wall-clock benchmark harness for the simulator.
//!
//! No external benchmarking framework: every scenario is a fixed, seeded
//! workload timed with [`std::time::Instant`] around the hot loop, so the
//! executed event sequence is byte-for-byte identical run-to-run and the
//! only varying quantity is wall-clock time. Results are rendered as a
//! small hand-written JSON document (`BENCH_netsim.json`) so the repo's
//! perf trajectory is machine-readable without pulling a serializer into
//! the dependency graph.
//!
//! Scenarios (see `ALL_SCENARIOS`):
//!
//! - `sched-storm` — raw [`Scheduler`] push/pop microbenchmark using
//!   full-size `Deliver` payloads allocated from the packet arena:
//!   bursts of pseudo-randomly timed events are pushed and then drained
//!   in rounds, with every popped packet released back to the arena so
//!   the free-list recycling path is on the measured hot loop.
//! - `wheel-storm` — the timing wheel's own stress profile (explicitly
//!   pinned to [`EngineKind::Wheel`] regardless of `NETSIM_SCHEDULER`):
//!   deltas span every wheel level plus the far-future overflow heap, so
//!   slot redistribution, horizon cascades, and overflow promotion all
//!   sit on the measured path.
//! - `incast-pase` / `incast-dctcp` — many-to-one incast on the paper's
//!   32-host three-tier fat-tree at offered load 0.6, run end-to-end
//!   through `Simulation::run` (tracing disabled: measures the pure
//!   simulation hot path).
//! - `chaos-storm` — seeded chaos cases (high intensity, host faults)
//!   through the full harness: tracing enabled, online invariant
//!   monitoring, each case executed twice for the determinism check.
//!   This is the "experiment sweep" figure — the throughput that bounds
//!   how fast CI and seed sweeps can go.
//! - `gray-storm` — the same harness under the gray fault class: degrade
//!   trains (stochastic loss, corruption, latency inflation) with
//!   health-aware rerouting enabled, so the per-packet degrade RNG and
//!   EWMA health path are on the measured hot path.
//! - `overload-storm` — the same harness under the overload fault class:
//!   control-plane storms amplify arbitrator inbox charges and flash
//!   crowds of extra flows land mid-window, so the bounded-inbox shed
//!   path and backpressure replies are on the measured hot path.
//! - `scale-k4` / `scale-k8` / `scale-k16` — the production-scale sweep:
//!   an all-to-all PASE batch on the k-ary fat-tree (16 / 128 / 1024
//!   hosts), timed end-to-end through `Simulation::run`. Alongside
//!   events/sec each scenario records `peak_rss_bytes` (the `VmHWM`
//!   high-water mark from `/proc/self/status`), so the compact-FIB and
//!   flow-state memory budget is tracked next to throughput. The
//!   `--scenario scale` alias selects all three sweep points.
//!
//! The time spent *building* each simulation is excluded where the
//! scenario measures the engine (`sched-storm`, incast) and included
//! where it measures the end-to-end harness (`chaos-storm`), because a
//! chaos sweep rebuilds its world for every case by design.

use std::path::PathBuf;
use std::time::Instant;

use experiments::chaos::{run_case, FaultClass};
use netsim::chaos::ChaosIntensity;
use netsim::engine::{EngineKind, Scheduler};
use netsim::event::EventKind;
use netsim::ids::{FlowId, NodeId};
use netsim::packet::Packet;
use netsim::rng::Rng;
use netsim::sim::{RunLimit, RunOutcome};
use netsim::time::{Rate, SimDuration, SimTime};
use workloads::{Pattern, Scenario, Scheme, SizeDist, TopologySpec};

/// Version tag of the emitted JSON document. Bumped whenever the
/// scenario set or field shapes change (v2 added `gray-storm`, v3 added
/// `overload-storm`, v4 added `wheel-storm` and the packet-arena
/// recycling/peak-outstanding fields, v5 added the `scale-k*` fat-tree
/// sweep and the per-scenario `peak_rss_bytes` field).
pub const SCHEMA: &str = "netsim-bench/5";

/// Every scenario the harness knows, in execution order.
pub const ALL_SCENARIOS: &[&str] = &[
    "sched-storm",
    "wheel-storm",
    "incast-pase",
    "incast-dctcp",
    "chaos-storm",
    "gray-storm",
    "overload-storm",
    "scale-k4",
    "scale-k8",
    "scale-k16",
];

/// Harness options (parsed by the `netsim-bench` binary).
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Reduced scale: the CI smoke profile.
    pub quick: bool,
    /// Measured iterations per scenario (a warmup iteration runs first
    /// unless `quick`).
    pub iters: u32,
    /// Scenario names to run (empty = all, in `ALL_SCENARIOS` order).
    pub scenarios: Vec<String>,
    /// Seeds for the chaos-storm scenario.
    pub chaos_seeds: u64,
    /// Worker threads for chaos-storm case execution
    /// (`workloads::exec`). The executed event sequence per case is
    /// identical at any value; only wall clock changes.
    pub jobs: usize,
    /// Where to write the JSON document (stdout always gets a copy).
    pub out: Option<PathBuf>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            quick: false,
            iters: 3,
            scenarios: Vec::new(),
            chaos_seeds: 8,
            jobs: workloads::default_jobs(),
            out: None,
        }
    }
}

impl BenchOpts {
    /// Parse binary arguments. Recognized: `--quick`, `--iters N`,
    /// `--scenario NAME` (repeatable or comma-separated),
    /// `--chaos-seeds N`, `--jobs N`, `--out PATH`.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> BenchOpts {
        let mut opts = BenchOpts::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match arg.as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.iters = 1;
                }
                "--iters" => {
                    opts.iters = take("--iters").parse().expect("--iters: integer");
                    assert!(opts.iters > 0, "--iters must be positive");
                }
                "--chaos-seeds" => {
                    opts.chaos_seeds = take("--chaos-seeds")
                        .parse()
                        .expect("--chaos-seeds: integer");
                }
                "--jobs" => {
                    opts.jobs = take("--jobs").parse().expect("--jobs: integer");
                    assert!(opts.jobs > 0, "--jobs must be positive");
                }
                "--scenario" => {
                    for name in take("--scenario").split(',') {
                        let name = name.trim();
                        // `scale` is an alias for the whole fat-tree
                        // sweep (scale-k4, scale-k8, scale-k16).
                        if name == "scale" {
                            for n in ALL_SCENARIOS.iter().filter(|n| n.starts_with("scale-k")) {
                                opts.scenarios.push(n.to_string());
                            }
                            continue;
                        }
                        assert!(
                            ALL_SCENARIOS.contains(&name),
                            "unknown scenario {name}; known: {ALL_SCENARIOS:?}"
                        );
                        opts.scenarios.push(name.to_string());
                    }
                }
                "--out" => opts.out = Some(PathBuf::from(take("--out"))),
                other => panic!("unknown argument: {other}"),
            }
        }
        opts
    }

    fn selected(&self) -> Vec<&'static str> {
        ALL_SCENARIOS
            .iter()
            .copied()
            .filter(|n| self.scenarios.is_empty() || self.scenarios.iter().any(|s| s == n))
            .collect()
    }
}

/// One scenario's measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Scenario name.
    pub name: &'static str,
    /// Measured iterations (excluding warmup).
    pub iters: u32,
    /// Best iteration wall time, milliseconds.
    pub wall_ms: f64,
    /// Mean iteration wall time, milliseconds.
    pub wall_ms_mean: f64,
    /// Events executed per iteration (identical across iterations).
    pub events: u64,
    /// Data packets delivered per iteration.
    pub packets: u64,
    /// Events per wall-clock second (best iteration).
    pub events_per_sec: f64,
    /// Delivered data packets per wall-clock second (best iteration).
    pub packets_per_sec: f64,
    /// Peak pending-event count (heap high-water mark).
    pub peak_pending: usize,
    /// Packet-arena allocations served from the free list instead of the
    /// global heap (identical across iterations).
    pub arena_recycled: u64,
    /// Packet-arena high-water mark of simultaneously outstanding
    /// packets (identical across iterations).
    pub arena_peak_outstanding: u64,
    /// Process-wide peak resident set size in bytes (`VmHWM` from
    /// `/proc/self/status`) read after the scenario's last iteration.
    /// Monotone over the process lifetime: the value covers everything
    /// executed up to and including this scenario, so within one
    /// invocation the column is non-decreasing in execution order. 0 on
    /// platforms without `/proc`.
    pub peak_rss_bytes: u64,
}

/// Peak resident set size of this process in bytes: the `VmHWM` line of
/// `/proc/self/status`, which the kernel reports in kB. Returns 0 when
/// the file or field is unavailable (non-Linux platforms).
pub fn read_peak_rss() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// What one timed iteration of a scenario produced.
struct IterOut {
    wall_s: f64,
    events: u64,
    packets: u64,
    peak: usize,
    arena_recycled: u64,
    arena_peak: u64,
}

/// Time `f` for `iters` iterations (plus an optional warmup) and check
/// that the simulated work is identical every time.
fn measure(
    name: &'static str,
    iters: u32,
    warmup: bool,
    mut f: impl FnMut() -> IterOut,
) -> BenchResult {
    if warmup {
        f();
    }
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut first: Option<(u64, u64, u64, u64)> = None;
    let mut events = 0;
    let mut packets = 0;
    let mut peak = 0;
    let mut arena_recycled = 0;
    let mut arena_peak = 0;
    for _ in 0..iters {
        let out = f();
        // Arena lifecycle counters are as deterministic as the event
        // counts, so they share the identical-work assertion.
        match first {
            None => first = Some((out.events, out.packets, out.arena_recycled, out.arena_peak)),
            Some(expect) => assert_eq!(
                (out.events, out.packets, out.arena_recycled, out.arena_peak),
                expect,
                "scenario {name} executed different work across iterations"
            ),
        }
        best = best.min(out.wall_s);
        total += out.wall_s;
        events = out.events;
        packets = out.packets;
        peak = peak.max(out.peak);
        arena_recycled = out.arena_recycled;
        arena_peak = out.arena_peak;
    }
    let best = best.max(1e-9);
    BenchResult {
        name,
        iters,
        wall_ms: best * 1e3,
        wall_ms_mean: total * 1e3 / iters as f64,
        events,
        packets,
        events_per_sec: events as f64 / best,
        packets_per_sec: packets as f64 / best,
        peak_pending: peak,
        arena_recycled,
        arena_peak_outstanding: arena_peak,
        peak_rss_bytes: read_peak_rss(),
    }
}

/// Raw scheduler push/pop storm: rounds of `per_round` events with
/// pseudo-random timestamps inside a 1 ms window, each fully drained
/// before the next round begins. Payloads are full-size data-packet
/// `Deliver`s so the heap moves its worst-case entry.
fn sched_storm(quick: bool) -> IterOut {
    let rounds = 10u64;
    let per_round: u64 = if quick { 10_000 } else { 100_000 };
    let mut sched = Scheduler::new();
    let mut rng = Rng::seed_from_u64(0x5eed_b0a7);
    let mut pops = 0u64;
    let t = Instant::now();
    for round in 0..rounds {
        let base = SimTime::from_millis(round);
        for i in 0..per_round {
            let at = base + SimDuration::from_nanos(rng.gen_below(1_000_000));
            let pkt = Packet::data(FlowId(i), NodeId(0), NodeId(1), i * 1460, 1460);
            sched.schedule_deliver(at, NodeId((i % 64) as u32), pkt);
        }
        while let Some((node, kind)) = sched.pop() {
            std::hint::black_box(node);
            if let EventKind::Deliver(pkt) = kind {
                sched.arena_mut().release(pkt);
            }
            pops += 1;
        }
    }
    let arena = sched.arena().stats();
    IterOut {
        wall_s: t.elapsed().as_secs_f64(),
        events: pops,
        packets: pops,
        peak: sched.peak_pending(),
        arena_recycled: arena.recycled,
        arena_peak: arena.peak_outstanding,
    }
}

/// Timing-wheel stress profile: event deltas span every wheel level
/// (1 ns up to ~2^39 ns ahead of the drain clock) and every 64th event
/// lands in the far-future overflow heap (2^41+ ns), so slot insertion
/// at each level, horizon cascades across level boundaries, and
/// overflow promotion are all exercised. The engine is pinned to the
/// wheel regardless of `NETSIM_SCHEDULER`, making the scenario a stable
/// per-engine yardstick next to `sched-storm`'s env-selected engine.
fn wheel_storm(quick: bool) -> IterOut {
    let rounds = 8u64;
    let per_round: u64 = if quick { 10_000 } else { 100_000 };
    let mut sched = Scheduler::with_engine(EngineKind::Wheel);
    let mut rng = Rng::seed_from_u64(0x77ee_1b0a);
    let mut pops = 0u64;
    let mut clock = SimTime::ZERO;
    let t = Instant::now();
    for _ in 0..rounds {
        let base = clock;
        for i in 0..per_round {
            let delta = if i % 64 == 63 {
                // Far-future: beyond the wheel's 2^40 ns span, into the
                // overflow heap, later pulled back by window promotion.
                1u64 << (41 + rng.gen_below(4))
            } else {
                1u64 << rng.gen_below(40)
            };
            let at = base + SimDuration::from_nanos(delta);
            let pkt = Packet::data(FlowId(i), NodeId(0), NodeId(1), i * 1460, 1460);
            sched.schedule_deliver(at, NodeId((i % 64) as u32), pkt);
        }
        while let Some((node, kind)) = sched.pop() {
            std::hint::black_box(node);
            if let EventKind::Deliver(pkt) = kind {
                sched.arena_mut().release(pkt);
            }
            pops += 1;
        }
        clock = sched.now();
    }
    let arena = sched.arena().stats();
    IterOut {
        wall_s: t.elapsed().as_secs_f64(),
        events: pops,
        packets: pops,
        peak: sched.peak_pending(),
        arena_recycled: arena.recycled,
        arena_peak: arena.peak_outstanding,
    }
}

/// The incast workload: every sender targets host 0 on the paper's
/// 32-host three-tier baseline fat-tree.
fn incast_scenario(quick: bool) -> Scenario {
    Scenario {
        name: "bench-incast",
        topo: TopologySpec::ThreeTier {
            hosts_per_rack: 8,
            racks: 4,
            access: Rate::from_gbps(1),
            fabric: Rate::from_gbps(10),
            link_delay: SimDuration::from_micros(25),
        },
        pattern: Pattern::Incast { server: 0 },
        sizes: SizeDist::UniformBytes {
            lo: 2_000,
            hi: 198_000,
        },
        deadlines: None,
        n_background: 0,
        n_flows: if quick { 60 } else { 300 },
    }
}

/// Build and run one incast simulation; only `Simulation::run` is timed.
fn incast(scheme: Scheme, quick: bool) -> IterOut {
    let scenario = incast_scenario(quick);
    let (mut sim, hosts) = scheme.build_sim(&scenario.topo);
    sim.add_flows(scenario.generate_flows(0.6, 1, &hosts));
    let t = Instant::now();
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    let wall_s = t.elapsed().as_secs_f64();
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "bench incast must run to completion"
    );
    IterOut {
        wall_s,
        events: sim.stats().events_executed,
        packets: sim.stats().data_pkts_delivered,
        peak: sim.scheduler().peak_pending(),
        arena_recycled: sim.stats().arena.recycled,
        arena_peak: sim.stats().arena.peak_outstanding,
    }
}

/// Production-scale fat-tree sweep point: an all-to-all PASE batch on
/// the k-ary fat-tree (k³/4 hosts), k³ flows at the full profile and k²
/// at the smoke profile. Only `Simulation::run` is timed — topology and
/// route-table construction are excluded, as for the incast scenarios —
/// but the compact-FIB and flow-state footprint still lands in the
/// scenario's `peak_rss_bytes` reading.
fn scale_storm(k: usize, quick: bool) -> IterOut {
    let scenario = Scenario {
        name: "bench-scale",
        topo: TopologySpec::fat_tree(k),
        pattern: Pattern::AllToAll,
        sizes: SizeDist::UniformBytes {
            lo: 2_000,
            hi: 198_000,
        },
        deadlines: None,
        n_background: 0,
        n_flows: if quick { k * k } else { k * k * k },
    };
    let (mut sim, hosts) = Scheme::Pase.build_sim(&scenario.topo);
    sim.add_flows(scenario.generate_flows(0.6, 1, &hosts));
    let t = Instant::now();
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    let wall_s = t.elapsed().as_secs_f64();
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "bench scale-k{k} must run to completion"
    );
    IterOut {
        wall_s,
        events: sim.stats().events_executed,
        packets: sim.stats().data_pkts_delivered,
        peak: sim.scheduler().peak_pending(),
        arena_recycled: sim.stats().arena.recycled,
        arena_peak: sim.stats().arena.peak_outstanding,
    }
}

/// End-to-end chaos throughput: `seeds` high-intensity cases of one
/// fault class under PASE, each built, traced, invariant-checked and
/// executed twice (the determinism replay) exactly as the chaos sweep
/// does. Cases run on the `workloads::exec` engine with `jobs` workers;
/// the per-case event counts are identical at any job count, so
/// throughput numbers stay comparable across machines.
fn chaos_storm(fault_class: FaultClass, quick: bool, seeds: u64, jobs: usize) -> IterOut {
    let case_seeds: Vec<u64> = (0..seeds).collect();
    let t = Instant::now();
    let results = workloads::run_cases(&case_seeds, jobs, |&seed| {
        run_case(Scheme::Pase, ChaosIntensity::High, fault_class, seed, quick)
    });
    let wall_s = t.elapsed().as_secs_f64();
    let mut events = 0u64;
    let mut delivered = 0u64;
    let mut peak = 0usize;
    let mut arena_recycled = 0u64;
    let mut arena_peak = 0u64;
    for r in &results {
        assert!(
            r.passed(),
            "chaos case seed {} failed in bench:\n{}",
            r.seed,
            r.violations.join("\n")
        );
        // run_case executes every case twice (determinism replay), so
        // both executions count toward the throughput numerator.
        events += 2 * r.events;
        delivered += 2 * r.delivered;
        peak = peak.max(r.peak_pending);
        arena_recycled += 2 * r.arena_recycled;
        arena_peak = arena_peak.max(r.arena_peak_outstanding);
    }
    IterOut {
        wall_s,
        events,
        packets: delivered,
        peak,
        arena_recycled,
        arena_peak,
    }
}

/// Run every selected scenario, printing one summary line per scenario
/// to stderr as it completes.
pub fn run(opts: &BenchOpts) -> Vec<BenchResult> {
    let warmup = !opts.quick;
    let mut results = Vec::new();
    for name in opts.selected() {
        let r = match name {
            "sched-storm" => measure(name, opts.iters, warmup, || sched_storm(opts.quick)),
            "wheel-storm" => measure(name, opts.iters, warmup, || wheel_storm(opts.quick)),
            "incast-pase" => measure(name, opts.iters, warmup, || {
                incast(Scheme::Pase, opts.quick)
            }),
            "incast-dctcp" => measure(name, opts.iters, warmup, || {
                incast(Scheme::Dctcp, opts.quick)
            }),
            "chaos-storm" => measure(name, opts.iters, warmup, || {
                chaos_storm(FaultClass::Host, opts.quick, opts.chaos_seeds, opts.jobs)
            }),
            "gray-storm" => measure(name, opts.iters, warmup, || {
                chaos_storm(FaultClass::Gray, opts.quick, opts.chaos_seeds, opts.jobs)
            }),
            "overload-storm" => measure(name, opts.iters, warmup, || {
                chaos_storm(
                    FaultClass::Overload,
                    opts.quick,
                    opts.chaos_seeds,
                    opts.jobs,
                )
            }),
            "scale-k4" => measure(name, opts.iters, warmup, || scale_storm(4, opts.quick)),
            "scale-k8" => measure(name, opts.iters, warmup, || scale_storm(8, opts.quick)),
            "scale-k16" => measure(name, opts.iters, warmup, || scale_storm(16, opts.quick)),
            other => unreachable!("unknown scenario {other}"),
        };
        eprintln!(
            "bench {:>14}: {:>10.3} ms, {:>9} events, {:>11.0} events/s, {:>10.0} pkts/s, \
             peak {}, arena peak {} ({} recycled), rss {:.1} MiB",
            r.name,
            r.wall_ms,
            r.events,
            r.events_per_sec,
            r.packets_per_sec,
            r.peak_pending,
            r.arena_peak_outstanding,
            r.arena_recycled,
            r.peak_rss_bytes as f64 / (1024.0 * 1024.0)
        );
        results.push(r);
    }
    results
}

/// Render results as the `BENCH_netsim.json` document.
pub fn render_json(results: &[BenchResult], opts: &BenchOpts) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!(
        "  \"profile\": \"{}\",\n",
        if opts.quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"jobs\": {},\n", opts.jobs));
    s.push_str(&format!(
        "  \"detected_cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"wall_ms\": {:.3}, \
             \"wall_ms_mean\": {:.3}, \"events\": {}, \"packets\": {}, \
             \"events_per_sec\": {:.1}, \"packets_per_sec\": {:.1}, \
             \"peak_pending_events\": {}, \"arena_recycled\": {}, \
             \"arena_peak_outstanding\": {}, \"peak_rss_bytes\": {}}}{}\n",
            r.name,
            r.iters,
            r.wall_ms,
            r.wall_ms_mean,
            r.events,
            r.packets,
            r.events_per_sec,
            r.packets_per_sec,
            r.peak_pending,
            r.arena_recycled,
            r.arena_peak_outstanding,
            r.peak_rss_bytes,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal structural JSON check for the smoke test: balanced braces and
/// brackets outside strings, no unterminated string, non-empty, and no
/// bare NaN/inf tokens (which `format!` would emit for broken math).
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err("unbalanced close".into());
        }
    }
    if in_str {
        return Err("unterminated string".into());
    }
    if depth_obj != 0 || depth_arr != 0 {
        return Err("unbalanced open".into());
    }
    if depth_obj == 0 && !s.trim_start().starts_with('{') {
        return Err("not a JSON object".into());
    }
    for bad in ["NaN", "inf"] {
        if s.contains(bad) {
            return Err(format!("non-finite number rendered: {bad}"));
        }
    }
    Ok(())
}

/// Extract the numeric value of `"key": <number>` from one scenario
/// line. Returns `None` when the key is absent or the value is not a
/// bare number.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Full report check: structural JSON validity ([`validate_json`]) plus
/// per-scenario semantic consistency. A report is rejected when any
/// scenario claims a mean wall time below its best iteration
/// (`wall_ms_mean < wall_ms` — the mean of a set can't undercut its
/// minimum), a non-positive `events_per_sec`, or omits
/// `peak_pending_events` or `peak_rss_bytes`. These were exactly the
/// internally inconsistent shapes the old structural-only validator
/// waved through.
pub fn validate_report(s: &str) -> Result<(), String> {
    validate_json(s)?;
    for line in s.lines() {
        let line = line.trim_start();
        if !line.starts_with("{\"name\": ") {
            continue;
        }
        let name = line
            .strip_prefix("{\"name\": \"")
            .and_then(|r| r.split('"').next())
            .unwrap_or("<unnamed>");
        let wall_ms = field_num(line, "wall_ms")
            .ok_or_else(|| format!("{name}: missing or non-numeric wall_ms"))?;
        let wall_ms_mean = field_num(line, "wall_ms_mean")
            .ok_or_else(|| format!("{name}: missing or non-numeric wall_ms_mean"))?;
        // Rendered at three decimals, so allow half an ulp of slack.
        if wall_ms_mean < wall_ms - 5e-4 {
            return Err(format!(
                "{name}: wall_ms_mean {wall_ms_mean} below best-iteration wall_ms {wall_ms}"
            ));
        }
        let eps = field_num(line, "events_per_sec")
            .ok_or_else(|| format!("{name}: missing or non-numeric events_per_sec"))?;
        if eps <= 0.0 {
            return Err(format!("{name}: non-positive events_per_sec {eps}"));
        }
        if field_num(line, "peak_pending_events").is_none() {
            return Err(format!("{name}: missing peak_pending_events"));
        }
        // Schema v5: every scenario must carry its RSS high-water mark.
        // (0 is legal — non-Linux platforms have no /proc — but the
        // field itself must be present and numeric.)
        if field_num(line, "peak_rss_bytes").is_none() {
            return Err(format!("{name}: missing peak_rss_bytes"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every scenario runs at the smoke profile and the rendered document
    /// is valid JSON naming each of them with a positive events/sec.
    #[test]
    fn smoke_all_scenarios_emit_valid_json() {
        let opts = BenchOpts {
            quick: true,
            iters: 1,
            chaos_seeds: 1,
            ..BenchOpts::default()
        };
        let results = run(&opts);
        assert_eq!(results.len(), ALL_SCENARIOS.len());
        for r in &results {
            assert!(r.events > 0, "{} executed no events", r.name);
            assert!(r.events_per_sec > 0.0, "{} has no throughput", r.name);
        }
        let json = render_json(&results, &opts);
        validate_report(&json).expect("rendered document must be a consistent report");
        assert!(
            json.contains("\"schema\": \"netsim-bench/5\""),
            "document must carry the current schema tag"
        );
        for name in ALL_SCENARIOS {
            assert!(json.contains(name), "{name} missing from JSON");
        }
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"arena_peak_outstanding\""));
        assert!(json.contains("\"peak_rss_bytes\""));
        #[cfg(target_os = "linux")]
        for r in &results {
            assert!(r.peak_rss_bytes > 0, "{}: no RSS reading", r.name);
        }
        assert!(json.contains(&format!("\"jobs\": {}", opts.jobs)));
        assert!(json.contains("\"detected_cores\": "));
    }

    #[test]
    fn json_validator_rejects_garbage() {
        assert!(validate_json("{\"a\": [1, 2]}").is_ok());
        assert!(validate_json("{\"a\": [1, 2}").is_err());
        assert!(validate_json("{\"a\": \"unterminated}").is_err());
        assert!(validate_json("{\"a\": NaN}").is_err());
        assert!(validate_json("[1, 2]").is_err());
    }

    /// A syntactically plausible result whose rendering passes
    /// [`validate_report`] untouched — each rejection test tampers with
    /// exactly one field.
    fn sample_report() -> String {
        let r = BenchResult {
            name: "sched-storm",
            iters: 3,
            wall_ms: 10.0,
            wall_ms_mean: 12.5,
            events: 1_000,
            packets: 1_000,
            events_per_sec: 100_000.0,
            packets_per_sec: 100_000.0,
            peak_pending: 64,
            arena_recycled: 900,
            arena_peak_outstanding: 64,
            peak_rss_bytes: 128 * 1024 * 1024,
        };
        render_json(&[r], &BenchOpts::default())
    }

    #[test]
    fn report_validator_accepts_consistent_report() {
        validate_report(&sample_report()).expect("sample report is consistent");
    }

    /// The mean of a set of iterations can never be below its minimum;
    /// a report claiming so is lying about one of the two.
    #[test]
    fn report_validator_rejects_mean_below_best() {
        let bad = sample_report().replace("\"wall_ms_mean\": 12.500", "\"wall_ms_mean\": 9.000");
        let err = validate_report(&bad).expect_err("mean below best must be rejected");
        assert!(err.contains("wall_ms_mean"), "wrong rejection: {err}");
        // Structural validation alone waves this through — the semantic
        // layer is what catches it.
        validate_json(&bad).expect("still structurally valid JSON");
    }

    #[test]
    fn report_validator_rejects_nonpositive_events_per_sec() {
        let bad =
            sample_report().replace("\"events_per_sec\": 100000.0", "\"events_per_sec\": 0.0");
        let err = validate_report(&bad).expect_err("zero throughput must be rejected");
        assert!(err.contains("events_per_sec"), "wrong rejection: {err}");
        validate_json(&bad).expect("still structurally valid JSON");
    }

    #[test]
    fn report_validator_rejects_missing_peak_pending() {
        let bad = sample_report().replace("\"peak_pending_events\"", "\"peak_pending_evts\"");
        let err = validate_report(&bad).expect_err("missing peak_pending_events must be rejected");
        assert!(
            err.contains("peak_pending_events"),
            "wrong rejection: {err}"
        );
        validate_json(&bad).expect("still structurally valid JSON");
    }

    /// Schema v5's memory column is mandatory per scenario.
    #[test]
    fn report_validator_rejects_missing_peak_rss() {
        let bad = sample_report().replace("\"peak_rss_bytes\"", "\"peak_rss\"");
        let err = validate_report(&bad).expect_err("missing peak_rss_bytes must be rejected");
        assert!(err.contains("peak_rss_bytes"), "wrong rejection: {err}");
        validate_json(&bad).expect("still structurally valid JSON");
    }

    /// The `scale` scenario alias expands to every fat-tree sweep point.
    #[test]
    fn scale_alias_expands_to_sweep_points() {
        let o = BenchOpts::from_args(
            "--quick --scenario scale"
                .split_whitespace()
                .map(String::from),
        );
        assert_eq!(o.scenarios, vec!["scale-k4", "scale-k8", "scale-k16"]);
        assert_eq!(o.selected(), vec!["scale-k4", "scale-k8", "scale-k16"]);
    }

    /// The peak-RSS reader finds a positive high-water mark on Linux and
    /// never decreases across calls (VmHWM is monotone by definition).
    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_reader_is_positive_and_monotone() {
        let a = read_peak_rss();
        assert!(a > 0, "VmHWM must be readable on Linux");
        let ballast = vec![1u8; 8 * 1024 * 1024];
        std::hint::black_box(&ballast);
        let b = read_peak_rss();
        assert!(b >= a, "VmHWM went backwards: {a} -> {b}");
    }

    #[test]
    fn arg_parsing() {
        let o = BenchOpts::from_args(
            "--quick --scenario sched-storm,incast-pase --chaos-seeds 2 --jobs 2 --out /tmp/x.json"
                .split_whitespace()
                .map(String::from),
        );
        assert!(o.quick);
        assert_eq!(o.iters, 1);
        assert_eq!(o.scenarios, vec!["sched-storm", "incast-pase"]);
        assert_eq!(o.chaos_seeds, 2);
        assert_eq!(o.jobs, 2);
        assert_eq!(o.selected(), vec!["sched-storm", "incast-pase"]);
        assert_eq!(o.out, Some(PathBuf::from("/tmp/x.json")));
    }

    #[test]
    #[should_panic(expected = "--jobs must be positive")]
    fn zero_jobs_rejected() {
        BenchOpts::from_args(["--jobs".to_string(), "0".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_rejected() {
        BenchOpts::from_args(["--scenario".to_string(), "bogus".to_string()]);
    }
}
