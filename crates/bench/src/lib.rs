//! Criterion benchmark harness for the PASE reproduction (see `benches/`).
