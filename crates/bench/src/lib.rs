//! Deterministic wall-clock benchmark harness for the simulator.
//!
//! No external benchmarking framework: every scenario is a fixed, seeded
//! workload timed with [`std::time::Instant`] around the hot loop, so the
//! executed event sequence is byte-for-byte identical run-to-run and the
//! only varying quantity is wall-clock time. Results are rendered as a
//! small hand-written JSON document (`BENCH_netsim.json`) so the repo's
//! perf trajectory is machine-readable without pulling a serializer into
//! the dependency graph.
//!
//! Scenarios (see `ALL_SCENARIOS`):
//!
//! - `sched-storm` — raw [`Scheduler`] push/pop microbenchmark using
//!   full-size `Deliver` payloads, the heap's worst case: bursts of
//!   pseudo-randomly timed events are pushed and then drained in rounds.
//! - `incast-pase` / `incast-dctcp` — many-to-one incast on the paper's
//!   32-host three-tier fat-tree at offered load 0.6, run end-to-end
//!   through `Simulation::run` (tracing disabled: measures the pure
//!   simulation hot path).
//! - `chaos-storm` — seeded chaos cases (high intensity, host faults)
//!   through the full harness: tracing enabled, online invariant
//!   monitoring, each case executed twice for the determinism check.
//!   This is the "experiment sweep" figure — the throughput that bounds
//!   how fast CI and seed sweeps can go.
//! - `gray-storm` — the same harness under the gray fault class: degrade
//!   trains (stochastic loss, corruption, latency inflation) with
//!   health-aware rerouting enabled, so the per-packet degrade RNG and
//!   EWMA health path are on the measured hot path.
//! - `overload-storm` — the same harness under the overload fault class:
//!   control-plane storms amplify arbitrator inbox charges and flash
//!   crowds of extra flows land mid-window, so the bounded-inbox shed
//!   path and backpressure replies are on the measured hot path.
//!
//! The time spent *building* each simulation is excluded where the
//! scenario measures the engine (`sched-storm`, incast) and included
//! where it measures the end-to-end harness (`chaos-storm`), because a
//! chaos sweep rebuilds its world for every case by design.

use std::path::PathBuf;
use std::time::Instant;

use experiments::chaos::{run_case, FaultClass};
use netsim::chaos::ChaosIntensity;
use netsim::engine::Scheduler;
use netsim::event::EventKind;
use netsim::ids::{FlowId, NodeId};
use netsim::packet::Packet;
use netsim::rng::Rng;
use netsim::sim::{RunLimit, RunOutcome};
use netsim::time::{Rate, SimDuration, SimTime};
use workloads::{Pattern, Scenario, Scheme, SizeDist, TopologySpec};

/// Version tag of the emitted JSON document. Bumped whenever the
/// scenario set or field shapes change (v2 added `gray-storm`, v3 added
/// `overload-storm`).
pub const SCHEMA: &str = "netsim-bench/3";

/// Every scenario the harness knows, in execution order.
pub const ALL_SCENARIOS: &[&str] = &[
    "sched-storm",
    "incast-pase",
    "incast-dctcp",
    "chaos-storm",
    "gray-storm",
    "overload-storm",
];

/// Harness options (parsed by the `netsim-bench` binary).
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Reduced scale: the CI smoke profile.
    pub quick: bool,
    /// Measured iterations per scenario (a warmup iteration runs first
    /// unless `quick`).
    pub iters: u32,
    /// Scenario names to run (empty = all, in `ALL_SCENARIOS` order).
    pub scenarios: Vec<String>,
    /// Seeds for the chaos-storm scenario.
    pub chaos_seeds: u64,
    /// Worker threads for chaos-storm case execution
    /// (`workloads::exec`). The executed event sequence per case is
    /// identical at any value; only wall clock changes.
    pub jobs: usize,
    /// Where to write the JSON document (stdout always gets a copy).
    pub out: Option<PathBuf>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            quick: false,
            iters: 3,
            scenarios: Vec::new(),
            chaos_seeds: 8,
            jobs: workloads::default_jobs(),
            out: None,
        }
    }
}

impl BenchOpts {
    /// Parse binary arguments. Recognized: `--quick`, `--iters N`,
    /// `--scenario NAME` (repeatable or comma-separated),
    /// `--chaos-seeds N`, `--jobs N`, `--out PATH`.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> BenchOpts {
        let mut opts = BenchOpts::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match arg.as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.iters = 1;
                }
                "--iters" => {
                    opts.iters = take("--iters").parse().expect("--iters: integer");
                    assert!(opts.iters > 0, "--iters must be positive");
                }
                "--chaos-seeds" => {
                    opts.chaos_seeds = take("--chaos-seeds")
                        .parse()
                        .expect("--chaos-seeds: integer");
                }
                "--jobs" => {
                    opts.jobs = take("--jobs").parse().expect("--jobs: integer");
                    assert!(opts.jobs > 0, "--jobs must be positive");
                }
                "--scenario" => {
                    for name in take("--scenario").split(',') {
                        let name = name.trim();
                        assert!(
                            ALL_SCENARIOS.contains(&name),
                            "unknown scenario {name}; known: {ALL_SCENARIOS:?}"
                        );
                        opts.scenarios.push(name.to_string());
                    }
                }
                "--out" => opts.out = Some(PathBuf::from(take("--out"))),
                other => panic!("unknown argument: {other}"),
            }
        }
        opts
    }

    fn selected(&self) -> Vec<&'static str> {
        ALL_SCENARIOS
            .iter()
            .copied()
            .filter(|n| self.scenarios.is_empty() || self.scenarios.iter().any(|s| s == n))
            .collect()
    }
}

/// One scenario's measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Scenario name.
    pub name: &'static str,
    /// Measured iterations (excluding warmup).
    pub iters: u32,
    /// Best iteration wall time, milliseconds.
    pub wall_ms: f64,
    /// Mean iteration wall time, milliseconds.
    pub wall_ms_mean: f64,
    /// Events executed per iteration (identical across iterations).
    pub events: u64,
    /// Data packets delivered per iteration.
    pub packets: u64,
    /// Events per wall-clock second (best iteration).
    pub events_per_sec: f64,
    /// Delivered data packets per wall-clock second (best iteration).
    pub packets_per_sec: f64,
    /// Peak pending-event count (heap high-water mark).
    pub peak_pending: usize,
}

/// What one timed iteration of a scenario produced.
struct IterOut {
    wall_s: f64,
    events: u64,
    packets: u64,
    peak: usize,
}

/// Time `f` for `iters` iterations (plus an optional warmup) and check
/// that the simulated work is identical every time.
fn measure(
    name: &'static str,
    iters: u32,
    warmup: bool,
    mut f: impl FnMut() -> IterOut,
) -> BenchResult {
    if warmup {
        f();
    }
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut first: Option<(u64, u64)> = None;
    let mut events = 0;
    let mut packets = 0;
    let mut peak = 0;
    for _ in 0..iters {
        let out = f();
        match first {
            None => first = Some((out.events, out.packets)),
            Some(expect) => assert_eq!(
                (out.events, out.packets),
                expect,
                "scenario {name} executed different work across iterations"
            ),
        }
        best = best.min(out.wall_s);
        total += out.wall_s;
        events = out.events;
        packets = out.packets;
        peak = peak.max(out.peak);
    }
    let best = best.max(1e-9);
    BenchResult {
        name,
        iters,
        wall_ms: best * 1e3,
        wall_ms_mean: total * 1e3 / iters as f64,
        events,
        packets,
        events_per_sec: events as f64 / best,
        packets_per_sec: packets as f64 / best,
        peak_pending: peak,
    }
}

/// Raw scheduler push/pop storm: rounds of `per_round` events with
/// pseudo-random timestamps inside a 1 ms window, each fully drained
/// before the next round begins. Payloads are full-size data-packet
/// `Deliver`s so the heap moves its worst-case entry.
fn sched_storm(quick: bool) -> IterOut {
    let rounds = 10u64;
    let per_round: u64 = if quick { 10_000 } else { 100_000 };
    let mut sched = Scheduler::new();
    let mut rng = Rng::seed_from_u64(0x5eed_b0a7);
    let mut pops = 0u64;
    let t = Instant::now();
    for round in 0..rounds {
        let base = SimTime::from_millis(round);
        for i in 0..per_round {
            let at = base + SimDuration::from_nanos(rng.gen_below(1_000_000));
            let pkt = Packet::data(FlowId(i), NodeId(0), NodeId(1), i * 1460, 1460);
            sched.schedule_at(at, NodeId((i % 64) as u32), EventKind::deliver(pkt));
        }
        while let Some(ev) = sched.pop() {
            std::hint::black_box(&ev);
            pops += 1;
        }
    }
    IterOut {
        wall_s: t.elapsed().as_secs_f64(),
        events: pops,
        packets: pops,
        peak: sched.peak_pending(),
    }
}

/// The incast workload: every sender targets host 0 on the paper's
/// 32-host three-tier baseline fat-tree.
fn incast_scenario(quick: bool) -> Scenario {
    Scenario {
        name: "bench-incast",
        topo: TopologySpec::ThreeTier {
            hosts_per_rack: 8,
            racks: 4,
            access: Rate::from_gbps(1),
            fabric: Rate::from_gbps(10),
            link_delay: SimDuration::from_micros(25),
        },
        pattern: Pattern::Incast { server: 0 },
        sizes: SizeDist::UniformBytes {
            lo: 2_000,
            hi: 198_000,
        },
        deadlines: None,
        n_background: 0,
        n_flows: if quick { 60 } else { 300 },
    }
}

/// Build and run one incast simulation; only `Simulation::run` is timed.
fn incast(scheme: Scheme, quick: bool) -> IterOut {
    let scenario = incast_scenario(quick);
    let (mut sim, hosts) = scheme.build_sim(&scenario.topo);
    sim.add_flows(scenario.generate_flows(0.6, 1, &hosts));
    let t = Instant::now();
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    let wall_s = t.elapsed().as_secs_f64();
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "bench incast must run to completion"
    );
    IterOut {
        wall_s,
        events: sim.stats().events_executed,
        packets: sim.stats().data_pkts_delivered,
        peak: sim.scheduler().peak_pending(),
    }
}

/// End-to-end chaos throughput: `seeds` high-intensity cases of one
/// fault class under PASE, each built, traced, invariant-checked and
/// executed twice (the determinism replay) exactly as the chaos sweep
/// does. Cases run on the `workloads::exec` engine with `jobs` workers;
/// the per-case event counts are identical at any job count, so
/// throughput numbers stay comparable across machines.
fn chaos_storm(fault_class: FaultClass, quick: bool, seeds: u64, jobs: usize) -> IterOut {
    let case_seeds: Vec<u64> = (0..seeds).collect();
    let t = Instant::now();
    let results = workloads::run_cases(&case_seeds, jobs, |&seed| {
        run_case(Scheme::Pase, ChaosIntensity::High, fault_class, seed, quick)
    });
    let wall_s = t.elapsed().as_secs_f64();
    let mut events = 0u64;
    let mut delivered = 0u64;
    let mut peak = 0usize;
    for r in &results {
        assert!(
            r.passed(),
            "chaos case seed {} failed in bench:\n{}",
            r.seed,
            r.violations.join("\n")
        );
        // run_case executes every case twice (determinism replay), so
        // both executions count toward the throughput numerator.
        events += 2 * r.events;
        delivered += 2 * r.delivered;
        peak = peak.max(r.peak_pending);
    }
    IterOut {
        wall_s,
        events,
        packets: delivered,
        peak,
    }
}

/// Run every selected scenario, printing one summary line per scenario
/// to stderr as it completes.
pub fn run(opts: &BenchOpts) -> Vec<BenchResult> {
    let warmup = !opts.quick;
    let mut results = Vec::new();
    for name in opts.selected() {
        let r = match name {
            "sched-storm" => measure(name, opts.iters, warmup, || sched_storm(opts.quick)),
            "incast-pase" => measure(name, opts.iters, warmup, || {
                incast(Scheme::Pase, opts.quick)
            }),
            "incast-dctcp" => measure(name, opts.iters, warmup, || {
                incast(Scheme::Dctcp, opts.quick)
            }),
            "chaos-storm" => measure(name, opts.iters, warmup, || {
                chaos_storm(FaultClass::Host, opts.quick, opts.chaos_seeds, opts.jobs)
            }),
            "gray-storm" => measure(name, opts.iters, warmup, || {
                chaos_storm(FaultClass::Gray, opts.quick, opts.chaos_seeds, opts.jobs)
            }),
            "overload-storm" => measure(name, opts.iters, warmup, || {
                chaos_storm(
                    FaultClass::Overload,
                    opts.quick,
                    opts.chaos_seeds,
                    opts.jobs,
                )
            }),
            other => unreachable!("unknown scenario {other}"),
        };
        eprintln!(
            "bench {:>12}: {:>10.3} ms, {:>9} events, {:>11.0} events/s, {:>10.0} pkts/s, peak {}",
            r.name, r.wall_ms, r.events, r.events_per_sec, r.packets_per_sec, r.peak_pending
        );
        results.push(r);
    }
    results
}

/// Render results as the `BENCH_netsim.json` document.
pub fn render_json(results: &[BenchResult], opts: &BenchOpts) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!(
        "  \"profile\": \"{}\",\n",
        if opts.quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"jobs\": {},\n", opts.jobs));
    s.push_str(&format!(
        "  \"detected_cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"wall_ms\": {:.3}, \
             \"wall_ms_mean\": {:.3}, \"events\": {}, \"packets\": {}, \
             \"events_per_sec\": {:.1}, \"packets_per_sec\": {:.1}, \
             \"peak_pending_events\": {}}}{}\n",
            r.name,
            r.iters,
            r.wall_ms,
            r.wall_ms_mean,
            r.events,
            r.packets,
            r.events_per_sec,
            r.packets_per_sec,
            r.peak_pending,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal structural JSON check for the smoke test: balanced braces and
/// brackets outside strings, no unterminated string, non-empty, and no
/// bare NaN/inf tokens (which `format!` would emit for broken math).
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err("unbalanced close".into());
        }
    }
    if in_str {
        return Err("unterminated string".into());
    }
    if depth_obj != 0 || depth_arr != 0 {
        return Err("unbalanced open".into());
    }
    if depth_obj == 0 && !s.trim_start().starts_with('{') {
        return Err("not a JSON object".into());
    }
    for bad in ["NaN", "inf"] {
        if s.contains(bad) {
            return Err(format!("non-finite number rendered: {bad}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every scenario runs at the smoke profile and the rendered document
    /// is valid JSON naming each of them with a positive events/sec.
    #[test]
    fn smoke_all_scenarios_emit_valid_json() {
        let opts = BenchOpts {
            quick: true,
            iters: 1,
            chaos_seeds: 1,
            ..BenchOpts::default()
        };
        let results = run(&opts);
        assert_eq!(results.len(), ALL_SCENARIOS.len());
        for r in &results {
            assert!(r.events > 0, "{} executed no events", r.name);
            assert!(r.events_per_sec > 0.0, "{} has no throughput", r.name);
        }
        let json = render_json(&results, &opts);
        validate_json(&json).expect("rendered document must be valid JSON");
        assert!(
            json.contains("\"schema\": \"netsim-bench/3\""),
            "document must carry the current schema tag"
        );
        for name in ALL_SCENARIOS {
            assert!(json.contains(name), "{name} missing from JSON");
        }
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains(&format!("\"jobs\": {}", opts.jobs)));
        assert!(json.contains("\"detected_cores\": "));
    }

    #[test]
    fn json_validator_rejects_garbage() {
        assert!(validate_json("{\"a\": [1, 2]}").is_ok());
        assert!(validate_json("{\"a\": [1, 2}").is_err());
        assert!(validate_json("{\"a\": \"unterminated}").is_err());
        assert!(validate_json("{\"a\": NaN}").is_err());
        assert!(validate_json("[1, 2]").is_err());
    }

    #[test]
    fn arg_parsing() {
        let o = BenchOpts::from_args(
            "--quick --scenario sched-storm,incast-pase --chaos-seeds 2 --jobs 2 --out /tmp/x.json"
                .split_whitespace()
                .map(String::from),
        );
        assert!(o.quick);
        assert_eq!(o.iters, 1);
        assert_eq!(o.scenarios, vec!["sched-storm", "incast-pase"]);
        assert_eq!(o.chaos_seeds, 2);
        assert_eq!(o.jobs, 2);
        assert_eq!(o.selected(), vec!["sched-storm", "incast-pase"]);
        assert_eq!(o.out, Some(PathBuf::from("/tmp/x.json")));
    }

    #[test]
    #[should_panic(expected = "--jobs must be positive")]
    fn zero_jobs_rejected() {
        BenchOpts::from_args(["--jobs".to_string(), "0".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_rejected() {
        BenchOpts::from_args(["--scenario".to_string(), "bogus".to_string()]);
    }
}
