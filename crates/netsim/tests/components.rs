//! Component-level tests of host and switch event dispatch: agent
//! lifecycle, service wake-ups, plugin verdicts and timers.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netsim::event::EventKind;
use netsim::flow::{FlowSpec, ReceiverHint};
use netsim::host::{AgentCtx, AgentFactory, FlowAgent, HostIo, HostService, WAKEUP_TOKEN};
use netsim::node::Node;
use netsim::packet::{Packet, PacketKind};
use netsim::prelude::*;
use netsim::switch::{SwitchIo, SwitchPlugin, Verdict};

/// A sender that transmits one data packet per `on_start`, records every
/// ack/timer in shared counters, and completes on the first ack.
struct OneShotSender {
    spec: FlowSpec,
    acks: Arc<AtomicU64>,
    wakeups: Arc<AtomicU64>,
    done: bool,
}

impl FlowAgent for OneShotSender {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        let pkt = Packet::data(self.spec.id, self.spec.src, self.spec.dst, 0, 1000);
        ctx.send(pkt);
        ctx.set_timer(SimDuration::from_millis(500), 42); // will be stale
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut AgentCtx<'_, '_>) {
        if pkt.kind == PacketKind::Ack {
            self.acks.fetch_add(1, Ordering::Relaxed);
            ctx.flow_completed();
            self.done = true;
        }
    }

    fn on_timer(&mut self, token: u64, _ctx: &mut AgentCtx<'_, '_>) {
        if token == WAKEUP_TOKEN {
            self.wakeups.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

struct Echoer {
    hint: ReceiverHint,
}

impl FlowAgent for Echoer {
    fn on_start(&mut self, _: &mut AgentCtx<'_, '_>) {}
    fn on_packet(&mut self, pkt: Packet, ctx: &mut AgentCtx<'_, '_>) {
        if pkt.kind == PacketKind::Data {
            ctx.send(Packet::ack(
                self.hint.flow,
                self.hint.dst,
                self.hint.src,
                pkt.seq_end(),
            ));
        }
    }
    fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_, '_>) {}
    fn is_done(&self) -> bool {
        false
    }
}

struct TestFactory {
    acks: Arc<AtomicU64>,
    wakeups: Arc<AtomicU64>,
}

impl AgentFactory for TestFactory {
    fn sender(&self, spec: &FlowSpec) -> Box<dyn FlowAgent> {
        Box::new(OneShotSender {
            spec: spec.clone(),
            acks: Arc::clone(&self.acks),
            wakeups: Arc::clone(&self.wakeups),
            done: false,
        })
    }
    fn receiver(&self, hint: ReceiverHint) -> Box<dyn FlowAgent> {
        Box::new(Echoer { hint })
    }
}

fn two_hosts(factory: Arc<dyn AgentFactory>) -> (Simulation, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch();
    let hosts = b.add_hosts(2);
    for &h in &hosts {
        b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(10));
    }
    (
        Simulation::new(b.build(factory, &|_| Box::new(DropTailQdisc::new(64)))),
        hosts,
        sw,
    )
}

#[test]
fn sender_completes_and_is_garbage_collected_stale_timer_ignored() {
    let acks = Arc::new(AtomicU64::new(0));
    let wakeups = Arc::new(AtomicU64::new(0));
    let (mut sim, hosts, _) = two_hosts(Arc::new(TestFactory {
        acks: Arc::clone(&acks),
        wakeups: Arc::clone(&wakeups),
    }));
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        1000,
        SimTime::ZERO,
    ));
    // Run past the stale 500 ms timer: the agent is gone by then, so the
    // timer must be swallowed without panicking.
    let outcome = sim.run(RunLimit::default());
    assert_eq!(outcome, RunOutcome::Drained);
    assert_eq!(acks.load(Ordering::Relaxed), 1);
    assert!(
        sim.now() >= SimTime::from_millis(500),
        "stale timer still fired as an event"
    );
    let Node::Host(h) = sim.node(hosts[0]) else {
        panic!()
    };
    assert_eq!(h.live_agents(), 0, "completed sender must be GC'd");
    let Node::Host(h1) = sim.node(hosts[1]) else {
        panic!()
    };
    assert_eq!(h1.live_agents(), 1, "receiver stays resident");
}

/// A service that counts ctrl packets and wakes the tagged flow.
struct CountingService {
    ctrl_seen: Arc<AtomicU64>,
}

impl HostService for CountingService {
    fn on_ctrl(&mut self, pkt: Packet, io: &mut HostIo<'_, '_, '_>) {
        self.ctrl_seen.fetch_add(1, Ordering::Relaxed);
        io.wake_flow(pkt.flow);
    }
    fn on_timer(&mut self, _token: u64, _io: &mut HostIo<'_, '_, '_>) {}
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn ctrl_packets_route_to_service_and_wake_agents() {
    let acks = Arc::new(AtomicU64::new(0));
    let wakeups = Arc::new(AtomicU64::new(0));
    let ctrl_seen = Arc::new(AtomicU64::new(0));
    let (mut sim, hosts, _) = two_hosts(Arc::new(TestFactory {
        acks: Arc::clone(&acks),
        wakeups: Arc::clone(&wakeups),
    }));
    if let Node::Host(h) = sim.node_mut(hosts[0]) {
        h.set_service(Box::new(CountingService {
            ctrl_seen: Arc::clone(&ctrl_seen),
        }));
    }
    // A big flow so the sender is still alive when the ctrl packet lands.
    sim.add_flow(FlowSpec::new(
        FlowId(3),
        hosts[0],
        hosts[1],
        1000,
        SimTime::ZERO,
    ));
    // Two ctrl packets addressed to host 0, tagged with flow 3 (delivered
    // directly, as if they had just crossed host 0's access link).
    for (t, payload) in [(1u64, 7u32), (2, 8)] {
        sim.scheduler_mut().schedule_deliver(
            SimTime::from_micros(t),
            hosts[0],
            Packet::ctrl(FlowId(3), hosts[1], hosts[0], Box::new(payload)),
        );
    }
    sim.run(RunLimit::default());
    assert!(ctrl_seen.load(Ordering::Relaxed) >= 1);
    assert!(
        wakeups.load(Ordering::Relaxed) >= 1,
        "service wake_flow must reach the agent"
    );
}

/// A sender that retransmits its single packet every millisecond until
/// acknowledged — enough reliability to ride out an injected link outage.
struct RetrySender {
    spec: FlowSpec,
    done: bool,
}

impl FlowAgent for RetrySender {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        ctx.send(Packet::data(
            self.spec.id,
            self.spec.src,
            self.spec.dst,
            0,
            1000,
        ));
        ctx.set_timer(SimDuration::from_millis(1), 1);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut AgentCtx<'_, '_>) {
        if pkt.kind == PacketKind::Ack {
            ctx.flow_completed();
            self.done = true;
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_, '_>) {
        if token == 1 && !self.done {
            ctx.send(Packet::data(
                self.spec.id,
                self.spec.src,
                self.spec.dst,
                0,
                1000,
            ));
            ctx.set_timer(SimDuration::from_millis(1), 1);
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

struct RetryFactory;

impl AgentFactory for RetryFactory {
    fn sender(&self, spec: &FlowSpec) -> Box<dyn FlowAgent> {
        Box::new(RetrySender {
            spec: spec.clone(),
            done: false,
        })
    }
    fn receiver(&self, hint: ReceiverHint) -> Box<dyn FlowAgent> {
        Box::new(Echoer { hint })
    }
}

#[test]
fn link_outage_drops_offered_packets_and_recovery_completes_the_flow() {
    let (mut sim, hosts, sw) = two_hosts(Arc::new(RetryFactory));
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        1000,
        SimTime::ZERO,
    ));
    // The sender's access link dies before the first packet can cross and
    // recovers after three retry rounds.
    sim.inject_faults(
        &FaultPlan::new()
            .link_down(SimTime::from_nanos(1), hosts[0], sw)
            .link_up(SimTime::from_micros(3500), hosts[0], sw),
    );
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(1)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let rec = sim.stats().flow(FlowId(0)).unwrap();
    assert!(rec.completed.is_some(), "flow must complete after recovery");
    // Retries offered while the link was down were counted as such.
    let Node::Host(h) = sim.node(hosts[0]) else {
        panic!()
    };
    assert!(
        h.port().drops_while_down > 0,
        "outage drops must be counted"
    );
    assert_eq!(h.port().faults_injected, 2, "one down + one up");
    assert!(h.port().is_up());
}

#[test]
fn ctrl_loss_burst_kills_exactly_the_burst_window() {
    let ctrl_seen = Arc::new(AtomicU64::new(0));
    let (mut sim, hosts, sw) = two_hosts(Arc::new(RetryFactory));
    if let Node::Host(h) = sim.node_mut(hosts[1]) {
        h.set_service(Box::new(CountingService {
            ctrl_seen: Arc::clone(&ctrl_seen),
        }));
    }
    // Arm a 2-packet ctrl burst on the switch's port toward host 1, then
    // push four ctrl packets through the switch.
    sim.inject_faults(&FaultPlan::new().ctrl_loss_burst(SimTime::from_nanos(1), sw, hosts[1], 2));
    for t in 2u64..6 {
        sim.scheduler_mut().schedule_deliver(
            SimTime::from_micros(t),
            sw,
            Packet::ctrl(FlowId(7), hosts[0], hosts[1], Box::new(t)),
        );
    }
    sim.run(RunLimit::default());
    assert_eq!(
        ctrl_seen.load(Ordering::Relaxed),
        2,
        "first two ctrl packets die in the burst, the rest pass"
    );
    // Data was never part of the burst: a data flow crosses untouched.
    let port = sim.topo().port_between(sw, hosts[1]).unwrap();
    let Node::Switch(s) = sim.node(sw) else {
        panic!()
    };
    assert_eq!(s.ports()[port.index()].faults_injected, 1);
}

/// A plugin that consumes every probe and counts timer ticks.
struct ProbeEater {
    eaten: u64,
    ticks: u64,
}

impl SwitchPlugin for ProbeEater {
    fn process_transit(
        &mut self,
        pkt: &mut Packet,
        _out: netsim::ids::PortId,
        _io: &mut SwitchIo<'_, '_>,
    ) -> Verdict {
        if pkt.kind == PacketKind::Probe {
            self.eaten += 1;
            Verdict::Consume
        } else {
            Verdict::Forward
        }
    }

    fn on_timer(&mut self, token: u64, io: &mut SwitchIo<'_, '_>) {
        self.ticks += 1;
        if self.ticks < 3 {
            io.set_timer(SimDuration::from_micros(50), token);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn plugin_can_consume_packets_and_run_timers() {
    let acks = Arc::new(AtomicU64::new(0));
    let wakeups = Arc::new(AtomicU64::new(0));
    let (mut sim, hosts, sw) = two_hosts(Arc::new(TestFactory { acks, wakeups }));
    if let Node::Switch(s) = sim.node_mut(sw) {
        s.set_plugin(Box::new(ProbeEater { eaten: 0, ticks: 0 }));
    }
    // Kick the plugin timer chain.
    sim.scheduler_mut()
        .schedule_at(SimTime::from_micros(1), sw, EventKind::PluginTimer(9));
    // A probe that should be eaten, and a data flow that should pass.
    sim.scheduler_mut().schedule_deliver(
        SimTime::ZERO,
        hosts[0],
        Packet::ack(FlowId(9), hosts[1], hosts[0], 0), // stale ack: ignored
    );
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        1000,
        SimTime::ZERO,
    ));
    // Inject a probe through the switch.
    sim.scheduler_mut().schedule_deliver(
        SimTime::from_micros(3),
        sw,
        Packet::probe(FlowId(5), hosts[0], hosts[1], 0),
    );
    sim.run(RunLimit::default());
    let Node::Switch(s) = sim.node_mut(sw) else {
        panic!()
    };
    let plugin = s.plugin_as::<ProbeEater>().unwrap();
    assert_eq!(plugin.eaten, 1, "probe must be consumed");
    assert_eq!(plugin.ticks, 3, "timer chain must run to completion");
    // Data flow still completed despite the plugin.
    assert!(sim.stats().flow(FlowId(0)).unwrap().completed.is_some());
}
