//! Property-based tests for the queue disciplines: conservation, bounds
//! and ordering invariants under arbitrary operation sequences.

use proptest::prelude::*;

use netsim::ids::{FlowId, NodeId};
use netsim::packet::Packet;
use netsim::queue::{DropTailQdisc, Enqueued, LossyQdisc, Qdisc, RedEcnQdisc, StrictPrioQdisc};
use netsim::time::SimTime;

#[derive(Debug, Clone)]
enum Op {
    Enqueue { flow: u64, prio: u8, len: u16 },
    Dequeue,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..20, 0u8..10, 1u16..1460).prop_map(|(flow, prio, len)| Op::Enqueue {
                flow,
                prio,
                len
            }),
            Just(Op::Dequeue),
        ],
        0..200,
    )
}

fn mk_pkt(flow: u64, prio: u8, len: u16) -> Packet {
    let mut p = Packet::data(FlowId(flow), NodeId(0), NodeId(1), 0, len as u32);
    p.prio = prio;
    p.rank = flow * 1000;
    p
}

/// Run an op sequence, checking the universal qdisc invariants:
/// * packet and byte occupancy never go negative or exceed what entered;
/// * `len_pkts == 0` iff `dequeue` returns `None`;
/// * conservation: enqueued = dequeued + dropped + still-queued.
fn check_invariants(mut q: Box<dyn Qdisc>, ops: Vec<Op>, cap: usize) {
    let now = SimTime::ZERO;
    let mut in_count = 0u64;
    let mut out_count = 0u64;
    let mut drop_count = 0u64;
    for op in ops {
        match op {
            Op::Enqueue { flow, prio, len } => match q.enqueue(mk_pkt(flow, prio, len), now) {
                Enqueued::Ok => in_count += 1,
                Enqueued::RejectedArrival(_) => drop_count += 1,
                Enqueued::Evicted(_) => {
                    in_count += 1;
                    drop_count += 1;
                }
            },
            Op::Dequeue => {
                if q.dequeue(now).is_some() {
                    out_count += 1;
                }
            }
        }
        assert!(q.len_pkts() <= cap * 16, "occupancy explosion");
        assert_eq!(q.len_pkts() == 0, q.len_bytes() == 0, "byte/pkt mismatch");
    }
    // Conservation.
    assert_eq!(
        in_count,
        out_count + q.len_pkts() as u64,
        "packets lost or duplicated inside the qdisc"
    );
    // Drain fully.
    let mut drained = 0u64;
    while q.dequeue(now).is_some() {
        drained += 1;
    }
    assert_eq!(drained, in_count - out_count);
    assert_eq!(q.len_bytes(), 0);
    let stats = q.stats();
    assert_eq!(stats.dropped_pkts, drop_count);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn droptail_invariants(ops in ops(), cap in 1usize..64) {
        check_invariants(Box::new(DropTailQdisc::new(cap)), ops, cap);
    }

    #[test]
    fn red_invariants(ops in ops(), cap in 1usize..64) {
        let k = cap / 2;
        check_invariants(Box::new(RedEcnQdisc::new(cap, k)), ops, cap);
    }

    #[test]
    fn strict_prio_invariants(ops in ops(), cap in 1usize..32, bands in 1usize..10) {
        check_invariants(Box::new(StrictPrioQdisc::new(bands, cap, cap)), ops, cap * bands);
    }

    #[test]
    fn lossy_wrapper_invariants(ops in ops(), cap in 1usize..64, period in 0u64..7) {
        check_invariants(
            Box::new(LossyQdisc::new(Box::new(DropTailQdisc::new(cap)), period)),
            ops,
            cap,
        );
    }

    /// Strict priority: a dequeued packet never has a (strictly) higher
    /// band available in the queue at dequeue time.
    #[test]
    fn strict_prio_always_serves_highest_band(ops in ops()) {
        let mut q = StrictPrioQdisc::new(8, 64, 64);
        let now = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Enqueue { flow, prio, len } => {
                    let _ = q.enqueue(mk_pkt(flow, prio % 8, len), now);
                }
                Op::Dequeue => {
                    let before: Vec<usize> = (0..8).map(|b| q.band_len_pkts(b)).collect();
                    if let Some(pkt) = q.dequeue(now) {
                        let band = pkt.prio as usize;
                        for (b, &occ) in before.iter().enumerate().take(band) {
                            prop_assert_eq!(
                                occ, 0,
                                "dequeued band {} while band {} had {} packets",
                                band, b, occ
                            );
                        }
                    }
                }
            }
        }
    }

    /// RED marking threshold: CE only ever set when occupancy at arrival
    /// was at least K, and never on non-ECN packets.
    #[test]
    fn red_marks_only_above_threshold(flows in prop::collection::vec(0u64..9, 1..80), k in 0usize..16) {
        let mut q = RedEcnQdisc::new(64, k);
        let now = SimTime::ZERO;
        let mut occupancy_at_arrival = std::collections::VecDeque::new();
        for f in flows {
            occupancy_at_arrival.push_back(q.len_pkts());
            let _ = q.enqueue(mk_pkt(f, 0, 1000), now);
        }
        while let Some(p) = q.dequeue(now) {
            let occ = occupancy_at_arrival.pop_front().unwrap();
            prop_assert_eq!(p.ecn_ce, occ >= k, "occupancy {} vs K {}", occ, k);
        }
    }
}
