//! Randomized tests for the queue disciplines: conservation, bounds and
//! ordering invariants under arbitrary operation sequences. Sequences are
//! generated from the crate's own seeded [`Rng`] so the suite is
//! deterministic and dependency-free.

use netsim::ids::{FlowId, NodeId};
use netsim::packet::Packet;
use netsim::queue::{DropTailQdisc, Enqueued, LossyQdisc, Qdisc, RedEcnQdisc, StrictPrioQdisc};
use netsim::rng::Rng;
use netsim::time::SimTime;

#[derive(Debug, Clone)]
enum Op {
    Enqueue { flow: u64, prio: u8, len: u16 },
    Dequeue,
}

/// Random op sequence: ~2/3 enqueues, ~1/3 dequeues, up to 200 ops.
fn ops(rng: &mut Rng) -> Vec<Op> {
    let n = rng.gen_index(200);
    (0..n)
        .map(|_| {
            if rng.gen_below(3) < 2 {
                Op::Enqueue {
                    flow: rng.gen_below(20),
                    prio: rng.gen_below(10) as u8,
                    len: rng.gen_range_inclusive(1, 1459) as u16,
                }
            } else {
                Op::Dequeue
            }
        })
        .collect()
}

fn mk_pkt(flow: u64, prio: u8, len: u16) -> Box<Packet> {
    let mut p = Packet::data(FlowId(flow), NodeId(0), NodeId(1), 0, len as u32);
    p.prio = prio;
    p.rank = flow * 1000;
    Box::new(p)
}

/// Run an op sequence, checking the universal qdisc invariants:
/// * packet and byte occupancy never go negative or exceed what entered;
/// * `len_pkts == 0` iff `len_bytes == 0`;
/// * conservation: enqueued = dequeued + dropped + still-queued.
fn check_invariants(mut q: Box<dyn Qdisc>, ops: Vec<Op>, cap: usize) {
    let now = SimTime::ZERO;
    let mut in_count = 0u64;
    let mut out_count = 0u64;
    let mut drop_count = 0u64;
    for op in ops {
        match op {
            Op::Enqueue { flow, prio, len } => match q.enqueue(mk_pkt(flow, prio, len), now) {
                Enqueued::Ok => in_count += 1,
                Enqueued::RejectedArrival(_) => drop_count += 1,
                Enqueued::Evicted(_) => {
                    in_count += 1;
                    drop_count += 1;
                }
            },
            Op::Dequeue => {
                if q.dequeue(now).is_some() {
                    out_count += 1;
                }
            }
        }
        assert!(q.len_pkts() <= cap * 16, "occupancy explosion");
        assert_eq!(q.len_pkts() == 0, q.len_bytes() == 0, "byte/pkt mismatch");
    }
    // Conservation.
    assert_eq!(
        in_count,
        out_count + q.len_pkts() as u64,
        "packets lost or duplicated inside the qdisc"
    );
    // Drain fully.
    let mut drained = 0u64;
    while q.dequeue(now).is_some() {
        drained += 1;
    }
    assert_eq!(drained, in_count - out_count);
    assert_eq!(q.len_bytes(), 0);
    let stats = q.stats();
    assert_eq!(stats.dropped_pkts, drop_count);
}

const CASES: u64 = 64;

#[test]
fn droptail_invariants() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x0d70 ^ seed);
        let cap = rng.gen_range_inclusive(1, 63) as usize;
        let ops = ops(&mut rng);
        check_invariants(Box::new(DropTailQdisc::new(cap)), ops, cap);
    }
}

#[test]
fn red_invariants() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4ed0 ^ seed);
        let cap = rng.gen_range_inclusive(1, 63) as usize;
        let ops = ops(&mut rng);
        check_invariants(Box::new(RedEcnQdisc::new(cap, cap / 2)), ops, cap);
    }
}

#[test]
fn strict_prio_invariants() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5710 ^ seed);
        let cap = rng.gen_range_inclusive(1, 31) as usize;
        let bands = rng.gen_range_inclusive(1, 9) as usize;
        let ops = ops(&mut rng);
        check_invariants(
            Box::new(StrictPrioQdisc::new(bands, cap, cap)),
            ops,
            cap * bands,
        );
    }
}

#[test]
fn lossy_wrapper_invariants() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1055 ^ seed);
        let cap = rng.gen_range_inclusive(1, 63) as usize;
        let period = rng.gen_below(7);
        let ops = ops(&mut rng);
        check_invariants(
            Box::new(LossyQdisc::new(Box::new(DropTailQdisc::new(cap)), period)),
            ops,
            cap,
        );
    }
}

/// Strict priority: a dequeued packet never has a (strictly) higher band
/// available in the queue at dequeue time.
#[test]
fn strict_prio_always_serves_highest_band() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xba2d ^ seed);
        let mut q = StrictPrioQdisc::new(8, 64, 64);
        let now = SimTime::ZERO;
        for op in ops(&mut rng) {
            match op {
                Op::Enqueue { flow, prio, len } => {
                    let _ = q.enqueue(mk_pkt(flow, prio % 8, len), now);
                }
                Op::Dequeue => {
                    let before: Vec<usize> = (0..8).map(|b| q.band_len_pkts(b)).collect();
                    if let Some(pkt) = q.dequeue(now) {
                        let band = pkt.prio as usize;
                        for (b, &occ) in before.iter().enumerate().take(band) {
                            assert_eq!(
                                occ, 0,
                                "dequeued band {band} while band {b} had {occ} packets"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// RED marking threshold: CE only ever set when occupancy at arrival was
/// at least K, and never on non-ECN packets.
#[test]
fn red_marks_only_above_threshold() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4edc ^ seed);
        let k = rng.gen_index(16);
        let n_flows = rng.gen_range_inclusive(1, 79) as usize;
        let mut q = RedEcnQdisc::new(64, k);
        let now = SimTime::ZERO;
        let mut occupancy_at_arrival = std::collections::VecDeque::new();
        for _ in 0..n_flows {
            let f = rng.gen_below(9);
            occupancy_at_arrival.push_back(q.len_pkts());
            let _ = q.enqueue(mk_pkt(f, 0, 1000), now);
        }
        while let Some(p) = q.dequeue(now) {
            let occ = occupancy_at_arrival.pop_front().unwrap();
            assert_eq!(p.ecn_ce, occ >= k, "occupancy {occ} vs K {k}");
        }
    }
}
