//! End-host crash/restart as a first-class fault: agents die with the
//! machine, in-flight data to a crashed host is accounted as
//! `lost_to_crash` (conservation still balances), flows sourced at a
//! crashed host move to the terminal Aborted state, and a restart brings
//! the host back empty under a new incarnation.

use std::sync::Arc;

use netsim::flow::{FlowSpec, ReceiverHint};
use netsim::host::{AgentCtx, AgentFactory, FlowAgent};
use netsim::node::Node;
use netsim::packet::{Packet, PacketKind};
use netsim::prelude::*;
use netsim::trace::AbortReason;

/// Retransmits its single packet every millisecond until acknowledged —
/// enough reliability to ride out a crash/restart of the receiver.
struct RetrySender {
    spec: FlowSpec,
    done: bool,
}

impl FlowAgent for RetrySender {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        ctx.send(Packet::data(
            self.spec.id,
            self.spec.src,
            self.spec.dst,
            0,
            1000,
        ));
        ctx.set_timer(SimDuration::from_millis(1), 1);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut AgentCtx<'_, '_>) {
        if pkt.kind == PacketKind::Ack {
            ctx.flow_completed();
            self.done = true;
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_, '_>) {
        if token == 1 && !self.done {
            ctx.send(Packet::data(
                self.spec.id,
                self.spec.src,
                self.spec.dst,
                0,
                1000,
            ));
            ctx.set_timer(SimDuration::from_millis(1), 1);
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

struct Echoer {
    hint: ReceiverHint,
}

impl FlowAgent for Echoer {
    fn on_start(&mut self, _: &mut AgentCtx<'_, '_>) {}
    fn on_packet(&mut self, pkt: Packet, ctx: &mut AgentCtx<'_, '_>) {
        if pkt.kind == PacketKind::Data {
            ctx.send(Packet::ack(
                self.hint.flow,
                self.hint.dst,
                self.hint.src,
                pkt.seq_end(),
            ));
        }
    }
    fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_, '_>) {}
    fn is_done(&self) -> bool {
        false
    }
}

struct RetryFactory;

impl AgentFactory for RetryFactory {
    fn sender(&self, spec: &FlowSpec) -> Box<dyn FlowAgent> {
        Box::new(RetrySender {
            spec: spec.clone(),
            done: false,
        })
    }
    fn receiver(&self, hint: ReceiverHint) -> Box<dyn FlowAgent> {
        Box::new(Echoer { hint })
    }
}

fn two_hosts() -> (Simulation, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch();
    let hosts = b.add_hosts(2);
    for &h in &hosts {
        b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(10));
    }
    (
        Simulation::new(b.build(Arc::new(RetryFactory), &|_| {
            Box::new(DropTailQdisc::new(64))
        })),
        hosts,
        sw,
    )
}

#[test]
fn data_reaching_a_crashed_host_is_accounted_and_retry_survives_restart() {
    let (mut sim, hosts, _) = two_hosts();
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        1000,
        SimTime::ZERO,
    ));
    // The receiver dies while the first packet is still on the wire
    // (propagation alone is 20 us) and comes back at 5 ms. Every data
    // packet landing in the outage window is lost to the crash; the
    // retry at 6 ms respawns the receiver and completes the flow.
    sim.inject_faults(
        &FaultPlan::new()
            .host_crash(SimTime::from_micros(5), hosts[1])
            .host_restart(SimTime::from_millis(5), hosts[1]),
    );
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(1)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let stats = sim.stats();
    assert!(
        stats.data_pkts_lost_to_crash > 0,
        "in-flight data must be charged to the crash"
    );
    let rec = stats.flow(FlowId(0)).unwrap();
    assert!(rec.completed.is_some());
    assert_eq!(rec.abort_reason, None, "the flow recovered, not aborted");
    // The restarted host runs under a new incarnation.
    let Node::Host(h) = sim.node(hosts[1]) else {
        panic!()
    };
    assert_eq!(h.incarnation(), 1, "restart must bump the incarnation");
    // Conservation must balance with the lost-to-crash term included.
    sim.check_invariants().assert_clean();
}

#[test]
fn crashing_the_source_aborts_its_flows_terminally() {
    let (mut sim, hosts, _) = two_hosts();
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        1000,
        SimTime::ZERO,
    ));
    // The source dies at 20 us: its data packet is already past the switch
    // but the ACK has not made it back, so only the crash ends the flow.
    sim.inject_faults(&FaultPlan::new().host_crash(SimTime::from_micros(20), hosts[0]));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(1)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "an aborted flow is terminal, not stuck"
    );
    let rec = sim.stats().flow(FlowId(0)).unwrap();
    assert!(rec.completed.is_some());
    assert_eq!(rec.abort_reason, Some(AbortReason::HostCrash));
    assert_eq!(sim.stats().aborts_on(hosts[0]), 1);
    let Node::Host(h) = sim.node(hosts[0]) else {
        panic!()
    };
    assert_eq!(h.live_agents(), 0, "the crash must wipe every agent");
    sim.check_invariants().assert_clean();
}

#[test]
fn flows_starting_on_a_crashed_host_abort_immediately() {
    let (mut sim, hosts, _) = two_hosts();
    sim.inject_faults(&FaultPlan::new().host_crash(SimTime::from_micros(1), hosts[0]));
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        1000,
        SimTime::from_micros(10),
    ));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(1)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let rec = sim.stats().flow(FlowId(0)).unwrap();
    assert_eq!(rec.abort_reason, Some(AbortReason::HostCrash));
    assert_eq!(
        sim.stats().data_pkts_injected,
        0,
        "a dead machine sends nothing"
    );
    sim.check_invariants().assert_clean();
}

#[test]
fn degraded_access_link_corrupts_data_and_retry_recovers() {
    // Gray failure on the access link: every data packet is corrupted in
    // flight until the link is restored. The receiver's checksum discards
    // them (charged to the `corrupted` conservation term), the sender's
    // retries go unanswered, and the first post-restore retry completes.
    let (mut sim, hosts, sw) = two_hosts();
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        1000,
        SimTime::ZERO,
    ));
    let profile = DegradeProfile {
        seed: 3,
        loss_ppm: 0,
        corrupt_ppm: 1_000_000,
        extra_delay_ns: 0,
        jitter_ns: 0,
    };
    sim.inject_faults(
        &FaultPlan::new()
            .link_degrade(SimTime::from_nanos(1), hosts[0], sw, profile)
            .link_restore(SimTime::from_micros(3500), hosts[0], sw),
    );
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(1)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let stats = sim.stats();
    assert!(
        stats.data_pkts_corrupted > 0,
        "corrupted deliveries must be counted, got {}",
        stats.data_pkts_corrupted
    );
    assert_eq!(
        stats.corrupted_on(hosts[1]),
        stats.data_pkts_corrupted,
        "all corruption lands on the receiver"
    );
    let rec = stats.flow(FlowId(0)).unwrap();
    assert!(rec.completed.is_some());
    assert_eq!(rec.abort_reason, None, "the flow recovered, not aborted");
    sim.check_invariants().assert_clean();
}

#[test]
fn degraded_link_loss_is_charged_to_synthetic_drops() {
    // Total loss on the access link behaves like an outage the transport
    // can ride out, but the packets are charged to the degrade-loss
    // counter, not `drops_while_down`.
    let (mut sim, hosts, sw) = two_hosts();
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        1000,
        SimTime::ZERO,
    ));
    let profile = DegradeProfile {
        seed: 5,
        loss_ppm: 1_000_000,
        corrupt_ppm: 0,
        extra_delay_ns: 0,
        jitter_ns: 0,
    };
    sim.inject_faults(
        &FaultPlan::new()
            .link_degrade(SimTime::from_nanos(1), hosts[0], sw, profile)
            .link_restore(SimTime::from_micros(3500), hosts[0], sw),
    );
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(1)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let Node::Host(h) = sim.node(hosts[0]) else {
        panic!()
    };
    assert!(h.port().degrade_drops > 0, "losses charged to the degrade");
    assert_eq!(h.port().drops_while_down, 0, "the link was never down");
    assert!(h.port().synthetic_drops() >= h.port().degrade_drops);
    sim.check_invariants().assert_clean();
}

#[test]
fn nic_flap_on_the_access_link_drops_and_recovers() {
    // The host<->ToR link is flappable like any fabric link: offered
    // packets die while it is down, and the retrying sender completes
    // once it heals.
    let (mut sim, hosts, sw) = two_hosts();
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        1000,
        SimTime::ZERO,
    ));
    sim.inject_faults(
        &FaultPlan::new()
            .link_down(SimTime::from_nanos(1), hosts[0], sw)
            .link_up(SimTime::from_micros(3500), hosts[0], sw),
    );
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(1)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let Node::Host(h) = sim.node(hosts[0]) else {
        panic!()
    };
    assert!(h.port().drops_while_down > 0);
    sim.check_invariants().assert_clean();
}
