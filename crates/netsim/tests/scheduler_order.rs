//! Property test: the scheduler's `(time, seq)` ordering is total and
//! deterministic. Events scheduled at the same instant must pop in the
//! exact order they were scheduled, regardless of how many pile up —
//! this is the tie-break every deterministic-replay guarantee rests on.

use netsim::engine::{EngineKind, Scheduler};
use netsim::event::EventKind;
use netsim::ids::{FlowId, NodeId};
use netsim::rng::Rng;
use netsim::time::{SimDuration, SimTime};

fn timer(token: u64) -> EventKind {
    EventKind::AgentTimer {
        flow: FlowId(0),
        token,
    }
}

fn token_of(kind: &EventKind) -> u64 {
    match kind {
        EventKind::AgentTimer { token, .. } => *token,
        other => panic!("unexpected event {other:?}"),
    }
}

/// 10k events at one instant pop in scheduling order (FIFO among ties).
#[test]
fn ten_thousand_ties_pop_in_scheduling_order() {
    let mut sched = Scheduler::new();
    let t = SimTime::from_micros(5);
    const N: u64 = 10_000;
    sched.reserve(N as usize);
    for i in 0..N {
        // Encode the scheduling order in both the target and the token so
        // the pop side recovers it from the event alone.
        sched.schedule_at(t, NodeId(i as u32), timer(i));
    }
    let mut popped = 0u64;
    while let Some((target, kind)) = sched.pop() {
        assert_eq!(sched.now(), t);
        assert_eq!(target, NodeId(popped as u32), "tie broke out of order");
        assert_eq!(token_of(&kind), popped);
        popped += 1;
    }
    assert_eq!(popped, N);
}

/// Mixed times + ties: pops are sorted by time, and within a time the
/// relative scheduling order is preserved. The interleaving pattern is a
/// fixed stride so the test is deterministic without any RNG dependency.
#[test]
fn ordering_is_total_across_times_and_ties() {
    let mut sched = Scheduler::new();
    // 1000 events over 10 distinct instants, scheduled in a scrambled
    // but deterministic order (stride 7 visits every residue mod 1000).
    let mut schedule_order = Vec::new();
    let mut k = 0u64;
    for _ in 0..1000 {
        k = (k + 7) % 1000;
        let time = SimTime::from_micros(k % 10);
        sched.schedule_at(time, NodeId(0), timer(k));
        schedule_order.push((time, k));
    }
    // Expected pop order: stable sort by time (stable = preserves
    // scheduling order among equal times).
    let mut expected = schedule_order.clone();
    expected.sort_by_key(|&(time, _)| time);

    let mut got = Vec::new();
    while let Some((_, kind)) = sched.pop() {
        got.push((sched.now(), token_of(&kind)));
    }
    assert_eq!(got, expected, "pop order is not the stable time-sort");
}

/// `schedule_batch` preserves the same total order as sequential
/// `schedule_at` calls, including tie-breaks.
#[test]
fn batch_scheduling_preserves_tie_order() {
    let mut a = Scheduler::new();
    let mut b = Scheduler::new();
    let events: Vec<(SimTime, NodeId, u64)> = (0..500u64)
        .map(|i| (SimTime::from_micros(i % 5), NodeId(0), i))
        .collect();
    for &(t, n, tok) in &events {
        a.schedule_at(t, n, timer(tok));
    }
    b.schedule_batch(events.iter().map(|&(t, n, tok)| (t, n, timer(tok))));
    loop {
        match (a.pop(), b.pop()) {
            (None, None) => break,
            (Some((nx, kx)), Some((ny, ky))) => {
                assert_eq!(a.now(), b.now());
                assert_eq!(nx, ny);
                assert_eq!(token_of(&kx), token_of(&ky));
            }
            (x, y) => panic!("schedulers diverged: {x:?} vs {y:?}"),
        }
    }
}

/// Drive the heap and wheel engines through one identical randomized op
/// stream, asserting identical pop sequences and clocks after every op.
///
/// The op mix covers everything the wheel handles specially: same-instant
/// ties, near-future events spread across every wheel level, far-future
/// timers that land in the overflow heap (hours to years out), batches,
/// and schedule-during-pop (new events posted at the instant the clock
/// just reached, below the wheel's served horizon).
fn differential_run(seed: u64, ops: usize) {
    let mut heap = Scheduler::with_engine(EngineKind::Heap);
    let mut wheel = Scheduler::with_engine(EngineKind::Wheel);
    let mut rng = Rng::seed_from_u64(seed);
    let mut next_token = 0u64;
    let mut pending = 0usize;
    let mut tie_time = SimTime::ZERO;
    for _ in 0..ops {
        match rng.gen_below(10) {
            // Near-future: deltas spanning ns to ~18 min so inserts hit
            // every wheel level (tick 256 ns, four 256-slot levels) AND
            // straddle the 2^40 ns top-level window boundary — deltas at
            // 2^38..2^40 routinely land in the next window while the
            // wheel levels are busy, so horizon carries cross windows
            // with events parked in overflow.
            0..=3 => {
                let delta = SimDuration::from_nanos(1u64 << rng.gen_below(41));
                let at = heap.now() + delta;
                let tok = next_token;
                next_token += 1;
                heap.schedule_at(at, NodeId((tok % 97) as u32), timer(tok));
                wheel.schedule_at(at, NodeId((tok % 97) as u32), timer(tok));
                if tok.is_multiple_of(3) {
                    tie_time = at; // revisit this instant for a tie later
                }
                pending += 1;
            }
            // Same-instant tie on a previously used future timestamp.
            4 => {
                if tie_time >= heap.now() {
                    let tok = next_token;
                    next_token += 1;
                    heap.schedule_at(tie_time, NodeId(7), timer(tok));
                    wheel.schedule_at(tie_time, NodeId(7), timer(tok));
                    pending += 1;
                }
            }
            // Far future: force the wheel's overflow heap (> ~18 min).
            5 => {
                let delta = SimDuration::from_nanos(1u64 << (41 + rng.gen_below(8)));
                let at = heap.now() + delta;
                let tok = next_token;
                next_token += 1;
                heap.schedule_at(at, NodeId(0), timer(tok));
                wheel.schedule_at(at, NodeId(0), timer(tok));
                pending += 1;
            }
            // Batch with consecutive seqs and internal ties.
            6 => {
                let n = rng.gen_below(8) + 2;
                let base = heap.now() + SimDuration::from_nanos(rng.gen_below(1 << 20));
                let evs: Vec<(SimTime, NodeId, u64)> = (0..n)
                    .map(|i| {
                        let tok = next_token + i;
                        (base + SimDuration::from_nanos(i / 2), NodeId(1), tok)
                    })
                    .collect();
                next_token += n;
                heap.schedule_batch(evs.iter().map(|&(t, nd, tok)| (t, nd, timer(tok))));
                wheel.schedule_batch(evs.iter().map(|&(t, nd, tok)| (t, nd, timer(tok))));
                pending += n as usize;
            }
            // Pop, then sometimes schedule at the just-reached instant
            // (schedule-during-pop: lands below the wheel's horizon).
            _ => {
                assert_eq!(heap.next_event_time(), wheel.next_event_time());
                let (h, w) = (heap.pop(), wheel.pop());
                match (h, w) {
                    (None, None) => assert_eq!(pending, 0),
                    (Some((hn, hk)), Some((wn, wk))) => {
                        pending -= 1;
                        assert_eq!(heap.now(), wheel.now(), "clocks diverged");
                        assert_eq!(hn, wn, "targets diverged at {}", heap.now());
                        assert_eq!(token_of(&hk), token_of(&wk), "tokens diverged");
                        if rng.gen_below(4) == 0 {
                            let tok = next_token;
                            next_token += 1;
                            heap.schedule_at(heap.now(), hn, timer(tok));
                            wheel.schedule_at(wheel.now(), wn, timer(tok));
                            pending += 1;
                        }
                    }
                    (x, y) => panic!("engines diverged: {x:?} vs {y:?}"),
                }
            }
        }
    }
    // Drain both to the end: every remaining event must match too.
    loop {
        assert_eq!(heap.next_event_time(), wheel.next_event_time());
        match (heap.pop(), wheel.pop()) {
            (None, None) => break,
            (Some((hn, hk)), Some((wn, wk))) => {
                assert_eq!(heap.now(), wheel.now());
                assert_eq!((hn, token_of(&hk)), (wn, token_of(&wk)));
            }
            (x, y) => panic!("engines diverged in drain: {x:?} vs {y:?}"),
        }
    }
}

/// The differential property test the wheel engine's correctness rests
/// on: 12k randomized ops per seed, eight seeds.
#[test]
fn wheel_and_heap_engines_pop_identically() {
    for seed in 0..8u64 {
        differential_run(0x5eed_0000 + seed, 12_000);
    }
}

/// A level-0 carry that rolls the wheel's horizon into a new top-level
/// window (~18 min out at the default 256 ns tick) must promote overflow
/// events already inside that window before anything else is served.
/// Regression test: the stranded overflow event used to be leapfrogged by
/// post-carry inserts and then trip the backwards-clock assert on its
/// eventual promotion.
#[test]
fn window_crossing_carry_promotes_overflow_events() {
    let mut heap = Scheduler::with_engine(EngineKind::Heap);
    let mut wheel = Scheduler::with_engine(EngineKind::Wheel);
    // Top-level window span at the default 256 ns tick: 2^40 ns.
    let window_ns = 1u64 << 40;
    let schedule_both = |heap: &mut Scheduler, wheel: &mut Scheduler, at_ns: u64, tok: u64| {
        let at = SimTime::from_nanos(at_ns);
        heap.schedule_at(at, NodeId(0), timer(tok));
        wheel.schedule_at(at, NodeId(0), timer(tok));
    };
    let pop_both = |heap: &mut Scheduler, wheel: &mut Scheduler| {
        let pair = (heap.pop(), wheel.pop());
        assert_eq!(heap.now(), wheel.now(), "clocks diverged");
        match pair {
            (Some((hn, hk)), Some((wn, wk))) => {
                assert_eq!((hn, token_of(&hk)), (wn, token_of(&wk)));
                Some(token_of(&hk))
            }
            (None, None) => None,
            (x, y) => panic!("engines diverged: {x:?} vs {y:?}"),
        }
    };
    // Last tick of window 0: popping it carries the wheel's horizon
    // prefix into window 1.
    schedule_both(&mut heap, &mut wheel, window_ns - 1, 0);
    // Early in window 1: lands in the wheel's overflow heap.
    schedule_both(&mut heap, &mut wheel, window_ns + 1_000, 1);
    assert_eq!(pop_both(&mut heap, &mut wheel), Some(0));
    // Post-carry inserts: one later than the parked overflow event, one
    // tying its instant (the tie must still break on scheduling order).
    schedule_both(&mut heap, &mut wheel, window_ns + 5_000, 2);
    schedule_both(&mut heap, &mut wheel, window_ns + 1_000, 3);
    let mut order = Vec::new();
    while let Some(tok) = pop_both(&mut heap, &mut wheel) {
        order.push(tok);
    }
    assert_eq!(order, vec![1, 3, 2], "carry stranded an overflow event");
}

/// Dense ties at one far-future instant cross the overflow promotion and
/// every cascade level in one hop, and must still pop FIFO.
#[test]
fn far_future_ties_survive_overflow_promotion() {
    let mut wheel = Scheduler::with_engine(EngineKind::Wheel);
    let far = SimTime::from_secs(86_400); // a day out: overflow range
    for tok in 0..1000u64 {
        wheel.schedule_at(far, NodeId(0), timer(tok));
    }
    // One even-farther event to keep the overflow heap non-empty across
    // the promotion.
    wheel.schedule_at(SimTime::from_secs(365 * 86_400), NodeId(1), timer(1000));
    for tok in 0..1000u64 {
        let (_, kind) = wheel.pop().expect("event present");
        assert_eq!(wheel.now(), far);
        assert_eq!(token_of(&kind), tok, "far-future ties broke FIFO");
    }
    let (n, kind) = wheel.pop().expect("year-out timer survives");
    assert_eq!((n, token_of(&kind)), (NodeId(1), 1000));
    assert!(wheel.pop().is_none());
}
