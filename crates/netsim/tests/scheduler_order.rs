//! Property test: the scheduler's `(time, seq)` ordering is total and
//! deterministic. Events scheduled at the same instant must pop in the
//! exact order they were scheduled, regardless of how many pile up —
//! this is the tie-break every deterministic-replay guarantee rests on.

use netsim::engine::Scheduler;
use netsim::event::EventKind;
use netsim::ids::{FlowId, NodeId};
use netsim::time::SimTime;

fn timer(token: u64) -> EventKind {
    EventKind::AgentTimer {
        flow: FlowId(0),
        token,
    }
}

fn token_of(kind: &EventKind) -> u64 {
    match kind {
        EventKind::AgentTimer { token, .. } => *token,
        other => panic!("unexpected event {other:?}"),
    }
}

/// 10k events at one instant pop in scheduling order (FIFO among ties).
#[test]
fn ten_thousand_ties_pop_in_scheduling_order() {
    let mut sched = Scheduler::new();
    let t = SimTime::from_micros(5);
    const N: u64 = 10_000;
    sched.reserve(N as usize);
    for i in 0..N {
        // Encode the scheduling order in both the target and the token so
        // the pop side recovers it from the event alone.
        sched.schedule_at(t, NodeId(i as u32), timer(i));
    }
    let mut popped = 0u64;
    while let Some((target, kind)) = sched.pop() {
        assert_eq!(sched.now(), t);
        assert_eq!(target, NodeId(popped as u32), "tie broke out of order");
        assert_eq!(token_of(&kind), popped);
        popped += 1;
    }
    assert_eq!(popped, N);
}

/// Mixed times + ties: pops are sorted by time, and within a time the
/// relative scheduling order is preserved. The interleaving pattern is a
/// fixed stride so the test is deterministic without any RNG dependency.
#[test]
fn ordering_is_total_across_times_and_ties() {
    let mut sched = Scheduler::new();
    // 1000 events over 10 distinct instants, scheduled in a scrambled
    // but deterministic order (stride 7 visits every residue mod 1000).
    let mut schedule_order = Vec::new();
    let mut k = 0u64;
    for _ in 0..1000 {
        k = (k + 7) % 1000;
        let time = SimTime::from_micros(k % 10);
        sched.schedule_at(time, NodeId(0), timer(k));
        schedule_order.push((time, k));
    }
    // Expected pop order: stable sort by time (stable = preserves
    // scheduling order among equal times).
    let mut expected = schedule_order.clone();
    expected.sort_by_key(|&(time, _)| time);

    let mut got = Vec::new();
    while let Some((_, kind)) = sched.pop() {
        got.push((sched.now(), token_of(&kind)));
    }
    assert_eq!(got, expected, "pop order is not the stable time-sort");
}

/// `schedule_batch` preserves the same total order as sequential
/// `schedule_at` calls, including tie-breaks.
#[test]
fn batch_scheduling_preserves_tie_order() {
    let mut a = Scheduler::new();
    let mut b = Scheduler::new();
    let events: Vec<(SimTime, NodeId, u64)> = (0..500u64)
        .map(|i| (SimTime::from_micros(i % 5), NodeId(0), i))
        .collect();
    for &(t, n, tok) in &events {
        a.schedule_at(t, n, timer(tok));
    }
    b.schedule_batch(events.iter().map(|&(t, n, tok)| (t, n, timer(tok))));
    loop {
        match (a.pop(), b.pop()) {
            (None, None) => break,
            (Some((nx, kx)), Some((ny, ky))) => {
                assert_eq!(a.now(), b.now());
                assert_eq!(nx, ny);
                assert_eq!(token_of(&kx), token_of(&ky));
            }
            (x, y) => panic!("schedulers diverged: {x:?} vs {y:?}"),
        }
    }
}
