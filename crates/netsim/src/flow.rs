//! Flow descriptions and the endpoint agent abstraction.
//!
//! A [`FlowSpec`] describes one transfer (who, how much, when, with what
//! deadline). Protocol crates implement [`crate::host::FlowAgent`] for their
//! sender and receiver endpoint state machines and expose an
//! [`crate::host::AgentFactory`] that the
//! workload layer installs on every host; the host instantiates a sender
//! agent when a flow starts and a receiver agent when the first packet of
//! an unknown flow arrives.

use crate::ids::{FlowId, NodeId};
use crate::time::{SimDuration, SimTime};

/// Sentinel size for long-lived background flows: large enough never to
/// complete within any experiment.
pub const BACKGROUND_FLOW_BYTES: u64 = u64::MAX / 2;

/// A single transfer to simulate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// Globally unique, dense id (assigned in arrival order).
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Application bytes to transfer.
    pub size: u64,
    /// Arrival time of the flow at the sender.
    pub start: SimTime,
    /// Completion deadline relative to `start`, if the flow has one.
    pub deadline: Option<SimDuration>,
    /// Whether this flow counts toward completion-time statistics and the
    /// simulation's termination condition. Long-lived background flows set
    /// this to `false`.
    pub measured: bool,
    /// Task this flow belongs to, for task-aware scheduling (all flows of
    /// one partition-aggregate task share an id; lower ids are older
    /// tasks). `None` for independent flows.
    pub task: Option<u64>,
}

impl FlowSpec {
    /// A measured foreground flow.
    pub fn new(id: FlowId, src: NodeId, dst: NodeId, size: u64, start: SimTime) -> FlowSpec {
        FlowSpec {
            id,
            src,
            dst,
            size,
            start,
            deadline: None,
            measured: true,
            task: None,
        }
    }

    /// Attach a deadline.
    pub fn with_deadline(mut self, d: SimDuration) -> FlowSpec {
        self.deadline = Some(d);
        self
    }

    /// Attach a task id (task-aware scheduling).
    pub fn with_task(mut self, task: u64) -> FlowSpec {
        self.task = Some(task);
        self
    }

    /// A long-lived background flow (unmeasured, effectively infinite).
    pub fn background(id: FlowId, src: NodeId, dst: NodeId, start: SimTime) -> FlowSpec {
        FlowSpec {
            id,
            src,
            dst,
            size: BACKGROUND_FLOW_BYTES,
            start,
            deadline: None,
            measured: false,
            task: None,
        }
    }

    /// The absolute time by which this flow must finish, if it has a
    /// deadline.
    pub fn deadline_abs(&self) -> Option<SimTime> {
        self.deadline.map(|d| self.start + d)
    }

    /// Whether this is a background (unmeasured, effectively infinite) flow.
    pub fn is_background(&self) -> bool {
        !self.measured && self.size >= BACKGROUND_FLOW_BYTES
    }
}

/// Identifies why a receiver agent is being created.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverHint {
    /// The flow the arriving packet belongs to.
    pub flow: FlowId,
    /// The flow's sender.
    pub src: NodeId,
    /// The flow's receiver (the host creating the agent).
    pub dst: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_is_relative_to_start() {
        let f = FlowSpec::new(
            FlowId(0),
            NodeId(0),
            NodeId(1),
            1000,
            SimTime::from_millis(2),
        )
        .with_deadline(SimDuration::from_millis(5));
        assert_eq!(f.deadline_abs(), Some(SimTime::from_millis(7)));
        assert!(f.measured);
        assert!(!f.is_background());
    }

    #[test]
    fn background_flows_are_unmeasured() {
        let f = FlowSpec::background(FlowId(1), NodeId(0), NodeId(1), SimTime::ZERO);
        assert!(!f.measured);
        assert!(f.is_background());
        assert_eq!(f.deadline_abs(), None);
    }
}
