//! Switches.
//!
//! A [`Switch`] forwards packets between its output ports using a static
//! forwarding table (computed by the topology builder). Protocol crates can
//! install a [`SwitchPlugin`] to participate in forwarding:
//!
//! * PDQ's per-link flow arbitration rewrites scheduling headers on
//!   transiting packets;
//! * PASE's control-plane arbitrators are co-located with switches and
//!   consume/emit control packets addressed to the switch itself.
//!
//! The data plane itself stays dumb, per the paper's design principle that
//! in-network prioritization should "keep the data plane simple and
//! efficient": all scheduling policy lives in the port queue disciplines.

use std::any::Any;

use crate::engine::Ctx;
use crate::event::EventKind;
use crate::fault::{FaultDirective, NodeFault};
use crate::ids::{FlowId, NodeId, PortId};
use crate::packet::{Packet, PacketKind};
use crate::port::Port;
use crate::time::{SimDuration, SimTime};

/// Deterministic 64-bit mix used for ECMP next-hop selection.
fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A compact per-switch forwarding table.
///
/// Destinations are dense node ids, so the table is run-length (interval)
/// encoded over the id space: consecutive destinations that share the same
/// equal-cost port set collapse into one interval, and the port sets
/// themselves are deduplicated into a shared pool. On a k-ary fat-tree
/// with rack-major host ids this turns the naive ~10M switch×destination
/// entries at k=32 into a few hundred intervals per switch (every "all
/// other pods" region is one interval pointing at the full uplink set),
/// while lookup stays a single binary search over the interval starts.
///
/// Destinations below the first interval start, or covered by an interval
/// whose pooled set is empty, have no route (the switch blackholes them).
#[derive(Debug, Clone, Default)]
pub struct Fib {
    /// Sorted interval start ids; interval `i` covers destinations
    /// `[starts[i], starts[i+1])` (the last interval runs to the end of
    /// the id space).
    starts: Vec<u32>,
    /// Pool slot of each interval's port set (parallel to `starts`).
    sets: Vec<u32>,
    /// Deduplicated equal-cost port sets, concatenated.
    pool: Vec<PortId>,
    /// Exclusive end offset of pooled set `j` (it starts where set `j-1`
    /// ends, or at 0).
    set_ends: Vec<u32>,
}

impl Fib {
    /// The equal-cost ports toward `dst` (empty when there is no route).
    #[inline]
    pub fn entry(&self, dst: NodeId) -> &[PortId] {
        let id = dst.0;
        // Index of the last interval starting at or before `id`.
        let i = self.starts.partition_point(|&s| s <= id);
        if i == 0 {
            return &[];
        }
        let set = self.sets[i - 1] as usize;
        let lo = if set == 0 {
            0
        } else {
            self.set_ends[set - 1] as usize
        };
        &self.pool[lo..self.set_ends[set] as usize]
    }

    /// Number of run-length intervals (compactness diagnostic).
    pub fn intervals(&self) -> usize {
        self.starts.len()
    }

    /// Approximate heap footprint in bytes (compactness diagnostic).
    pub fn heap_bytes(&self) -> usize {
        (self.starts.len() + self.sets.len() + self.set_ends.len()) * 4
            + self.pool.len() * std::mem::size_of::<PortId>()
    }

    /// Build a table from one dense row per destination id (row `d` is
    /// the port set for destination `NodeId(d)`). Convenience for tests
    /// and small hand-built switches; the topology builder streams rows
    /// through [`FibBuilder`] instead.
    pub fn from_rows<R: AsRef<[PortId]>>(rows: &[R]) -> Fib {
        let mut b = FibBuilder::new();
        for row in rows {
            b.push(row.as_ref());
        }
        b.finish()
    }
}

/// Streaming builder for [`Fib`]: feed destination rows in ascending
/// dense-id order (one [`FibBuilder::push`] per id, starting at 0) and
/// the builder run-length-encodes them on the fly, so the dense table
/// never exists in memory.
#[derive(Debug, Default)]
pub struct FibBuilder {
    fib: Fib,
    /// The destination id the next `push` describes.
    next_dst: u32,
    /// Build-time interning of port sets → pool slot.
    interned: std::collections::HashMap<Vec<PortId>, u32>,
}

impl FibBuilder {
    /// An empty builder (next row pushed is destination id 0).
    pub fn new() -> FibBuilder {
        FibBuilder::default()
    }

    /// Append the port set for the next destination id.
    pub fn push(&mut self, ports: &[PortId]) {
        let set = match self.interned.get(ports) {
            Some(&slot) => slot,
            None => {
                let slot = u32::try_from(self.fib.set_ends.len()).expect("port-set pool overflow");
                self.fib.pool.extend_from_slice(ports);
                self.fib
                    .set_ends
                    .push(u32::try_from(self.fib.pool.len()).expect("port pool overflow"));
                self.interned.insert(ports.to_vec(), slot);
                slot
            }
        };
        if self.fib.sets.last() != Some(&set) || self.fib.starts.is_empty() {
            self.fib.starts.push(self.next_dst);
            self.fib.sets.push(set);
        }
        self.next_dst += 1;
    }

    /// Finish the table.
    pub fn finish(self) -> Fib {
        self.fib
    }
}

/// Failure-aware ECMP selection: hash `flow` (salted per switch) over the
/// *live* ports of a FIB entry, so flows re-hash onto surviving equal-cost
/// siblings while a link is down and fall back to the original spread once
/// it recovers. With every port up and a zero salt this reduces to
/// `entry[mix64(flow) % entry.len()]`, the historical healthy-path
/// behaviour. Returns `None` when no next hop survives (the caller records
/// a blackhole).
///
/// The salt decorrelates ECMP decisions across switch tiers: with a
/// shared hash, the ToR and the aggregation switch on a fat-tree path
/// would always agree on the same uplink index, collapsing the (k/2)²
/// core paths to k/2. Existing topologies keep salt 0, so their traces
/// stay byte-identical.
///
/// In health-aware mode the eligible set shrinks further to live ports
/// whose EWMA health is above [`crate::port::HEALTHY_THRESHOLD`], pushing
/// flows off gray-failing (degraded but up) siblings; they return once
/// clean traffic earns the port's health back. When *no* live port is
/// healthy, selection falls back to all live ports — a degraded path
/// beats a blackhole.
fn route_live(
    entry: &[PortId],
    ports: &[Port],
    flow: FlowId,
    salt: u64,
    health_aware: bool,
) -> Option<PortId> {
    if health_aware {
        let eligible = |p: &&PortId| ports[p.index()].is_up() && ports[p.index()].is_healthy();
        let healthy = entry.iter().filter(eligible).count();
        if healthy > 0 {
            let k = mix64(flow.0 ^ salt) as usize % healthy;
            return entry.iter().filter(eligible).nth(k).copied();
        }
    }
    let live = entry.iter().filter(|p| ports[p.index()].is_up()).count();
    if live == 0 {
        return None;
    }
    let k = mix64(flow.0 ^ salt) as usize % live;
    entry
        .iter()
        .filter(|p| ports[p.index()].is_up())
        .nth(k)
        .copied()
}

/// What a plugin decides about a transiting packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Enqueue on the selected output port.
    Forward,
    /// Silently consume the packet (it will not be forwarded).
    Consume,
}

/// Protocol logic attached to a switch.
pub trait SwitchPlugin: Send {
    /// Called for every transiting packet after the output port has been
    /// selected and before the packet is enqueued. May rewrite headers
    /// (PDQ) or consume the packet.
    fn process_transit(
        &mut self,
        pkt: &mut Packet,
        out_port: PortId,
        io: &mut SwitchIo<'_, '_>,
    ) -> Verdict {
        let _ = (pkt, out_port, io);
        Verdict::Forward
    }

    /// A control packet addressed to this switch arrived.
    fn on_ctrl(&mut self, pkt: Packet, io: &mut SwitchIo<'_, '_>) {
        let _ = (pkt, io);
    }

    /// A timer set via [`SwitchIo::set_timer`] fired.
    fn on_timer(&mut self, token: u64, io: &mut SwitchIo<'_, '_>) {
        let _ = (token, io);
    }

    /// An injected control-plane fault hit this switch (see
    /// [`crate::fault`]). The default plugin ignores faults.
    fn on_fault(&mut self, fault: NodeFault, io: &mut SwitchIo<'_, '_>) {
        let _ = (fault, io);
    }

    /// Downcast support for tests and cross-layer inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The interface a [`SwitchPlugin`] uses to act on its switch.
pub struct SwitchIo<'a, 'b> {
    /// The switch's node id.
    pub id: NodeId,
    /// The switch's output ports.
    pub ports: &'a mut Vec<Port>,
    /// Forwarding table indexed by destination node id.
    pub fib: &'a Fib,
    /// The switch's blackhole counter (see [`Switch::blackhole_drops`]).
    pub blackhole_drops: &'a mut u64,
    /// Whether the owning switch routes health-aware (see
    /// [`Switch::set_health_aware`]).
    pub health_aware: bool,
    /// The owning switch's ECMP salt (see [`Switch::set_ecmp_salt`]).
    pub ecmp_salt: u64,
    /// Engine context.
    pub sim: &'a mut Ctx<'b>,
}

impl<'a, 'b> SwitchIo<'a, 'b> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Pick the output port toward `dst` for `flow` (ECMP by flow hash
    /// over the live equal-cost ports). `None` when no next hop survives.
    pub fn route(&self, dst: NodeId, flow: FlowId) -> Option<PortId> {
        route_live(
            self.fib.entry(dst),
            self.ports,
            flow,
            self.ecmp_salt,
            self.health_aware,
        )
    }

    /// Send a packet toward its destination through the forwarding table.
    /// Control packets are counted as control-plane overhead. A packet
    /// with no surviving next hop is blackholed (counted and traced).
    pub fn send(&mut self, mut pkt: Packet) {
        pkt.ts = self.now();
        // Count control overhead before routing: this is the packet's
        // emission point, so a blackholed one must still enter the
        // control conservation ledger on the sent side.
        if pkt.kind == PacketKind::Ctrl {
            self.sim.stats.note_ctrl_sent(pkt.wire_bytes);
        }
        let Some(port) = self.route(pkt.dst, pkt.flow) else {
            *self.blackhole_drops += 1;
            record_blackhole(self.id, &pkt, self.sim);
            return;
        };
        let boxed = self.sim.alloc_packet(pkt);
        self.ports[port.index()].send(boxed, self.sim);
    }

    /// The capacity of one of this switch's links.
    pub fn port_rate(&self, port: PortId) -> crate::time::Rate {
        self.ports[port.index()].rate
    }

    /// Arrange for [`SwitchPlugin::on_timer`] to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.sim.schedule_self(delay, EventKind::PluginTimer(token));
    }
}

/// Count and trace one blackholed packet (no live route at `node`).
fn record_blackhole(node: NodeId, pkt: &Packet, ctx: &mut Ctx<'_>) {
    ctx.stats.note_blackhole(pkt);
    if ctx.stats.tracing() {
        let now = ctx.now();
        ctx.stats.trace_event(
            now,
            &crate::trace::TraceEvent::Blackhole {
                node,
                flow: pkt.flow,
                kind: pkt.kind,
                seq: pkt.seq,
            },
        );
    }
}

/// A store-and-forward switch.
pub struct Switch {
    id: NodeId,
    ports: Vec<Port>,
    /// Compact forwarding table over destination node ids.
    fib: Fib,
    plugin: Option<Box<dyn SwitchPlugin>>,
    /// Packets dropped because no next hop toward their destination was
    /// alive (all equal-cost ports down or the FIB entry empty).
    blackhole_drops: u64,
    /// Whether ECMP selection avoids live-but-degraded ports (per-port
    /// EWMA health). Off by default so healthy-run traces stay
    /// byte-identical to historical seeds; enabled fleet-wide by
    /// [`crate::sim::Simulation::enable_health_aware_routing`].
    health_aware: bool,
    /// XORed into the flow id before the ECMP hash. Zero (the default,
    /// and the value on all pre-fat-tree topologies) reproduces the
    /// historical unsalted selection bit-for-bit; fat-tree builders set a
    /// distinct deterministic salt per switch so successive tiers make
    /// independent equal-cost choices (all (k/2)² core paths get used).
    ecmp_salt: u64,
}

impl Switch {
    /// Create a switch. The forwarding table must cover every destination
    /// that will ever appear in a packet.
    pub fn new(id: NodeId, ports: Vec<Port>, fib: Fib) -> Switch {
        Switch {
            id,
            ports,
            fib,
            plugin: None,
            blackhole_drops: 0,
            health_aware: false,
            ecmp_salt: 0,
        }
    }

    /// Install a protocol plugin.
    pub fn set_plugin(&mut self, plugin: Box<dyn SwitchPlugin>) {
        self.plugin = Some(plugin);
    }

    /// Toggle health-aware ECMP (see [`route_live`]).
    pub fn set_health_aware(&mut self, on: bool) {
        self.health_aware = on;
    }

    /// Set the per-switch ECMP salt (see the field docs; 0 = historical
    /// unsalted hashing).
    pub fn set_ecmp_salt(&mut self, salt: u64) {
        self.ecmp_salt = salt;
    }

    /// This switch's ECMP salt.
    pub fn ecmp_salt(&self) -> u64 {
        self.ecmp_salt
    }

    /// The switch's forwarding table (for diagnostics).
    pub fn fib(&self) -> &Fib {
        &self.fib
    }

    /// Whether health-aware ECMP is enabled.
    pub fn health_aware(&self) -> bool {
        self.health_aware
    }

    /// This switch's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The switch's output ports (for tracing).
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Packets dropped at this switch for lack of a live next hop.
    pub fn blackhole_drops(&self) -> u64 {
        self.blackhole_drops
    }

    /// Downcast the plugin to a concrete type.
    pub fn plugin_as<T: 'static>(&mut self) -> Option<&mut T> {
        self.plugin
            .as_deref_mut()
            .and_then(|p| p.as_any_mut().downcast_mut::<T>())
    }

    /// Dispatch an event to this switch.
    pub fn handle(&mut self, kind: EventKind, ctx: &mut Ctx<'_>) {
        match kind {
            EventKind::Deliver(pkt) => self.deliver(pkt, ctx),
            EventKind::TxComplete(port) => {
                self.ports[port.index()].on_tx_complete(ctx);
            }
            EventKind::PluginTimer(token) => {
                self.with_plugin(ctx, |plugin, io| plugin.on_timer(token, io));
            }
            EventKind::Fault(directive) => self.apply_fault(directive, ctx),
            EventKind::FlowStart(_) | EventKind::AgentTimer { .. } => {
                debug_assert!(false, "host event delivered to switch {}", self.id);
            }
        }
    }

    /// Apply an injected fault directive to this switch.
    fn apply_fault(&mut self, directive: FaultDirective, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        ctx.stats.trace_event(
            now,
            &crate::trace::TraceEvent::Fault {
                node: self.id,
                fault: directive,
            },
        );
        match directive {
            FaultDirective::PortDown(port) => self.ports[port.index()].set_down(ctx),
            FaultDirective::PortUp(port) => self.ports[port.index()].set_up(),
            FaultDirective::CtrlLossBurst { port, n } => {
                self.ports[port.index()].inject_ctrl_loss_burst(n);
            }
            FaultDirective::Crash => {
                self.with_plugin(ctx, |plugin, io| plugin.on_fault(NodeFault::Crash, io));
            }
            FaultDirective::Restart => {
                self.with_plugin(ctx, |plugin, io| plugin.on_fault(NodeFault::Restart, io));
            }
            FaultDirective::PortDegrade { port, profile } => {
                self.ports[port.index()].set_degraded(self.id, profile);
            }
            FaultDirective::PortRestore(port) => {
                self.ports[port.index()].set_restored();
            }
            FaultDirective::CtrlStormStart { amplify } => {
                self.with_plugin(ctx, |plugin, io| {
                    plugin.on_fault(NodeFault::CtrlStormStart { amplify }, io)
                });
            }
            FaultDirective::CtrlStormEnd => {
                self.with_plugin(ctx, |plugin, io| {
                    plugin.on_fault(NodeFault::CtrlStormEnd, io)
                });
            }
            FaultDirective::HostCrash | FaultDirective::HostRestart => {
                debug_assert!(
                    false,
                    "host fault directive delivered to switch {}",
                    self.id
                );
            }
        }
    }

    fn deliver(&mut self, pkt: Box<Packet>, ctx: &mut Ctx<'_>) {
        if pkt.dst == self.id {
            if pkt.corrupted {
                // A corrupted arbitration request dies at the switch's
                // checksum like anywhere else; the sender recovers by
                // re-requesting (or falling back) on the missing response.
                if pkt.kind == PacketKind::Ctrl {
                    ctx.stats.note_ctrl_corrupted();
                }
                if ctx.stats.tracing() {
                    let now = ctx.now();
                    ctx.stats.trace_event(
                        now,
                        &crate::trace::TraceEvent::Corrupt {
                            node: self.id,
                            flow: pkt.flow,
                            kind: pkt.kind,
                            seq: pkt.seq,
                        },
                    );
                }
                ctx.release_packet(pkt);
                return;
            }
            // Addressed to this switch: control-plane traffic.
            if self.plugin.is_none() && pkt.kind == PacketKind::Ctrl {
                // No arbitrator to interpret it: account the message so
                // the control-plane conservation law still closes.
                ctx.stats.note_ctrl_unattended();
                ctx.release_packet(pkt);
                return;
            }
            self.with_plugin(ctx, move |plugin, io| {
                let pkt = io.sim.take_packet(pkt);
                plugin.on_ctrl(pkt, io);
            });
            return;
        }
        let Some(out) = self.route(pkt.dst, pkt.flow) else {
            self.blackhole_drops += 1;
            record_blackhole(self.id, &pkt, ctx);
            ctx.release_packet(pkt);
            return;
        };
        if self.plugin.is_some() {
            let mut verdict = Verdict::Forward;
            let mut moved = Some(pkt);
            self.with_plugin(ctx, |plugin, io| {
                let p = moved.as_mut().expect("packet present");
                verdict = plugin.process_transit(p, out, io);
            });
            match verdict {
                Verdict::Forward => {
                    let pkt = moved.take().expect("packet present");
                    self.ports[out.index()].send(pkt, ctx);
                }
                Verdict::Consume => {
                    let pkt = moved.take().expect("packet present");
                    ctx.stats.note_plugin_consumed(&pkt);
                    ctx.release_packet(pkt);
                }
            }
        } else {
            self.ports[out.index()].send(pkt, ctx);
        }
    }

    /// Pick the output port toward `dst` for `flow` (ECMP by flow hash
    /// over the live equal-cost ports). `None` when no next hop survives.
    pub fn route(&self, dst: NodeId, flow: FlowId) -> Option<PortId> {
        route_live(
            self.fib.entry(dst),
            &self.ports,
            flow,
            self.ecmp_salt,
            self.health_aware,
        )
    }

    /// Run a closure with the plugin detached, so the plugin can borrow the
    /// switch's ports and FIB through [`SwitchIo`].
    fn with_plugin<F>(&mut self, ctx: &mut Ctx<'_>, f: F)
    where
        F: FnOnce(&mut dyn SwitchPlugin, &mut SwitchIo<'_, '_>),
    {
        let Some(mut plugin) = self.plugin.take() else {
            return;
        };
        {
            let mut io = SwitchIo {
                id: self.id,
                ports: &mut self.ports,
                fib: &self.fib,
                blackhole_drops: &mut self.blackhole_drops,
                health_aware: self.health_aware,
                ecmp_salt: self.ecmp_salt,
                sim: ctx,
            };
            f(plugin.as_mut(), &mut io);
        }
        self.plugin = Some(plugin);
    }
}

impl core::fmt::Debug for Switch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Switch")
            .field("id", &self.id)
            .field("ports", &self.ports.len())
            .field("has_plugin", &self.plugin.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Scheduler;
    use crate::queue::DropTailQdisc;
    use crate::stats::StatsCollector;
    use crate::time::Rate;

    /// A switch with two equal-cost ports (to n1 and n2) toward dst n5.
    fn two_way_switch() -> Switch {
        let mk = |i: u32, peer: u32| {
            Port::new(
                PortId(i),
                NodeId(peer),
                Rate::from_gbps(1),
                SimDuration::from_micros(10),
                Box::new(DropTailQdisc::new(16)),
            )
        };
        let mut rows: Vec<Vec<PortId>> = vec![Vec::new(); 6];
        rows[5] = vec![PortId(0), PortId(1)];
        Switch::new(NodeId(10), vec![mk(0, 1), mk(1, 2)], Fib::from_rows(&rows))
    }

    fn routes_used(sw: &Switch) -> std::collections::BTreeSet<PortId> {
        (0..64)
            .filter_map(|f| sw.route(NodeId(5), FlowId(f)))
            .collect()
    }

    #[test]
    fn reroute_prunes_dead_ecmp_sibling_and_restores() {
        let mut sw = two_way_switch();
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        assert_eq!(routes_used(&sw).len(), 2, "healthy ECMP uses both ports");
        {
            let mut ctx = Ctx {
                node: NodeId(10),
                sched: &mut sched,
                stats: &mut stats,
            };
            sw.handle(
                EventKind::Fault(FaultDirective::PortDown(PortId(0))),
                &mut ctx,
            );
        }
        let live = routes_used(&sw);
        assert_eq!(
            live.into_iter().collect::<Vec<_>>(),
            vec![PortId(1)],
            "all flows re-hash onto the surviving sibling"
        );
        {
            let mut ctx = Ctx {
                node: NodeId(10),
                sched: &mut sched,
                stats: &mut stats,
            };
            sw.handle(
                EventKind::Fault(FaultDirective::PortUp(PortId(0))),
                &mut ctx,
            );
        }
        assert_eq!(routes_used(&sw).len(), 2, "recovery restores the spread");
        assert_eq!(sw.blackhole_drops(), 0);
    }

    #[test]
    fn no_live_route_is_a_counted_blackhole() {
        let mut sw = two_way_switch();
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let tracer = crate::trace::TextTracer::new();
        let buf = tracer.buffer();
        stats.set_tracer(Box::new(tracer));
        let mut ctx = Ctx {
            node: NodeId(10),
            sched: &mut sched,
            stats: &mut stats,
        };
        sw.handle(
            EventKind::Fault(FaultDirective::PortDown(PortId(0))),
            &mut ctx,
        );
        sw.handle(
            EventKind::Fault(FaultDirective::PortDown(PortId(1))),
            &mut ctx,
        );
        assert_eq!(sw.route(NodeId(5), FlowId(7)), None);
        let pkt = Packet::data(FlowId(7), NodeId(3), NodeId(5), 0, 1460);
        sw.handle(EventKind::deliver(pkt), &mut ctx);
        ctx.stats.flush_tracer();
        assert_eq!(sw.blackhole_drops(), 1);
        assert_eq!(stats.blackhole_pkts, 1);
        assert_eq!(stats.data_pkts_blackholed, 1);
        assert_eq!(stats.data_pkts_dropped, 0, "blackholes are not queue drops");
        let out = buf.lock().unwrap().clone();
        assert!(out.contains("BHOL n10 f7 Data seq=0"), "{out}");
    }

    /// Push `n` data packets through one of the switch's ports, servicing
    /// the TxComplete events, so TX-path health sampling runs.
    fn drive_port(sw: &mut Switch, port: usize, n: u64) {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        for i in 0..n {
            let mut ctx = Ctx {
                node: NodeId(10),
                sched: &mut sched,
                stats: &mut stats,
            };
            let pkt = Packet::data(FlowId(i), NodeId(3), NodeId(5), 0, 1460);
            sw.ports[port].send(Box::new(pkt), &mut ctx);
            while let Some((_, kind)) = sched.pop() {
                if matches!(kind, EventKind::TxComplete(_)) {
                    let mut ctx = Ctx {
                        node: NodeId(10),
                        sched: &mut sched,
                        stats: &mut stats,
                    };
                    sw.ports[port].on_tx_complete(&mut ctx);
                }
            }
        }
    }

    fn all_loss() -> crate::fault::DegradeProfile {
        crate::fault::DegradeProfile {
            seed: 9,
            loss_ppm: 1_000_000,
            corrupt_ppm: 0,
            extra_delay_ns: 0,
            jitter_ns: 0,
        }
    }

    #[test]
    fn health_aware_routing_shuns_degraded_sibling_and_restores() {
        let mut sw = two_way_switch();
        sw.set_health_aware(true);
        assert_eq!(routes_used(&sw).len(), 2, "healthy ECMP uses both ports");
        // Degrade port 0 into total loss and let it observe a few TXes.
        sw.ports[0].set_degraded(NodeId(10), all_loss());
        drive_port(&mut sw, 0, 10);
        assert!(!sw.ports[0].is_healthy());
        assert_eq!(
            routes_used(&sw).into_iter().collect::<Vec<_>>(),
            vec![PortId(1)],
            "flows re-hash off the gray sibling"
        );
        // Port 1 degrades too: with no healthy sibling left, selection
        // falls back to all live ports rather than blackholing.
        sw.ports[1].set_degraded(NodeId(10), all_loss());
        drive_port(&mut sw, 1, 10);
        assert_eq!(
            routes_used(&sw).len(),
            2,
            "no healthy port: fall back to live spread"
        );
        assert_eq!(sw.blackhole_drops(), 0);
        // Port 0 recovers; clean traffic earns its health back.
        sw.ports[0].set_restored();
        drive_port(&mut sw, 0, 3000);
        assert!(sw.ports[0].is_healthy());
        assert_eq!(
            routes_used(&sw).into_iter().collect::<Vec<_>>(),
            vec![PortId(0)],
            "the recovered port is the only healthy sibling"
        );
    }

    #[test]
    fn static_routing_ignores_health() {
        let mut sw = two_way_switch();
        sw.ports[0].set_degraded(NodeId(10), all_loss());
        drive_port(&mut sw, 0, 10);
        assert!(!sw.ports[0].is_healthy());
        assert_eq!(
            routes_used(&sw).len(),
            2,
            "default ECMP keeps hashing onto the degraded port"
        );
    }

    #[test]
    fn corrupted_ctrl_addressed_to_switch_is_discarded() {
        struct CountingPlugin(u64);
        impl SwitchPlugin for CountingPlugin {
            fn on_ctrl(&mut self, _pkt: Packet, _io: &mut SwitchIo<'_, '_>) {
                self.0 += 1;
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sw = two_way_switch();
        sw.set_plugin(Box::new(CountingPlugin(0)));
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut ctx = Ctx {
            node: NodeId(10),
            sched: &mut sched,
            stats: &mut stats,
        };
        let mut ctrl = Packet::ctrl(FlowId(1), NodeId(3), NodeId(10), Box::new(0u32));
        ctrl.corrupted = true;
        sw.handle(EventKind::deliver(ctrl), &mut ctx);
        let clean = Packet::ctrl(FlowId(1), NodeId(3), NodeId(10), Box::new(0u32));
        sw.handle(EventKind::deliver(clean), &mut ctx);
        assert_eq!(
            sw.plugin_as::<CountingPlugin>().unwrap().0,
            1,
            "only the clean control packet reaches the arbitrator"
        );
    }

    #[test]
    fn fib_round_trips_dense_rows_and_deduplicates() {
        // Rows chosen so runs, singletons, empties, and repeats all occur.
        let up = vec![PortId(2), PortId(3)];
        let rows: Vec<Vec<PortId>> = vec![
            Vec::new(),      // 0: no route
            vec![PortId(0)], // 1
            vec![PortId(0)], // 2: run continues
            vec![PortId(1)], // 3
            up.clone(),      // 4
            up.clone(),      // 5
            up.clone(),      // 6
            vec![PortId(0)], // 7: earlier set reused
            Vec::new(),      // 8
        ];
        let fib = Fib::from_rows(&rows);
        for (d, row) in rows.iter().enumerate() {
            assert_eq!(fib.entry(NodeId(d as u32)), row.as_slice(), "dst {d}");
        }
        // Beyond the encoded id space the last interval's set applies;
        // that is fine because the topology never addresses such ids.
        assert_eq!(fib.intervals(), 6, "runs collapse into intervals");
        // Pool holds each distinct set once: {}, {0}, {1}, {2,3}.
        assert_eq!(fib.heap_bytes(), 6 * 4 + 6 * 4 + 4 * 4 + 4 * 4);
    }

    #[test]
    fn fib_empty_table_routes_nothing() {
        let fib = Fib::default();
        assert_eq!(fib.entry(NodeId(0)), &[] as &[PortId]);
        assert_eq!(fib.entry(NodeId(99)), &[] as &[PortId]);
    }

    #[test]
    fn ecmp_salt_changes_selection_but_zero_matches_unsalted() {
        let sw = two_way_switch();
        let mut salted = two_way_switch();
        salted.set_ecmp_salt(0xdead_beef_cafe_f00d);
        // Salt 0 is the historical hash by construction.
        let base: Vec<_> = (0..256)
            .map(|f| sw.route(NodeId(5), FlowId(f)).unwrap())
            .collect();
        for (f, &p) in base.iter().enumerate() {
            let k = mix64(f as u64) as usize % 2;
            assert_eq!(p, PortId(k as u32));
        }
        // A nonzero salt must disagree somewhere (decorrelated tiers)
        // while remaining deterministic.
        let with_salt: Vec<_> = (0..256)
            .map(|f| salted.route(NodeId(5), FlowId(f)).unwrap())
            .collect();
        assert_ne!(base, with_salt);
        let again: Vec<_> = (0..256)
            .map(|f| salted.route(NodeId(5), FlowId(f)).unwrap())
            .collect();
        assert_eq!(with_salt, again);
    }

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // A handful of consecutive inputs should not all land on the same
        // parity (sanity check for 2-way ECMP).
        let evens = (0..16).filter(|&i| mix64(i).is_multiple_of(2)).count();
        assert!(evens > 2 && evens < 14, "mix64 badly skewed: {evens}/16");
    }
}
