//! Switches.
//!
//! A [`Switch`] forwards packets between its output ports using a static
//! forwarding table (computed by the topology builder). Protocol crates can
//! install a [`SwitchPlugin`] to participate in forwarding:
//!
//! * PDQ's per-link flow arbitration rewrites scheduling headers on
//!   transiting packets;
//! * PASE's control-plane arbitrators are co-located with switches and
//!   consume/emit control packets addressed to the switch itself.
//!
//! The data plane itself stays dumb, per the paper's design principle that
//! in-network prioritization should "keep the data plane simple and
//! efficient": all scheduling policy lives in the port queue disciplines.

use std::any::Any;

use crate::engine::Ctx;
use crate::event::EventKind;
use crate::fault::{FaultDirective, NodeFault};
use crate::ids::{FlowId, NodeId, PortId};
use crate::packet::{Packet, PacketKind};
use crate::port::Port;
use crate::time::{SimDuration, SimTime};

/// Deterministic 64-bit mix used for ECMP next-hop selection.
fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-destination next hops: one or more equal-cost output ports.
pub type FibEntry = Vec<PortId>;

/// What a plugin decides about a transiting packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Enqueue on the selected output port.
    Forward,
    /// Silently consume the packet (it will not be forwarded).
    Consume,
}

/// Protocol logic attached to a switch.
pub trait SwitchPlugin: Send {
    /// Called for every transiting packet after the output port has been
    /// selected and before the packet is enqueued. May rewrite headers
    /// (PDQ) or consume the packet.
    fn process_transit(
        &mut self,
        pkt: &mut Packet,
        out_port: PortId,
        io: &mut SwitchIo<'_, '_>,
    ) -> Verdict {
        let _ = (pkt, out_port, io);
        Verdict::Forward
    }

    /// A control packet addressed to this switch arrived.
    fn on_ctrl(&mut self, pkt: Packet, io: &mut SwitchIo<'_, '_>) {
        let _ = (pkt, io);
    }

    /// A timer set via [`SwitchIo::set_timer`] fired.
    fn on_timer(&mut self, token: u64, io: &mut SwitchIo<'_, '_>) {
        let _ = (token, io);
    }

    /// An injected control-plane fault hit this switch (see
    /// [`crate::fault`]). The default plugin ignores faults.
    fn on_fault(&mut self, fault: NodeFault, io: &mut SwitchIo<'_, '_>) {
        let _ = (fault, io);
    }

    /// Downcast support for tests and cross-layer inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The interface a [`SwitchPlugin`] uses to act on its switch.
pub struct SwitchIo<'a, 'b> {
    /// The switch's node id.
    pub id: NodeId,
    /// The switch's output ports.
    pub ports: &'a mut Vec<Port>,
    /// Forwarding table indexed by destination node id.
    pub fib: &'a Vec<FibEntry>,
    /// Engine context.
    pub sim: &'a mut Ctx<'b>,
}

impl<'a, 'b> SwitchIo<'a, 'b> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Pick the output port toward `dst` for `flow` (ECMP by flow hash).
    pub fn route(&self, dst: NodeId, flow: FlowId) -> Option<PortId> {
        let entry = self.fib.get(dst.index())?;
        match entry.len() {
            0 => None,
            1 => Some(entry[0]),
            n => Some(entry[mix64(flow.0) as usize % n]),
        }
    }

    /// Send a packet toward its destination through the forwarding table.
    /// Control packets are counted as control-plane overhead.
    pub fn send(&mut self, mut pkt: Packet) {
        pkt.ts = self.now();
        let Some(port) = self.route(pkt.dst, pkt.flow) else {
            debug_assert!(false, "no route from {} to {}", self.id, pkt.dst);
            return;
        };
        if pkt.kind == PacketKind::Ctrl {
            self.sim.stats.note_ctrl_sent(pkt.wire_bytes);
        }
        self.ports[port.index()].send(pkt, self.sim);
    }

    /// The capacity of one of this switch's links.
    pub fn port_rate(&self, port: PortId) -> crate::time::Rate {
        self.ports[port.index()].rate
    }

    /// Arrange for [`SwitchPlugin::on_timer`] to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.sim.schedule_self(delay, EventKind::PluginTimer(token));
    }
}

/// A store-and-forward switch.
pub struct Switch {
    id: NodeId,
    ports: Vec<Port>,
    /// Forwarding table: `fib[dst_node] = equal-cost output ports`.
    fib: Vec<FibEntry>,
    plugin: Option<Box<dyn SwitchPlugin>>,
}

impl Switch {
    /// Create a switch. The forwarding table must cover every destination
    /// that will ever appear in a packet.
    pub fn new(id: NodeId, ports: Vec<Port>, fib: Vec<FibEntry>) -> Switch {
        Switch {
            id,
            ports,
            fib,
            plugin: None,
        }
    }

    /// Install a protocol plugin.
    pub fn set_plugin(&mut self, plugin: Box<dyn SwitchPlugin>) {
        self.plugin = Some(plugin);
    }

    /// This switch's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The switch's output ports (for tracing).
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Downcast the plugin to a concrete type.
    pub fn plugin_as<T: 'static>(&mut self) -> Option<&mut T> {
        self.plugin
            .as_deref_mut()
            .and_then(|p| p.as_any_mut().downcast_mut::<T>())
    }

    /// Dispatch an event to this switch.
    pub fn handle(&mut self, kind: EventKind, ctx: &mut Ctx<'_>) {
        match kind {
            EventKind::Deliver(pkt) => self.deliver(pkt, ctx),
            EventKind::TxComplete(port) => {
                self.ports[port.index()].on_tx_complete(ctx);
            }
            EventKind::PluginTimer(token) => {
                self.with_plugin(ctx, |plugin, io| plugin.on_timer(token, io));
            }
            EventKind::Fault(directive) => self.apply_fault(directive, ctx),
            EventKind::FlowStart(_) | EventKind::AgentTimer { .. } => {
                debug_assert!(false, "host event delivered to switch {}", self.id);
            }
        }
    }

    /// Apply an injected fault directive to this switch.
    fn apply_fault(&mut self, directive: FaultDirective, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        ctx.stats.trace_event(
            now,
            &crate::trace::TraceEvent::Fault {
                node: self.id,
                fault: directive,
            },
        );
        match directive {
            FaultDirective::PortDown(port) => self.ports[port.index()].set_down(ctx),
            FaultDirective::PortUp(port) => self.ports[port.index()].set_up(),
            FaultDirective::CtrlLossBurst { port, n } => {
                self.ports[port.index()].inject_ctrl_loss_burst(n);
            }
            FaultDirective::Crash => {
                self.with_plugin(ctx, |plugin, io| plugin.on_fault(NodeFault::Crash, io));
            }
            FaultDirective::Restart => {
                self.with_plugin(ctx, |plugin, io| plugin.on_fault(NodeFault::Restart, io));
            }
        }
    }

    fn deliver(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if pkt.dst == self.id {
            // Addressed to this switch: control-plane traffic.
            self.with_plugin(ctx, |plugin, io| plugin.on_ctrl(pkt, io));
            return;
        }
        let Some(out) = self.route(pkt.dst, pkt.flow) else {
            debug_assert!(false, "no route from {} to {}", self.id, pkt.dst);
            return;
        };
        if self.plugin.is_some() {
            let mut verdict = Verdict::Forward;
            let mut moved = Some(pkt);
            self.with_plugin(ctx, |plugin, io| {
                let p = moved.as_mut().expect("packet present");
                verdict = plugin.process_transit(p, out, io);
            });
            match verdict {
                Verdict::Forward => {
                    let pkt = moved.take().expect("packet present");
                    self.ports[out.index()].send(pkt, ctx);
                }
                Verdict::Consume => {}
            }
        } else {
            self.ports[out.index()].send(pkt, ctx);
        }
    }

    /// Pick the output port toward `dst` for `flow` (ECMP by flow hash).
    pub fn route(&self, dst: NodeId, flow: FlowId) -> Option<PortId> {
        let entry = self.fib.get(dst.index())?;
        match entry.len() {
            0 => None,
            1 => Some(entry[0]),
            n => Some(entry[mix64(flow.0) as usize % n]),
        }
    }

    /// Run a closure with the plugin detached, so the plugin can borrow the
    /// switch's ports and FIB through [`SwitchIo`].
    fn with_plugin<F>(&mut self, ctx: &mut Ctx<'_>, f: F)
    where
        F: FnOnce(&mut dyn SwitchPlugin, &mut SwitchIo<'_, '_>),
    {
        let Some(mut plugin) = self.plugin.take() else {
            return;
        };
        {
            let mut io = SwitchIo {
                id: self.id,
                ports: &mut self.ports,
                fib: &self.fib,
                sim: ctx,
            };
            f(plugin.as_mut(), &mut io);
        }
        self.plugin = Some(plugin);
    }
}

impl core::fmt::Debug for Switch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Switch")
            .field("id", &self.id)
            .field("ports", &self.ports.len())
            .field("has_plugin", &self.plugin.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // A handful of consecutive inputs should not all land on the same
        // parity (sanity check for 2-way ECMP).
        let evens = (0..16).filter(|&i| mix64(i).is_multiple_of(2)).count();
        assert!(evens > 2 && evens < 14, "mix64 badly skewed: {evens}/16");
    }
}
