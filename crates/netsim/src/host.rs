//! End hosts.
//!
//! A [`Host`] owns one access port and a set of per-flow endpoint agents.
//! Protocol crates implement [`FlowAgent`] (the sender/receiver state
//! machines) and [`AgentFactory`] (how to build them); hosts instantiate a
//! sender agent when a [`crate::event::EventKind::FlowStart`] fires and a
//! receiver agent lazily when the first packet of an unknown flow arrives.
//!
//! Hosts may also carry a [`HostService`]: host-local control-plane state
//! shared by all agents on the machine. PASE uses this for the endpoint
//! arbitrators that manage the host's own access links (paper §3.1: "this
//! functionality can be implemented at the end-hosts themselves, e.g., for
//! their own links to the switch").

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use crate::engine::Ctx;
use crate::event::EventKind;
use crate::fault::{FaultDirective, NodeFault};
use crate::flow::{FlowSpec, ReceiverHint};
use crate::ids::{FlowId, IdHashBuilder, NodeId};
use crate::packet::{Packet, PacketKind};
use crate::port::Port;
use crate::time::{SimDuration, SimTime};

/// A per-flow endpoint state machine (sender or receiver side).
pub trait FlowAgent: Send {
    /// The flow has arrived; begin transmitting (sender side). Receiver
    /// agents are started at creation too, before their first packet.
    fn on_start(&mut self, ctx: &mut AgentCtx<'_, '_>);

    /// A packet belonging to this agent's flow arrived at the host.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut AgentCtx<'_, '_>);

    /// A timer previously set through [`AgentCtx::set_timer`] fired.
    /// Agents must tolerate stale timers (use epoch tokens).
    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_, '_>);

    /// Whether this agent can be garbage-collected.
    fn is_done(&self) -> bool;

    /// Downcast support for white-box tests and cross-layer inspection.
    /// The default implementation opts out.
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        None
    }
}

/// Builds the endpoint agents for one transport scheme.
pub trait AgentFactory: Send + Sync {
    /// Create the sender-side agent for a flow originating at this host.
    fn sender(&self, spec: &FlowSpec) -> Box<dyn FlowAgent>;
    /// Create the receiver-side agent when the first packet of an unknown
    /// flow arrives.
    fn receiver(&self, hint: ReceiverHint) -> Box<dyn FlowAgent>;
}

/// Host-local control-plane state shared by all agents on a host (e.g.
/// PASE's endpoint arbitrators). Downcast with [`AgentCtx::service`].
pub trait HostService: Send {
    /// Handle a control packet addressed to this host that does not belong
    /// to any flow agent.
    fn on_ctrl(&mut self, pkt: Packet, host: &mut HostIo<'_, '_, '_>);

    /// A timer previously set through [`HostIo::set_timer`] fired.
    fn on_timer(&mut self, token: u64, host: &mut HostIo<'_, '_, '_>);

    /// An injected control-plane fault hit this host (see
    /// [`crate::fault`]). The default service ignores faults.
    fn on_fault(&mut self, fault: NodeFault, host: &mut HostIo<'_, '_, '_>) {
        let _ = (fault, host);
    }

    /// Downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Everything on a host except the agents and the service — what an agent
/// is allowed to touch while it runs.
pub struct HostCore {
    /// This host's node id.
    pub id: NodeId,
    /// The single access port toward the ToR switch.
    pub port: Port,
    /// Crash/restart generation counter, stamped onto every packet this
    /// host sends ([`crate::packet::Packet::incarnation`]). Bumped by
    /// [`crate::fault::FaultDirective::HostRestart`].
    pub incarnation: u32,
}

/// An end host: one access port, per-flow agents, optional service.
pub struct Host {
    core: HostCore,
    factory: Arc<dyn AgentFactory>,
    service: Option<Box<dyn HostService>>,
    /// Live agents, keyed by flow. The deterministic [`IdHashBuilder`]
    /// keeps the per-packet lookup off SipHash; every iteration over this
    /// map sorts its keys first, so the hasher never leaks into event
    /// order.
    agents: HashMap<FlowId, Box<dyn FlowAgent>, IdHashBuilder>,
    /// Set by [`crate::fault::FaultDirective::HostCrash`]: the machine is
    /// down. Nothing is consumed or started until the matching restart.
    crashed: bool,
}

/// The interface a [`FlowAgent`] uses to act on the world.
pub struct AgentCtx<'a, 'b> {
    /// The flow this agent belongs to.
    pub flow: FlowId,
    /// The host the agent runs on (port access).
    pub host: &'a mut HostCore,
    /// Host-local control service, if the scheme installs one.
    pub service: Option<&'a mut Box<dyn HostService>>,
    /// Engine context (clock, scheduler, stats).
    pub sim: &'a mut Ctx<'b>,
}

impl<'a, 'b> AgentCtx<'a, 'b> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Transmit a packet out of the host's access port.
    pub fn send(&mut self, mut pkt: Packet) {
        pkt.ts = self.now();
        pkt.incarnation = self.host.incarnation;
        match pkt.kind {
            PacketKind::Ctrl => self.sim.stats.note_ctrl_sent(pkt.wire_bytes),
            PacketKind::Data => self.sim.stats.note_data_injected(),
            _ => {}
        }
        // Injection is where a packet is boxed, once; the arena recycles
        // the allocation when the packet is consumed or dropped, so
        // steady-state sends do not touch the global allocator.
        let boxed = self.sim.alloc_packet(pkt);
        self.host.port.send(boxed, self.sim);
    }

    /// Arrange for [`FlowAgent::on_timer`] to fire after `delay` with
    /// `token`. Timers cannot be cancelled; agents should version tokens
    /// and ignore stale ones.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.sim.schedule_self(
            delay,
            EventKind::AgentTimer {
                flow: self.flow,
                token,
            },
        );
    }

    /// Record that this flow's sender observed the final acknowledgment.
    pub fn flow_completed(&mut self) {
        let now = self.now();
        self.sim.stats.flow_completed(self.flow, now);
    }

    /// Record that this flow's sender aborted the transfer, with the
    /// reason (PDQ early termination, bounded RTO give-up, ...).
    pub fn flow_aborted(&mut self, reason: crate::trace::AbortReason) {
        let now = self.now();
        self.sim.stats.flow_aborted(self.flow, now, reason);
    }

    /// Downcast the host service to a concrete type.
    pub fn service<T: 'static>(&mut self) -> Option<&mut T> {
        self.service
            .as_deref_mut()
            .and_then(|s| s.as_any_mut().downcast_mut::<T>())
    }
}

/// The interface a [`HostService`] uses to act on the world.
pub struct HostIo<'a, 'b, 'c> {
    /// The host the service runs on.
    pub host: &'a mut HostCore,
    /// Engine context (clock, scheduler, stats).
    pub sim: &'a mut Ctx<'c>,
    /// Deferred notifications back into flow agents; drained by the host
    /// after the service returns.
    pub(crate) wakeups: &'a mut Vec<FlowId>,
    _marker: core::marker::PhantomData<&'b ()>,
}

impl<'a, 'b, 'c> HostIo<'a, 'b, 'c> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Transmit a packet out of the host's access port.
    pub fn send(&mut self, mut pkt: Packet) {
        pkt.ts = self.now();
        pkt.incarnation = self.host.incarnation;
        match pkt.kind {
            PacketKind::Ctrl => self.sim.stats.note_ctrl_sent(pkt.wire_bytes),
            PacketKind::Data => self.sim.stats.note_data_injected(),
            _ => {}
        }
        let boxed = self.sim.alloc_packet(pkt);
        self.host.port.send(boxed, self.sim);
    }

    /// Arrange for [`HostService::on_timer`] to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.sim.schedule_self(delay, EventKind::PluginTimer(token));
    }

    /// Ask the host to invoke `on_timer(WAKEUP_TOKEN)` on a flow's agent
    /// after the service returns (e.g. arbitration state changed and the
    /// flow should re-evaluate its rate).
    pub fn wake_flow(&mut self, flow: FlowId) {
        self.wakeups.push(flow);
    }
}

/// Token delivered to [`FlowAgent::on_timer`] when a host service wakes the
/// agent via [`HostIo::wake_flow`]. Chosen high to stay clear of the small
/// token spaces agents use for their own timers.
pub const WAKEUP_TOKEN: u64 = u64::MAX;

/// Plugin-timer tokens at or above this base mark *background maintenance*
/// work (periodic state GC, bookkeeping) rather than forward progress on
/// any flow. The stuck-flow oracle ([`crate::invariants`]) ignores pending
/// `PluginTimer` events in this range when deciding whether an incomplete
/// flow can still advance — a perpetual GC tick must not masquerade as
/// progress evidence. Services and plugins typically use
/// `MAINTENANCE_TIMER_BASE + epoch` so restarts invalidate stale ticks.
pub const MAINTENANCE_TIMER_BASE: u64 = 1 << 62;

impl Host {
    /// Create a host with the given access port, agent factory, and
    /// optional host-local service.
    pub fn new(
        id: NodeId,
        port: Port,
        factory: Arc<dyn AgentFactory>,
        service: Option<Box<dyn HostService>>,
    ) -> Host {
        Host {
            core: HostCore {
                id,
                port,
                incarnation: 0,
            },
            factory,
            service,
            agents: HashMap::default(),
            crashed: false,
        }
    }

    /// Whether the host is currently crashed (between a `HostCrash` and
    /// the matching `HostRestart`).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The host's current incarnation (bumped on every restart).
    pub fn incarnation(&self) -> u32 {
        self.core.incarnation
    }

    /// This host's node id.
    pub fn id(&self) -> NodeId {
        self.core.id
    }

    /// Access the host's port (for inspection in tests and tracing).
    pub fn port(&self) -> &Port {
        &self.core.port
    }

    /// Number of live agents (senders not yet garbage-collected plus
    /// receivers).
    pub fn live_agents(&self) -> usize {
        self.agents.len()
    }

    /// Install (or replace) the host-local control service.
    pub fn set_service(&mut self, service: Box<dyn HostService>) {
        self.service = Some(service);
    }

    /// Downcast a live flow agent (sender or receiver) to a concrete type.
    /// Requires the agent to override [`FlowAgent::as_any_mut`].
    pub fn agent_as<T: 'static>(&mut self, flow: FlowId) -> Option<&mut T> {
        self.agents
            .get_mut(&flow)?
            .as_any_mut()?
            .downcast_mut::<T>()
    }

    /// Downcast the host service.
    pub fn service_as<T: 'static>(&mut self) -> Option<&mut T> {
        self.service
            .as_deref_mut()
            .and_then(|s| s.as_any_mut().downcast_mut::<T>())
    }

    /// Dispatch an event to this host.
    pub fn handle(&mut self, kind: EventKind, ctx: &mut Ctx<'_>) {
        match kind {
            EventKind::FlowStart(spec) => {
                if self.crashed {
                    // A flow scheduled to start while its source host is
                    // down never runs: terminal abort, attributable to the
                    // crash.
                    let now = ctx.now();
                    ctx.stats
                        .flow_aborted(spec.id, now, crate::trace::AbortReason::HostCrash);
                    return;
                }
                let agent = self.factory.sender(&spec);
                self.install_and_run(spec.id, agent, ctx, |agent, actx| agent.on_start(actx));
            }
            EventKind::Deliver(pkt) => self.deliver(pkt, ctx),
            EventKind::TxComplete(port) => {
                debug_assert_eq!(port.index(), 0, "hosts have a single port");
                self.core.port.on_tx_complete(ctx);
            }
            EventKind::AgentTimer { flow, token } => {
                // A stale timer for a completed flow finds no agent and is
                // ignored.
                self.run_agent(flow, ctx, |agent, actx| agent.on_timer(token, actx));
            }
            EventKind::PluginTimer(token) => {
                self.run_service(ctx, |svc, io| svc.on_timer(token, io));
            }
            EventKind::Fault(directive) => self.apply_fault(directive, ctx),
        }
    }

    /// Apply an injected fault directive to this host.
    fn apply_fault(&mut self, directive: FaultDirective, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        ctx.stats.trace_event(
            now,
            &crate::trace::TraceEvent::Fault {
                node: self.core.id,
                fault: directive,
            },
        );
        match directive {
            FaultDirective::PortDown(port) => {
                debug_assert_eq!(port.index(), 0, "hosts have a single port");
                self.core.port.set_down(ctx);
            }
            FaultDirective::PortUp(port) => {
                debug_assert_eq!(port.index(), 0, "hosts have a single port");
                self.core.port.set_up();
            }
            FaultDirective::CtrlLossBurst { port, n } => {
                debug_assert_eq!(port.index(), 0, "hosts have a single port");
                self.core.port.inject_ctrl_loss_burst(n);
            }
            FaultDirective::Crash => {
                self.run_service(ctx, |svc, io| svc.on_fault(NodeFault::Crash, io));
            }
            FaultDirective::Restart => {
                self.run_service(ctx, |svc, io| svc.on_fault(NodeFault::Restart, io));
            }
            FaultDirective::HostCrash => {
                if !self.crashed {
                    self.crashed = true;
                    // Every live agent dies with the machine. Flows this
                    // host *sources* move to the terminal Aborted state
                    // (the record's completion keeps runs terminating);
                    // flows it receives are left for the remote sender to
                    // give up on via the bounded-RTO abort. Sorted order
                    // keeps the emitted FlowDone trace deterministic.
                    let mut flows: Vec<FlowId> = self.agents.keys().copied().collect();
                    flows.sort_unstable();
                    self.agents.clear();
                    let now = ctx.now();
                    for flow in flows {
                        if ctx.stats.flow(flow).map(|r| r.spec.src) == Some(self.core.id) {
                            ctx.stats
                                .flow_aborted(flow, now, crate::trace::AbortReason::HostCrash);
                        }
                    }
                    self.run_service(ctx, |svc, io| svc.on_fault(NodeFault::Crash, io));
                }
            }
            FaultDirective::HostRestart => {
                if self.crashed {
                    self.crashed = false;
                    // New incarnation: receivers can tell post-restart
                    // traffic from pre-crash segments still in flight.
                    self.core.incarnation += 1;
                    self.run_service(ctx, |svc, io| svc.on_fault(NodeFault::Restart, io));
                }
            }
            FaultDirective::PortDegrade { port, profile } => {
                debug_assert_eq!(port.index(), 0, "hosts have a single port");
                self.core.port.set_degraded(self.core.id, profile);
            }
            FaultDirective::PortRestore(port) => {
                debug_assert_eq!(port.index(), 0, "hosts have a single port");
                self.core.port.set_restored();
            }
            FaultDirective::CtrlStormStart { amplify } => {
                self.run_service(ctx, |svc, io| {
                    svc.on_fault(NodeFault::CtrlStormStart { amplify }, io)
                });
            }
            FaultDirective::CtrlStormEnd => {
                self.run_service(ctx, |svc, io| svc.on_fault(NodeFault::CtrlStormEnd, io));
            }
        }
    }

    fn deliver(&mut self, pkt: Box<Packet>, ctx: &mut Ctx<'_>) {
        debug_assert_eq!(pkt.dst, self.core.id, "misrouted packet");
        if self.crashed {
            // A crashed machine consumes nothing. Data and control are
            // accounted as lost-to-crash so their conservation laws still
            // balance; everything else (acks, probes) just evaporates.
            match pkt.kind {
                PacketKind::Data => ctx.stats.note_data_lost_to_crash(),
                PacketKind::Ctrl => ctx.stats.note_ctrl_lost_to_crash(),
                _ => {}
            }
            ctx.release_packet(pkt);
            return;
        }
        if pkt.corrupted {
            // Checksum failure: discard silently, like real NICs do. The
            // missing ACK (or missing arbitration response) is what the
            // transport's RTO/SACK machinery recovers from. Data and
            // control packets are charged to their `corrupted` terms.
            match pkt.kind {
                PacketKind::Data => ctx.stats.note_data_corrupted(self.core.id, &pkt),
                PacketKind::Ctrl => ctx.stats.note_ctrl_corrupted(),
                _ => {}
            }
            if ctx.stats.tracing() {
                let now = ctx.now();
                ctx.stats.trace_event(
                    now,
                    &crate::trace::TraceEvent::Corrupt {
                        node: self.core.id,
                        flow: pkt.flow,
                        kind: pkt.kind,
                        seq: pkt.seq,
                    },
                );
            }
            ctx.release_packet(pkt);
            return;
        }
        if pkt.kind == PacketKind::Data {
            ctx.stats.note_data_delivered();
        }
        // Control-plane packets always go to the host service, even when a
        // flow agent exists for the tagged flow: agents learn of control
        // state changes through service wake-ups, not raw packets.
        if pkt.kind == PacketKind::Ctrl {
            if self.service.is_none() {
                // No host service to interpret it: account the message so
                // the control-plane conservation law still closes.
                ctx.stats.note_ctrl_unattended();
                ctx.release_packet(pkt);
                return;
            }
            self.run_service(ctx, move |svc, io| {
                let pkt = io.sim.take_packet(pkt);
                svc.on_ctrl(pkt, io);
            });
            return;
        }
        let flow = pkt.flow;
        // Hot path: hand the packet to the flow's live agent. It rides in
        // an Option so the closure can move it out while the host keeps
        // it when no agent exists (first packet of a new flow). The box
        // is recycled into the arena at the consumption site.
        let mut arriving = Some(pkt);
        if self.run_agent(flow, ctx, |agent, actx| {
            let pkt = actx
                .sim
                .take_packet(arriving.take().expect("packet present"));
            agent.on_packet(pkt, actx);
        }) {
            return;
        }
        let pkt = arriving.expect("no agent ran, packet kept");
        match pkt.kind {
            PacketKind::Data | PacketKind::Probe => {
                // First packet of an unknown flow: create the receiver.
                let hint = ReceiverHint {
                    flow,
                    src: pkt.src,
                    dst: self.core.id,
                };
                let agent = self.factory.receiver(hint);
                // Start, then deliver the packet.
                self.install_and_run(flow, agent, ctx, move |agent, actx| {
                    agent.on_start(actx);
                    let pkt = actx.sim.take_packet(pkt);
                    agent.on_packet(pkt, actx);
                });
            }
            PacketKind::Ctrl => unreachable!("handled above"),
            PacketKind::Ack | PacketKind::ProbeAck => {
                // ACK for a flow that already completed; ignore.
                ctx.release_packet(pkt);
            }
        }
    }

    /// Run a closure over the agent registered for `flow`, then
    /// garbage-collect the agent once it reports done. Returns whether an
    /// agent existed. The agents map and the rest of the host are
    /// disjoint fields, so the agent stays in the map while it borrows
    /// the core through [`AgentCtx`] — no remove/re-insert pair per
    /// delivered packet.
    fn run_agent<F>(&mut self, flow: FlowId, ctx: &mut Ctx<'_>, f: F) -> bool
    where
        F: FnOnce(&mut dyn FlowAgent, &mut AgentCtx<'_, '_>),
    {
        let Some(agent) = self.agents.get_mut(&flow) else {
            return false;
        };
        {
            let mut actx = AgentCtx {
                flow,
                host: &mut self.core,
                service: self.service.as_mut(),
                sim: ctx,
            };
            f(agent.as_mut(), &mut actx);
        }
        if agent.is_done() {
            self.agents.remove(&flow);
        }
        true
    }

    /// Register a freshly built agent, then run it (sender on flow start,
    /// receiver on first packet). An immediately-done agent is inserted
    /// and garbage-collected in one motion.
    fn install_and_run<F>(
        &mut self,
        flow: FlowId,
        agent: Box<dyn FlowAgent>,
        ctx: &mut Ctx<'_>,
        f: F,
    ) where
        F: FnOnce(&mut dyn FlowAgent, &mut AgentCtx<'_, '_>),
    {
        let prev = self.agents.insert(flow, agent);
        debug_assert!(prev.is_none(), "{flow} already has a live agent");
        self.run_agent(flow, ctx, f);
    }

    /// Run a closure over the host service (temporarily detached), then
    /// deliver any flow wake-ups it requested.
    fn run_service<F>(&mut self, ctx: &mut Ctx<'_>, f: F)
    where
        F: FnOnce(&mut dyn HostService, &mut HostIo<'_, '_, '_>),
    {
        let Some(mut svc) = self.service.take() else {
            return;
        };
        let mut wakeups = Vec::new();
        {
            let mut io = HostIo {
                host: &mut self.core,
                sim: ctx,
                wakeups: &mut wakeups,
                _marker: core::marker::PhantomData,
            };
            f(svc.as_mut(), &mut io);
        }
        self.service = Some(svc);
        for flow in wakeups {
            // A wake-up for an already-collected agent is a no-op.
            self.run_agent(flow, ctx, |agent, actx| agent.on_timer(WAKEUP_TOKEN, actx));
        }
    }
}

impl core::fmt::Debug for Host {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.core.id)
            .field("agents", &self.agents.len())
            .field("port", &self.core.port)
            .finish()
    }
}
