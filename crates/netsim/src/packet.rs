//! Packets.
//!
//! A [`Packet`] is the unit of transfer across links. It carries the fields
//! every protocol in this workspace needs (sequence/ack numbers, ECN bits,
//! a strict-priority band, a fine-grained rank) plus an opaque
//! protocol-specific extension (`proto`) for schemes that piggyback richer
//! headers on packets — e.g. PDQ's scheduling header or PASE's arbitration
//! messages. Keeping the extension as `dyn Any` keeps this substrate crate
//! independent of the protocol crates built on top of it.

use std::any::Any;

use crate::ids::{FlowId, NodeId};
use crate::time::SimTime;

/// Ethernet + IP + TCP-ish header overhead modeled on every packet, bytes.
pub const HEADER_BYTES: u32 = 40;
/// Default maximum payload per data packet (MSS), bytes.
pub const DEFAULT_MSS: u32 = 1460;
/// Wire size of a header-only packet (ACK, probe, control), bytes.
pub const CONTROL_PKT_BYTES: u32 = 40;

/// What role a packet plays. The simulator core only distinguishes these for
/// accounting; forwarding treats all kinds identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Application payload from sender to receiver.
    Data,
    /// Acknowledgment from receiver to sender.
    Ack,
    /// Header-only probe used by PASE/pFabric loss recovery and by PDQ's
    /// paused flows.
    Probe,
    /// Acknowledgment of a probe.
    ProbeAck,
    /// Control-plane message (PASE arbitration traffic).
    Ctrl,
}

impl PacketKind {
    /// True for packets flowing receiver → sender.
    pub fn is_reverse(self) -> bool {
        matches!(self, PacketKind::Ack | PacketKind::ProbeAck)
    }
}

/// A packet in flight or queued.
#[derive(Debug)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Destination host (or switch, for control messages addressed to an
    /// arbitrator co-located with a switch).
    pub dst: NodeId,
    /// Role of the packet.
    pub kind: PacketKind,
    /// For `Data`/`Probe`: byte offset of the first payload byte.
    /// For `Ack`/`ProbeAck`: cumulative acknowledgment (next expected byte).
    pub seq: u64,
    /// For `Ack`: the specific segment sequence being acknowledged
    /// (selective ack), if any. Lets senders with out-of-order delivery
    /// (pFabric) mark individual segments received.
    pub sack: Option<u64>,
    /// Application payload bytes carried (0 for header-only packets).
    pub payload_len: u32,
    /// Total size on the wire, including headers.
    pub wire_bytes: u32,
    /// Strict-priority band used by [`crate::queue::StrictPrioQdisc`];
    /// 0 is the highest priority.
    pub prio: u8,
    /// Fine-grained rank used by rank-scheduling queues (pFabric). Lower is
    /// more important. Unused by band-based queues.
    pub rank: u64,
    /// ECN-capable transport bit (ECT). Non-capable packets are dropped
    /// instead of marked by RED/ECN queues.
    pub ecn_capable: bool,
    /// Congestion-experienced mark (CE), set by queues.
    pub ecn_ce: bool,
    /// Echo of CE back to the sender (carried on ACKs, like TCP's ECE).
    pub ece: bool,
    /// Incarnation of the sending host when the packet entered its access
    /// port (stamped alongside `ts`). A host's incarnation bumps on every
    /// crash/restart cycle, so receivers can tell segments of a pre-crash
    /// flow incarnation from post-restart traffic and discard the former
    /// instead of corrupting the restarted flow's byte stream.
    pub incarnation: u32,
    /// Origin timestamp, stamped by the sending host when the packet first
    /// enters its access port. Switches never modify it.
    pub ts: SimTime,
    /// Echo of the `ts` of the packet being acknowledged (carried on ACKs,
    /// like TCP timestamps), so the sender can measure RTT without
    /// per-segment state.
    pub ts_echo: Option<SimTime>,
    /// Protocol-specific header extension (PDQ scheduling header, PASE
    /// arbitration payload, ...). `None` for plain transports.
    pub proto: Option<Box<dyn Any + Send>>,
    /// Payload corrupted in flight by a degraded link (gray failure). The
    /// destination's checksum detects it and discards the packet; the
    /// simulator charges it to the `corrupted` conservation term there.
    pub corrupted: bool,
}

impl Packet {
    /// Build a data packet of `payload_len` payload bytes.
    pub fn data(flow: FlowId, src: NodeId, dst: NodeId, seq: u64, payload_len: u32) -> Packet {
        Packet {
            flow,
            src,
            dst,
            kind: PacketKind::Data,
            seq,
            sack: None,
            payload_len,
            wire_bytes: payload_len + HEADER_BYTES,
            prio: 0,
            rank: 0,
            ecn_capable: true,
            ecn_ce: false,
            ece: false,
            incarnation: 0,
            ts: SimTime::ZERO,
            ts_echo: None,
            proto: None,
            corrupted: false,
        }
    }

    /// Build a (cumulative) ACK for `flow`, acknowledging everything below
    /// `cum_ack`.
    pub fn ack(flow: FlowId, src: NodeId, dst: NodeId, cum_ack: u64) -> Packet {
        Packet {
            flow,
            src,
            dst,
            kind: PacketKind::Ack,
            seq: cum_ack,
            sack: None,
            payload_len: 0,
            wire_bytes: CONTROL_PKT_BYTES,
            prio: 0,
            rank: 0,
            ecn_capable: false,
            ecn_ce: false,
            ece: false,
            incarnation: 0,
            ts: SimTime::ZERO,
            ts_echo: None,
            proto: None,
            corrupted: false,
        }
    }

    /// Build a header-only probe for byte offset `seq`.
    pub fn probe(flow: FlowId, src: NodeId, dst: NodeId, seq: u64) -> Packet {
        Packet {
            kind: PacketKind::Probe,
            ..Packet::data(flow, src, dst, seq, 0)
        }
    }

    /// Build the acknowledgment of a probe, echoing the receiver's
    /// cumulative-ack frontier.
    pub fn probe_ack(flow: FlowId, src: NodeId, dst: NodeId, cum_ack: u64) -> Packet {
        Packet {
            kind: PacketKind::ProbeAck,
            ..Packet::ack(flow, src, dst, cum_ack)
        }
    }

    /// Build a control packet carrying a protocol-specific payload.
    pub fn ctrl(flow: FlowId, src: NodeId, dst: NodeId, proto: Box<dyn Any + Send>) -> Packet {
        Packet {
            flow,
            src,
            dst,
            kind: PacketKind::Ctrl,
            seq: 0,
            sack: None,
            payload_len: 0,
            wire_bytes: CONTROL_PKT_BYTES,
            prio: 0,
            rank: 0,
            ecn_capable: false,
            ecn_ce: false,
            ece: false,
            incarnation: 0,
            ts: SimTime::ZERO,
            ts_echo: None,
            proto: Some(proto),
            corrupted: false,
        }
    }

    /// Downcast the protocol extension to a concrete type, if present.
    pub fn proto_ref<T: 'static>(&self) -> Option<&T> {
        self.proto.as_deref().and_then(|p| p.downcast_ref::<T>())
    }

    /// Mutably downcast the protocol extension, if present.
    pub fn proto_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.proto
            .as_deref_mut()
            .and_then(|p| p.downcast_mut::<T>())
    }

    /// Take the protocol extension out of the packet, downcast.
    pub fn take_proto<T: 'static>(&mut self) -> Option<Box<T>> {
        match self.proto.take() {
            None => None,
            Some(p) => match p.downcast::<T>() {
                Ok(t) => Some(t),
                Err(p) => {
                    self.proto = Some(p);
                    None
                }
            },
        }
    }

    /// The exclusive end of the byte range this data packet covers.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.payload_len as u64
    }
}

/// A filler packet written into a recycled box when its real contents are
/// moved out — never scheduled, never observed.
fn scratch_packet() -> Packet {
    Packet::data(FlowId(0), NodeId(0), NodeId(0), 0, 0)
}

/// Snapshot of a [`PacketArena`]'s counters, published into
/// [`crate::stats::StatsCollector`] when a simulation run returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Packets handed out over the arena's lifetime.
    pub allocated: u64,
    /// Allocations served from the free list instead of the global heap.
    pub recycled: u64,
    /// Boxes returned (released or taken) over the arena's lifetime.
    pub released: u64,
    /// High-water mark of simultaneously outstanding packets.
    pub peak_outstanding: u64,
}

/// Free-list recycler for `Box<Packet>` storage.
///
/// Injection sites allocate through the arena ([`PacketArena::alloc`]);
/// every terminal site — a drop, a blackhole, a delivery into an agent or
/// plugin — gives the box back ([`PacketArena::release`] /
/// [`PacketArena::take`]), so steady-state simulation recycles a small
/// working set of boxes instead of hitting the allocator once per packet.
///
/// The conservation oracle cross-checks `outstanding` against the packets
/// actually held in ports and on the wire, and
/// [`crate::sim::Simulation::run`] asserts it is zero when a run drains:
/// a leak (a path that forgets to release) is a test failure, not a slow
/// memory creep.
///
/// `outstanding` is signed: unit tests that hand-build `Box<Packet>`s and
/// feed them into arena-released paths drive it negative, which is
/// harmless — the zero-at-drain assertion only applies to full
/// simulations where every packet came from the arena.
#[derive(Debug, Default)]
pub struct PacketArena {
    // The boxes themselves are the recycled resource: allocations are
    // handed out as `Box<Packet>` (the event queue requires stable,
    // movable heap slots), so the free list must store them boxed.
    #[allow(clippy::vec_box)]
    free: Vec<Box<Packet>>,
    allocated: u64,
    recycled: u64,
    released: u64,
    outstanding: i64,
    peak_outstanding: i64,
}

/// Boxes kept for reuse; beyond this the storage goes back to the global
/// allocator. 2^16 boxes ≈ 9 MiB, far above any storm's in-network peak.
const FREE_LIST_CAP: usize = 1 << 16;

impl PacketArena {
    /// An empty arena.
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// Box `pkt`, reusing a recycled allocation when one is available.
    pub fn alloc(&mut self, pkt: Packet) -> Box<Packet> {
        self.allocated += 1;
        self.outstanding += 1;
        if self.outstanding > self.peak_outstanding {
            self.peak_outstanding = self.outstanding;
        }
        match self.free.pop() {
            Some(mut b) => {
                self.recycled += 1;
                *b = pkt;
                b
            }
            None => Box::new(pkt),
        }
    }

    /// Return a box whose packet is no longer needed (drop sites).
    pub fn release(&mut self, mut b: Box<Packet>) {
        self.released += 1;
        self.outstanding -= 1;
        if self.free.len() < FREE_LIST_CAP {
            // Drop the packet's owned data (`proto` box, ...) now rather
            // than pinning it until the box is reused or the arena drops.
            *b = scratch_packet();
            self.free.push(b);
        }
    }

    /// Move the packet out of its box and recycle the storage (delivery
    /// sites that hand the packet to an agent or plugin by value).
    pub fn take(&mut self, mut b: Box<Packet>) -> Packet {
        let pkt = core::mem::replace(&mut *b, scratch_packet());
        self.released += 1;
        self.outstanding -= 1;
        if self.free.len() < FREE_LIST_CAP {
            self.free.push(b);
        }
        pkt
    }

    /// Allocations minus releases: packets currently alive somewhere in
    /// the simulation (negative only under foreign-box unit tests; see
    /// the type docs).
    pub fn outstanding(&self) -> i64 {
        self.outstanding
    }

    /// Counter snapshot (peak clamped at zero for the foreign-box case).
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            allocated: self.allocated,
            recycled: self.recycled,
            released: self.released,
            peak_outstanding: self.peak_outstanding.max(0) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (FlowId, NodeId, NodeId) {
        (FlowId(1), NodeId(0), NodeId(1))
    }

    #[test]
    fn arena_recycles_boxes_and_balances_counters() {
        let (f, a, b) = ids();
        let mut arena = PacketArena::new();
        let p1 = arena.alloc(Packet::data(f, a, b, 0, 1000));
        let p2 = arena.alloc(Packet::ack(f, b, a, 1000));
        assert_eq!(arena.outstanding(), 2);
        arena.release(p1);
        let taken = arena.take(p2);
        assert_eq!((taken.kind, taken.seq), (PacketKind::Ack, 1000));
        assert_eq!(arena.outstanding(), 0);
        // Both boxes are on the free list now: the next two allocs reuse
        // them and the contents are fully overwritten.
        let p3 = arena.alloc(Packet::data(f, a, b, 500, 777));
        assert_eq!((p3.seq, p3.payload_len), (500, 777));
        let _p4 = arena.alloc(Packet::probe(f, a, b, 9));
        let st = arena.stats();
        assert_eq!(st.allocated, 4);
        assert_eq!(st.recycled, 2);
        assert_eq!(st.released, 2);
        assert_eq!(st.peak_outstanding, 2);
        assert_eq!(arena.outstanding(), 2);
    }

    #[test]
    fn release_drops_owned_payload_immediately() {
        use std::sync::Arc;
        let (f, a, b) = ids();
        let mut arena = PacketArena::new();
        let marker = Arc::new(());
        let pkt = arena.alloc(Packet::ctrl(f, a, b, Box::new(Arc::clone(&marker))));
        assert_eq!(Arc::strong_count(&marker), 2);
        arena.release(pkt);
        assert_eq!(
            Arc::strong_count(&marker),
            1,
            "released packet's proto payload must drop at release, not at box reuse"
        );
    }

    #[test]
    fn arena_tolerates_foreign_boxes() {
        let (f, a, b) = ids();
        let mut arena = PacketArena::new();
        arena.release(Box::new(Packet::data(f, a, b, 0, 1)));
        assert_eq!(arena.outstanding(), -1);
        assert_eq!(arena.stats().peak_outstanding, 0);
    }

    #[test]
    fn data_packet_sizes() {
        let (f, a, b) = ids();
        let p = Packet::data(f, a, b, 0, 1460);
        assert_eq!(p.wire_bytes, 1500);
        assert_eq!(p.payload_len, 1460);
        assert_eq!(p.seq_end(), 1460);
        assert!(p.ecn_capable);
        assert_eq!(p.kind, PacketKind::Data);
    }

    #[test]
    fn ack_packet_is_header_only() {
        let (f, a, b) = ids();
        let p = Packet::ack(f, b, a, 2920);
        assert_eq!(p.wire_bytes, CONTROL_PKT_BYTES);
        assert_eq!(p.seq, 2920);
        assert!(p.kind.is_reverse());
    }

    #[test]
    fn probe_packet_is_header_only_data_direction() {
        let (f, a, b) = ids();
        let p = Packet::probe(f, a, b, 100);
        assert_eq!(p.payload_len, 0);
        assert_eq!(p.wire_bytes, HEADER_BYTES);
        assert!(!p.kind.is_reverse());
    }

    #[test]
    fn proto_extension_downcast() {
        #[derive(Debug, PartialEq)]
        struct Hdr {
            x: u32,
        }
        let (f, a, b) = ids();
        let mut p = Packet::ctrl(f, a, b, Box::new(Hdr { x: 7 }));
        assert_eq!(p.proto_ref::<Hdr>().unwrap().x, 7);
        p.proto_mut::<Hdr>().unwrap().x = 9;
        // Wrong type: downcast fails but payload is preserved.
        assert!(p.take_proto::<u64>().is_none());
        assert!(p.proto.is_some());
        let h = p.take_proto::<Hdr>().unwrap();
        assert_eq!(*h, Hdr { x: 9 });
        assert!(p.proto.is_none());
    }
}
