//! The node sum type dispatched by the engine.

use crate::engine::Ctx;
use crate::event::EventKind;
use crate::host::Host;
use crate::ids::NodeId;
use crate::switch::Switch;

/// A node in the simulated network.
///
/// `Host` is larger than `Switch`, but nodes are constructed once into
/// the topology vector and never moved afterwards, so the size skew
/// costs nothing; boxing the host would add a pointer chase to every
/// event dispatch instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Node {
    /// An end host running flow agents.
    Host(Host),
    /// A store-and-forward switch.
    Switch(Switch),
}

impl Node {
    /// The node's id.
    pub fn id(&self) -> NodeId {
        match self {
            Node::Host(h) => h.id(),
            Node::Switch(s) => s.id(),
        }
    }

    /// Whether this node is a host.
    pub fn is_host(&self) -> bool {
        matches!(self, Node::Host(_))
    }

    /// Dispatch an event.
    pub fn handle(&mut self, kind: EventKind, ctx: &mut Ctx<'_>) {
        match self {
            Node::Host(h) => h.handle(kind, ctx),
            Node::Switch(s) => s.handle(kind, ctx),
        }
    }

    /// Borrow as a host, panicking otherwise.
    pub fn as_host_mut(&mut self) -> &mut Host {
        match self {
            Node::Host(h) => h,
            Node::Switch(s) => panic!("node {} is a switch, not a host", s.id()),
        }
    }

    /// Borrow as a switch, panicking otherwise.
    pub fn as_switch_mut(&mut self) -> &mut Switch {
        match self {
            Node::Switch(s) => s,
            Node::Host(h) => panic!("node {} is a host, not a switch", h.id()),
        }
    }
}
