//! Output ports.
//!
//! A [`Port`] is the transmit side of one unidirectional link: a queue
//! discipline feeding a serializer of fixed rate, followed by fixed
//! propagation delay. The simulator is store-and-forward: a packet is
//! delivered to the peer `serialization + propagation` after it reaches the
//! head of the queue.

use crate::engine::Ctx;
use crate::event::EventKind;
use crate::ids::{NodeId, PortId};
use crate::packet::{Packet, PacketKind};
use crate::queue::{Enqueued, Qdisc, QdiscStats};
use crate::time::{Rate, SimDuration};

/// The transmit side of a link.
pub struct Port {
    /// This port's index on its owning node.
    pub id: PortId,
    /// The node at the far end of the link.
    pub peer: NodeId,
    /// Link capacity.
    pub rate: Rate,
    /// One-way propagation delay.
    pub delay: SimDuration,
    qdisc: Box<dyn Qdisc>,
    /// The packet currently being serialized, if any.
    in_flight: Option<Box<Packet>>,
    /// Whether the link is up. Downed ports drop everything offered to
    /// them (see [`Port::set_down`]).
    up: bool,
    /// Packets transmitted onto the wire.
    pub tx_pkts: u64,
    /// Bytes transmitted onto the wire.
    pub tx_bytes: u64,
    /// Fault directives applied to this port (down, up, ctrl bursts).
    pub faults_injected: u64,
    /// Packets dropped because the link was down (flushed, rejected on
    /// arrival, or caught mid-serialization).
    pub drops_while_down: u64,
}

impl Port {
    /// Create a port with the given link parameters and queue discipline.
    pub fn new(
        id: PortId,
        peer: NodeId,
        rate: Rate,
        delay: SimDuration,
        qdisc: Box<dyn Qdisc>,
    ) -> Port {
        assert!(!rate.is_zero(), "link rate must be positive");
        Port {
            id,
            peer,
            rate,
            delay,
            qdisc,
            in_flight: None,
            up: true,
            tx_pkts: 0,
            tx_bytes: 0,
            faults_injected: 0,
            drops_while_down: 0,
        }
    }

    /// Offer a packet to this port: enqueue it and, if the serializer is
    /// idle, begin transmission. Drops are recorded in `ctx.stats`.
    /// Everything offered to a downed port is dropped (and counted).
    pub fn send(&mut self, pkt: Box<Packet>, ctx: &mut Ctx<'_>) {
        if !self.up {
            self.drops_while_down += 1;
            Self::record_drop(&pkt, ctx);
            return;
        }
        let is_data = pkt.kind == PacketKind::Data;
        match self.qdisc.enqueue(pkt, ctx.now()) {
            Enqueued::Ok => {
                if is_data {
                    ctx.stats.note_data_enqueued();
                }
            }
            Enqueued::RejectedArrival(dropped) => {
                Self::record_drop(&dropped, ctx);
            }
            Enqueued::Evicted(victim) => {
                // The arrival was accepted; a resident was pushed out.
                if is_data {
                    ctx.stats.note_data_enqueued();
                }
                Self::record_drop(&victim, ctx);
            }
        }
        if self.in_flight.is_none() {
            self.start_tx(ctx);
        }
    }

    /// Count and trace one dropped packet.
    fn record_drop(pkt: &Packet, ctx: &mut Ctx<'_>) {
        ctx.stats.note_drop(pkt);
        if ctx.stats.tracing() {
            let now = ctx.now();
            ctx.stats.trace_event(
                now,
                &crate::trace::TraceEvent::Drop {
                    flow: pkt.flow,
                    kind: pkt.kind,
                    seq: pkt.seq,
                },
            );
        }
    }

    /// Take the link down: flush and drop everything queued; reject all
    /// future arrivals until [`Port::set_up`]. A packet currently being
    /// serialized is dropped when its `TxComplete` fires.
    pub fn set_down(&mut self, ctx: &mut Ctx<'_>) {
        self.faults_injected += 1;
        self.up = false;
        let now = ctx.now();
        while let Some(pkt) = self.qdisc.dequeue(now) {
            self.drops_while_down += 1;
            Self::record_drop(&pkt, ctx);
        }
    }

    /// Bring the link back up. The queue is empty at this point (down
    /// ports reject arrivals), so transmission resumes with the next
    /// offered packet.
    pub fn set_up(&mut self) {
        self.faults_injected += 1;
        self.up = true;
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Drop the next `n` control packets offered to this port, by
    /// wrapping the queue discipline in a burst-mode
    /// [`crate::queue::LossyQdisc`]. A spent wrapper is a transparent
    /// pass-through.
    pub fn inject_ctrl_loss_burst(&mut self, n: u64) {
        use crate::queue::{DropTailQdisc, LossyQdisc};
        self.faults_injected += 1;
        // Momentary placeholder while the real qdisc is wrapped.
        let inner = core::mem::replace(&mut self.qdisc, Box::new(DropTailQdisc::new(1)));
        self.qdisc = Box::new(LossyQdisc::drop_burst_for_kind(
            inner,
            1,
            n,
            PacketKind::Ctrl,
        ));
    }

    /// Begin serializing the next queued packet, if any.
    /// Schedules a [`EventKind::TxComplete`] for this port.
    fn start_tx(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert!(self.in_flight.is_none());
        if let Some(pkt) = self.qdisc.dequeue(ctx.now()) {
            let tx_time = self.rate.tx_time(pkt.wire_bytes as u64);
            self.in_flight = Some(pkt);
            ctx.schedule_self(tx_time, EventKind::TxComplete(self.id));
        }
    }

    /// Handle the completion of serialization: put the packet on the wire
    /// (schedule delivery at the peer after propagation) and start on the
    /// next queued packet. If the link went down mid-serialization, the
    /// packet dies here instead of being delivered.
    pub fn on_tx_complete(&mut self, ctx: &mut Ctx<'_>) {
        let pkt = self
            .in_flight
            .take()
            .expect("TxComplete with no in-flight packet");
        if !self.up {
            self.drops_while_down += 1;
            Self::record_drop(&pkt, ctx);
            return;
        }
        self.tx_pkts += 1;
        self.tx_bytes += pkt.wire_bytes as u64;
        if ctx.stats.tracing() {
            let now = ctx.now();
            let ev = crate::trace::tx_event(ctx.node, self.id, &pkt);
            ctx.stats.trace_event(now, &ev);
        }
        ctx.schedule(self.delay, self.peer, EventKind::Deliver(pkt));
        self.start_tx(ctx);
    }

    /// Queue occupancy in packets (excluding the in-flight packet).
    pub fn queue_len_pkts(&self) -> usize {
        self.qdisc.len_pkts()
    }

    /// Queue occupancy in bytes (excluding the in-flight packet).
    pub fn queue_len_bytes(&self) -> u64 {
        self.qdisc.len_bytes()
    }

    /// Is the serializer currently busy?
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Visit every packet currently held by this port: queued in the
    /// qdisc plus the one being serialized, if any. Used by the
    /// [`crate::invariants`] conservation walk to count in-network
    /// packets.
    pub fn for_each_held(&self, f: &mut dyn FnMut(&Packet)) {
        self.qdisc.for_each_queued(f);
        if let Some(p) = &self.in_flight {
            f(p);
        }
    }

    /// Queue-discipline counters.
    pub fn qdisc_stats(&self) -> QdiscStats {
        self.qdisc.stats()
    }

    /// Fraction of the interval `[0, now]` this link spent transmitting
    /// (computed from bytes actually serialized; 0.0 when `now` is zero).
    pub fn utilization(&self, now: crate::time::SimTime) -> f64 {
        let elapsed = now.as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let busy = self.rate.tx_time(self.tx_bytes).as_secs_f64();
        (busy / elapsed).min(1.0)
    }
}

impl core::fmt::Debug for Port {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Port")
            .field("id", &self.id)
            .field("peer", &self.peer)
            .field("rate", &self.rate)
            .field("delay", &self.delay)
            .field("queued_pkts", &self.qdisc.len_pkts())
            .field("busy", &self.is_busy())
            .field("up", &self.up)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Scheduler;
    use crate::ids::FlowId;
    use crate::queue::DropTailQdisc;
    use crate::stats::StatsCollector;
    use crate::time::SimTime;

    fn mk_port() -> Port {
        Port::new(
            PortId(0),
            NodeId(1),
            Rate::from_gbps(1),
            SimDuration::from_micros(10),
            Box::new(DropTailQdisc::new(4)),
        )
    }

    fn data(flow: u64) -> Box<Packet> {
        Box::new(Packet::data(FlowId(flow), NodeId(0), NodeId(1), 0, 1460))
    }

    #[test]
    fn serialization_then_propagation() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.send(data(0), &mut ctx);
        }
        assert!(port.is_busy());
        // 1500 B at 1 Gbps = 12 us serialization.
        let (target, kind) = sched.pop().unwrap();
        assert_eq!(sched.now(), SimTime::from_micros(12));
        assert_eq!(target, NodeId(0));
        assert!(matches!(kind, EventKind::TxComplete(PortId(0))));
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.on_tx_complete(&mut ctx);
        }
        // Delivery at peer 10 us later.
        let (target, kind) = sched.pop().unwrap();
        assert_eq!(sched.now(), SimTime::from_micros(22));
        assert_eq!(target, NodeId(1));
        assert!(matches!(kind, EventKind::Deliver(_)));
        assert_eq!(port.tx_pkts, 1);
        assert_eq!(port.tx_bytes, 1500);
    }

    #[test]
    fn back_to_back_packets_pipeline() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.send(data(0), &mut ctx);
            port.send(data(1), &mut ctx);
        }
        // First TxComplete at 12 us; the second packet starts then.
        let (_, _) = sched.pop().unwrap();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.on_tx_complete(&mut ctx);
        }
        assert!(port.is_busy());
        // Events now pending: Deliver(pkt0) at 22us, TxComplete(pkt1) at 24us.
        let mut times = vec![];
        while let Some((_, _)) = sched.pop() {
            times.push(sched.now());
        }
        assert_eq!(
            times,
            vec![SimTime::from_micros(22), SimTime::from_micros(24)]
        );
    }

    #[test]
    fn utilization_reflects_bytes_sent() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.send(data(0), &mut ctx);
        }
        // Complete the transmission (12 us of busy time at 1 Gbps).
        sched.pop().unwrap();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.on_tx_complete(&mut ctx);
        }
        // Over a 24 us window the link was busy half the time.
        let u = port.utilization(SimTime::from_micros(24));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
        assert_eq!(port.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn overflow_is_counted() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port(); // queue cap 4 (+1 in flight)
        let mut ctx = Ctx {
            node: NodeId(0),
            sched: &mut sched,
            stats: &mut stats,
        };
        for i in 0..6 {
            port.send(data(i), &mut ctx);
        }
        // 1 in flight + 4 queued; the 6th is dropped.
        assert_eq!(port.queue_len_pkts(), 4);
        assert_eq!(stats.data_pkts_dropped, 1);
        assert_eq!(stats.data_pkts_enqueued, 5);
    }

    #[test]
    fn down_port_flushes_and_rejects() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        let mut ctx = Ctx {
            node: NodeId(0),
            sched: &mut sched,
            stats: &mut stats,
        };
        port.send(data(0), &mut ctx); // in flight
        port.send(data(1), &mut ctx); // queued
        port.set_down(&mut ctx);
        assert!(!port.is_up());
        // The queued packet was flushed; the in-flight one still pending.
        assert_eq!(port.queue_len_pkts(), 0);
        assert_eq!(port.drops_while_down, 1);
        // New arrivals are rejected outright.
        port.send(data(2), &mut ctx);
        assert_eq!(port.drops_while_down, 2);
        assert_eq!(port.faults_injected, 1);
    }

    #[test]
    fn in_flight_packet_dies_if_link_drops_mid_serialization() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.send(data(0), &mut ctx);
            port.set_down(&mut ctx);
        }
        // The TxComplete fires, but the packet must not be delivered.
        let (_, kind) = sched.pop().unwrap();
        assert!(matches!(kind, EventKind::TxComplete(_)));
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.on_tx_complete(&mut ctx);
        }
        assert!(sched.pop().is_none(), "no delivery while down");
        assert_eq!(port.tx_pkts, 0);
        assert_eq!(port.drops_while_down, 1);
    }

    #[test]
    fn link_recovers_after_set_up() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        let mut ctx = Ctx {
            node: NodeId(0),
            sched: &mut sched,
            stats: &mut stats,
        };
        port.set_down(&mut ctx);
        port.send(data(0), &mut ctx);
        assert_eq!(port.drops_while_down, 1);
        port.set_up();
        assert!(port.is_up());
        port.send(data(1), &mut ctx);
        assert!(port.is_busy(), "transmission resumes after recovery");
        assert_eq!(port.faults_injected, 2);
    }
}
