//! Output ports.
//!
//! A [`Port`] is the transmit side of one unidirectional link: a queue
//! discipline feeding a serializer of fixed rate, followed by fixed
//! propagation delay. The simulator is store-and-forward: a packet is
//! delivered to the peer `serialization + propagation` after it reaches the
//! head of the queue.

use crate::engine::Ctx;
use crate::event::EventKind;
use crate::fault::DegradeProfile;
use crate::ids::{NodeId, PortId};
use crate::packet::{Packet, PacketKind};
use crate::queue::{Enqueued, Qdisc, QdiscStats};
use crate::rng::Rng;
use crate::time::{Rate, SimDuration};

/// Ports with an EWMA health score below this are considered degraded by
/// health-aware routing (see [`crate::switch`]). A healthy port's TX path
/// never observes loss or corruption (congestion drops happen in the
/// qdisc, before serialization), so its score is exactly 1.0; a single
/// observed gray event dips below this floor and sustained clean traffic
/// climbs back above it.
pub const HEALTHY_THRESHOLD: f64 = 0.9;

/// EWMA gain for a bad TX sample (loss or corruption): fast detection.
const HEALTH_GAIN_BAD: f64 = 1.0 / 8.0;
/// EWMA gain for a clean TX sample: slow forgiveness, so a port must
/// sustain clean traffic for ~100 packets before being trusted again.
const HEALTH_GAIN_GOOD: f64 = 1.0 / 512.0;

/// Live degradation state of a gray-failing port: the profile plus the
/// per-direction RNG its misbehaviour is drawn from. Created when the
/// degrade directive lands, dropped on restore — healthy ports carry no
/// RNG and consume no randomness.
#[derive(Debug)]
struct DegradeState {
    profile: DegradeProfile,
    rng: Rng,
}

/// The transmit side of a link.
pub struct Port {
    /// This port's index on its owning node.
    pub id: PortId,
    /// The node at the far end of the link.
    pub peer: NodeId,
    /// Link capacity.
    pub rate: Rate,
    /// One-way propagation delay.
    pub delay: SimDuration,
    qdisc: Box<dyn Qdisc>,
    /// The packet currently being serialized, if any.
    in_flight: Option<Box<Packet>>,
    /// Whether the link is up. Downed ports drop everything offered to
    /// them (see [`Port::set_down`]).
    up: bool,
    /// Packets transmitted onto the wire.
    pub tx_pkts: u64,
    /// Bytes transmitted onto the wire.
    pub tx_bytes: u64,
    /// Fault directives applied to this port (down, up, ctrl bursts).
    pub faults_injected: u64,
    /// Packets dropped because the link was down (flushed, rejected on
    /// arrival, or caught mid-serialization).
    pub drops_while_down: u64,
    /// Gray-failure state while the link is degraded.
    degrade: Option<DegradeState>,
    /// Packets lost to link degradation (drawn at TX; part of the
    /// synthetic-loss counter family together with
    /// [`crate::queue::QdiscStats::forced_drops`]).
    pub degrade_drops: u64,
    /// Packets corrupted by link degradation (stamped at TX, discarded by
    /// the destination's checksum).
    pub degrade_corrupts: u64,
    /// EWMA health score over TX outcomes: 1.0 = pristine, dips on every
    /// observed loss/corruption. See [`HEALTHY_THRESHOLD`].
    health: f64,
}

impl Port {
    /// Create a port with the given link parameters and queue discipline.
    pub fn new(
        id: PortId,
        peer: NodeId,
        rate: Rate,
        delay: SimDuration,
        qdisc: Box<dyn Qdisc>,
    ) -> Port {
        assert!(!rate.is_zero(), "link rate must be positive");
        Port {
            id,
            peer,
            rate,
            delay,
            qdisc,
            in_flight: None,
            up: true,
            tx_pkts: 0,
            tx_bytes: 0,
            faults_injected: 0,
            drops_while_down: 0,
            degrade: None,
            degrade_drops: 0,
            degrade_corrupts: 0,
            health: 1.0,
        }
    }

    /// Offer a packet to this port: enqueue it and, if the serializer is
    /// idle, begin transmission. Drops are recorded in `ctx.stats`.
    /// Everything offered to a downed port is dropped (and counted).
    pub fn send(&mut self, pkt: Box<Packet>, ctx: &mut Ctx<'_>) {
        if !self.up {
            self.drops_while_down += 1;
            Self::record_drop(&pkt, ctx);
            ctx.release_packet(pkt);
            return;
        }
        let is_data = pkt.kind == PacketKind::Data;
        match self.qdisc.enqueue(pkt, ctx.now()) {
            Enqueued::Ok => {
                if is_data {
                    ctx.stats.note_data_enqueued();
                }
            }
            Enqueued::RejectedArrival(dropped) => {
                Self::record_drop(&dropped, ctx);
                ctx.release_packet(dropped);
            }
            Enqueued::Evicted(victim) => {
                // The arrival was accepted; a resident was pushed out.
                if is_data {
                    ctx.stats.note_data_enqueued();
                }
                Self::record_drop(&victim, ctx);
                ctx.release_packet(victim);
            }
        }
        if self.in_flight.is_none() {
            self.start_tx(ctx);
        }
    }

    /// Count and trace one dropped packet.
    fn record_drop(pkt: &Packet, ctx: &mut Ctx<'_>) {
        ctx.stats.note_drop(pkt);
        if ctx.stats.tracing() {
            let now = ctx.now();
            ctx.stats.trace_event(
                now,
                &crate::trace::TraceEvent::Drop {
                    flow: pkt.flow,
                    kind: pkt.kind,
                    seq: pkt.seq,
                },
            );
        }
    }

    /// Take the link down: flush and drop everything queued; reject all
    /// future arrivals until [`Port::set_up`]. A packet currently being
    /// serialized is dropped when its `TxComplete` fires.
    pub fn set_down(&mut self, ctx: &mut Ctx<'_>) {
        self.faults_injected += 1;
        self.up = false;
        let now = ctx.now();
        while let Some(pkt) = self.qdisc.dequeue(now) {
            self.drops_while_down += 1;
            Self::record_drop(&pkt, ctx);
            ctx.release_packet(pkt);
        }
    }

    /// Bring the link back up. The queue is empty at this point (down
    /// ports reject arrivals), so transmission resumes with the next
    /// offered packet.
    pub fn set_up(&mut self) {
        self.faults_injected += 1;
        self.up = true;
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Drop the next `n` control packets offered to this port, by
    /// wrapping the queue discipline in a burst-mode
    /// [`crate::queue::LossyQdisc`]. A spent wrapper is a transparent
    /// pass-through.
    pub fn inject_ctrl_loss_burst(&mut self, n: u64) {
        use crate::queue::{DropTailQdisc, LossyQdisc};
        self.faults_injected += 1;
        // Momentary placeholder while the real qdisc is wrapped.
        let inner = core::mem::replace(&mut self.qdisc, Box::new(DropTailQdisc::new(1)));
        self.qdisc = Box::new(LossyQdisc::drop_burst_for_kind(
            inner,
            1,
            n,
            PacketKind::Ctrl,
        ));
    }

    /// Degrade this port per `profile` (gray failure). `node` is the
    /// owning node, used to salt the profile seed so the two directions
    /// of a link draw independent deterministic sequences.
    pub fn set_degraded(&mut self, node: NodeId, profile: DegradeProfile) {
        self.faults_injected += 1;
        let salt = splitmix(((node.0 as u64) << 32) | self.id.0 as u64);
        self.degrade = Some(DegradeState {
            profile,
            rng: Rng::seed_from_u64(profile.seed ^ salt),
        });
    }

    /// Restore this port to nominal behaviour. The health score is left
    /// where the degradation pushed it and recovers through clean TX
    /// samples, so health-aware routing observes the recovery rather
    /// than being told about it.
    pub fn set_restored(&mut self) {
        self.faults_injected += 1;
        self.degrade = None;
    }

    /// Whether the port is currently degraded.
    pub fn is_degraded(&self) -> bool {
        self.degrade.is_some()
    }

    /// Current EWMA health score (1.0 = pristine).
    pub fn health(&self) -> f64 {
        self.health
    }

    /// Whether the health score is above [`HEALTHY_THRESHOLD`].
    pub fn is_healthy(&self) -> bool {
        self.health >= HEALTHY_THRESHOLD
    }

    /// Total synthetic (fault-injected) losses on this port: degrade
    /// losses plus any forced drops from a wrapping
    /// [`crate::queue::LossyQdisc`]. One counter family for every loss
    /// that is *not* congestion.
    pub fn synthetic_drops(&self) -> u64 {
        self.degrade_drops + self.qdisc.stats().forced_drops
    }

    /// Fold one TX outcome into the EWMA health score.
    fn note_health_sample(&mut self, clean: bool) {
        if clean {
            if self.health < 1.0 {
                self.health += (1.0 - self.health) * HEALTH_GAIN_GOOD;
            }
        } else {
            self.health *= 1.0 - HEALTH_GAIN_BAD;
        }
    }

    /// Begin serializing the next queued packet, if any.
    /// Schedules a [`EventKind::TxComplete`] for this port.
    fn start_tx(&mut self, ctx: &mut Ctx<'_>) {
        debug_assert!(self.in_flight.is_none());
        if let Some(pkt) = self.qdisc.dequeue(ctx.now()) {
            let tx_time = self.rate.tx_time(pkt.wire_bytes as u64);
            self.in_flight = Some(pkt);
            ctx.schedule_self(tx_time, EventKind::TxComplete(self.id));
        }
    }

    /// Handle the completion of serialization: put the packet on the wire
    /// (schedule delivery at the peer after propagation) and start on the
    /// next queued packet. If the link went down mid-serialization, the
    /// packet dies here instead of being delivered. A degraded link may
    /// lose the packet, corrupt it, or inflate its propagation delay.
    pub fn on_tx_complete(&mut self, ctx: &mut Ctx<'_>) {
        let mut pkt = self
            .in_flight
            .take()
            .expect("TxComplete with no in-flight packet");
        if !self.up {
            self.drops_while_down += 1;
            Self::record_drop(&pkt, ctx);
            ctx.release_packet(pkt);
            return;
        }
        // Gray-failure draws, in a fixed per-packet order (loss, then
        // corruption, then jitter) so replays are byte-identical.
        let mut extra_delay = SimDuration::ZERO;
        let mut corrupt = false;
        if let Some(deg) = &mut self.degrade {
            let p = deg.profile;
            if p.loss_ppm > 0 && deg.rng.gen_below(1_000_000) < p.loss_ppm as u64 {
                self.degrade_drops += 1;
                self.note_health_sample(false);
                Self::record_drop(&pkt, ctx);
                ctx.release_packet(pkt);
                self.start_tx(ctx);
                return;
            }
            corrupt = p.corrupt_ppm > 0 && deg.rng.gen_below(1_000_000) < p.corrupt_ppm as u64;
            let jitter = if p.jitter_ns > 0 {
                deg.rng.gen_below(p.jitter_ns as u64 + 1)
            } else {
                0
            };
            extra_delay = SimDuration::from_nanos(p.extra_delay_ns as u64 + jitter);
        }
        if corrupt {
            self.degrade_corrupts += 1;
            pkt.corrupted = true;
        }
        self.note_health_sample(!corrupt);
        self.tx_pkts += 1;
        self.tx_bytes += pkt.wire_bytes as u64;
        if ctx.stats.tracing() {
            let now = ctx.now();
            let ev = crate::trace::tx_event(ctx.node, self.id, &pkt);
            ctx.stats.trace_event(now, &ev);
        }
        ctx.schedule(self.delay + extra_delay, self.peer, EventKind::Deliver(pkt));
        self.start_tx(ctx);
    }

    /// Queue occupancy in packets (excluding the in-flight packet).
    pub fn queue_len_pkts(&self) -> usize {
        self.qdisc.len_pkts()
    }

    /// Queue occupancy in bytes (excluding the in-flight packet).
    pub fn queue_len_bytes(&self) -> u64 {
        self.qdisc.len_bytes()
    }

    /// Is the serializer currently busy?
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Visit every packet currently held by this port: queued in the
    /// qdisc plus the one being serialized, if any. Used by the
    /// [`crate::invariants`] conservation walk to count in-network
    /// packets.
    pub fn for_each_held(&self, f: &mut dyn FnMut(&Packet)) {
        self.qdisc.for_each_queued(f);
        if let Some(p) = &self.in_flight {
            f(p);
        }
    }

    /// Queue-discipline counters.
    pub fn qdisc_stats(&self) -> QdiscStats {
        self.qdisc.stats()
    }

    /// Fraction of the interval `[0, now]` this link spent transmitting
    /// (computed from bytes actually serialized; 0.0 when `now` is zero).
    pub fn utilization(&self, now: crate::time::SimTime) -> f64 {
        let elapsed = now.as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let busy = self.rate.tx_time(self.tx_bytes).as_secs_f64();
        (busy / elapsed).min(1.0)
    }
}

/// splitmix64 finalizer: salts the degrade seed with the port identity.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl core::fmt::Debug for Port {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Port")
            .field("id", &self.id)
            .field("peer", &self.peer)
            .field("rate", &self.rate)
            .field("delay", &self.delay)
            .field("queued_pkts", &self.qdisc.len_pkts())
            .field("busy", &self.is_busy())
            .field("up", &self.up)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Scheduler;
    use crate::ids::FlowId;
    use crate::queue::DropTailQdisc;
    use crate::stats::StatsCollector;
    use crate::time::SimTime;

    fn mk_port() -> Port {
        Port::new(
            PortId(0),
            NodeId(1),
            Rate::from_gbps(1),
            SimDuration::from_micros(10),
            Box::new(DropTailQdisc::new(4)),
        )
    }

    fn data(flow: u64) -> Box<Packet> {
        Box::new(Packet::data(FlowId(flow), NodeId(0), NodeId(1), 0, 1460))
    }

    #[test]
    fn serialization_then_propagation() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.send(data(0), &mut ctx);
        }
        assert!(port.is_busy());
        // 1500 B at 1 Gbps = 12 us serialization.
        let (target, kind) = sched.pop().unwrap();
        assert_eq!(sched.now(), SimTime::from_micros(12));
        assert_eq!(target, NodeId(0));
        assert!(matches!(kind, EventKind::TxComplete(PortId(0))));
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.on_tx_complete(&mut ctx);
        }
        // Delivery at peer 10 us later.
        let (target, kind) = sched.pop().unwrap();
        assert_eq!(sched.now(), SimTime::from_micros(22));
        assert_eq!(target, NodeId(1));
        assert!(matches!(kind, EventKind::Deliver(_)));
        assert_eq!(port.tx_pkts, 1);
        assert_eq!(port.tx_bytes, 1500);
    }

    #[test]
    fn back_to_back_packets_pipeline() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.send(data(0), &mut ctx);
            port.send(data(1), &mut ctx);
        }
        // First TxComplete at 12 us; the second packet starts then.
        let (_, _) = sched.pop().unwrap();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.on_tx_complete(&mut ctx);
        }
        assert!(port.is_busy());
        // Events now pending: Deliver(pkt0) at 22us, TxComplete(pkt1) at 24us.
        let mut times = vec![];
        while let Some((_, _)) = sched.pop() {
            times.push(sched.now());
        }
        assert_eq!(
            times,
            vec![SimTime::from_micros(22), SimTime::from_micros(24)]
        );
    }

    #[test]
    fn utilization_reflects_bytes_sent() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.send(data(0), &mut ctx);
        }
        // Complete the transmission (12 us of busy time at 1 Gbps).
        sched.pop().unwrap();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.on_tx_complete(&mut ctx);
        }
        // Over a 24 us window the link was busy half the time.
        let u = port.utilization(SimTime::from_micros(24));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
        assert_eq!(port.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn overflow_is_counted() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port(); // queue cap 4 (+1 in flight)
        let mut ctx = Ctx {
            node: NodeId(0),
            sched: &mut sched,
            stats: &mut stats,
        };
        for i in 0..6 {
            port.send(data(i), &mut ctx);
        }
        // 1 in flight + 4 queued; the 6th is dropped.
        assert_eq!(port.queue_len_pkts(), 4);
        assert_eq!(stats.data_pkts_dropped, 1);
        assert_eq!(stats.data_pkts_enqueued, 5);
    }

    #[test]
    fn down_port_flushes_and_rejects() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        let mut ctx = Ctx {
            node: NodeId(0),
            sched: &mut sched,
            stats: &mut stats,
        };
        port.send(data(0), &mut ctx); // in flight
        port.send(data(1), &mut ctx); // queued
        port.set_down(&mut ctx);
        assert!(!port.is_up());
        // The queued packet was flushed; the in-flight one still pending.
        assert_eq!(port.queue_len_pkts(), 0);
        assert_eq!(port.drops_while_down, 1);
        // New arrivals are rejected outright.
        port.send(data(2), &mut ctx);
        assert_eq!(port.drops_while_down, 2);
        assert_eq!(port.faults_injected, 1);
    }

    #[test]
    fn in_flight_packet_dies_if_link_drops_mid_serialization() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.send(data(0), &mut ctx);
            port.set_down(&mut ctx);
        }
        // The TxComplete fires, but the packet must not be delivered.
        let (_, kind) = sched.pop().unwrap();
        assert!(matches!(kind, EventKind::TxComplete(_)));
        {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.on_tx_complete(&mut ctx);
        }
        assert!(sched.pop().is_none(), "no delivery while down");
        assert_eq!(port.tx_pkts, 0);
        assert_eq!(port.drops_while_down, 1);
    }

    /// Drive `n` packets through the port, returning how many deliveries
    /// were scheduled and at what times.
    fn drive(port: &mut Port, n: u64) -> Vec<SimTime> {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut deliveries = vec![];
        for i in 0..n {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut sched,
                stats: &mut stats,
            };
            port.send(data(i), &mut ctx);
            while let Some((target, kind)) = sched.pop() {
                match kind {
                    EventKind::TxComplete(_) => {
                        let mut ctx = Ctx {
                            node: NodeId(0),
                            sched: &mut sched,
                            stats: &mut stats,
                        };
                        port.on_tx_complete(&mut ctx);
                    }
                    EventKind::Deliver(_) => {
                        assert_eq!(target, NodeId(1));
                        deliveries.push(sched.now());
                    }
                    _ => {}
                }
            }
        }
        deliveries
    }

    fn heavy_profile(seed: u64) -> crate::fault::DegradeProfile {
        crate::fault::DegradeProfile {
            seed,
            loss_ppm: 250_000,    // 25 %
            corrupt_ppm: 250_000, // 25 % of survivors
            extra_delay_ns: 0,
            jitter_ns: 0,
        }
    }

    #[test]
    fn degraded_port_loses_and_corrupts_deterministically() {
        let mut a = mk_port();
        let mut b = mk_port();
        a.set_degraded(NodeId(0), heavy_profile(42));
        b.set_degraded(NodeId(0), heavy_profile(42));
        let da = drive(&mut a, 400);
        let db = drive(&mut b, 400);
        assert_eq!(da, db, "same seed, same behaviour");
        assert_eq!(a.degrade_drops, b.degrade_drops);
        assert_eq!(a.degrade_corrupts, b.degrade_corrupts);
        // At 25 % each over 400 packets, both odds certainly fire.
        assert!(a.degrade_drops > 0, "no losses in 400 packets");
        assert!(a.degrade_corrupts > 0, "no corruptions in 400 packets");
        assert_eq!(da.len() as u64 + a.degrade_drops, 400);
        assert_eq!(a.synthetic_drops(), a.degrade_drops);
        // A different seed draws a different sequence.
        let mut c = mk_port();
        c.set_degraded(NodeId(0), heavy_profile(43));
        drive(&mut c, 400);
        assert!(
            c.degrade_drops != a.degrade_drops || c.degrade_corrupts != a.degrade_corrupts,
            "different seeds should diverge"
        );
    }

    #[test]
    fn degrade_inflates_latency_without_losing_packets() {
        let mut port = mk_port();
        port.set_degraded(
            NodeId(0),
            crate::fault::DegradeProfile {
                seed: 1,
                loss_ppm: 0,
                corrupt_ppm: 0,
                extra_delay_ns: 5_000, // +5 us on a 10 us link
                jitter_ns: 0,
            },
        );
        let deliveries = drive(&mut port, 1);
        // 12 us serialization + 10 us propagation + 5 us inflation.
        assert_eq!(deliveries, vec![SimTime::from_micros(27)]);
        assert_eq!(port.degrade_drops, 0);
        assert_eq!(port.tx_pkts, 1);
    }

    #[test]
    fn health_dips_under_degradation_and_recovers_after_restore() {
        let mut port = mk_port();
        assert!(port.is_healthy());
        port.set_degraded(NodeId(0), heavy_profile(7));
        drive(&mut port, 200);
        assert!(
            !port.is_healthy(),
            "health {} after 200 packets at 25 % loss",
            port.health()
        );
        port.set_restored();
        assert!(!port.is_degraded());
        // Health is earned back through clean traffic, not reset.
        assert!(!port.is_healthy());
        drive(&mut port, 3000);
        assert!(
            port.is_healthy(),
            "health {} after 3000 clean packets",
            port.health()
        );
        assert_eq!(port.faults_injected, 2);
    }

    #[test]
    fn link_recovers_after_set_up() {
        let mut sched = Scheduler::new();
        let mut stats = StatsCollector::new();
        let mut port = mk_port();
        let mut ctx = Ctx {
            node: NodeId(0),
            sched: &mut sched,
            stats: &mut stats,
        };
        port.set_down(&mut ctx);
        port.send(data(0), &mut ctx);
        assert_eq!(port.drops_while_down, 1);
        port.set_up();
        assert!(port.is_up());
        port.send(data(1), &mut ctx);
        assert!(port.is_busy(), "transmission resumes after recovery");
        assert_eq!(port.faults_injected, 2);
    }
}
