//! Packet- and flow-level tracing.
//!
//! A [`TraceSink`] installed on the [`crate::stats::StatsCollector`]
//! receives structured events as the simulation executes: packets put on
//! the wire, packets dropped, flows starting and completing. The built-in
//! [`TextTracer`] renders them as tcpdump-style text lines; custom sinks
//! can compute whatever online statistics they need.
//!
//! Tracing is strictly opt-in: with no sink installed the hot path pays
//! one branch per event, and call sites are expected to gate event
//! construction on [`crate::stats::StatsCollector::tracing`] so no
//! formatting or allocation happens either.
//!
//! The [`TextTracer`] renders into a thread-local `String` and only
//! takes its shared-buffer lock once per [`FLUSH_THRESHOLD`] bytes, so
//! per-event cost is a couple of `write!` calls rather than an
//! allocation plus a mutex round trip. Buffered output reaches the
//! shared handle on [`TraceSink::flush`] (called by
//! [`crate::sim::Simulation::run`] before it returns) or when the
//! tracer is dropped; read the buffer only after one of those points.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::fault::FaultDirective;
use crate::ids::{FlowId, NodeId, PortId};
use crate::packet::{Packet, PacketKind};
use crate::time::SimTime;

/// Bytes of locally rendered text the [`TextTracer`] accumulates before
/// pushing a batch into the shared buffer. Large enough that the mutex
/// and the shared `String` growth are amortized over thousands of
/// lines; small enough that memory overhead per tracer is negligible.
const FLUSH_THRESHOLD: usize = 32 * 1024;

/// Why a flow ended in the terminal `Aborted` state instead of
/// completing. Attached to the flow record and the `FlowDone` trace event
/// so post-run audits can attribute every abort to a concrete cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The scheme decided the flow was not worth finishing (e.g. PDQ's
    /// early termination of a flow whose deadline is unmeetable).
    EarlyTermination,
    /// The sender gave up after the bounded number of consecutive
    /// retransmission timeouts with zero forward progress (dead peer).
    MaxRtosExceeded,
    /// The flow's endpoint host crashed while the flow was live (or the
    /// flow started while its source host was down).
    HostCrash,
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A packet finished serializing onto a link.
    Tx {
        /// Transmitting node.
        node: NodeId,
        /// Output port.
        port: PortId,
        /// The packet's flow.
        flow: FlowId,
        /// Packet kind.
        kind: PacketKind,
        /// Sequence / ack number.
        seq: u64,
        /// Bytes on the wire.
        wire_bytes: u32,
        /// Priority band.
        prio: u8,
    },
    /// A packet was dropped by a queue.
    Drop {
        /// The packet's flow.
        flow: FlowId,
        /// Packet kind.
        kind: PacketKind,
        /// Sequence number.
        seq: u64,
    },
    /// A packet was blackholed at a switch: no surviving next hop toward
    /// its destination (every equal-cost port is down, or the FIB has no
    /// entry). Distinct from [`TraceEvent::Drop`] so failure-induced
    /// routing losses are separable from queue overflow.
    Blackhole {
        /// The switch that had no live route.
        node: NodeId,
        /// The packet's flow.
        flow: FlowId,
        /// Packet kind.
        kind: PacketKind,
        /// Sequence number.
        seq: u64,
    },
    /// A flow completed (or was aborted).
    FlowDone {
        /// The flow.
        flow: FlowId,
        /// Whether it was aborted rather than finished.
        aborted: bool,
        /// Why it was aborted (`None` for a normal completion).
        reason: Option<AbortReason>,
    },
    /// An injected fault was applied at a node.
    Fault {
        /// The node the fault fired at.
        node: NodeId,
        /// The resolved per-node directive.
        fault: FaultDirective,
    },
    /// A corrupted packet was detected and discarded by the checksum at
    /// its destination node (gray failure; see [`crate::fault`]).
    Corrupt {
        /// The node that discarded the packet.
        node: NodeId,
        /// The packet's flow.
        flow: FlowId,
        /// Packet kind.
        kind: PacketKind,
        /// Sequence number.
        seq: u64,
    },
    /// An overloaded arbitrator shed a control message instead of
    /// processing it (its per-epoch budget was exhausted; see
    /// [`crate::fault::FaultEvent::CtrlStormStart`]).
    Shed {
        /// The arbitrator node that shed the message.
        node: NodeId,
        /// The flow the shed message concerned.
        flow: FlowId,
        /// Whether the shed request was a stale refresh (an arbitration
        /// for this flow/leg was already live) rather than a fresh one.
        stale: bool,
    },
}

/// Receives trace events.
pub trait TraceSink: Send {
    /// Handle one event at simulated time `now`.
    fn on_event(&mut self, now: SimTime, event: &TraceEvent);

    /// Push any internally buffered output to where readers can see it.
    ///
    /// Called by [`crate::sim::Simulation::run`] before it returns, so
    /// sinks may batch freely between flushes. Sinks that publish every
    /// event eagerly can ignore this (the default is a no-op).
    fn flush(&mut self) {}
}

/// A sink that renders events as text lines into a shared buffer.
///
/// The buffer is shared (`Arc<Mutex<String>>`) so the caller can keep a
/// handle while the simulation owns the sink. Lines are staged in a
/// private `String` and pushed to the shared buffer in
/// [`FLUSH_THRESHOLD`]-byte batches; the staged remainder reaches the
/// shared handle on [`TraceSink::flush`] or drop (cloned handles carry
/// the shared buffer but never the staged lines).
#[derive(Debug, Default)]
pub struct TextTracer {
    shared: Arc<Mutex<String>>,
    /// Staged lines not yet pushed to `shared`.
    local: String,
    /// Only record events for this flow, when set.
    filter_flow: Option<FlowId>,
}

impl TextTracer {
    /// Trace everything.
    pub fn new() -> TextTracer {
        TextTracer::default()
    }

    /// Trace only one flow.
    pub fn for_flow(flow: FlowId) -> TextTracer {
        TextTracer {
            shared: Arc::default(),
            local: String::new(),
            filter_flow: Some(flow),
        }
    }

    /// A handle to the output buffer (clone before installing the sink).
    pub fn buffer(&self) -> Arc<Mutex<String>> {
        Arc::clone(&self.shared)
    }

    fn matches(&self, flow: FlowId) -> bool {
        self.filter_flow.is_none_or(|f| f == flow)
    }

    fn flush_local(&mut self) {
        if self.local.is_empty() {
            return;
        }
        let mut buf = self.shared.lock().expect("tracer buffer poisoned");
        buf.push_str(&self.local);
        self.local.clear();
    }
}

impl Clone for TextTracer {
    /// Clones share the output buffer but start with an empty staging
    /// area: staged lines belong to exactly one writer, so a handle
    /// cloned off an installed sink never duplicates its output.
    fn clone(&self) -> TextTracer {
        TextTracer {
            shared: Arc::clone(&self.shared),
            local: String::new(),
            filter_flow: self.filter_flow,
        }
    }
}

impl Drop for TextTracer {
    fn drop(&mut self) {
        self.flush_local();
    }
}

impl TraceSink for TextTracer {
    fn on_event(&mut self, now: SimTime, event: &TraceEvent) {
        match *event {
            TraceEvent::Tx {
                node,
                port,
                flow,
                kind,
                seq,
                wire_bytes,
                prio,
            } => {
                if !self.matches(flow) {
                    return;
                }
                let _ = writeln!(
                    self.local,
                    "{now} TX   {node}:{port} {flow} {kind:?} seq={seq} len={wire_bytes} prio={prio}"
                );
            }
            TraceEvent::Drop { flow, kind, seq } => {
                if !self.matches(flow) {
                    return;
                }
                let _ = writeln!(self.local, "{now} DROP {flow} {kind:?} seq={seq}");
            }
            TraceEvent::Blackhole {
                node,
                flow,
                kind,
                seq,
            } => {
                if !self.matches(flow) {
                    return;
                }
                let _ = writeln!(self.local, "{now} BHOL {node} {flow} {kind:?} seq={seq}");
            }
            TraceEvent::FlowDone {
                flow,
                aborted,
                reason,
            } => {
                if !self.matches(flow) {
                    return;
                }
                let _ = match (aborted, reason) {
                    (true, Some(r)) => writeln!(self.local, "{now} ABRT {flow} reason={r:?}"),
                    (true, None) => writeln!(self.local, "{now} ABRT {flow}"),
                    (false, _) => writeln!(self.local, "{now} DONE {flow}"),
                };
            }
            // Faults are never flow-filtered: an injected fault is part of
            // the run's identity regardless of which flow is being watched.
            TraceEvent::Fault { node, fault } => {
                let _ = writeln!(self.local, "{now} FLT  {node} {fault:?}");
            }
            TraceEvent::Corrupt {
                node,
                flow,
                kind,
                seq,
            } => {
                if !self.matches(flow) {
                    return;
                }
                let _ = writeln!(self.local, "{now} CRPT {node} {flow} {kind:?} seq={seq}");
            }
            TraceEvent::Shed { node, flow, stale } => {
                if !self.matches(flow) {
                    return;
                }
                let _ = writeln!(self.local, "{now} SHED {node} {flow} stale={stale}");
            }
        }
        if self.local.len() >= FLUSH_THRESHOLD {
            self.flush_local();
        }
    }

    fn flush(&mut self) {
        self.flush_local();
    }
}

/// A sink that folds every event into a running 64-bit hash instead of
/// buffering rendered text.
///
/// This is the dual-run byte-identical-trace discipline at production
/// scale: a k=16 fat-tree run with 100k+ flows executes tens of millions
/// of traced events, and storing the [`TextTracer`] rendering (gigabytes
/// of lines) would dwarf the simulation itself. The hash covers the same
/// fields the text rendering would, in the same order, so two runs with
/// identical event streams — the property the differential harnesses
/// compare — have identical hashes, and any divergence in any field of
/// any event changes the digest.
///
/// The digest reaches the shared handle on [`TraceSink::flush`] (or
/// drop), like the text tracer's buffer.
#[derive(Debug, Default)]
pub struct HashTracer {
    shared: Arc<Mutex<u64>>,
    /// Running digest (splitmix64 chaining) plus event count, folded
    /// together at flush so an empty run hashes differently from none.
    hash: u64,
    events: u64,
}

impl HashTracer {
    /// A fresh tracer with a zero digest.
    pub fn new() -> HashTracer {
        HashTracer::default()
    }

    /// A handle to the digest (clone before installing the sink); valid
    /// after [`TraceSink::flush`] or drop.
    pub fn digest(&self) -> Arc<Mutex<u64>> {
        Arc::clone(&self.shared)
    }

    /// splitmix64 finalizer chaining, as in `ids::IdHasher`.
    #[inline]
    fn chain(h: u64, x: u64) -> u64 {
        let mut z = h ^ x;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn mix(&mut self, x: u64) {
        self.hash = Self::chain(self.hash, x);
    }

    /// Publish the digest without disturbing the running state, so
    /// repeated flushes (run-end plus drop) are idempotent.
    fn publish(&mut self) {
        let digest = Self::chain(self.hash, self.events);
        *self.shared.lock().expect("hash tracer poisoned") = digest;
    }
}

impl Drop for HashTracer {
    fn drop(&mut self) {
        self.publish();
    }
}

impl TraceSink for HashTracer {
    fn on_event(&mut self, now: SimTime, event: &TraceEvent) {
        self.events += 1;
        self.mix(now.as_nanos());
        match *event {
            TraceEvent::Tx {
                node,
                port,
                flow,
                kind,
                seq,
                wire_bytes,
                prio,
            } => {
                self.mix(1);
                self.mix(node.0 as u64);
                self.mix(port.0 as u64);
                self.mix(flow.0);
                self.mix(kind as u64);
                self.mix(seq);
                self.mix(wire_bytes as u64);
                self.mix(prio as u64);
            }
            TraceEvent::Drop { flow, kind, seq } => {
                self.mix(2);
                self.mix(flow.0);
                self.mix(kind as u64);
                self.mix(seq);
            }
            TraceEvent::Blackhole {
                node,
                flow,
                kind,
                seq,
            } => {
                self.mix(3);
                self.mix(node.0 as u64);
                self.mix(flow.0);
                self.mix(kind as u64);
                self.mix(seq);
            }
            TraceEvent::FlowDone {
                flow,
                aborted,
                reason,
            } => {
                self.mix(4);
                self.mix(flow.0);
                self.mix(aborted as u64);
                self.mix(match reason {
                    None => 0,
                    Some(AbortReason::EarlyTermination) => 1,
                    Some(AbortReason::MaxRtosExceeded) => 2,
                    Some(AbortReason::HostCrash) => 3,
                });
            }
            TraceEvent::Fault { node, fault } => {
                self.mix(5);
                self.mix(node.0 as u64);
                // Directives are rare (injected faults, not per-packet),
                // so hashing the Debug rendering keeps this exhaustive
                // over the directive's payload without a Hash impl.
                for b in format!("{fault:?}").bytes() {
                    self.mix(b as u64);
                }
            }
            TraceEvent::Corrupt {
                node,
                flow,
                kind,
                seq,
            } => {
                self.mix(6);
                self.mix(node.0 as u64);
                self.mix(flow.0);
                self.mix(kind as u64);
                self.mix(seq);
            }
            TraceEvent::Shed { node, flow, stale } => {
                self.mix(7);
                self.mix(node.0 as u64);
                self.mix(flow.0);
                self.mix(stale as u64);
            }
        }
    }

    fn flush(&mut self) {
        self.publish();
    }
}

/// Helper to build the Tx event from a packet (keeps call sites short).
pub(crate) fn tx_event(node: NodeId, port: PortId, pkt: &Packet) -> TraceEvent {
    TraceEvent::Tx {
        node,
        port,
        flow: pkt.flow,
        kind: pkt.kind,
        seq: pkt.seq,
        wire_bytes: pkt.wire_bytes,
        prio: pkt.prio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(flow: u64) -> TraceEvent {
        TraceEvent::Tx {
            node: NodeId(0),
            port: PortId(0),
            flow: FlowId(flow),
            kind: PacketKind::Data,
            seq: 0,
            wire_bytes: 1500,
            prio: 3,
        }
    }

    #[test]
    fn text_tracer_records_lines() {
        let mut t = TextTracer::new();
        let buf = t.buffer();
        t.on_event(SimTime::from_micros(5), &tx(1));
        t.on_event(
            SimTime::from_micros(9),
            &TraceEvent::Drop {
                flow: FlowId(1),
                kind: PacketKind::Data,
                seq: 1460,
            },
        );
        t.on_event(
            SimTime::from_micros(12),
            &TraceEvent::FlowDone {
                flow: FlowId(1),
                aborted: false,
                reason: None,
            },
        );
        t.flush();
        let out = buf.lock().unwrap().clone();
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("TX   n0:p0 f1 Data seq=0 len=1500 prio=3"));
        assert!(out.contains("DROP f1"));
        assert!(out.contains("DONE f1"));
    }

    #[test]
    fn flow_filter_suppresses_other_flows() {
        let mut t = TextTracer::for_flow(FlowId(7));
        let buf = t.buffer();
        t.on_event(SimTime::ZERO, &tx(1));
        t.on_event(SimTime::ZERO, &tx(7));
        t.flush();
        let out = buf.lock().unwrap().clone();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("f7"));
    }

    #[test]
    fn aborted_flows_render_their_reason() {
        let mut t = TextTracer::new();
        let buf = t.buffer();
        t.on_event(
            SimTime::from_micros(8),
            &TraceEvent::FlowDone {
                flow: FlowId(3),
                aborted: true,
                reason: Some(AbortReason::MaxRtosExceeded),
            },
        );
        t.flush();
        let out = buf.lock().unwrap().clone();
        assert!(out.contains("ABRT f3 reason=MaxRtosExceeded"), "{out}");
    }

    #[test]
    fn fault_events_bypass_the_flow_filter() {
        let mut t = TextTracer::for_flow(FlowId(7));
        let buf = t.buffer();
        t.on_event(
            SimTime::from_micros(3),
            &TraceEvent::Fault {
                node: NodeId(2),
                fault: FaultDirective::PortDown(PortId(1)),
            },
        );
        t.flush();
        let out = buf.lock().unwrap().clone();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("FLT  n2 PortDown"), "{out}");
    }

    #[test]
    fn corrupt_events_render_and_respect_the_flow_filter() {
        let mut t = TextTracer::for_flow(FlowId(7));
        let buf = t.buffer();
        let crpt = |flow: u64| TraceEvent::Corrupt {
            node: NodeId(3),
            flow: FlowId(flow),
            kind: PacketKind::Data,
            seq: 1460,
        };
        t.on_event(SimTime::from_micros(2), &crpt(1));
        t.on_event(SimTime::from_micros(4), &crpt(7));
        t.flush();
        let out = buf.lock().unwrap().clone();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("CRPT n3 f7 Data seq=1460"), "{out}");
    }

    #[test]
    fn shed_events_render_and_respect_the_flow_filter() {
        let mut t = TextTracer::for_flow(FlowId(7));
        let buf = t.buffer();
        let shed = |flow: u64| TraceEvent::Shed {
            node: NodeId(4),
            flow: FlowId(flow),
            stale: true,
        };
        t.on_event(SimTime::from_micros(2), &shed(1));
        t.on_event(SimTime::from_micros(4), &shed(7));
        t.flush();
        let out = buf.lock().unwrap().clone();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("SHED n4 f7 stale=true"), "{out}");
    }

    #[test]
    fn drop_flushes_staged_lines() {
        let buf;
        {
            let mut t = TextTracer::new();
            buf = t.buffer();
            t.on_event(SimTime::from_micros(1), &tx(1));
            // No explicit flush: going out of scope must publish the line.
        }
        assert_eq!(buf.lock().unwrap().lines().count(), 1);
    }

    fn hash_of(events: &[(u64, TraceEvent)]) -> u64 {
        let mut t = HashTracer::new();
        let d = t.digest();
        for &(us, ref e) in events {
            t.on_event(SimTime::from_micros(us), e);
        }
        t.flush();
        let out = *d.lock().unwrap();
        out
    }

    #[test]
    fn hash_tracer_is_deterministic_and_field_sensitive() {
        let base = vec![
            (1, tx(1)),
            (
                2,
                TraceEvent::Drop {
                    flow: FlowId(1),
                    kind: PacketKind::Data,
                    seq: 1460,
                },
            ),
            (
                3,
                TraceEvent::FlowDone {
                    flow: FlowId(1),
                    aborted: false,
                    reason: None,
                },
            ),
        ];
        assert_eq!(hash_of(&base), hash_of(&base), "same stream, same digest");
        // Perturb one field.
        let mut other = base.clone();
        other[1].1 = TraceEvent::Drop {
            flow: FlowId(1),
            kind: PacketKind::Data,
            seq: 2920,
        };
        assert_ne!(hash_of(&base), hash_of(&other), "seq change must show");
        // Perturb only a timestamp.
        let mut shifted = base.clone();
        shifted[2].0 = 4;
        assert_ne!(hash_of(&base), hash_of(&shifted), "time change must show");
        // Dropping an event must show even though the prefix matches.
        assert_ne!(hash_of(&base), hash_of(&base[..2]), "truncation must show");
    }

    #[test]
    fn hash_tracer_flush_is_idempotent() {
        let mut t = HashTracer::new();
        let d = t.digest();
        t.on_event(SimTime::from_micros(1), &tx(1));
        t.flush();
        let first = *d.lock().unwrap();
        t.flush();
        assert_eq!(*d.lock().unwrap(), first);
        drop(t); // drop publishes too, and must agree
        assert_eq!(*d.lock().unwrap(), first);
    }

    #[test]
    fn clones_share_the_buffer_but_not_staged_lines() {
        let mut t = TextTracer::new();
        t.on_event(SimTime::from_micros(1), &tx(1));
        let handle = t.clone();
        let buf = handle.buffer();
        assert!(buf.lock().unwrap().is_empty(), "staged line leaked early");
        drop(handle); // must not duplicate the staged line
        t.flush();
        assert_eq!(buf.lock().unwrap().lines().count(), 1);
    }
}
