//! Packet- and flow-level tracing.
//!
//! A [`TraceSink`] installed on the [`crate::stats::StatsCollector`]
//! receives structured events as the simulation executes: packets put on
//! the wire, packets dropped, flows starting and completing. The built-in
//! [`TextTracer`] renders them as tcpdump-style text lines; custom sinks
//! can compute whatever online statistics they need.
//!
//! Tracing is strictly opt-in: with no sink installed the hot path pays
//! one branch per event.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::fault::FaultDirective;
use crate::ids::{FlowId, NodeId, PortId};
use crate::packet::{Packet, PacketKind};
use crate::time::SimTime;

/// Why a flow ended in the terminal `Aborted` state instead of
/// completing. Attached to the flow record and the `FlowDone` trace event
/// so post-run audits can attribute every abort to a concrete cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The scheme decided the flow was not worth finishing (e.g. PDQ's
    /// early termination of a flow whose deadline is unmeetable).
    EarlyTermination,
    /// The sender gave up after the bounded number of consecutive
    /// retransmission timeouts with zero forward progress (dead peer).
    MaxRtosExceeded,
    /// The flow's endpoint host crashed while the flow was live (or the
    /// flow started while its source host was down).
    HostCrash,
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A packet finished serializing onto a link.
    Tx {
        /// Transmitting node.
        node: NodeId,
        /// Output port.
        port: PortId,
        /// The packet's flow.
        flow: FlowId,
        /// Packet kind.
        kind: PacketKind,
        /// Sequence / ack number.
        seq: u64,
        /// Bytes on the wire.
        wire_bytes: u32,
        /// Priority band.
        prio: u8,
    },
    /// A packet was dropped by a queue.
    Drop {
        /// The packet's flow.
        flow: FlowId,
        /// Packet kind.
        kind: PacketKind,
        /// Sequence number.
        seq: u64,
    },
    /// A packet was blackholed at a switch: no surviving next hop toward
    /// its destination (every equal-cost port is down, or the FIB has no
    /// entry). Distinct from [`TraceEvent::Drop`] so failure-induced
    /// routing losses are separable from queue overflow.
    Blackhole {
        /// The switch that had no live route.
        node: NodeId,
        /// The packet's flow.
        flow: FlowId,
        /// Packet kind.
        kind: PacketKind,
        /// Sequence number.
        seq: u64,
    },
    /// A flow completed (or was aborted).
    FlowDone {
        /// The flow.
        flow: FlowId,
        /// Whether it was aborted rather than finished.
        aborted: bool,
        /// Why it was aborted (`None` for a normal completion).
        reason: Option<AbortReason>,
    },
    /// An injected fault was applied at a node.
    Fault {
        /// The node the fault fired at.
        node: NodeId,
        /// The resolved per-node directive.
        fault: FaultDirective,
    },
}

/// Receives trace events.
pub trait TraceSink: Send {
    /// Handle one event at simulated time `now`.
    fn on_event(&mut self, now: SimTime, event: &TraceEvent);
}

/// A sink that renders events as text lines into a shared buffer.
///
/// The buffer is shared (`Arc<Mutex<String>>`) so the caller can keep a
/// handle while the simulation owns the sink.
#[derive(Debug, Clone, Default)]
pub struct TextTracer {
    buf: Arc<Mutex<String>>,
    /// Only record events for this flow, when set.
    filter_flow: Option<FlowId>,
}

impl TextTracer {
    /// Trace everything.
    pub fn new() -> TextTracer {
        TextTracer::default()
    }

    /// Trace only one flow.
    pub fn for_flow(flow: FlowId) -> TextTracer {
        TextTracer {
            buf: Arc::default(),
            filter_flow: Some(flow),
        }
    }

    /// A handle to the output buffer (clone before installing the sink).
    pub fn buffer(&self) -> Arc<Mutex<String>> {
        Arc::clone(&self.buf)
    }

    fn matches(&self, flow: FlowId) -> bool {
        self.filter_flow.is_none_or(|f| f == flow)
    }
}

impl TraceSink for TextTracer {
    fn on_event(&mut self, now: SimTime, event: &TraceEvent) {
        let line = match *event {
            TraceEvent::Tx {
                node,
                port,
                flow,
                kind,
                seq,
                wire_bytes,
                prio,
            } => {
                if !self.matches(flow) {
                    return;
                }
                format!(
                    "{now} TX   {node}:{port} {flow} {kind:?} seq={seq} len={wire_bytes} prio={prio}"
                )
            }
            TraceEvent::Drop { flow, kind, seq } => {
                if !self.matches(flow) {
                    return;
                }
                format!("{now} DROP {flow} {kind:?} seq={seq}")
            }
            TraceEvent::Blackhole {
                node,
                flow,
                kind,
                seq,
            } => {
                if !self.matches(flow) {
                    return;
                }
                format!("{now} BHOL {node} {flow} {kind:?} seq={seq}")
            }
            TraceEvent::FlowDone {
                flow,
                aborted,
                reason,
            } => {
                if !self.matches(flow) {
                    return;
                }
                match (aborted, reason) {
                    (true, Some(r)) => format!("{now} ABRT {flow} reason={r:?}"),
                    (true, None) => format!("{now} ABRT {flow}"),
                    (false, _) => format!("{now} DONE {flow}"),
                }
            }
            // Faults are never flow-filtered: an injected fault is part of
            // the run's identity regardless of which flow is being watched.
            TraceEvent::Fault { node, fault } => {
                format!("{now} FLT  {node} {fault:?}")
            }
        };
        let mut buf = self.buf.lock().expect("tracer buffer poisoned");
        let _ = writeln!(buf, "{line}");
    }
}

/// Helper to build the Tx event from a packet (keeps call sites short).
pub(crate) fn tx_event(node: NodeId, port: PortId, pkt: &Packet) -> TraceEvent {
    TraceEvent::Tx {
        node,
        port,
        flow: pkt.flow,
        kind: pkt.kind,
        seq: pkt.seq,
        wire_bytes: pkt.wire_bytes,
        prio: pkt.prio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(flow: u64) -> TraceEvent {
        TraceEvent::Tx {
            node: NodeId(0),
            port: PortId(0),
            flow: FlowId(flow),
            kind: PacketKind::Data,
            seq: 0,
            wire_bytes: 1500,
            prio: 3,
        }
    }

    #[test]
    fn text_tracer_records_lines() {
        let mut t = TextTracer::new();
        let buf = t.buffer();
        t.on_event(SimTime::from_micros(5), &tx(1));
        t.on_event(
            SimTime::from_micros(9),
            &TraceEvent::Drop {
                flow: FlowId(1),
                kind: PacketKind::Data,
                seq: 1460,
            },
        );
        t.on_event(
            SimTime::from_micros(12),
            &TraceEvent::FlowDone {
                flow: FlowId(1),
                aborted: false,
                reason: None,
            },
        );
        let out = buf.lock().unwrap().clone();
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("TX   n0:p0 f1 Data seq=0 len=1500 prio=3"));
        assert!(out.contains("DROP f1"));
        assert!(out.contains("DONE f1"));
    }

    #[test]
    fn flow_filter_suppresses_other_flows() {
        let mut t = TextTracer::for_flow(FlowId(7));
        let buf = t.buffer();
        t.on_event(SimTime::ZERO, &tx(1));
        t.on_event(SimTime::ZERO, &tx(7));
        let out = buf.lock().unwrap().clone();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("f7"));
    }

    #[test]
    fn aborted_flows_render_their_reason() {
        let mut t = TextTracer::new();
        let buf = t.buffer();
        t.on_event(
            SimTime::from_micros(8),
            &TraceEvent::FlowDone {
                flow: FlowId(3),
                aborted: true,
                reason: Some(AbortReason::MaxRtosExceeded),
            },
        );
        let out = buf.lock().unwrap().clone();
        assert!(out.contains("ABRT f3 reason=MaxRtosExceeded"), "{out}");
    }

    #[test]
    fn fault_events_bypass_the_flow_filter() {
        let mut t = TextTracer::for_flow(FlowId(7));
        let buf = t.buffer();
        t.on_event(
            SimTime::from_micros(3),
            &TraceEvent::Fault {
                node: NodeId(2),
                fault: FaultDirective::PortDown(PortId(1)),
            },
        );
        let out = buf.lock().unwrap().clone();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("FLT  n2 PortDown"), "{out}");
    }
}
