//! Strongly-typed identifiers for simulation entities.
//!
//! All identifiers are dense indices into the simulator's internal vectors,
//! wrapped in newtypes so a node index can never be confused with a flow
//! index at a call site.

use core::fmt;

/// Identifies a node (host or switch) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies one of a node's output ports (dense per-node index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u32);

/// Identifies a flow. Flow ids are globally unique and dense, assigned by
/// the workload generator in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Identifies a unidirectional link `(node, port)` — the transmit side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// The transmitting node.
    pub node: NodeId,
    /// The output port on that node.
    pub port: PortId,
}

impl NodeId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FlowId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(NodeId(1) < NodeId(2));
        assert!(FlowId(10) > FlowId(9));
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(
            format!(
                "{}",
                LinkId {
                    node: NodeId(3),
                    port: PortId(1)
                }
            ),
            "n3:p1"
        );
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(PortId(2).index(), 2);
        assert_eq!(FlowId(42).index(), 42);
    }
}
