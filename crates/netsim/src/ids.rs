//! Strongly-typed identifiers for simulation entities.
//!
//! All identifiers are dense indices into the simulator's internal vectors,
//! wrapped in newtypes so a node index can never be confused with a flow
//! index at a call site.

use core::fmt;
use core::hash::{BuildHasherDefault, Hasher};

/// Identifies a node (host or switch) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies one of a node's output ports (dense per-node index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u32);

/// Identifies a flow. Flow ids are globally unique and dense, assigned by
/// the workload generator in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Identifies a unidirectional link `(node, port)` — the transmit side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// The transmitting node.
    pub node: NodeId,
    /// The output port on that node.
    pub port: PortId,
}

impl NodeId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FlowId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Deterministic, allocation-free hasher for the dense numeric ids above
/// (splitmix64 finalizer per integer write). `std`'s default SipHash buys
/// HashDoS resistance the simulator doesn't need and seeds itself
/// randomly per process; this keeps id-keyed map lookups on the hot path
/// cheap and their behaviour identical across runs and platforms. Only
/// for id keys — not a general-purpose string hasher.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdHasher(u64);

/// `BuildHasher` for [`IdHasher`], for use as a `HashMap` type parameter.
pub type IdHashBuilder = BuildHasherDefault<IdHasher>;

impl IdHasher {
    #[inline]
    fn mix(&mut self, x: u64) {
        // splitmix64 finalizer over the running state.
        let mut z = self.0 ^ x;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer fragments (derived Hash on structs may
        // route discriminants here): fold 8-byte chunks through the mixer.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.mix(x as u64);
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.mix(x);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.mix(x as u64);
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(NodeId(1) < NodeId(2));
        assert!(FlowId(10) > FlowId(9));
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(
            format!(
                "{}",
                LinkId {
                    node: NodeId(3),
                    port: PortId(1)
                }
            ),
            "n3:p1"
        );
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(PortId(2).index(), 2);
        assert_eq!(FlowId(42).index(), 42);
    }

    #[test]
    fn id_hasher_is_deterministic_and_spreads() {
        use core::hash::BuildHasher;
        let build = IdHashBuilder::default();
        let hash_of = |id: FlowId| build.hash_one(id);
        assert_eq!(hash_of(FlowId(7)), hash_of(FlowId(7)));
        assert_ne!(hash_of(FlowId(7)), hash_of(FlowId(8)));
        // Dense consecutive ids must not collide in the low bits the
        // table actually indexes with.
        let low: std::collections::BTreeSet<u64> =
            (0..64).map(|i| hash_of(FlowId(i)) % 64).collect();
        assert!(
            low.len() > 32,
            "only {} distinct low-bit buckets",
            low.len()
        );
    }
}
