//! # netsim — deterministic discrete-event data-center network simulator
//!
//! This crate is the substrate on which the PASE reproduction is built: a
//! packet-level, store-and-forward network simulator in the spirit of the
//! ns2 setup used by the paper, written from scratch in safe Rust.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Events are totally ordered by `(time, seq)`; all
//!    randomness lives in the workload layer behind seeded generators. Two
//!    runs of the same configuration produce identical results.
//! 2. **Simplicity and robustness** over cleverness (after smoltcp): the
//!    event loop is a binary heap and a `match`; components interact only
//!    through events.
//! 3. **Protocol pluggability.** Transports implement [`host::FlowAgent`];
//!    switch-resident logic (PDQ rate arbitration, PASE control-plane
//!    arbitrators) implements [`switch::SwitchPlugin`]; queue disciplines
//!    implement [`queue::Qdisc`].
//!
//! ## Model
//!
//! * Links are full-duplex point-to-point with fixed capacity and
//!   propagation delay; each direction has an output queue on the
//!   transmitting node.
//! * Switches are store-and-forward with static shortest-path forwarding
//!   (ECMP by deterministic flow hash).
//! * Hosts run one [`host::FlowAgent`] per flow endpoint; receiver agents
//!   are created on demand when the first packet of an unknown flow
//!   arrives.
//! * ECN is modeled end to end: queues set CE, receivers echo it, senders
//!   react.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use netsim::prelude::*;
//!
//! // Two hosts behind one switch.
//! let mut b = TopologyBuilder::new();
//! let sw = b.add_switch();
//! let hosts = b.add_hosts(2);
//! for &h in &hosts {
//!     b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(25));
//! }
//! # struct F;
//! # struct A;
//! # use netsim::host::{AgentCtx, FlowAgent, AgentFactory};
//! # use netsim::flow::ReceiverHint;
//! # impl FlowAgent for A {
//! #     fn on_start(&mut self, _: &mut AgentCtx<'_, '_>) {}
//! #     fn on_packet(&mut self, _: netsim::packet::Packet, _: &mut AgentCtx<'_, '_>) {}
//! #     fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_, '_>) {}
//! #     fn is_done(&self) -> bool { true }
//! # }
//! # impl AgentFactory for F {
//! #     fn sender(&self, _: &FlowSpec) -> Box<dyn FlowAgent> { Box::new(A) }
//! #     fn receiver(&self, _: ReceiverHint) -> Box<dyn FlowAgent> { Box::new(A) }
//! # }
//! # let my_factory = Arc::new(F);
//! let net = b.build(my_factory, &|_port| Box::new(DropTailQdisc::new(100)));
//! let mut sim = Simulation::new(net);
//! sim.add_flow(FlowSpec::new(FlowId(0), hosts[0], hosts[1], 100_000, SimTime::ZERO));
//! sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod engine;
pub mod event;
pub mod fault;
pub mod flow;
pub mod host;
pub mod ids;
pub mod invariants;
pub mod node;
pub mod packet;
pub mod port;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod switch;
pub mod time;
pub mod topology;
pub mod trace;
mod wheel;

/// The types most users need, in one import.
pub mod prelude {
    pub use crate::chaos::{ChaosConfig, ChaosIntensity};
    pub use crate::engine::{EngineKind, Scheduler};
    pub use crate::fault::{DegradeProfile, FaultEvent, FaultPlan};
    pub use crate::flow::FlowSpec;
    pub use crate::ids::{FlowId, LinkId, NodeId, PortId};
    pub use crate::invariants::{InvariantConfig, InvariantReport};
    pub use crate::packet::{ArenaStats, Packet, PacketArena, PacketKind};
    pub use crate::queue::{DropTailQdisc, Qdisc, RedEcnQdisc, StrictPrioQdisc};
    pub use crate::rng::Rng;
    pub use crate::sim::{RunLimit, RunOutcome, Simulation};
    pub use crate::time::{Rate, SimDuration, SimTime};
    pub use crate::topology::{Network, Topology, TopologyBuilder};
    pub use crate::trace::AbortReason;
}
