//! The discrete-event scheduler.
//!
//! A binary heap keyed on `(time, seq)` gives a total, deterministic order
//! over events: ties in simulated time fire in scheduling order. Handlers
//! receive a [`Ctx`] giving them the clock, the scheduler (to post future
//! events) and the stats collector — but never another node's state, so all
//! inter-node interaction flows through events, mirroring a real network.

use std::collections::BinaryHeap;

use crate::event::{EventKind, ScheduledEvent};
use crate::ids::NodeId;
use crate::stats::StatsCollector;
use crate::time::{SimDuration, SimTime};

/// The event queue and clock.
#[derive(Debug, Default)]
pub struct Scheduler {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    now: SimTime,
    peak_pending: usize,
}

impl Scheduler {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            peak_pending: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// High-water mark of the pending-event count over the scheduler's
    /// lifetime (peak heap size; memory-pressure figure for benchmarks).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Pre-allocate heap room for `additional` more pending events.
    ///
    /// Bulk schedulers ([`Scheduler::schedule_batch`],
    /// [`crate::sim::Simulation::add_flows`]) call this so an arrival
    /// burst costs one allocation instead of a growth-doubling series.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedule a batch of `(time, target, kind)` events, reserving heap
    /// capacity up front. Semantically identical to calling
    /// [`Scheduler::schedule_at`] per item in iteration order (the batch
    /// members get consecutive sequence numbers, so same-instant ties
    /// still fire in iteration order).
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, NodeId, EventKind)>,
    {
        let events = events.into_iter();
        let (lo, hi) = events.size_hint();
        self.reserve(hi.unwrap_or(lo));
        for (at, target, kind) in events {
            self.schedule_at(at, target, kind);
        }
    }

    /// Schedule `kind` to fire on `target` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (in every build profile: a
    /// time-travelling event would silently corrupt the causal order of
    /// everything scheduled after it, so release builds must not limp
    /// past it either).
    pub fn schedule_at(&mut self, at: SimTime, target: NodeId, kind: EventKind) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            target,
            kind,
        });
        if self.heap.len() > self.peak_pending {
            self.peak_pending = self.heap.len();
        }
    }

    /// Schedule `kind` to fire on `target` after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, target: NodeId, kind: EventKind) {
        self.schedule_at(self.now + delay, target, kind);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    ///
    /// Public for benchmarking and custom drivers; the normal entry point
    /// is [`crate::sim::Simulation::run`].
    /// # Panics
    /// Panics if the queue yields an event timestamped before `now`
    /// (in every build profile; see [`Scheduler::schedule_at`]).
    pub fn pop(&mut self) -> Option<(NodeId, EventKind)> {
        let ev = self.heap.pop()?;
        assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        Some((ev.target, ev.kind))
    }

    /// Peek at the timestamp of the next event without firing it.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Iterate over every pending event in unspecified order.
    ///
    /// Used by the [`crate::invariants`] checker to account for packets
    /// that are "on the wire" (scheduled [`EventKind::Deliver`]s) and
    /// timers that prove a flow can still make progress.
    pub fn pending_events(&self) -> impl Iterator<Item = (SimTime, NodeId, &EventKind)> {
        self.heap.iter().map(|e| (e.time, e.target, &e.kind))
    }
}

/// Per-event context handed to node handlers.
///
/// Holds mutable access to the scheduler and statistics but *not* to other
/// nodes: the only way to affect a remote node is to schedule a future
/// event for it (normally a packet delivery).
pub struct Ctx<'a> {
    /// The node currently handling an event.
    pub node: NodeId,
    /// The scheduler (clock + event queue).
    pub sched: &'a mut Scheduler,
    /// Measurement sink.
    pub stats: &'a mut StatsCollector,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Schedule an event on the handling node itself.
    pub fn schedule_self(&mut self, delay: SimDuration, kind: EventKind) {
        self.sched.schedule_in(delay, self.node, kind);
    }

    /// Schedule an event on an arbitrary node.
    pub fn schedule(&mut self, delay: SimDuration, target: NodeId, kind: EventKind) {
        self.sched.schedule_in(delay, target, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut s = Scheduler::new();
        s.schedule_at(
            SimTime::from_micros(10),
            NodeId(0),
            EventKind::PluginTimer(0),
        );
        s.schedule_at(
            SimTime::from_micros(5),
            NodeId(1),
            EventKind::PluginTimer(1),
        );
        let (n1, k1) = s.pop().unwrap();
        assert_eq!(n1, NodeId(1));
        assert!(matches!(k1, EventKind::PluginTimer(1)));
        assert_eq!(s.now(), SimTime::from_micros(5));
        let (n2, _) = s.pop().unwrap();
        assert_eq!(n2, NodeId(0));
        assert_eq!(s.now(), SimTime::from_micros(10));
        assert!(s.pop().is_none());
    }

    #[test]
    fn same_time_events_fire_in_scheduling_order() {
        let mut s = Scheduler::new();
        for i in 0..10u64 {
            s.schedule_at(
                SimTime::from_micros(1),
                NodeId(i as u32),
                EventKind::PluginTimer(i),
            );
        }
        for i in 0..10u64 {
            let (n, _) = s.pop().unwrap();
            assert_eq!(n, NodeId(i as u32));
        }
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule_at(
            SimTime::from_micros(100),
            NodeId(0),
            EventKind::PluginTimer(0),
        );
        s.pop().unwrap();
        s.schedule_in(
            SimDuration::from_micros(50),
            NodeId(0),
            EventKind::PluginTimer(1),
        );
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::from_micros(150));
    }

    // Deliberately NOT gated on debug_assertions: the causal-order check
    // must hold in release builds too (it guards every benchmark and
    // long chaos sweep, which run with --release).
    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics_in_every_profile() {
        let mut s = Scheduler::new();
        s.schedule_at(
            SimTime::from_micros(100),
            NodeId(0),
            EventKind::PluginTimer(0),
        );
        s.pop().unwrap();
        s.schedule_at(
            SimTime::from_micros(50),
            NodeId(0),
            EventKind::PluginTimer(1),
        );
    }

    #[test]
    fn schedule_batch_matches_sequential_semantics() {
        let mut batched = Scheduler::new();
        batched.schedule_batch((0..100u64).map(|i| {
            (
                SimTime::from_micros(i / 10), // ten-way ties per instant
                NodeId((i % 7) as u32),
                EventKind::PluginTimer(i),
            )
        }));
        let mut sequential = Scheduler::new();
        for i in 0..100u64 {
            sequential.schedule_at(
                SimTime::from_micros(i / 10),
                NodeId((i % 7) as u32),
                EventKind::PluginTimer(i),
            );
        }
        loop {
            match (batched.pop(), sequential.pop()) {
                (None, None) => break,
                (a, b) => {
                    let (an, ak) = a.expect("batched drained early");
                    let (bn, bk) = b.expect("sequential drained early");
                    assert_eq!(an, bn);
                    assert_eq!(batched.now(), sequential.now());
                    match (ak, bk) {
                        (EventKind::PluginTimer(x), EventKind::PluginTimer(y)) => {
                            assert_eq!(x, y)
                        }
                        _ => panic!("unexpected event kind"),
                    }
                }
            }
        }
    }
}
