//! The discrete-event scheduler.
//!
//! Two interchangeable event-queue engines give a total, deterministic
//! order over events keyed on `(time, seq)` — ties in simulated time fire
//! in scheduling order:
//!
//! - [`EngineKind::Wheel`] (default): a hierarchical timing wheel
//!   ([`crate::wheel`]) with O(1) amortized schedule/pop.
//! - [`EngineKind::Heap`]: the original binary heap, kept as the
//!   reference implementation for differential tests and as an escape
//!   hatch (`NETSIM_SCHEDULER=heap`).
//!
//! Both engines produce byte-identical traces; `scripts/ci.sh` holds them
//! to that with a dual-engine chaos pass.
//!
//! The scheduler also owns the [`PacketArena`] that recycles packet boxes
//! across the injection → wire → delivery lifecycle, so steady-state
//! simulation does not allocate per packet.
//!
//! Handlers receive a [`Ctx`] giving them the clock, the scheduler (to
//! post future events) and the stats collector — but never another node's
//! state, so all inter-node interaction flows through events, mirroring a
//! real network.

use std::collections::BinaryHeap;
use std::sync::OnceLock;

use crate::event::{EventKind, ScheduledEvent};
use crate::ids::NodeId;
use crate::packet::{Packet, PacketArena};
use crate::stats::StatsCollector;
use crate::time::{SimDuration, SimTime};
use crate::wheel::{TimingWheel, DEFAULT_TICK_SHIFT};

/// Which event-queue implementation a [`Scheduler`] runs on.
///
/// Selected by `NETSIM_SCHEDULER` (`heap` | `wheel`; unset means wheel)
/// for whole-process runs, or explicitly via
/// [`Scheduler::with_engine`] for differential tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Reference binary heap: O(log n) per op, minimal constant factor.
    Heap,
    /// Hierarchical timing wheel: O(1) amortized schedule/pop.
    Wheel,
}

impl EngineKind {
    /// The process-wide engine choice from `NETSIM_SCHEDULER`, cached on
    /// first use so every scheduler in a run agrees.
    pub fn from_env() -> EngineKind {
        static CHOICE: OnceLock<EngineKind> = OnceLock::new();
        *CHOICE.get_or_init(|| match std::env::var("NETSIM_SCHEDULER") {
            Ok(v) if v == "heap" => EngineKind::Heap,
            Ok(v) if v == "wheel" || v.is_empty() => EngineKind::Wheel,
            Ok(v) => panic!("NETSIM_SCHEDULER must be `heap` or `wheel`, got `{v}`"),
            Err(_) => EngineKind::Wheel,
        })
    }
}

/// Wheel tick granularity from `NETSIM_WHEEL_TICK_NS` (rounded up to a
/// power of two, at most 2^20 ns), defaulting to 256 ns.
fn tick_shift_from_env() -> u32 {
    static SHIFT: OnceLock<u32> = OnceLock::new();
    *SHIFT.get_or_init(|| match std::env::var("NETSIM_WHEEL_TICK_NS") {
        Err(_) => DEFAULT_TICK_SHIFT,
        Ok(v) if v.is_empty() => DEFAULT_TICK_SHIFT,
        Ok(v) => {
            let ns: u64 = v
                .parse()
                .unwrap_or_else(|_| panic!("NETSIM_WHEEL_TICK_NS must be an integer, got `{v}`"));
            assert!(
                (1..=1 << 20).contains(&ns),
                "NETSIM_WHEEL_TICK_NS must be in 1..=2^20, got {ns}"
            );
            ns.next_power_of_two().trailing_zeros()
        }
    })
}

/// The two storage engines behind [`Scheduler`].
#[derive(Debug)]
enum EventQueue {
    Heap(BinaryHeap<ScheduledEvent>),
    Wheel(TimingWheel),
}

/// The event queue and clock.
#[derive(Debug)]
pub struct Scheduler {
    queue: EventQueue,
    engine: EngineKind,
    next_seq: u64,
    now: SimTime,
    peak_pending: usize,
    arena: PacketArena,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl Scheduler {
    /// An empty scheduler at time zero, on the engine `NETSIM_SCHEDULER`
    /// selects (the timing wheel unless overridden).
    pub fn new() -> Self {
        Scheduler::with_engine(EngineKind::from_env())
    }

    /// An empty scheduler at time zero on an explicit engine, bypassing
    /// the environment: this is what the differential harness uses to run
    /// heap and wheel side by side in one process.
    pub fn with_engine(engine: EngineKind) -> Self {
        let queue = match engine {
            EngineKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            EngineKind::Wheel => EventQueue::Wheel(TimingWheel::new(tick_shift_from_env())),
        };
        Scheduler {
            queue,
            engine,
            next_seq: 0,
            now: SimTime::ZERO,
            peak_pending: 0,
            arena: PacketArena::new(),
        }
    }

    /// Which engine this scheduler runs on.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        match &self.queue {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }

    /// High-water mark of the pending-event count over the scheduler's
    /// lifetime (peak queue size; memory-pressure figure for benchmarks).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// The packet arena recycling `Box<Packet>` storage for this run.
    pub fn arena(&self) -> &PacketArena {
        &self.arena
    }

    /// Mutable access to the packet arena (allocation and release sites).
    pub fn arena_mut(&mut self) -> &mut PacketArena {
        &mut self.arena
    }

    /// Pre-allocate room for `additional` more pending events.
    ///
    /// Bulk schedulers ([`Scheduler::schedule_batch`],
    /// [`crate::sim::Simulation::add_flows`]) call this so an arrival
    /// burst costs one allocation instead of a growth-doubling series.
    /// The wheel engine spreads events over per-slot buckets and takes no
    /// useful hint, so this is a no-op there.
    pub fn reserve(&mut self, additional: usize) {
        if let EventQueue::Heap(h) = &mut self.queue {
            h.reserve(additional);
        }
    }

    /// Schedule a batch of `(time, target, kind)` events, reserving
    /// capacity up front. Semantically identical to calling
    /// [`Scheduler::schedule_at`] per item in iteration order (the batch
    /// members get consecutive sequence numbers, so same-instant ties
    /// still fire in iteration order).
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, NodeId, EventKind)>,
    {
        let events = events.into_iter();
        // Reserve only the lower bound: an upper bound can be inflated
        // (or absent) for adapters and filters, and over-reserving by a
        // huge hint aborts on capacity overflow. Growth handles the rest.
        let (lo, _hi) = events.size_hint();
        self.reserve(lo);
        for (at, target, kind) in events {
            self.schedule_at(at, target, kind);
        }
    }

    /// Schedule `kind` to fire on `target` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (in every build profile: a
    /// time-travelling event would silently corrupt the causal order of
    /// everything scheduled after it, so release builds must not limp
    /// past it either).
    pub fn schedule_at(&mut self, at: SimTime, target: NodeId, kind: EventKind) {
        assert!(
            at >= self.now,
            "scheduling into the past: {} event for node {} at {at} < now {}",
            kind.name(),
            target.0,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = ScheduledEvent {
            time: at,
            seq,
            target,
            kind,
        };
        match &mut self.queue {
            EventQueue::Heap(h) => h.push(ev),
            EventQueue::Wheel(w) => w.push(ev),
        }
        let pending = self.pending();
        if pending > self.peak_pending {
            self.peak_pending = pending;
        }
    }

    /// Schedule `kind` to fire on `target` after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, target: NodeId, kind: EventKind) {
        self.schedule_at(self.now + delay, target, kind);
    }

    /// Allocate `pkt` from the scheduler's arena and schedule its
    /// delivery at `target` at absolute time `at`.
    ///
    /// This is the allocation-free way to inject packets straight into
    /// the event queue (test harnesses, benchmarks); the host/switch
    /// deliver paths return the box to the same arena, so a drained run
    /// ends with zero outstanding packets.
    pub fn schedule_deliver(&mut self, at: SimTime, target: NodeId, pkt: Packet) {
        let boxed = self.arena.alloc(pkt);
        self.schedule_at(at, target, EventKind::Deliver(boxed));
    }

    /// Pop the next event, advancing the clock to its timestamp.
    ///
    /// Public for benchmarking and custom drivers; the normal entry point
    /// is [`crate::sim::Simulation::run`].
    /// # Panics
    /// Panics if the queue yields an event timestamped before `now`
    /// (in every build profile; see [`Scheduler::schedule_at`]).
    pub fn pop(&mut self) -> Option<(NodeId, EventKind)> {
        let ev = match &mut self.queue {
            EventQueue::Heap(h) => h.pop(),
            EventQueue::Wheel(w) => w.pop(),
        }?;
        assert!(
            ev.time >= self.now,
            "event queue went backwards: {} event for node {} at {} behind now {}",
            ev.kind.name(),
            ev.target.0,
            ev.time,
            self.now
        );
        self.now = ev.time;
        Some((ev.target, ev.kind))
    }

    /// Peek at the timestamp of the next event without firing it.
    ///
    /// Takes `&mut self` because the wheel engine may advance its horizon
    /// to locate the next slot; the observable state (pop order, clock)
    /// is untouched. Amortized O(1), so the run loop can consult it every
    /// iteration when enforcing a time limit.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        match &mut self.queue {
            EventQueue::Heap(h) => h.peek().map(|e| e.time),
            EventQueue::Wheel(w) => w.peek_time(),
        }
    }

    /// Iterate over every pending event in unspecified order.
    ///
    /// Used by the [`crate::invariants`] checker to account for packets
    /// that are "on the wire" (scheduled [`EventKind::Deliver`]s) and
    /// timers that prove a flow can still make progress.
    pub fn pending_events(&self) -> impl Iterator<Item = (SimTime, NodeId, &EventKind)> {
        let it: Box<dyn Iterator<Item = &ScheduledEvent>> = match &self.queue {
            EventQueue::Heap(h) => Box::new(h.iter()),
            EventQueue::Wheel(w) => Box::new(w.iter()),
        };
        it.map(|e| (e.time, e.target, &e.kind))
    }
}

/// Per-event context handed to node handlers.
///
/// Holds mutable access to the scheduler and statistics but *not* to other
/// nodes: the only way to affect a remote node is to schedule a future
/// event for it (normally a packet delivery).
pub struct Ctx<'a> {
    /// The node currently handling an event.
    pub node: NodeId,
    /// The scheduler (clock + event queue).
    pub sched: &'a mut Scheduler,
    /// Measurement sink.
    pub stats: &'a mut StatsCollector,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Schedule an event on the handling node itself.
    pub fn schedule_self(&mut self, delay: SimDuration, kind: EventKind) {
        self.sched.schedule_in(delay, self.node, kind);
    }

    /// Schedule an event on an arbitrary node.
    pub fn schedule(&mut self, delay: SimDuration, target: NodeId, kind: EventKind) {
        self.sched.schedule_in(delay, target, kind);
    }

    /// Box `pkt` in recycled arena storage (the injection half of the
    /// packet lifecycle; see [`crate::packet::PacketArena`]).
    pub fn alloc_packet(&mut self, pkt: Packet) -> Box<Packet> {
        self.sched.arena_mut().alloc(pkt)
    }

    /// Return a packet box to the arena (terminal drop/blackhole sites).
    pub fn release_packet(&mut self, pkt: Box<Packet>) {
        self.sched.arena_mut().release(pkt);
    }

    /// Move the packet out of its box and recycle the storage (terminal
    /// delivery-to-consumer sites).
    pub fn take_packet(&mut self, pkt: Box<Packet>) -> Packet {
        self.sched.arena_mut().take(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut s = Scheduler::new();
        s.schedule_at(
            SimTime::from_micros(10),
            NodeId(0),
            EventKind::PluginTimer(0),
        );
        s.schedule_at(
            SimTime::from_micros(5),
            NodeId(1),
            EventKind::PluginTimer(1),
        );
        let (n1, k1) = s.pop().unwrap();
        assert_eq!(n1, NodeId(1));
        assert!(matches!(k1, EventKind::PluginTimer(1)));
        assert_eq!(s.now(), SimTime::from_micros(5));
        let (n2, _) = s.pop().unwrap();
        assert_eq!(n2, NodeId(0));
        assert_eq!(s.now(), SimTime::from_micros(10));
        assert!(s.pop().is_none());
    }

    #[test]
    fn same_time_events_fire_in_scheduling_order() {
        for engine in [EngineKind::Heap, EngineKind::Wheel] {
            let mut s = Scheduler::with_engine(engine);
            for i in 0..10u64 {
                s.schedule_at(
                    SimTime::from_micros(1),
                    NodeId(i as u32),
                    EventKind::PluginTimer(i),
                );
            }
            for i in 0..10u64 {
                let (n, _) = s.pop().unwrap();
                assert_eq!(n, NodeId(i as u32));
            }
        }
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule_at(
            SimTime::from_micros(100),
            NodeId(0),
            EventKind::PluginTimer(0),
        );
        s.pop().unwrap();
        s.schedule_in(
            SimDuration::from_micros(50),
            NodeId(0),
            EventKind::PluginTimer(1),
        );
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::from_micros(150));
    }

    // Deliberately NOT gated on debug_assertions: the causal-order check
    // must hold in release builds too (it guards every benchmark and
    // long chaos sweep, which run with --release).
    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics_in_every_profile() {
        let mut s = Scheduler::new();
        s.schedule_at(
            SimTime::from_micros(100),
            NodeId(0),
            EventKind::PluginTimer(0),
        );
        s.pop().unwrap();
        s.schedule_at(
            SimTime::from_micros(50),
            NodeId(0),
            EventKind::PluginTimer(1),
        );
    }

    #[test]
    fn past_scheduling_panic_names_the_event_and_clock() {
        let err = std::panic::catch_unwind(|| {
            let mut s = Scheduler::with_engine(EngineKind::Heap);
            s.schedule_at(
                SimTime::from_micros(100),
                NodeId(3),
                EventKind::PluginTimer(0),
            );
            s.pop().unwrap();
            s.schedule_at(
                SimTime::from_micros(50),
                NodeId(3),
                EventKind::PluginTimer(1),
            );
        })
        .expect_err("past scheduling must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a formatted string");
        for needle in ["scheduling into the past", "PluginTimer", "node 3", "now"] {
            assert!(
                msg.contains(needle),
                "panic message {msg:?} lacks {needle:?}"
            );
        }
    }

    #[test]
    fn schedule_batch_matches_sequential_semantics() {
        let mut batched = Scheduler::new();
        batched.schedule_batch((0..100u64).map(|i| {
            (
                SimTime::from_micros(i / 10), // ten-way ties per instant
                NodeId((i % 7) as u32),
                EventKind::PluginTimer(i),
            )
        }));
        let mut sequential = Scheduler::new();
        for i in 0..100u64 {
            sequential.schedule_at(
                SimTime::from_micros(i / 10),
                NodeId((i % 7) as u32),
                EventKind::PluginTimer(i),
            );
        }
        loop {
            match (batched.pop(), sequential.pop()) {
                (None, None) => break,
                (a, b) => {
                    let (an, ak) = a.expect("batched drained early");
                    let (bn, bk) = b.expect("sequential drained early");
                    assert_eq!(an, bn);
                    assert_eq!(batched.now(), sequential.now());
                    match (ak, bk) {
                        (EventKind::PluginTimer(x), EventKind::PluginTimer(y)) => {
                            assert_eq!(x, y)
                        }
                        _ => panic!("unexpected event kind"),
                    }
                }
            }
        }
    }

    /// An adapter reporting a wildly inflated upper bound (as `chain`ed
    /// or filtered iterators legitimately can). Before the lower-bound
    /// fix, `schedule_batch` passed this straight to `reserve` and
    /// aborted on capacity overflow.
    struct InflatedHint<I>(I);

    impl<I: Iterator> Iterator for InflatedHint<I> {
        type Item = I::Item;
        fn next(&mut self) -> Option<Self::Item> {
            self.0.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            (0, Some(usize::MAX))
        }
    }

    #[test]
    fn schedule_batch_survives_inflated_size_hints() {
        for engine in [EngineKind::Heap, EngineKind::Wheel] {
            let mut s = Scheduler::with_engine(engine);
            s.schedule_batch(InflatedHint((0..10u64).map(|i| {
                (
                    SimTime::from_micros(i),
                    NodeId(0),
                    EventKind::PluginTimer(i),
                )
            })));
            for i in 0..10u64 {
                let (_, k) = s.pop().expect("event scheduled");
                assert!(matches!(k, EventKind::PluginTimer(t) if t == i));
            }
            assert!(s.pop().is_none());
        }
    }
}
