//! Simulated time.
//!
//! All simulator time is kept in integer **nanoseconds** so that the event
//! queue never compares floating-point values and runs are exactly
//! reproducible across platforms. [`SimTime`] is an absolute instant
//! (nanoseconds since the start of the simulation) and [`SimDuration`] a
//! span between instants. [`Rate`] is a link or flow rate in bits per
//! second; it converts between byte counts and transmission times without
//! intermediate floats on the hot path.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time (nanoseconds since time zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for timers that are not armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since zero expressed in (floating point) seconds. For reporting
    /// only; never used in simulation logic.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time since zero expressed in (floating point) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Sentinel for "no timeout".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from floating-point seconds, rounding to the nearest
    /// nanosecond. Intended for workload generators (e.g. exponential
    /// inter-arrival draws), not for protocol logic.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in floating-point seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration in floating-point milliseconds (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in floating-point microseconds (reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Multiply by an integer factor, saturating at the maximum.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a floating-point factor (used by RTO backoff and EWMA-style
    /// estimators where protocol specs are defined over real factors).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0 && k.is_finite(), "invalid scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// `max(self, other)`.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `min(self, other)`.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, t: SimTime) -> SimDuration {
        debug_assert!(self >= t, "negative duration: {self:?} - {t:?}");
        SimDuration(self.0.saturating_sub(t.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        *self = *self - d;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

/// A data rate in bits per second.
///
/// Used for link capacities, reference rates handed out by arbitrators, and
/// explicit rates in PDQ headers. Conversions to/from transmission times are
/// integer-exact where possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rate(u64);

impl Rate {
    /// A rate of zero (a paused flow).
    pub const ZERO: Rate = Rate(0);

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Construct from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Rate(mbps * 1_000_000)
    }

    /// Construct from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Rate(gbps * 1_000_000_000)
    }

    /// Raw bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Rate in floating-point Gbit/s (reporting only).
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Is this rate zero (i.e. the flow is paused)?
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time it takes to serialize `bytes` at this rate.
    ///
    /// Rounds up to the next nanosecond so that back-to-back packets never
    /// overlap on a link. A zero rate yields [`SimDuration::MAX`].
    pub fn tx_time(self, bytes: u64) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// The number of whole bytes this rate delivers in `d`.
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        let bits = self.0 as u128 * d.0 as u128 / 1_000_000_000;
        (bits / 8).min(u64::MAX as u128) as u64
    }

    /// Scale by a floating-point factor, e.g. to split a delegated virtual
    /// link into fractional capacities.
    pub fn mul_f64(self, k: f64) -> Rate {
        debug_assert!(k >= 0.0 && k.is_finite(), "invalid scale: {k}");
        Rate((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction, used to compute residual link capacity.
    pub fn saturating_sub(self, other: Rate) -> Rate {
        Rate(self.0.saturating_sub(other.0))
    }

    /// Saturating addition, used to accumulate demands.
    pub fn saturating_add(self, other: Rate) -> Rate {
        Rate(self.0.saturating_add(other.0))
    }

    /// `min(self, other)`.
    pub fn min(self, other: Rate) -> Rate {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `max(self, other)`.
    pub fn max(self, other: Rate) -> Rate {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, r: Rate) -> Rate {
        Rate(self.0.saturating_add(r.0))
    }
}

impl AddAssign for Rate {
    fn add_assign(&mut self, r: Rate) {
        *self = *self + r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(5);
        let b = SimDuration::from_micros(3);
        assert_eq!(a + b, SimDuration::from_micros(8));
        assert_eq!(a - b, SimDuration::from_micros(2));
        // Saturating: never goes negative.
        assert_eq!(b - a, SimDuration::ZERO);
        assert_eq!(a * 2, SimDuration::from_micros(10));
        assert_eq!(a / 5, SimDuration::from_micros(1));
    }

    #[test]
    fn time_minus_time_is_duration() {
        let t0 = SimTime::from_micros(10);
        let t1 = SimTime::from_micros(25);
        assert_eq!(t1 - t0, SimDuration::from_micros(15));
        assert_eq!(t1.saturating_since(t0), SimDuration::from_micros(15));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t0.checked_since(t1), None);
    }

    #[test]
    fn rate_tx_time_exact() {
        // 1500 bytes at 1 Gbps = 12 microseconds exactly.
        let r = Rate::from_gbps(1);
        assert_eq!(r.tx_time(1500), SimDuration::from_micros(12));
        // 1500 bytes at 10 Gbps = 1.2 microseconds.
        let r10 = Rate::from_gbps(10);
        assert_eq!(r10.tx_time(1500), SimDuration::from_nanos(1_200));
    }

    #[test]
    fn rate_tx_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s -> rounds up.
        let r = Rate::from_bps(3);
        assert_eq!(r.tx_time(1).as_nanos(), 2_666_666_667);
    }

    #[test]
    fn zero_rate_is_paused() {
        assert!(Rate::ZERO.is_zero());
        assert_eq!(Rate::ZERO.tx_time(1), SimDuration::MAX);
        assert_eq!(Rate::ZERO.bytes_in(SimDuration::from_secs(10)), 0);
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let r = Rate::from_gbps(1);
        let d = r.tx_time(125_000); // 1 ms at 1 Gbps
        assert_eq!(d, SimDuration::from_millis(1));
        assert_eq!(r.bytes_in(d), 125_000);
    }

    #[test]
    fn rate_scaling() {
        let r = Rate::from_gbps(10);
        assert_eq!(r.mul_f64(0.25), Rate::from_mbps(2500));
        assert_eq!(r.saturating_sub(Rate::from_gbps(4)), Rate::from_gbps(6));
        assert_eq!(Rate::from_gbps(4).saturating_sub(r), Rate::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Rate::from_gbps(1)), "1.00Gbps");
        assert_eq!(format!("{}", Rate::from_mbps(250)), "250.00Mbps");
        assert_eq!(format!("{}", SimDuration::from_micros(300)), "300.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
    }
}
