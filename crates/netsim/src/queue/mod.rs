//! Queue disciplines for switch output ports.
//!
//! The paper's evaluation exercises three families of queueing behaviour:
//!
//! * plain FIFO drop-tail ([`DropTailQdisc`]) — baseline TCP;
//! * RED/ECN marking on instantaneous queue length ([`RedEcnQdisc`]) — the
//!   DCTCP family and each band of PASE's priority queues;
//! * strict priority scheduling over a small number of bands
//!   ([`StrictPrioQdisc`]) — PASE's use of the 4–10 hardware priority
//!   queues that commodity switches expose (paper Table 2).
//!
//! pFabric's rank-based scheduling/dropping queue lives in the `pfabric`
//! crate and plugs in through the same [`Qdisc`] trait.

mod droptail;
mod lossy;
mod red;
mod strict_prio;

pub use droptail::DropTailQdisc;
pub use lossy::LossyQdisc;
pub use red::RedEcnQdisc;
pub use strict_prio::StrictPrioQdisc;

use crate::packet::Packet;
use crate::time::SimTime;

/// Outcome of an enqueue attempt.
///
/// Disciplines that drop on overflow may drop either the arriving packet or
/// a previously queued one (pFabric evicts the lowest-priority resident);
/// the dropped packet is handed back so the port can account for it.
#[derive(Debug)]
pub enum Enqueued {
    /// The packet was accepted (it may have been ECN-marked in place).
    Ok,
    /// The arriving packet was rejected and dropped.
    RejectedArrival(Box<Packet>),
    /// The arriving packet was accepted; a lower-priority resident was
    /// evicted to make room (pFabric-style dropping).
    Evicted(Box<Packet>),
}

/// Counters every discipline keeps; read by the tracing layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QdiscStats {
    /// Packets accepted into the queue.
    pub enqueued_pkts: u64,
    /// Bytes accepted into the queue.
    pub enqueued_bytes: u64,
    /// Packets dropped (on arrival or by eviction).
    pub dropped_pkts: u64,
    /// Bytes dropped.
    pub dropped_bytes: u64,
    /// Packets that received an ECN CE mark.
    pub marked_pkts: u64,
    /// Of `dropped_pkts`, the drops forced by a fault injector (e.g.
    /// [`LossyQdisc`]) rather than by queue overflow. Ports fold these
    /// together with degraded-link losses into one synthetic-drop family.
    pub forced_drops: u64,
}

/// A queue discipline on a switch/host output port.
///
/// Implementations must be deterministic: identical sequences of calls must
/// produce identical outcomes.
///
/// Packets move in and out as `Box<Packet>`: a packet is boxed once when
/// a host injects it and stays in the same allocation through every
/// queue, in-flight slot and `Deliver` event until it is consumed, so
/// queue churn shuffles pointers instead of ~140-byte payloads.
pub trait Qdisc: Send {
    /// Offer `pkt` to the queue at time `now`.
    fn enqueue(&mut self, pkt: Box<Packet>, now: SimTime) -> Enqueued;

    /// Remove the next packet to transmit, if any.
    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>>;

    /// Number of packets currently queued.
    fn len_pkts(&self) -> usize;

    /// Number of bytes currently queued.
    fn len_bytes(&self) -> u64;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len_pkts() == 0
    }

    /// Visit every queued packet, in an unspecified but deterministic
    /// order. Used by accounting walks that must count in-network packets
    /// independently of the queue's own counters (e.g. the
    /// [`crate::invariants`] conservation check).
    fn for_each_queued(&self, f: &mut dyn FnMut(&Packet));

    /// Cumulative counters.
    fn stats(&self) -> QdiscStats;
}

/// A boxed constructor for a queue discipline, used by topology builders so
/// one configuration can stamp out a fresh qdisc per port.
pub type QdiscFactory = Box<dyn Fn() -> Box<dyn Qdisc> + Send + Sync>;

/// Convenience: build a [`QdiscFactory`] from a closure.
pub fn factory<F, Q>(f: F) -> QdiscFactory
where
    F: Fn() -> Q + Send + Sync + 'static,
    Q: Qdisc + 'static,
{
    Box::new(move || Box::new(f()))
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use crate::ids::{FlowId, NodeId};

    /// A data packet with a given flow id, priority band and rank.
    pub fn pkt(flow: u64, prio: u8, rank: u64) -> Box<Packet> {
        let mut p = Packet::data(FlowId(flow), NodeId(0), NodeId(1), 0, 1460);
        p.prio = prio;
        p.rank = rank;
        Box::new(p)
    }

    /// A header-only, non-ECN-capable packet (like an ACK).
    pub fn ack_pkt(flow: u64) -> Box<Packet> {
        Box::new(Packet::ack(FlowId(flow), NodeId(1), NodeId(0), 0))
    }
}
