//! DCTCP-style RED/ECN queue.
//!
//! DCTCP configures RED degenerately: low and high thresholds are both set
//! to `K` and marking is based on the *instantaneous* queue length rather
//! than a moving average (paper §3.3, following the DCTCP paper). An
//! arriving ECN-capable packet is marked CE when the instantaneous queue
//! occupancy is at least `K` packets; non-ECN-capable packets are only
//! dropped on overflow, never marked.

use std::collections::VecDeque;

use super::{Enqueued, Qdisc, QdiscStats};
use crate::packet::Packet;
use crate::time::SimTime;

/// FIFO queue with threshold ECN marking on instantaneous occupancy.
#[derive(Debug)]
pub struct RedEcnQdisc {
    queue: VecDeque<Box<Packet>>,
    cap_pkts: usize,
    /// Marking threshold `K` in packets.
    mark_thresh: usize,
    bytes: u64,
    stats: QdiscStats,
}

impl RedEcnQdisc {
    /// Create a queue of `cap_pkts` capacity marking CE when occupancy
    /// reaches `mark_thresh` packets.
    pub fn new(cap_pkts: usize, mark_thresh: usize) -> Self {
        assert!(cap_pkts > 0, "queue capacity must be positive");
        assert!(
            mark_thresh <= cap_pkts,
            "marking threshold {mark_thresh} exceeds capacity {cap_pkts}"
        );
        RedEcnQdisc {
            queue: VecDeque::with_capacity(cap_pkts.min(4096)),
            cap_pkts,
            mark_thresh,
            bytes: 0,
            stats: QdiscStats::default(),
        }
    }

    /// The configured marking threshold `K`.
    pub fn mark_thresh(&self) -> usize {
        self.mark_thresh
    }

    /// The configured capacity in packets.
    pub fn capacity(&self) -> usize {
        self.cap_pkts
    }
}

impl Qdisc for RedEcnQdisc {
    fn enqueue(&mut self, mut pkt: Box<Packet>, _now: SimTime) -> Enqueued {
        if self.queue.len() >= self.cap_pkts {
            self.stats.dropped_pkts += 1;
            self.stats.dropped_bytes += pkt.wire_bytes as u64;
            return Enqueued::RejectedArrival(pkt);
        }
        // Mark on instantaneous occupancy, evaluated at arrival (DCTCP).
        if pkt.ecn_capable && self.queue.len() >= self.mark_thresh {
            pkt.ecn_ce = true;
            self.stats.marked_pkts += 1;
        }
        self.bytes += pkt.wire_bytes as u64;
        self.stats.enqueued_pkts += 1;
        self.stats.enqueued_bytes += pkt.wire_bytes as u64;
        self.queue.push_back(pkt);
        Enqueued::Ok
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Box<Packet>> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.wire_bytes as u64;
        Some(pkt)
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn for_each_queued(&self, f: &mut dyn FnMut(&Packet)) {
        for p in &self.queue {
            f(p);
        }
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ack_pkt, pkt};
    use super::*;

    #[test]
    fn marks_above_threshold() {
        let mut q = RedEcnQdisc::new(10, 2);
        q.enqueue(pkt(0, 0, 0), SimTime::ZERO); // occupancy 0 -> no mark
        q.enqueue(pkt(1, 0, 0), SimTime::ZERO); // occupancy 1 -> no mark
        q.enqueue(pkt(2, 0, 0), SimTime::ZERO); // occupancy 2 >= K -> mark
        q.enqueue(pkt(3, 0, 0), SimTime::ZERO); // occupancy 3 >= K -> mark
        let marks: Vec<bool> = (0..4)
            .map(|_| q.dequeue(SimTime::ZERO).unwrap().ecn_ce)
            .collect();
        assert_eq!(marks, vec![false, false, true, true]);
        assert_eq!(q.stats().marked_pkts, 2);
    }

    #[test]
    fn non_ecn_packets_never_marked() {
        let mut q = RedEcnQdisc::new(10, 0);
        q.enqueue(ack_pkt(0), SimTime::ZERO);
        let p = q.dequeue(SimTime::ZERO).unwrap();
        assert!(!p.ecn_ce);
        assert_eq!(q.stats().marked_pkts, 0);
    }

    #[test]
    fn drops_on_overflow() {
        let mut q = RedEcnQdisc::new(1, 1);
        assert!(matches!(
            q.enqueue(pkt(0, 0, 0), SimTime::ZERO),
            Enqueued::Ok
        ));
        assert!(matches!(
            q.enqueue(pkt(1, 0, 0), SimTime::ZERO),
            Enqueued::RejectedArrival(_)
        ));
        assert_eq!(q.stats().dropped_pkts, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn threshold_above_capacity_rejected() {
        let _ = RedEcnQdisc::new(5, 6);
    }

    #[test]
    fn fifo_within_queue() {
        let mut q = RedEcnQdisc::new(8, 8);
        for i in 0..4 {
            q.enqueue(pkt(i, 0, 0), SimTime::ZERO);
        }
        for i in 0..4 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().flow.0, i);
        }
    }
}
