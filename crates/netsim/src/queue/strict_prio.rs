//! Strict-priority scheduling over a small number of bands.
//!
//! Models the PRIO + per-class RED/ECN configuration PASE uses on commodity
//! switches (paper §3.3): packets are classified into one of `n` bands by
//! their `prio` field (0 = highest); dequeue always serves the lowest
//! non-empty band index; each band is an independent [`RedEcnQdisc`] with
//! its own capacity and marking threshold.
//!
//! Preemption between bands is what gives PASE its seamless flow switching:
//! as soon as the top band drains, the next band's head packet is eligible
//! on the very next transmission opportunity — no control-plane round trip.

use super::{Enqueued, Qdisc, QdiscStats, RedEcnQdisc};
use crate::packet::Packet;
use crate::time::SimTime;

/// Strict-priority qdisc with per-band RED/ECN.
#[derive(Debug)]
pub struct StrictPrioQdisc {
    bands: Vec<RedEcnQdisc>,
}

impl StrictPrioQdisc {
    /// Create `n_bands` bands, each holding up to `band_cap_pkts` packets
    /// and marking at `mark_thresh` packets.
    ///
    /// Commodity switches expose 3–10 such queues per port (paper Table 2);
    /// the paper's PASE configuration uses 8 bands and a 500-packet buffer.
    pub fn new(n_bands: usize, band_cap_pkts: usize, mark_thresh: usize) -> Self {
        assert!(n_bands > 0, "need at least one band");
        assert!(n_bands <= 64, "unreasonable number of priority bands");
        StrictPrioQdisc {
            bands: (0..n_bands)
                .map(|_| RedEcnQdisc::new(band_cap_pkts, mark_thresh))
                .collect(),
        }
    }

    /// Number of bands.
    pub fn n_bands(&self) -> usize {
        self.bands.len()
    }

    /// Occupancy of an individual band in packets.
    pub fn band_len_pkts(&self, band: usize) -> usize {
        self.bands[band].len_pkts()
    }

    /// Clamp a packet's priority to a valid band index.
    fn band_of(&self, pkt: &Packet) -> usize {
        (pkt.prio as usize).min(self.bands.len() - 1)
    }
}

impl Qdisc for StrictPrioQdisc {
    fn enqueue(&mut self, pkt: Box<Packet>, now: SimTime) -> Enqueued {
        let band = self.band_of(&pkt);
        self.bands[band].enqueue(pkt, now)
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>> {
        for band in &mut self.bands {
            if !band.is_empty() {
                return band.dequeue(now);
            }
        }
        None
    }

    fn len_pkts(&self) -> usize {
        self.bands.iter().map(|b| b.len_pkts()).sum()
    }

    fn len_bytes(&self) -> u64 {
        self.bands.iter().map(|b| b.len_bytes()).sum()
    }

    fn for_each_queued(&self, f: &mut dyn FnMut(&Packet)) {
        for b in &self.bands {
            b.for_each_queued(f);
        }
    }

    fn stats(&self) -> QdiscStats {
        let mut total = QdiscStats::default();
        for b in &self.bands {
            let s = b.stats();
            total.enqueued_pkts += s.enqueued_pkts;
            total.enqueued_bytes += s.enqueued_bytes;
            total.dropped_pkts += s.dropped_pkts;
            total.dropped_bytes += s.dropped_bytes;
            total.marked_pkts += s.marked_pkts;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::pkt;
    use super::*;

    #[test]
    fn higher_band_preempts() {
        let mut q = StrictPrioQdisc::new(4, 100, 100);
        q.enqueue(pkt(0, 3, 0), SimTime::ZERO);
        q.enqueue(pkt(1, 1, 0), SimTime::ZERO);
        q.enqueue(pkt(2, 2, 0), SimTime::ZERO);
        q.enqueue(pkt(3, 1, 0), SimTime::ZERO);
        let order: Vec<u64> = (0..4)
            .map(|_| q.dequeue(SimTime::ZERO).unwrap().flow.0)
            .collect();
        // Band 1 FIFO first (flows 1 then 3), then band 2, then band 3.
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn out_of_range_priority_clamps_to_lowest_band() {
        let mut q = StrictPrioQdisc::new(2, 100, 100);
        q.enqueue(pkt(0, 200, 0), SimTime::ZERO);
        q.enqueue(pkt(1, 0, 0), SimTime::ZERO);
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().flow.0, 1);
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().flow.0, 0);
    }

    #[test]
    fn per_band_marking_is_independent() {
        // K = 1: second packet in the same band gets marked, but the first
        // packet of a different band does not.
        let mut q = StrictPrioQdisc::new(2, 100, 1);
        q.enqueue(pkt(0, 0, 0), SimTime::ZERO); // band 0, occ 0 -> unmarked
        q.enqueue(pkt(1, 0, 0), SimTime::ZERO); // band 0, occ 1 -> marked
        q.enqueue(pkt(2, 1, 0), SimTime::ZERO); // band 1, occ 0 -> unmarked
        assert!(!q.dequeue(SimTime::ZERO).unwrap().ecn_ce);
        assert!(q.dequeue(SimTime::ZERO).unwrap().ecn_ce);
        assert!(!q.dequeue(SimTime::ZERO).unwrap().ecn_ce);
        assert_eq!(q.stats().marked_pkts, 1);
    }

    #[test]
    fn band_overflow_drops_only_that_band() {
        let mut q = StrictPrioQdisc::new(2, 1, 1);
        assert!(matches!(
            q.enqueue(pkt(0, 0, 0), SimTime::ZERO),
            Enqueued::Ok
        ));
        assert!(matches!(
            q.enqueue(pkt(1, 0, 0), SimTime::ZERO),
            Enqueued::RejectedArrival(_)
        ));
        assert!(matches!(
            q.enqueue(pkt(2, 1, 0), SimTime::ZERO),
            Enqueued::Ok
        ));
        assert_eq!(q.len_pkts(), 2);
        assert_eq!(q.stats().dropped_pkts, 1);
    }

    #[test]
    fn aggregate_accounting() {
        let mut q = StrictPrioQdisc::new(3, 10, 10);
        q.enqueue(pkt(0, 0, 0), SimTime::ZERO);
        q.enqueue(pkt(1, 2, 0), SimTime::ZERO);
        assert_eq!(q.len_pkts(), 2);
        assert_eq!(q.len_bytes(), 3000);
        assert_eq!(q.band_len_pkts(0), 1);
        assert_eq!(q.band_len_pkts(1), 0);
        assert_eq!(q.band_len_pkts(2), 1);
    }
}
