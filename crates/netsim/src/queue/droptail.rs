//! FIFO drop-tail queue.

use std::collections::VecDeque;

use super::{Enqueued, Qdisc, QdiscStats};
use crate::packet::Packet;
use crate::time::SimTime;

/// A plain FIFO queue that drops arriving packets when full.
///
/// Capacity is expressed in packets, matching how the paper reports queue
/// sizes (Table 3: e.g. `qSize = 225 pkts` for DCTCP).
#[derive(Debug)]
pub struct DropTailQdisc {
    queue: VecDeque<Box<Packet>>,
    cap_pkts: usize,
    bytes: u64,
    stats: QdiscStats,
}

impl DropTailQdisc {
    /// Create a drop-tail queue holding at most `cap_pkts` packets.
    pub fn new(cap_pkts: usize) -> Self {
        assert!(cap_pkts > 0, "queue capacity must be positive");
        DropTailQdisc {
            queue: VecDeque::with_capacity(cap_pkts.min(4096)),
            cap_pkts,
            bytes: 0,
            stats: QdiscStats::default(),
        }
    }

    /// The configured capacity in packets.
    pub fn capacity(&self) -> usize {
        self.cap_pkts
    }
}

impl Qdisc for DropTailQdisc {
    fn enqueue(&mut self, pkt: Box<Packet>, _now: SimTime) -> Enqueued {
        if self.queue.len() >= self.cap_pkts {
            self.stats.dropped_pkts += 1;
            self.stats.dropped_bytes += pkt.wire_bytes as u64;
            return Enqueued::RejectedArrival(pkt);
        }
        self.bytes += pkt.wire_bytes as u64;
        self.stats.enqueued_pkts += 1;
        self.stats.enqueued_bytes += pkt.wire_bytes as u64;
        self.queue.push_back(pkt);
        Enqueued::Ok
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Box<Packet>> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.wire_bytes as u64;
        Some(pkt)
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn for_each_queued(&self, f: &mut dyn FnMut(&Packet)) {
        for p in &self.queue {
            f(p);
        }
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::pkt;
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = DropTailQdisc::new(10);
        for i in 0..5 {
            assert!(matches!(
                q.enqueue(pkt(i, 0, 0), SimTime::ZERO),
                Enqueued::Ok
            ));
        }
        for i in 0..5 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().flow.0, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drops_when_full() {
        let mut q = DropTailQdisc::new(2);
        assert!(matches!(
            q.enqueue(pkt(0, 0, 0), SimTime::ZERO),
            Enqueued::Ok
        ));
        assert!(matches!(
            q.enqueue(pkt(1, 0, 0), SimTime::ZERO),
            Enqueued::Ok
        ));
        match q.enqueue(pkt(2, 0, 0), SimTime::ZERO) {
            Enqueued::RejectedArrival(p) => assert_eq!(p.flow.0, 2),
            other => panic!("expected drop, got {other:?}"),
        }
        assert_eq!(q.stats().dropped_pkts, 1);
        assert_eq!(q.stats().enqueued_pkts, 2);
        assert_eq!(q.len_pkts(), 2);
    }

    #[test]
    fn byte_accounting() {
        let mut q = DropTailQdisc::new(4);
        q.enqueue(pkt(0, 0, 0), SimTime::ZERO);
        q.enqueue(pkt(1, 0, 0), SimTime::ZERO);
        assert_eq!(q.len_bytes(), 2 * 1500);
        q.dequeue(SimTime::ZERO);
        assert_eq!(q.len_bytes(), 1500);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DropTailQdisc::new(0);
    }
}
