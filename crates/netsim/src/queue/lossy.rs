//! Deterministic fault injection.
//!
//! [`LossyQdisc`] wraps any inner discipline and forcibly drops every
//! `n`-th data packet offered to it. Deterministic (counter-based, not
//! random) so experiments with injected faults stay reproducible — in the
//! spirit of smoltcp's `--drop-chance` example option, but without
//! perturbing the workload RNG.

use super::{Enqueued, Qdisc, QdiscStats};
use crate::packet::{Packet, PacketKind};
use crate::time::SimTime;

/// A qdisc wrapper that drops every `n`-th packet of a chosen kind.
pub struct LossyQdisc {
    inner: Box<dyn Qdisc>,
    /// Drop period: every `drop_every`-th matching packet dies.
    drop_every: u64,
    /// Which packet kind the injector targets.
    target: PacketKind,
    seen_data: u64,
    forced_drops: u64,
}

impl LossyQdisc {
    /// Wrap `inner`, dropping every `drop_every`-th data packet.
    /// `drop_every = 0` disables injection entirely.
    pub fn new(inner: Box<dyn Qdisc>, drop_every: u64) -> LossyQdisc {
        Self::for_kind(inner, drop_every, PacketKind::Data)
    }

    /// Wrap `inner`, dropping every `drop_every`-th packet of `target`
    /// kind — e.g. `PacketKind::Ctrl` to test control-plane loss
    /// tolerance.
    pub fn for_kind(inner: Box<dyn Qdisc>, drop_every: u64, target: PacketKind) -> LossyQdisc {
        LossyQdisc {
            inner,
            drop_every,
            target,
            seen_data: 0,
            forced_drops: 0,
        }
    }

    /// Packets dropped by injection (excluding the inner qdisc's own
    /// overflow drops).
    pub fn forced_drops(&self) -> u64 {
        self.forced_drops
    }
}

impl Qdisc for LossyQdisc {
    fn enqueue(&mut self, pkt: Packet, now: SimTime) -> Enqueued {
        if self.drop_every > 0 && pkt.kind == self.target {
            self.seen_data += 1;
            if self.seen_data.is_multiple_of(self.drop_every) {
                self.forced_drops += 1;
                return Enqueued::RejectedArrival(pkt);
            }
        }
        self.inner.enqueue(pkt, now)
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    fn len_pkts(&self) -> usize {
        self.inner.len_pkts()
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn stats(&self) -> QdiscStats {
        let mut s = self.inner.stats();
        s.dropped_pkts += self.forced_drops;
        s
    }
}

impl core::fmt::Debug for LossyQdisc {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LossyQdisc")
            .field("drop_every", &self.drop_every)
            .field("forced_drops", &self.forced_drops)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ack_pkt, pkt};
    use super::super::DropTailQdisc;
    use super::*;
    use crate::ids::{FlowId, NodeId};

    fn lossy(drop_every: u64) -> LossyQdisc {
        LossyQdisc::new(Box::new(DropTailQdisc::new(100)), drop_every)
    }

    #[test]
    fn drops_every_nth_data_packet() {
        let mut q = lossy(3);
        let mut dropped = 0;
        for i in 0..9 {
            if matches!(q.enqueue(pkt(i, 0, 0), SimTime::ZERO), Enqueued::RejectedArrival(_)) {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 3);
        assert_eq!(q.forced_drops(), 3);
        assert_eq!(q.len_pkts(), 6);
        assert_eq!(q.stats().dropped_pkts, 3);
    }

    #[test]
    fn acks_are_never_injected() {
        let mut q = lossy(1); // would drop every data packet
        for i in 0..5 {
            assert!(matches!(q.enqueue(ack_pkt(i), SimTime::ZERO), Enqueued::Ok));
        }
        assert_eq!(q.forced_drops(), 0);
    }

    #[test]
    fn kind_targeting_hits_only_that_kind() {
        let mut q = LossyQdisc::for_kind(Box::new(DropTailQdisc::new(100)), 1, PacketKind::Ctrl);
        // Data passes untouched.
        assert!(matches!(q.enqueue(pkt(0, 0, 0), SimTime::ZERO), Enqueued::Ok));
        // Every ctrl packet dies.
        let ctrl = Packet::ctrl(FlowId(1), NodeId(0), NodeId(1), Box::new(1u8));
        assert!(matches!(
            q.enqueue(ctrl, SimTime::ZERO),
            Enqueued::RejectedArrival(_)
        ));
        assert_eq!(q.forced_drops(), 1);
    }

    #[test]
    fn zero_period_disables_injection() {
        let mut q = lossy(0);
        for i in 0..10 {
            assert!(matches!(q.enqueue(pkt(i, 0, 0), SimTime::ZERO), Enqueued::Ok));
        }
        assert_eq!(q.forced_drops(), 0);
    }
}
