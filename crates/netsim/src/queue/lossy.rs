//! Deterministic fault injection.
//!
//! [`LossyQdisc`] wraps any inner discipline and forcibly drops packets of
//! a chosen kind on a deterministic schedule — either every `n`-th
//! matching packet, or a contiguous burst. Deterministic (counter-based,
//! not random) so experiments with injected faults stay reproducible — in
//! the spirit of smoltcp's `--drop-chance` example option, but without
//! perturbing the workload RNG. The burst mode backs the
//! [`crate::fault::FaultEvent::CtrlLossBurst`] fault.

use super::{Enqueued, Qdisc, QdiscStats};
use crate::packet::{Packet, PacketKind};
use crate::time::SimTime;

/// Which matching packets the injector kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DropMode {
    /// Every `n`-th matching packet dies (`n = 0` disables injection).
    EveryNth(u64),
    /// Matching packets numbered `start_nth..start_nth + len` (1-based)
    /// die; everything outside the burst passes through.
    Burst {
        /// 1-based index of the first packet to drop.
        start_nth: u64,
        /// Number of consecutive matching packets dropped.
        len: u64,
    },
}

/// A qdisc wrapper that deterministically drops packets of a chosen kind.
pub struct LossyQdisc {
    inner: Box<dyn Qdisc>,
    mode: DropMode,
    /// Which packet kind the injector targets.
    target: PacketKind,
    seen: u64,
    forced_drops: u64,
}

impl LossyQdisc {
    /// Wrap `inner`, dropping every `drop_every`-th data packet.
    /// `drop_every = 0` disables injection entirely.
    pub fn new(inner: Box<dyn Qdisc>, drop_every: u64) -> LossyQdisc {
        Self::for_kind(inner, drop_every, PacketKind::Data)
    }

    /// Wrap `inner`, dropping every `drop_every`-th packet of `target`
    /// kind — e.g. `PacketKind::Ctrl` to test control-plane loss
    /// tolerance.
    pub fn for_kind(inner: Box<dyn Qdisc>, drop_every: u64, target: PacketKind) -> LossyQdisc {
        LossyQdisc {
            inner,
            mode: DropMode::EveryNth(drop_every),
            target,
            seen: 0,
            forced_drops: 0,
        }
    }

    /// Wrap `inner`, dropping the burst of data packets numbered
    /// `start_nth..start_nth + len` (1-based count of matching packets
    /// seen). Packets before and after the burst pass through untouched.
    pub fn drop_burst(inner: Box<dyn Qdisc>, start_nth: u64, len: u64) -> LossyQdisc {
        Self::drop_burst_for_kind(inner, start_nth, len, PacketKind::Data)
    }

    /// Burst mode targeting a specific packet kind (the
    /// `CtrlLossBurst` fault uses `PacketKind::Ctrl`).
    pub fn drop_burst_for_kind(
        inner: Box<dyn Qdisc>,
        start_nth: u64,
        len: u64,
        target: PacketKind,
    ) -> LossyQdisc {
        assert!(start_nth > 0, "burst positions are 1-based");
        LossyQdisc {
            inner,
            mode: DropMode::Burst { start_nth, len },
            target,
            seen: 0,
            forced_drops: 0,
        }
    }

    /// Packets dropped by injection (excluding the inner qdisc's own
    /// overflow drops).
    pub fn forced_drops(&self) -> u64 {
        self.forced_drops
    }

    /// Whether the injector can still drop anything (always true for the
    /// periodic mode with a nonzero period; false once a burst is spent).
    pub fn is_armed(&self) -> bool {
        match self.mode {
            DropMode::EveryNth(n) => n > 0,
            DropMode::Burst { start_nth, len } => self.seen < start_nth + len - 1 && len > 0,
        }
    }

    fn should_drop(&self) -> bool {
        // `seen` has already been incremented for the current packet.
        match self.mode {
            DropMode::EveryNth(n) => n > 0 && self.seen.is_multiple_of(n),
            DropMode::Burst { start_nth, len } => {
                self.seen >= start_nth && self.seen < start_nth + len
            }
        }
    }
}

impl Qdisc for LossyQdisc {
    fn enqueue(&mut self, pkt: Box<Packet>, now: SimTime) -> Enqueued {
        if pkt.kind == self.target {
            self.seen += 1;
            if self.should_drop() {
                self.forced_drops += 1;
                return Enqueued::RejectedArrival(pkt);
            }
        }
        self.inner.enqueue(pkt, now)
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>> {
        self.inner.dequeue(now)
    }

    fn len_pkts(&self) -> usize {
        self.inner.len_pkts()
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn for_each_queued(&self, f: &mut dyn FnMut(&Packet)) {
        self.inner.for_each_queued(f);
    }

    fn stats(&self) -> QdiscStats {
        let mut s = self.inner.stats();
        s.dropped_pkts += self.forced_drops;
        s.forced_drops += self.forced_drops;
        s
    }
}

impl core::fmt::Debug for LossyQdisc {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LossyQdisc")
            .field("mode", &self.mode)
            .field("forced_drops", &self.forced_drops)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ack_pkt, pkt};
    use super::super::DropTailQdisc;
    use super::*;
    use crate::ids::{FlowId, NodeId};

    fn lossy(drop_every: u64) -> LossyQdisc {
        LossyQdisc::new(Box::new(DropTailQdisc::new(100)), drop_every)
    }

    #[test]
    fn drops_every_nth_data_packet() {
        let mut q = lossy(3);
        let mut dropped = 0;
        for i in 0..9 {
            if matches!(
                q.enqueue(pkt(i, 0, 0), SimTime::ZERO),
                Enqueued::RejectedArrival(_)
            ) {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 3);
        assert_eq!(q.forced_drops(), 3);
        assert_eq!(q.len_pkts(), 6);
        assert_eq!(q.stats().dropped_pkts, 3);
        assert_eq!(q.stats().forced_drops, 3, "injection is tallied separately");
    }

    #[test]
    fn acks_are_never_injected() {
        let mut q = lossy(1); // would drop every data packet
        for i in 0..5 {
            assert!(matches!(q.enqueue(ack_pkt(i), SimTime::ZERO), Enqueued::Ok));
        }
        assert_eq!(q.forced_drops(), 0);
    }

    #[test]
    fn kind_targeting_hits_only_that_kind() {
        let mut q = LossyQdisc::for_kind(Box::new(DropTailQdisc::new(100)), 1, PacketKind::Ctrl);
        // Data passes untouched.
        assert!(matches!(
            q.enqueue(pkt(0, 0, 0), SimTime::ZERO),
            Enqueued::Ok
        ));
        // Every ctrl packet dies.
        let ctrl = Box::new(Packet::ctrl(FlowId(1), NodeId(0), NodeId(1), Box::new(1u8)));
        assert!(matches!(
            q.enqueue(ctrl, SimTime::ZERO),
            Enqueued::RejectedArrival(_)
        ));
        assert_eq!(q.forced_drops(), 1);
    }

    #[test]
    fn zero_period_disables_injection() {
        let mut q = lossy(0);
        for i in 0..10 {
            assert!(matches!(
                q.enqueue(pkt(i, 0, 0), SimTime::ZERO),
                Enqueued::Ok
            ));
        }
        assert_eq!(q.forced_drops(), 0);
        assert!(!q.is_armed());
    }

    #[test]
    fn burst_drops_exactly_the_window() {
        // Drop matching packets 3, 4 and 5.
        let mut q = LossyQdisc::drop_burst(Box::new(DropTailQdisc::new(100)), 3, 3);
        let mut outcomes = Vec::new();
        for i in 0..8 {
            outcomes.push(matches!(
                q.enqueue(pkt(i, 0, 0), SimTime::ZERO),
                Enqueued::RejectedArrival(_)
            ));
        }
        assert_eq!(
            outcomes,
            vec![false, false, true, true, true, false, false, false]
        );
        assert_eq!(q.forced_drops(), 3);
        assert!(!q.is_armed(), "spent burst is a pass-through");
    }

    #[test]
    fn burst_from_first_packet() {
        let mut q = LossyQdisc::drop_burst(Box::new(DropTailQdisc::new(100)), 1, 2);
        assert!(matches!(
            q.enqueue(pkt(0, 0, 0), SimTime::ZERO),
            Enqueued::RejectedArrival(_)
        ));
        assert!(matches!(
            q.enqueue(pkt(1, 0, 0), SimTime::ZERO),
            Enqueued::RejectedArrival(_)
        ));
        assert!(matches!(
            q.enqueue(pkt(2, 0, 0), SimTime::ZERO),
            Enqueued::Ok
        ));
        assert_eq!(q.forced_drops(), 2);
    }

    #[test]
    fn burst_counts_only_target_kind() {
        let mut q = LossyQdisc::drop_burst_for_kind(
            Box::new(DropTailQdisc::new(100)),
            1,
            2,
            PacketKind::Ctrl,
        );
        // Data is neither counted nor dropped.
        for i in 0..5 {
            assert!(matches!(
                q.enqueue(pkt(i, 0, 0), SimTime::ZERO),
                Enqueued::Ok
            ));
        }
        let ctrl = |f: u64| Box::new(Packet::ctrl(FlowId(f), NodeId(0), NodeId(1), Box::new(0u8)));
        assert!(matches!(
            q.enqueue(ctrl(10), SimTime::ZERO),
            Enqueued::RejectedArrival(_)
        ));
        assert!(matches!(
            q.enqueue(ctrl(11), SimTime::ZERO),
            Enqueued::RejectedArrival(_)
        ));
        assert!(matches!(q.enqueue(ctrl(12), SimTime::ZERO), Enqueued::Ok));
        assert_eq!(q.forced_drops(), 2);
    }

    #[test]
    fn zero_length_burst_is_inert() {
        let mut q = LossyQdisc::drop_burst(Box::new(DropTailQdisc::new(100)), 1, 0);
        for i in 0..5 {
            assert!(matches!(
                q.enqueue(pkt(i, 0, 0), SimTime::ZERO),
                Enqueued::Ok
            ));
        }
        assert_eq!(q.forced_drops(), 0);
        assert!(!q.is_armed());
    }
}
