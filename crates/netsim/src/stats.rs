//! Measurement collection.
//!
//! The collector records per-flow lifecycle events (start, completion,
//! retransmissions, timeouts) plus global counters for dropped packets and
//! control-plane traffic. It is threaded through every event handler via
//! [`crate::engine::Ctx`], so protocol code can attribute costs without
//! carrying its own bookkeeping.

use std::collections::BTreeMap;

use crate::flow::FlowSpec;
use crate::ids::{FlowId, NodeId};
use crate::packet::{Packet, PacketKind};
use crate::time::{SimDuration, SimTime};
use crate::trace::{AbortReason, TraceEvent, TraceSink};

/// Lifecycle record for one flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// The flow's specification.
    pub spec: FlowSpec,
    /// When the sender agent was instantiated.
    pub started: SimTime,
    /// When the sender observed the final acknowledgment, if completed.
    pub completed: Option<SimTime>,
    /// Whether the flow was aborted (e.g. PDQ early termination) rather
    /// than finishing its transfer. Aborted flows record a `completed`
    /// time (so runs terminate) but never count as meeting a deadline.
    pub aborted: bool,
    /// Why the flow was aborted; `None` unless `aborted` is set.
    pub abort_reason: Option<AbortReason>,
    /// Payload bytes retransmitted.
    pub retransmitted_bytes: u64,
    /// Retransmission timeouts experienced.
    pub timeouts: u64,
    /// Header-only probe packets sent.
    pub probes_sent: u64,
    /// Data packets of this flow dropped anywhere in the network.
    pub drops: u64,
}

impl FlowRecord {
    /// Flow completion time, if the flow finished.
    pub fn fct(&self) -> Option<SimDuration> {
        self.completed.map(|t| t - self.spec.start)
    }

    /// Whether the flow met its deadline. `None` when the flow has no
    /// deadline; incomplete or aborted flows with a deadline count as
    /// missed.
    pub fn met_deadline(&self) -> Option<bool> {
        let deadline = self.spec.deadline_abs()?;
        Some(match self.completed {
            Some(t) => !self.aborted && t <= deadline,
            None => false,
        })
    }
}

/// Global and per-flow measurement state for one simulation run.
#[derive(Default)]
pub struct StatsCollector {
    flows: BTreeMap<FlowId, FlowRecord>,
    /// Flows with `measured = true` that have been scheduled.
    expected_measured: usize,
    /// Measured flows that have completed.
    completed_measured: usize,
    /// Data packets dropped in queues (all flows).
    pub data_pkts_dropped: u64,
    /// Data packets accepted into queues (all flows); drop-rate denominator.
    pub data_pkts_enqueued: u64,
    /// Data packets injected by host endpoints (senders and services),
    /// counting each retransmitted copy separately. Left-hand side of the
    /// byte-conservation invariant (see [`crate::invariants`]).
    pub data_pkts_injected: u64,
    /// Data packets delivered to their destination host.
    pub data_pkts_delivered: u64,
    /// Data packets that reached a crashed destination host and were lost
    /// there (no live agents to consume them). A separate conservation
    /// term so the books still balance across host crashes.
    pub data_pkts_lost_to_crash: u64,
    /// Data packets corrupted in flight by a degraded link and discarded
    /// by the destination host's checksum. A separate conservation term
    /// (see [`crate::invariants`]) so gray losses stay distinguishable
    /// from queue drops.
    pub data_pkts_corrupted: u64,
    /// Corrupted-and-discarded data packets per destination host.
    corrupted_by_host: BTreeMap<NodeId, u64>,
    /// Aborted flows per source host, keyed by the flow's source.
    aborts_by_host: BTreeMap<NodeId, u64>,
    /// Data packets blackholed at switches (no surviving next hop).
    /// Counted separately from [`StatsCollector::data_pkts_dropped`].
    pub data_pkts_blackholed: u64,
    /// Packets of any kind blackholed at switches.
    pub blackhole_pkts: u64,
    /// Data packets consumed by switch plugins instead of forwarded.
    pub data_pkts_consumed: u64,
    /// Control-plane packets sent (PASE arbitration traffic).
    pub ctrl_pkts: u64,
    /// Control-plane bytes sent.
    pub ctrl_bytes: u64,
    /// Control-plane messages processed by arbitrators.
    pub ctrl_msgs_processed: u64,
    /// Control messages shed by overloaded arbitrators (budget exceeded).
    pub ctrl_msgs_shed: u64,
    /// Control packets dropped in queues or on downed/degraded links.
    pub ctrl_pkts_dropped: u64,
    /// Control packets blackholed at switches (no surviving next hop).
    pub ctrl_pkts_blackholed: u64,
    /// Control packets corrupted in flight and discarded by the
    /// destination's checksum.
    pub ctrl_pkts_corrupted: u64,
    /// Control messages that arrived at a crashed control process or
    /// crashed host and evaporated there.
    pub ctrl_lost_to_crash: u64,
    /// Control messages delivered to a node with no control plugin or
    /// host service installed to receive them.
    pub ctrl_unattended: u64,
    /// Messages processed per arbitrator node.
    ctrl_processed_by_node: BTreeMap<NodeId, u64>,
    /// Messages shed per arbitrator node.
    ctrl_shed_by_node: BTreeMap<NodeId, u64>,
    /// Peak weighted inbox depth (messages per budget epoch) per
    /// arbitrator node.
    ctrl_peak_epoch_by_node: BTreeMap<NodeId, u64>,
    /// Arbitration requests a ToR arbitrator pruned (answered locally
    /// instead of climbing to its parent, because the accumulated queue
    /// already exceeded the early-pruning depth; paper §3.1.2). Keyed by
    /// the pruning arbitrator's node.
    arb_pruned_by_node: BTreeMap<NodeId, u64>,
    /// Arbitration requests an arbitrator forwarded up the hierarchy
    /// (the complement of pruning at the same decision point).
    arb_climbed_by_node: BTreeMap<NodeId, u64>,
    /// Total events executed (engine counter, for benchmarking).
    pub events_executed: u64,
    /// Packet-arena counters, published by [`crate::sim::Simulation::run`]
    /// when it returns (zero until the first run completes).
    pub arena: crate::packet::ArenaStats,
    /// Optional trace sink; see [`crate::trace`].
    tracer: Option<Box<dyn TraceSink>>,
}

impl core::fmt::Debug for StatsCollector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StatsCollector")
            .field("flows", &self.flows.len())
            .field("completed_measured", &self.completed_measured)
            .field("events_executed", &self.events_executed)
            .field("tracing", &self.tracer.is_some())
            .finish()
    }
}

impl StatsCollector {
    /// Create an empty collector.
    pub fn new() -> Self {
        StatsCollector::default()
    }

    /// Install a trace sink (see [`crate::trace`]). Replaces any existing
    /// sink.
    pub fn set_tracer(&mut self, tracer: Box<dyn TraceSink>) {
        self.tracer = Some(tracer);
    }

    /// Emit a trace event if a sink is installed.
    pub fn trace_event(&mut self, now: SimTime, event: &TraceEvent) {
        if let Some(t) = self.tracer.as_mut() {
            t.on_event(now, event);
        }
    }

    /// Whether a trace sink is installed. Hot paths gate trace-event
    /// construction on this so a disabled tracer costs one branch and
    /// nothing else (no formatting, no allocation).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Flush the installed sink's buffered output (no-op without a
    /// sink). [`crate::sim::Simulation::run`] calls this before
    /// returning; call it manually only when reading a sink's output
    /// mid-run.
    pub fn flush_tracer(&mut self) {
        if let Some(t) = self.tracer.as_mut() {
            t.flush();
        }
    }

    /// Register a flow that will be simulated. Called by the simulation
    /// when the flow is scheduled (before it starts).
    pub fn register_flow(&mut self, spec: &FlowSpec) {
        if spec.measured {
            self.expected_measured += 1;
        }
        self.flows.insert(
            spec.id,
            FlowRecord {
                spec: spec.clone(),
                started: spec.start,
                completed: None,
                aborted: false,
                abort_reason: None,
                retransmitted_bytes: 0,
                timeouts: 0,
                probes_sent: 0,
                drops: 0,
            },
        );
    }

    /// Record that a flow's sender observed the final acknowledgment.
    pub fn flow_completed(&mut self, flow: FlowId, now: SimTime) {
        if let Some(rec) = self.flows.get_mut(&flow) {
            if rec.completed.is_none() {
                rec.completed = Some(now);
                if rec.spec.measured {
                    self.completed_measured += 1;
                }
                self.trace_event(
                    now,
                    &TraceEvent::FlowDone {
                        flow,
                        aborted: false,
                        reason: None,
                    },
                );
            }
        }
    }

    /// Record that a flow was aborted (counts as completed for run
    /// termination, but flagged so metrics can treat it separately). The
    /// reason is recorded on the flow and tallied against the flow's
    /// source host.
    pub fn flow_aborted(&mut self, flow: FlowId, now: SimTime, reason: AbortReason) {
        if let Some(rec) = self.flows.get_mut(&flow) {
            if rec.completed.is_none() {
                rec.completed = Some(now);
                rec.aborted = true;
                rec.abort_reason = Some(reason);
                if rec.spec.measured {
                    self.completed_measured += 1;
                }
                *self.aborts_by_host.entry(rec.spec.src).or_insert(0) += 1;
                self.trace_event(
                    now,
                    &TraceEvent::FlowDone {
                        flow,
                        aborted: true,
                        reason: Some(reason),
                    },
                );
            }
        }
    }

    /// Number of aborted flows whose source was `host`.
    pub fn aborts_on(&self, host: NodeId) -> u64 {
        self.aborts_by_host.get(&host).copied().unwrap_or(0)
    }

    /// Per-source-host abort tallies, in node-id order (deterministic).
    pub fn aborts_by_host(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.aborts_by_host.iter().map(|(&n, &c)| (n, c))
    }

    /// Record a retransmission of `bytes` payload bytes.
    pub fn note_retransmit(&mut self, flow: FlowId, bytes: u64) {
        if let Some(rec) = self.flows.get_mut(&flow) {
            rec.retransmitted_bytes += bytes;
        }
    }

    /// Record a retransmission timeout.
    pub fn note_timeout(&mut self, flow: FlowId) {
        if let Some(rec) = self.flows.get_mut(&flow) {
            rec.timeouts += 1;
        }
    }

    /// Record a probe transmission.
    pub fn note_probe(&mut self, flow: FlowId) {
        if let Some(rec) = self.flows.get_mut(&flow) {
            rec.probes_sent += 1;
        }
    }

    /// Record a packet drop in some queue.
    pub fn note_drop(&mut self, pkt: &Packet) {
        if pkt.kind == PacketKind::Data {
            self.data_pkts_dropped += 1;
            if let Some(rec) = self.flows.get_mut(&pkt.flow) {
                rec.drops += 1;
            }
        } else if pkt.kind == PacketKind::Ctrl {
            self.ctrl_pkts_dropped += 1;
        }
    }

    /// Record a data packet accepted into a queue (drop-rate denominator).
    pub fn note_data_enqueued(&mut self) {
        self.data_pkts_enqueued += 1;
    }

    /// Record a packet blackholed at a switch (no live route). Data
    /// blackholes count toward the flow's drop tally but not toward
    /// [`StatsCollector::data_pkts_dropped`], so queue loss and routing
    /// loss stay separable.
    pub fn note_blackhole(&mut self, pkt: &Packet) {
        self.blackhole_pkts += 1;
        if pkt.kind == PacketKind::Data {
            self.data_pkts_blackholed += 1;
            if let Some(rec) = self.flows.get_mut(&pkt.flow) {
                rec.drops += 1;
            }
        } else if pkt.kind == PacketKind::Ctrl {
            self.ctrl_pkts_blackholed += 1;
        }
    }

    /// Record a data packet injected into the network by a host endpoint.
    pub fn note_data_injected(&mut self) {
        self.data_pkts_injected += 1;
    }

    /// Record a data packet delivered to its destination host.
    pub fn note_data_delivered(&mut self) {
        self.data_pkts_delivered += 1;
    }

    /// Record a data packet that arrived at a crashed destination host.
    pub fn note_data_lost_to_crash(&mut self) {
        self.data_pkts_lost_to_crash += 1;
    }

    /// Record a corrupted data packet discarded by the checksum at its
    /// destination `host`. Counts toward the flow's drop tally (the
    /// sender experiences it as loss) but to its own conservation term.
    pub fn note_data_corrupted(&mut self, host: NodeId, pkt: &Packet) {
        self.data_pkts_corrupted += 1;
        *self.corrupted_by_host.entry(host).or_insert(0) += 1;
        if let Some(rec) = self.flows.get_mut(&pkt.flow) {
            rec.drops += 1;
        }
    }

    /// Corrupted data packets discarded at `host`.
    pub fn corrupted_on(&self, host: NodeId) -> u64 {
        self.corrupted_by_host.get(&host).copied().unwrap_or(0)
    }

    /// Per-destination-host corruption tallies, in node-id order
    /// (deterministic).
    pub fn corrupted_by_host(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.corrupted_by_host.iter().map(|(&n, &c)| (n, c))
    }

    /// Record a packet consumed by a switch plugin instead of forwarded.
    pub fn note_plugin_consumed(&mut self, pkt: &Packet) {
        if pkt.kind == PacketKind::Data {
            self.data_pkts_consumed += 1;
        }
    }

    /// Record a control-plane packet of `bytes` put on the wire.
    pub fn note_ctrl_sent(&mut self, bytes: u32) {
        self.ctrl_pkts += 1;
        self.ctrl_bytes += bytes as u64;
    }

    /// Record a control message processed by the arbitrator on `node`.
    pub fn note_ctrl_processed(&mut self, node: NodeId) {
        self.ctrl_msgs_processed += 1;
        *self.ctrl_processed_by_node.entry(node).or_insert(0) += 1;
    }

    /// Record a control message shed by the overloaded arbitrator on
    /// `node` (its per-epoch budget was exhausted).
    pub fn note_ctrl_shed(&mut self, node: NodeId) {
        self.ctrl_msgs_shed += 1;
        *self.ctrl_shed_by_node.entry(node).or_insert(0) += 1;
    }

    /// Record the weighted inbox depth the arbitrator on `node` reached
    /// within one budget epoch; keeps the per-node peak.
    pub fn note_ctrl_epoch_depth(&mut self, node: NodeId, depth: u64) {
        let peak = self.ctrl_peak_epoch_by_node.entry(node).or_insert(0);
        *peak = (*peak).max(depth);
    }

    /// Record an arbitration request pruned (answered locally) by the
    /// arbitrator on `node` instead of climbing to its parent.
    pub fn note_arb_pruned(&mut self, node: NodeId) {
        *self.arb_pruned_by_node.entry(node).or_insert(0) += 1;
    }

    /// Record an arbitration request the arbitrator on `node` forwarded
    /// up the hierarchy.
    pub fn note_arb_climbed(&mut self, node: NodeId) {
        *self.arb_climbed_by_node.entry(node).or_insert(0) += 1;
    }

    /// Record a corrupted control packet discarded at its destination.
    pub fn note_ctrl_corrupted(&mut self) {
        self.ctrl_pkts_corrupted += 1;
    }

    /// Record a control message that reached a crashed control process or
    /// crashed host.
    pub fn note_ctrl_lost_to_crash(&mut self) {
        self.ctrl_lost_to_crash += 1;
    }

    /// Record a control message delivered to a node with no control
    /// plugin or host service to receive it.
    pub fn note_ctrl_unattended(&mut self) {
        self.ctrl_unattended += 1;
    }

    /// Messages processed by the arbitrator on `node`.
    pub fn ctrl_processed_on(&self, node: NodeId) -> u64 {
        self.ctrl_processed_by_node.get(&node).copied().unwrap_or(0)
    }

    /// Messages shed by the arbitrator on `node`.
    pub fn ctrl_shed_on(&self, node: NodeId) -> u64 {
        self.ctrl_shed_by_node.get(&node).copied().unwrap_or(0)
    }

    /// Peak weighted per-epoch inbox depth seen on `node`.
    pub fn ctrl_peak_epoch_on(&self, node: NodeId) -> u64 {
        self.ctrl_peak_epoch_by_node
            .get(&node)
            .copied()
            .unwrap_or(0)
    }

    /// Per-arbitrator processed tallies, in node-id order (deterministic).
    pub fn ctrl_processed_by_node(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.ctrl_processed_by_node.iter().map(|(&n, &c)| (n, c))
    }

    /// Per-arbitrator shed tallies, in node-id order (deterministic).
    pub fn ctrl_shed_by_node(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.ctrl_shed_by_node.iter().map(|(&n, &c)| (n, c))
    }

    /// Per-arbitrator peak epoch depth, in node-id order (deterministic).
    pub fn ctrl_peak_epoch_by_node(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.ctrl_peak_epoch_by_node.iter().map(|(&n, &c)| (n, c))
    }

    /// Requests pruned by the arbitrator on `node`.
    pub fn arb_pruned_on(&self, node: NodeId) -> u64 {
        self.arb_pruned_by_node.get(&node).copied().unwrap_or(0)
    }

    /// Requests climbed (forwarded up) by the arbitrator on `node`.
    pub fn arb_climbed_on(&self, node: NodeId) -> u64 {
        self.arb_climbed_by_node.get(&node).copied().unwrap_or(0)
    }

    /// Per-arbitrator pruned tallies, in node-id order (deterministic).
    pub fn arb_pruned_by_node(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.arb_pruned_by_node.iter().map(|(&n, &c)| (n, c))
    }

    /// Per-arbitrator climbed tallies, in node-id order (deterministic).
    pub fn arb_climbed_by_node(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.arb_climbed_by_node.iter().map(|(&n, &c)| (n, c))
    }

    /// Have all measured flows completed?
    pub fn all_measured_complete(&self) -> bool {
        self.expected_measured > 0 && self.completed_measured >= self.expected_measured
    }

    /// Number of measured flows registered.
    pub fn expected_measured(&self) -> usize {
        self.expected_measured
    }

    /// Number of measured flows completed.
    pub fn completed_measured(&self) -> usize {
        self.completed_measured
    }

    /// Look up one flow's record.
    pub fn flow(&self, id: FlowId) -> Option<&FlowRecord> {
        self.flows.get(&id)
    }

    /// Iterate over all flow records in flow-id order (deterministic).
    pub fn flows(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.values()
    }

    /// Fraction of data packets dropped, `dropped / (enqueued + dropped)`.
    pub fn data_loss_rate(&self) -> f64 {
        let total = self.data_pkts_enqueued + self.data_pkts_dropped;
        if total == 0 {
            0.0
        } else {
            self.data_pkts_dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn spec(id: u64, measured: bool) -> FlowSpec {
        let mut s = FlowSpec::new(FlowId(id), NodeId(0), NodeId(1), 1000, SimTime::ZERO);
        s.measured = measured;
        s
    }

    #[test]
    fn completion_tracking() {
        let mut st = StatsCollector::new();
        st.register_flow(&spec(0, true));
        st.register_flow(&spec(1, true));
        st.register_flow(&spec(2, false)); // background
        assert!(!st.all_measured_complete());
        st.flow_completed(FlowId(0), SimTime::from_millis(1));
        assert!(!st.all_measured_complete());
        st.flow_completed(FlowId(1), SimTime::from_millis(2));
        assert!(st.all_measured_complete());
        assert_eq!(
            st.flow(FlowId(0)).unwrap().fct(),
            Some(SimDuration::from_millis(1))
        );
    }

    #[test]
    fn double_completion_is_idempotent() {
        let mut st = StatsCollector::new();
        st.register_flow(&spec(0, true));
        st.flow_completed(FlowId(0), SimTime::from_millis(1));
        st.flow_completed(FlowId(0), SimTime::from_millis(9));
        assert_eq!(
            st.flow(FlowId(0)).unwrap().completed,
            Some(SimTime::from_millis(1))
        );
        assert_eq!(st.completed_measured(), 1);
    }

    #[test]
    fn deadline_accounting() {
        let mut st = StatsCollector::new();
        let s = spec(0, true).with_deadline(SimDuration::from_millis(5));
        st.register_flow(&s);
        // Not yet complete: counts as missed.
        assert_eq!(st.flow(FlowId(0)).unwrap().met_deadline(), Some(false));
        st.flow_completed(FlowId(0), SimTime::from_millis(4));
        assert_eq!(st.flow(FlowId(0)).unwrap().met_deadline(), Some(true));
    }

    #[test]
    fn loss_rate() {
        let mut st = StatsCollector::new();
        st.register_flow(&spec(0, true));
        for _ in 0..9 {
            st.note_data_enqueued();
        }
        let pkt = Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, 1460);
        st.note_drop(&pkt);
        assert!((st.data_loss_rate() - 0.1).abs() < 1e-12);
        assert_eq!(st.flow(FlowId(0)).unwrap().drops, 1);
    }

    #[test]
    fn ack_drops_do_not_count_as_data_loss() {
        let mut st = StatsCollector::new();
        let ack = Packet::ack(FlowId(0), NodeId(1), NodeId(0), 0);
        st.note_drop(&ack);
        assert_eq!(st.data_pkts_dropped, 0);
    }

    #[test]
    fn aborts_record_reason_and_per_host_tally() {
        let mut st = StatsCollector::new();
        st.register_flow(&spec(0, true));
        st.register_flow(&spec(1, true));
        st.flow_aborted(FlowId(0), SimTime::from_millis(1), AbortReason::HostCrash);
        st.flow_aborted(
            FlowId(1),
            SimTime::from_millis(2),
            AbortReason::MaxRtosExceeded,
        );
        // A second abort of the same flow must not double-count.
        st.flow_aborted(FlowId(0), SimTime::from_millis(3), AbortReason::HostCrash);
        let rec = st.flow(FlowId(0)).unwrap();
        assert!(rec.aborted);
        assert_eq!(rec.abort_reason, Some(AbortReason::HostCrash));
        assert_eq!(rec.completed, Some(SimTime::from_millis(1)));
        assert_eq!(st.aborts_on(NodeId(0)), 2, "both flows originate at n0");
        assert_eq!(st.aborts_on(NodeId(1)), 0);
        assert_eq!(st.aborts_by_host().collect::<Vec<_>>(), [(NodeId(0), 2)]);
        assert!(st.all_measured_complete(), "aborts terminate the run");
    }

    #[test]
    fn corruption_has_its_own_term_and_per_host_tally() {
        let mut st = StatsCollector::new();
        st.register_flow(&spec(0, true));
        let pkt = Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, 1460);
        st.note_data_corrupted(NodeId(1), &pkt);
        st.note_data_corrupted(NodeId(1), &pkt);
        assert_eq!(st.data_pkts_corrupted, 2);
        assert_eq!(st.data_pkts_dropped, 0, "corruption is not a queue drop");
        assert_eq!(st.corrupted_on(NodeId(1)), 2);
        assert_eq!(st.corrupted_on(NodeId(0)), 0);
        assert_eq!(st.corrupted_by_host().collect::<Vec<_>>(), [(NodeId(1), 2)]);
        assert_eq!(st.flow(FlowId(0)).unwrap().drops, 2, "sender sees loss");
    }

    #[test]
    fn ctrl_shedding_has_per_node_tallies_and_peaks() {
        let mut st = StatsCollector::new();
        st.note_ctrl_processed(NodeId(3));
        st.note_ctrl_processed(NodeId(3));
        st.note_ctrl_processed(NodeId(5));
        st.note_ctrl_shed(NodeId(3));
        st.note_ctrl_epoch_depth(NodeId(3), 7);
        st.note_ctrl_epoch_depth(NodeId(3), 4);
        assert_eq!(st.ctrl_msgs_processed, 3);
        assert_eq!(st.ctrl_msgs_shed, 1);
        assert_eq!(st.ctrl_processed_on(NodeId(3)), 2);
        assert_eq!(st.ctrl_processed_on(NodeId(5)), 1);
        assert_eq!(st.ctrl_shed_on(NodeId(3)), 1);
        assert_eq!(st.ctrl_shed_on(NodeId(5)), 0);
        assert_eq!(st.ctrl_peak_epoch_on(NodeId(3)), 7, "peak, not last");
        assert_eq!(
            st.ctrl_processed_by_node().collect::<Vec<_>>(),
            [(NodeId(3), 2), (NodeId(5), 1)]
        );
        assert_eq!(st.ctrl_shed_by_node().collect::<Vec<_>>(), [(NodeId(3), 1)]);
    }

    #[test]
    fn ctrl_drops_and_blackholes_have_their_own_terms() {
        let mut st = StatsCollector::new();
        let ctrl = Packet::ctrl(FlowId(0), NodeId(0), NodeId(1), Box::new(0u8));
        st.note_drop(&ctrl);
        st.note_blackhole(&ctrl);
        assert_eq!(st.ctrl_pkts_dropped, 1);
        assert_eq!(st.ctrl_pkts_blackholed, 1);
        assert_eq!(st.data_pkts_dropped, 0);
        assert_eq!(st.data_pkts_blackholed, 0);
        assert_eq!(st.blackhole_pkts, 1);
        st.note_ctrl_corrupted();
        st.note_ctrl_lost_to_crash();
        st.note_ctrl_unattended();
        assert_eq!(st.ctrl_pkts_corrupted, 1);
        assert_eq!(st.ctrl_lost_to_crash, 1);
        assert_eq!(st.ctrl_unattended, 1);
    }

    #[test]
    fn no_flows_means_not_complete() {
        let st = StatsCollector::new();
        assert!(!st.all_measured_complete());
        assert_eq!(st.data_loss_rate(), 0.0);
    }
}
