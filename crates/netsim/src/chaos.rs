//! Seeded random fault-schedule generation (the "chaos monkey").
//!
//! [`generate`] expands a [`ChaosConfig`] — a single `u64` seed, an
//! intensity knob and a time horizon — into a concrete [`FaultPlan`]
//! against a given topology: fabric-link flaps, correlated rack-level
//! outages (a ToR losing every uplink at once), arbitrator crash/restart
//! storms, and control-packet loss bursts. With
//! [`ChaosConfig::host_faults`] set, the storm also covers the end-host
//! failure domain: host↔ToR NIC flap trains and whole-host crash/restart
//! cycles. With [`ChaosConfig::gray_faults`] set, it also generates *gray*
//! failures: degrade trains on fabric and NIC links that impose stochastic
//! loss, payload corruption and latency inflation instead of a clean cut.
//! With [`ChaosConfig::overload`] set, it also generates control-plane
//! *overload* storms: windows during which a switch arbitrator's inbox is
//! amplified, modelling flash-crowd arbitration pressure that forces the
//! arbitrator to shed load.
//! The expansion is a pure function of `(topology, config)` using
//! the deterministic [`crate::rng::Rng`], so a failing run is replayed
//! exactly by re-running the same seed.
//!
//! Structural guarantees, relied on by the chaos harness:
//!
//! * every `LinkDown` is paired with a later `LinkUp` of the same link,
//!   every `LinkDegrade` with a later `LinkRestore`, every
//!   `ArbitratorCrash` with a later `ArbitratorRestart`, and every
//!   `HostCrash` with a later `HostRestart`, and every `CtrlStormStart`
//!   with a later `CtrlStormEnd`, all inside the horizon — the
//!   network always heals (generated plans pass
//!   [`crate::fault::FaultPlan::validate`]);
//! * with `host_faults` off, only *fabric* (switch–switch) links are
//!   flapped and hosts never crash, so endpoints are never unreachable;
//!   the host sections draw from the RNG strictly *after* the fabric
//!   sections, and the gray section strictly after the host sections, so
//!   turning either flag on never changes the earlier schedule of a given
//!   seed;
//! * degrade windows share the per-link busy cursors with the outage
//!   sections, so a gray episode never overlaps an outright `LinkDown` of
//!   the same link (the two fault families compose without double-downing
//!   a link);
//! * all fault times lie within the first 95% of the horizon, leaving a
//!   healed tail for flows to finish (or for deserted senders to give up)
//!   in.

use crate::fault::{DegradeProfile, FaultPlan};
use crate::ids::NodeId;
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeKind, Topology};

/// How hard the chaos monkey shakes the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosIntensity {
    /// Sparse faults: at most one flap per fabric link, no rack outages,
    /// one crash storm, a couple of control-loss bursts.
    Low,
    /// Dense faults: several flaps per link with longer outages, one or
    /// two correlated rack outages, two crash storms, many bursts.
    High,
}

/// A replayable chaos-schedule specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// The single seed the whole schedule derives from.
    pub seed: u64,
    /// Fault density.
    pub intensity: ChaosIntensity,
    /// Faults are scheduled within the first 95% of this window.
    pub horizon: SimDuration,
    /// Also generate end-host faults: NIC (host↔ToR link) flap trains and
    /// host crash/restart storms. Off, the storm is fabric-only and every
    /// flow is expected to complete; on, flows touching a crashed host
    /// may legitimately end `Aborted`.
    pub host_faults: bool,
    /// Also generate gray failures: degrade trains on fabric and NIC
    /// links (stochastic loss, payload corruption, latency inflation)
    /// rather than clean cuts. Independent of `host_faults`; the gray
    /// section draws strictly after the fabric and host sections.
    pub gray_faults: bool,
    /// Also generate control-plane overload storms: windows during which
    /// a switch arbitrator's control inbox is amplified (each message it
    /// handles is charged `amplify`× against its per-epoch budget),
    /// modelling flash-crowd arbitration pressure. Independent of the
    /// other flags; the overload section draws strictly after every
    /// other section.
    pub overload: bool,
}

/// The fabric links of a topology: deduplicated switch–switch pairs, in
/// deterministic (id-sorted) order, lower id first.
fn fabric_links(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    let mut links = Vec::new();
    for s in topo.switches() {
        for (_, peer, _, _) in topo.neighbors(s) {
            if topo.kind(peer) == NodeKind::Switch && s.0 < peer.0 {
                links.push((s, peer));
            }
        }
    }
    links
}

/// Switches that look like ToRs: at least one host neighbor and at least
/// one switch neighbor (so an "outage" severs uplinks, not hosts).
fn tor_switches(topo: &Topology) -> Vec<NodeId> {
    topo.switches()
        .into_iter()
        .filter(|&s| {
            let n = topo.neighbors(s);
            n.iter().any(|&(_, p, _, _)| topo.kind(p) == NodeKind::Host)
                && n.iter()
                    .any(|&(_, p, _, _)| topo.kind(p) == NodeKind::Switch)
        })
        .collect()
}

/// Uniform instant in `[lo, hi]` nanoseconds.
fn draw_time(rng: &mut Rng, lo: u64, hi: u64) -> SimTime {
    SimTime::from_nanos(rng.gen_range_inclusive(lo, hi))
}

/// Expand `cfg` into a concrete fault schedule for `topo`.
///
/// Pure and deterministic: the same `(topo, cfg)` always yields the same
/// plan. Panics if the horizon is shorter than 1 ms (too little room to
/// schedule a flap and its recovery).
pub fn generate(topo: &Topology, cfg: &ChaosConfig) -> FaultPlan {
    let h = cfg.horizon.as_nanos();
    assert!(h >= 1_000_000, "chaos horizon must be at least 1 ms");
    // Everything (including recoveries) lands before this.
    let latest = h * 95 / 100;
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut plan = FaultPlan::new();

    let links = fabric_links(topo);
    let switches = topo.switches();
    let hi = cfg.intensity == ChaosIntensity::High;

    // Earliest instant each link is free again (end of its last scheduled
    // window + 1), shared across sections so windows on one link never
    // overlap — a second `LinkDown` before the `LinkUp` would leave the
    // plan unbalanced (rejected by `FaultPlan::validate`).
    let mut link_free: std::collections::BTreeMap<(NodeId, NodeId), u64> =
        std::collections::BTreeMap::new();
    let link_key = |a: NodeId, b: NodeId| if a.0 <= b.0 { (a, b) } else { (b, a) };

    // 1. Per-link flaps (non-overlapping windows on each link).
    let (dur_lo, dur_hi) = if hi {
        (h / 50, h / 4)
    } else {
        (h / 100, h / 10)
    };
    for &(a, b) in &links {
        let flaps = if hi {
            rng.gen_range_inclusive(1, 3)
        } else {
            rng.gen_range_inclusive(0, 1)
        };
        let mut starts: Vec<u64> = (0..flaps)
            .map(|_| rng.gen_range_inclusive(0, h * 9 / 10))
            .collect();
        starts.sort_unstable();
        for start in starts {
            let cursor = link_free.get(&link_key(a, b)).copied().unwrap_or(0);
            if start < cursor {
                continue; // would overlap the previous window on this link
            }
            let dur = rng.gen_range_inclusive(dur_lo, dur_hi);
            let end = (start + dur).min(latest);
            if end <= start {
                continue;
            }
            plan = plan.link_down(SimTime::from_nanos(start), a, b).link_up(
                SimTime::from_nanos(end),
                a,
                b,
            );
            link_free.insert(link_key(a, b), end + 1);
        }
    }

    // 2. Correlated rack outages: one ToR loses all its uplinks at once.
    // Each ToR is hit at most once; the window is pushed past any earlier
    // flap window on the involved uplinks so no link is downed twice.
    let tors = tor_switches(topo);
    let outages = if hi && !links.is_empty() && !tors.is_empty() {
        (rng.gen_range_inclusive(1, 2) as usize).min(tors.len())
    } else {
        0
    };
    let mut hit = Vec::new();
    for _ in 0..outages {
        let tor = loop {
            let t = tors[rng.gen_index(tors.len())];
            if !hit.contains(&t) {
                break t;
            }
        };
        hit.push(tor);
        let mut start = rng.gen_range_inclusive(0, h * 8 / 10);
        let dur = rng.gen_range_inclusive(h / 50, h / 8);
        let uplinks: Vec<NodeId> = topo
            .neighbors(tor)
            .into_iter()
            .filter(|&(_, peer, _, _)| topo.kind(peer) == NodeKind::Switch)
            .map(|(_, peer, _, _)| peer)
            .collect();
        for &peer in &uplinks {
            start = start.max(link_free.get(&link_key(tor, peer)).copied().unwrap_or(0));
        }
        let end = (start + dur).min(latest);
        if end <= start {
            continue;
        }
        for &peer in &uplinks {
            plan = plan
                .link_down(SimTime::from_nanos(start), tor, peer)
                .link_up(SimTime::from_nanos(end), tor, peer);
            link_free.insert(link_key(tor, peer), end + 1);
        }
    }

    // 3. Arbitrator crash/restart storms over a random subset of switches.
    // A switch hit by both storms has its second crash pushed past its
    // first restart so the crash/restart windows never overlap.
    let storms = if hi { 2 } else { 1 };
    let mut arb_free: std::collections::BTreeMap<NodeId, u64> = std::collections::BTreeMap::new();
    for _ in 0..storms {
        let start = rng.gen_range_inclusive(0, h * 8 / 10);
        let mut victims: Vec<NodeId> = switches
            .iter()
            .copied()
            .filter(|_| rng.gen_f64() < 0.5)
            .collect();
        if victims.is_empty() && !switches.is_empty() {
            victims.push(switches[rng.gen_index(switches.len())]);
        }
        for node in victims {
            let down = rng.gen_range_inclusive(h / 100, h / 10);
            let at = draw_time(&mut rng, start, (start + down / 4).min(latest - 1));
            let at = at.as_nanos().max(arb_free.get(&node).copied().unwrap_or(0));
            let back = (at + down).min(latest);
            if back <= at {
                continue;
            }
            plan = plan
                .arbitrator_crash(SimTime::from_nanos(at), node)
                .arbitrator_restart(SimTime::from_nanos(back), node);
            arb_free.insert(node, back + 1);
        }
    }

    // 4. Control-loss bursts on random fabric-link directions.
    if !links.is_empty() {
        let bursts = if hi { 6 } else { 2 };
        for _ in 0..bursts {
            let (a, b) = links[rng.gen_index(links.len())];
            let (from, to) = if rng.gen_f64() < 0.5 { (a, b) } else { (b, a) };
            let at = rng.gen_range_inclusive(0, h * 9 / 10);
            let n = rng.gen_range_inclusive(1, 8);
            plan = plan.ctrl_loss_burst(SimTime::from_nanos(at.min(latest)), from, to, n);
        }
    }

    // Host-fault sections draw strictly after the fabric sections, so the
    // fabric schedule of a seed is identical with the flag on or off.
    if cfg.host_faults {
        let hosts = topo.hosts();

        // 5. NIC flap trains: a host's access link goes down and comes
        // back, possibly several times (non-overlapping windows). Shorter
        // than fabric flaps — NIC bounces, not maintenance windows.
        let (ndur_lo, ndur_hi) = if hi {
            (h / 100, h / 20)
        } else {
            (h / 200, h / 50)
        };
        for &host in &hosts {
            let tor = topo.host_tor(host);
            let flaps = if hi {
                rng.gen_range_inclusive(0, 2)
            } else {
                rng.gen_range_inclusive(0, 1)
            };
            let mut starts: Vec<u64> = (0..flaps)
                .map(|_| rng.gen_range_inclusive(0, h * 9 / 10))
                .collect();
            starts.sort_unstable();
            for start in starts {
                let cursor = link_free.get(&link_key(host, tor)).copied().unwrap_or(0);
                if start < cursor {
                    continue;
                }
                let dur = rng.gen_range_inclusive(ndur_lo, ndur_hi);
                let end = (start + dur).min(latest);
                if end <= start {
                    continue;
                }
                plan = plan
                    .link_down(SimTime::from_nanos(start), host, tor)
                    .link_up(SimTime::from_nanos(end), host, tor);
                link_free.insert(link_key(host, tor), end + 1);
            }
        }

        // 6. Host crash/restart storms: whole machines die mid-flow and
        // come back empty. Windows on one host never overlap; at least
        // one crash is forced so the class always exercises the path.
        let mut any_crash = false;
        for &host in &hosts {
            let cycles = if hi {
                rng.gen_range_inclusive(0, 2)
            } else {
                rng.gen_range_inclusive(0, 1)
            };
            let mut starts: Vec<u64> = (0..cycles)
                .map(|_| rng.gen_range_inclusive(0, h * 8 / 10))
                .collect();
            starts.sort_unstable();
            let mut cursor = 0u64;
            for start in starts {
                if start < cursor {
                    continue;
                }
                let down = rng.gen_range_inclusive(h / 100, h / 10);
                let back = (start + down).min(latest);
                if back <= start {
                    continue;
                }
                plan = plan
                    .host_crash(SimTime::from_nanos(start), host)
                    .host_restart(SimTime::from_nanos(back), host);
                any_crash = true;
                cursor = back + 1;
            }
        }
        if !any_crash && !hosts.is_empty() {
            let host = hosts[rng.gen_index(hosts.len())];
            let start = h / 4;
            let down = rng.gen_range_inclusive(h / 100, h / 10);
            let back = (start + down).min(latest);
            plan = plan
                .host_crash(SimTime::from_nanos(start), host)
                .host_restart(SimTime::from_nanos(back), host);
        }
    }

    // 7. Gray storms: degrade trains on fabric and NIC links — stochastic
    // loss, payload corruption and latency inflation instead of a clean
    // cut. Draws strictly after the host sections, so turning the flag on
    // never changes the fabric or host schedule of a seed. Degrade windows
    // share the per-link busy cursors with the outage sections, so a gray
    // episode never overlaps an outright `LinkDown` of the same link, and
    // every episode is restored by `latest`.
    if cfg.gray_faults {
        let mut gray_links = links.clone();
        for host in topo.hosts() {
            gray_links.push((host, topo.host_tor(host)));
        }
        // Gray failures persist longer than flaps: a flaky transceiver is
        // degraded for a stretch, not bounced.
        let (gdur_lo, gdur_hi) = if hi {
            (h / 20, h / 4)
        } else {
            (h / 50, h / 10)
        };
        let mut any_gray = false;
        for &(a, b) in &gray_links {
            let episodes = if hi {
                rng.gen_range_inclusive(1, 2)
            } else {
                rng.gen_range_inclusive(0, 1)
            };
            let mut starts: Vec<u64> = (0..episodes)
                .map(|_| rng.gen_range_inclusive(0, h * 9 / 10))
                .collect();
            starts.sort_unstable();
            for start in starts {
                let cursor = link_free.get(&link_key(a, b)).copied().unwrap_or(0);
                if start < cursor {
                    continue;
                }
                let dur = rng.gen_range_inclusive(gdur_lo, gdur_hi);
                let end = (start + dur).min(latest);
                if end <= start {
                    continue;
                }
                let profile = draw_profile(&mut rng);
                plan = plan
                    .link_degrade(SimTime::from_nanos(start), a, b, profile)
                    .link_restore(SimTime::from_nanos(end), a, b);
                link_free.insert(link_key(a, b), end + 1);
                any_gray = true;
            }
        }
        // Force at least one episode so the class is always exercised.
        if !any_gray {
            for &(a, b) in &gray_links {
                let start = (h / 4).max(link_free.get(&link_key(a, b)).copied().unwrap_or(0));
                let dur = rng.gen_range_inclusive(gdur_lo, gdur_hi);
                let end = (start + dur).min(latest);
                if end <= start {
                    continue;
                }
                let profile = draw_profile(&mut rng);
                plan = plan
                    .link_degrade(SimTime::from_nanos(start), a, b, profile)
                    .link_restore(SimTime::from_nanos(end), a, b);
                link_free.insert(link_key(a, b), end + 1);
                break;
            }
        }
    }

    // 8. Control-plane overload storms: flash-crowd arbitration pressure.
    // During a storm, every control message the node's arbitrator handles
    // is charged `amplify`× against its per-epoch budget, modelling a
    // crowd of senders hammering the same arbitrator. Draws strictly
    // after the gray section, so turning the flag on never changes the
    // earlier schedule of a seed. Storm windows share the per-node busy
    // cursor with the crash storms, so a storm never overlaps an
    // `ArbitratorCrash` window of the same node (an amplified inbox on a
    // dead arbitrator would be meaningless), and every storm ends by
    // `latest`.
    if cfg.overload {
        let (odur_lo, odur_hi) = if hi {
            (h / 20, h / 4)
        } else {
            (h / 50, h / 10)
        };
        let mut any_storm = false;
        for &node in &switches {
            let episodes = if hi {
                rng.gen_range_inclusive(1, 2)
            } else {
                rng.gen_range_inclusive(0, 1)
            };
            let mut starts: Vec<u64> = (0..episodes)
                .map(|_| rng.gen_range_inclusive(0, h * 9 / 10))
                .collect();
            starts.sort_unstable();
            for start in starts {
                let cursor = arb_free.get(&node).copied().unwrap_or(0);
                if start < cursor {
                    continue;
                }
                let dur = rng.gen_range_inclusive(odur_lo, odur_hi);
                let end = (start + dur).min(latest);
                if end <= start {
                    continue;
                }
                let amplify = rng.gen_range_inclusive(16, 64) as u32;
                plan = plan
                    .ctrl_storm_start(SimTime::from_nanos(start), node, amplify)
                    .ctrl_storm_end(SimTime::from_nanos(end), node);
                arb_free.insert(node, end + 1);
                any_storm = true;
            }
        }
        // Force at least one storm so the class is always exercised.
        if !any_storm {
            for &node in &switches {
                let start = (h / 4).max(arb_free.get(&node).copied().unwrap_or(0));
                let dur = rng.gen_range_inclusive(odur_lo, odur_hi);
                let end = (start + dur).min(latest);
                if end <= start {
                    continue;
                }
                let amplify = rng.gen_range_inclusive(16, 64) as u32;
                plan = plan
                    .ctrl_storm_start(SimTime::from_nanos(start), node, amplify)
                    .ctrl_storm_end(SimTime::from_nanos(end), node);
                arb_free.insert(node, end + 1);
                break;
            }
        }
    }

    plan
}

/// Draw a plausible gray-failure profile: up to ~3% loss, up to ~1%
/// corruption, and a few microseconds of added latency and jitter — bad
/// enough to hurt tail latency, mild enough that traffic still flows.
fn draw_profile(rng: &mut Rng) -> DegradeProfile {
    DegradeProfile {
        seed: rng.next_u64(),
        loss_ppm: rng.gen_range_inclusive(500, 30_000) as u32,
        corrupt_ppm: rng.gen_range_inclusive(0, 10_000) as u32,
        extra_delay_ns: rng.gen_range_inclusive(0, 20_000) as u32,
        jitter_ns: rng.gen_range_inclusive(0, 10_000) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;
    use crate::flow::{FlowSpec, ReceiverHint};
    use crate::host::{AgentCtx, AgentFactory, FlowAgent};
    use crate::queue::DropTailQdisc;
    use crate::time::Rate;
    use crate::topology::TopologyBuilder;
    use std::sync::Arc;

    struct NullFactory;
    struct NullAgent;
    impl FlowAgent for NullAgent {
        fn on_start(&mut self, _: &mut AgentCtx<'_, '_>) {}
        fn on_packet(&mut self, _: crate::packet::Packet, _: &mut AgentCtx<'_, '_>) {}
        fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_, '_>) {}
        fn is_done(&self) -> bool {
            false
        }
    }
    impl AgentFactory for NullFactory {
        fn sender(&self, _: &FlowSpec) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
        fn receiver(&self, _: ReceiverHint) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
    }

    /// 2 spines, 2 leaves, 2 hosts per leaf — smallest multi-path fabric.
    fn leaf_spine() -> Topology {
        let mut b = TopologyBuilder::new();
        let spines = [b.add_switch(), b.add_switch()];
        for _ in 0..2 {
            let leaf = b.add_switch();
            for s in spines {
                b.connect(leaf, s, Rate::from_gbps(40), SimDuration::from_micros(2));
            }
            for h in b.add_hosts(2) {
                b.connect(h, leaf, Rate::from_gbps(10), SimDuration::from_micros(1));
            }
        }
        b.build(Arc::new(NullFactory), &|_| Box::new(DropTailQdisc::new(16)))
            .topo
    }

    fn cfg(seed: u64, intensity: ChaosIntensity) -> ChaosConfig {
        ChaosConfig {
            seed,
            intensity,
            horizon: SimDuration::from_millis(100),
            host_faults: false,
            gray_faults: false,
            overload: false,
        }
    }

    fn cfg_host(seed: u64, intensity: ChaosIntensity) -> ChaosConfig {
        ChaosConfig {
            host_faults: true,
            ..cfg(seed, intensity)
        }
    }

    fn cfg_gray(seed: u64, intensity: ChaosIntensity) -> ChaosConfig {
        ChaosConfig {
            host_faults: true,
            gray_faults: true,
            ..cfg(seed, intensity)
        }
    }

    fn cfg_overload(seed: u64, intensity: ChaosIntensity) -> ChaosConfig {
        ChaosConfig {
            host_faults: true,
            gray_faults: true,
            overload: true,
            ..cfg(seed, intensity)
        }
    }

    /// Every flag combination the structural sweeps cover:
    /// (host_faults, gray_faults, overload).
    const FLAG_COMBOS: [(bool, bool, bool); 6] = [
        (false, false, false),
        (true, false, false),
        (false, true, false),
        (true, true, false),
        (false, false, true),
        (true, true, true),
    ];

    #[test]
    fn same_seed_same_plan() {
        let topo = leaf_spine();
        let a = generate(&topo, &cfg(42, ChaosIntensity::High));
        let b = generate(&topo, &cfg(42, ChaosIntensity::High));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let topo = leaf_spine();
        let a = generate(&topo, &cfg(1, ChaosIntensity::High));
        let b = generate(&topo, &cfg(2, ChaosIntensity::High));
        assert_ne!(a, b);
    }

    #[test]
    fn every_fault_heals_within_the_horizon() {
        let topo = leaf_spine();
        for seed in 0..16 {
            for intensity in [ChaosIntensity::Low, ChaosIntensity::High] {
                for (host_faults, gray_faults, overload) in FLAG_COMBOS {
                    let c = ChaosConfig {
                        host_faults,
                        gray_faults,
                        overload,
                        ..cfg(seed, intensity)
                    };
                    let plan = generate(&topo, &c);
                    let latest = SimTime::from_nanos(c.horizon.as_nanos() * 95 / 100);
                    let mut open_links = Vec::new();
                    let mut degraded = Vec::new();
                    let mut crashed = Vec::new();
                    let mut hosts_down = Vec::new();
                    let mut storming = Vec::new();
                    for &(at, ev) in plan.events() {
                        assert!(at <= latest, "seed {seed}: event at {at} past {latest}");
                        match ev {
                            FaultEvent::LinkDown { a, b } => open_links.push((a, b)),
                            FaultEvent::LinkUp { a, b } => {
                                let i = open_links
                                    .iter()
                                    .position(|&l| l == (a, b))
                                    .unwrap_or_else(|| panic!("seed {seed}: up without down"));
                                open_links.swap_remove(i);
                            }
                            FaultEvent::LinkDegrade { a, b, .. } => degraded.push((a, b)),
                            FaultEvent::LinkRestore { a, b } => {
                                let i = degraded.iter().position(|&l| l == (a, b)).unwrap_or_else(
                                    || panic!("seed {seed}: restore without degrade"),
                                );
                                degraded.swap_remove(i);
                            }
                            FaultEvent::ArbitratorCrash { node } => crashed.push(node),
                            FaultEvent::ArbitratorRestart { node } => {
                                let i = crashed
                                    .iter()
                                    .position(|&n| n == node)
                                    .unwrap_or_else(|| panic!("seed {seed}: restart w/o crash"));
                                crashed.swap_remove(i);
                            }
                            FaultEvent::HostCrash { node } => hosts_down.push(node),
                            FaultEvent::HostRestart { node } => {
                                let i = hosts_down
                                    .iter()
                                    .position(|&n| n == node)
                                    .unwrap_or_else(|| panic!("seed {seed}: restart w/o crash"));
                                hosts_down.swap_remove(i);
                            }
                            FaultEvent::CtrlStormStart { node, .. } => storming.push(node),
                            FaultEvent::CtrlStormEnd { node } => {
                                let i = storming
                                    .iter()
                                    .position(|&n| n == node)
                                    .unwrap_or_else(|| panic!("seed {seed}: end w/o start"));
                                storming.swap_remove(i);
                            }
                            FaultEvent::CtrlLossBurst { .. } => {}
                        }
                    }
                    assert!(open_links.is_empty(), "seed {seed}: unhealed links");
                    assert!(degraded.is_empty(), "seed {seed}: unrestored degradations");
                    assert!(crashed.is_empty(), "seed {seed}: unrestarted arbitrators");
                    assert!(hosts_down.is_empty(), "seed {seed}: unrestarted hosts");
                    assert!(storming.is_empty(), "seed {seed}: unended ctrl storms");
                }
            }
        }
    }

    #[test]
    fn generated_plans_pass_validation() {
        let topo = leaf_spine();
        for seed in 0..16 {
            for intensity in [ChaosIntensity::Low, ChaosIntensity::High] {
                for (host_faults, gray_faults, overload) in FLAG_COMBOS {
                    let c = ChaosConfig {
                        host_faults,
                        gray_faults,
                        overload,
                        ..cfg(seed, intensity)
                    };
                    generate(&topo, &c)
                        .validate(&topo)
                        .unwrap_or_else(|e| panic!("seed {seed} ({intensity:?}): {e}"));
                }
            }
        }
    }

    #[test]
    fn high_intensity_generates_more_faults() {
        let topo = leaf_spine();
        let total = |i: ChaosIntensity| -> usize {
            (0..8).map(|s| generate(&topo, &cfg(s, i)).len()).sum()
        };
        assert!(
            total(ChaosIntensity::High) > total(ChaosIntensity::Low),
            "high intensity should produce more fault events on average"
        );
    }

    #[test]
    fn without_host_faults_only_fabric_links_are_flapped() {
        let topo = leaf_spine();
        let hosts = topo.hosts();
        for seed in 0..8 {
            let plan = generate(&topo, &cfg(seed, ChaosIntensity::High));
            for &(_, ev) in plan.events() {
                match ev {
                    FaultEvent::LinkDown { a, b } | FaultEvent::LinkUp { a, b } => {
                        assert!(!hosts.contains(&a) && !hosts.contains(&b));
                    }
                    FaultEvent::HostCrash { .. } | FaultEvent::HostRestart { .. } => {
                        panic!("host fault generated with host_faults off")
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn host_faults_flag_adds_host_storms_without_touching_the_fabric_schedule() {
        let topo = leaf_spine();
        let hosts = topo.hosts();
        for seed in 0..8 {
            let fabric_only = generate(&topo, &cfg(seed, ChaosIntensity::High));
            let with_hosts = generate(&topo, &cfg_host(seed, ChaosIntensity::High));
            // The fabric-only plan is a strict prefix: host draws happen
            // after all fabric draws.
            assert_eq!(
                &with_hosts.events()[..fabric_only.len()],
                fabric_only.events(),
                "seed {seed}: fabric schedule changed by host_faults"
            );
            // Every host-fault class appears somewhere in the sweep, and
            // every seed gets at least one host crash.
            let tail = &with_hosts.events()[fabric_only.len()..];
            assert!(
                tail.iter()
                    .any(|&(_, ev)| matches!(ev, FaultEvent::HostCrash { .. })),
                "seed {seed}: no host crash generated"
            );
            for &(_, ev) in tail {
                if let FaultEvent::LinkDown { a, b } | FaultEvent::LinkUp { a, b } = ev {
                    assert!(
                        hosts.contains(&a) || hosts.contains(&b),
                        "seed {seed}: host section flapped a fabric link"
                    );
                }
            }
        }
    }

    #[test]
    fn gray_faults_extend_the_plan_without_touching_earlier_sections() {
        let topo = leaf_spine();
        for seed in 0..8 {
            let without = generate(&topo, &cfg_host(seed, ChaosIntensity::High));
            let with_gray = generate(&topo, &cfg_gray(seed, ChaosIntensity::High));
            // The gray-free plan is a strict prefix: gray draws happen
            // after every fabric and host draw.
            assert_eq!(
                &with_gray.events()[..without.len()],
                without.events(),
                "seed {seed}: earlier schedule changed by gray_faults"
            );
            let tail = &with_gray.events()[without.len()..];
            assert!(!tail.is_empty(), "seed {seed}: no gray episodes generated");
            assert!(
                tail.iter().all(|&(_, ev)| matches!(
                    ev,
                    FaultEvent::LinkDegrade { .. } | FaultEvent::LinkRestore { .. }
                )),
                "seed {seed}: non-gray event in the gray section"
            );
        }
    }

    #[test]
    fn gray_windows_heal_and_never_overlap_an_outage_of_the_same_link() {
        let topo = leaf_spine();
        let key = |a: NodeId, b: NodeId| if a.0 <= b.0 { (a, b) } else { (b, a) };
        for seed in 0..16 {
            let plan = generate(&topo, &cfg_gray(seed, ChaosIntensity::High));
            let latest = SimTime::from_nanos(100_000_000 * 95 / 100);
            let mut open_down = std::collections::BTreeMap::new();
            let mut open_gray = std::collections::BTreeMap::new();
            let mut outages = Vec::new();
            let mut grays = Vec::new();
            for &(at, ev) in plan.events() {
                match ev {
                    FaultEvent::LinkDown { a, b } => {
                        open_down.insert(key(a, b), at);
                    }
                    FaultEvent::LinkUp { a, b } => {
                        let s = open_down.remove(&key(a, b)).unwrap();
                        outages.push((key(a, b), s, at));
                    }
                    FaultEvent::LinkDegrade { a, b, .. } => {
                        open_gray.insert(key(a, b), at);
                    }
                    FaultEvent::LinkRestore { a, b } => {
                        let s = open_gray.remove(&key(a, b)).unwrap();
                        assert!(at <= latest, "seed {seed}: gray heals past 95% horizon");
                        grays.push((key(a, b), s, at));
                    }
                    _ => {}
                }
            }
            assert!(open_gray.is_empty(), "seed {seed}: unhealed gray window");
            assert!(!grays.is_empty(), "seed {seed}: no gray episodes");
            for &(gl, gs, ge) in &grays {
                for &(ol, os, oe) in &outages {
                    if gl == ol {
                        assert!(
                            ge < os || oe < gs,
                            "seed {seed}: degrade [{gs}, {ge}] overlaps \
                             outage [{os}, {oe}] on {gl:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn overload_extends_the_plan_without_touching_earlier_sections() {
        let topo = leaf_spine();
        for seed in 0..8 {
            let without = generate(&topo, &cfg_gray(seed, ChaosIntensity::High));
            let with_overload = generate(&topo, &cfg_overload(seed, ChaosIntensity::High));
            // The overload-free plan is a strict prefix: storm draws
            // happen after every fabric, host and gray draw.
            assert_eq!(
                &with_overload.events()[..without.len()],
                without.events(),
                "seed {seed}: earlier schedule changed by overload"
            );
            let tail = &with_overload.events()[without.len()..];
            assert!(!tail.is_empty(), "seed {seed}: no ctrl storms generated");
            assert!(
                tail.iter().all(|&(_, ev)| matches!(
                    ev,
                    FaultEvent::CtrlStormStart { .. } | FaultEvent::CtrlStormEnd { .. }
                )),
                "seed {seed}: non-storm event in the overload section"
            );
        }
    }

    #[test]
    fn ctrl_storms_heal_and_never_overlap_an_arbitrator_crash_of_the_same_node() {
        let topo = leaf_spine();
        for seed in 0..16 {
            let plan = generate(&topo, &cfg_overload(seed, ChaosIntensity::High));
            let latest = SimTime::from_nanos(100_000_000 * 95 / 100);
            let mut open_crash = std::collections::BTreeMap::new();
            let mut open_storm = std::collections::BTreeMap::new();
            let mut crashes = Vec::new();
            let mut storms = Vec::new();
            for &(at, ev) in plan.events() {
                match ev {
                    FaultEvent::ArbitratorCrash { node } => {
                        open_crash.insert(node, at);
                    }
                    FaultEvent::ArbitratorRestart { node } => {
                        let s = open_crash.remove(&node).unwrap();
                        crashes.push((node, s, at));
                    }
                    FaultEvent::CtrlStormStart { node, amplify } => {
                        assert!(amplify >= 2, "seed {seed}: degenerate amplify {amplify}");
                        open_storm.insert(node, at);
                    }
                    FaultEvent::CtrlStormEnd { node } => {
                        let s = open_storm.remove(&node).unwrap();
                        assert!(at <= latest, "seed {seed}: storm ends past 95% horizon");
                        storms.push((node, s, at));
                    }
                    _ => {}
                }
            }
            assert!(open_storm.is_empty(), "seed {seed}: unended storm");
            assert!(!storms.is_empty(), "seed {seed}: no ctrl storms");
            for &(sn, ss, se) in &storms {
                for &(cn, cs, ce) in &crashes {
                    if sn == cn {
                        assert!(
                            se < cs || ce < ss,
                            "seed {seed}: storm [{ss}, {se}] overlaps \
                             crash [{cs}, {ce}] on {sn:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1 ms")]
    fn tiny_horizon_is_rejected() {
        let topo = leaf_spine();
        generate(
            &topo,
            &ChaosConfig {
                seed: 0,
                intensity: ChaosIntensity::Low,
                horizon: SimDuration::from_micros(10),
                host_faults: false,
                gray_faults: false,
                overload: false,
            },
        );
    }
}
