//! Seeded random fault-schedule generation (the "chaos monkey").
//!
//! [`generate`] expands a [`ChaosConfig`] — a single `u64` seed, an
//! intensity knob and a time horizon — into a concrete [`FaultPlan`]
//! against a given topology: fabric-link flaps, correlated rack-level
//! outages (a ToR losing every uplink at once), arbitrator crash/restart
//! storms, and control-packet loss bursts. The expansion is a pure
//! function of `(topology, config)` using the deterministic
//! [`crate::rng::Rng`], so a failing run is replayed exactly by re-running
//! the same seed.
//!
//! Structural guarantees, relied on by the chaos harness:
//!
//! * every `LinkDown` is paired with a later `LinkUp` of the same link,
//!   and every `ArbitratorCrash` with a later `ArbitratorRestart`, both
//!   inside the horizon — the network always heals;
//! * only *fabric* (switch–switch) links are flapped; host access links
//!   stay up, so endpoints are never permanently unreachable;
//! * all fault times lie within the first 95% of the horizon, leaving a
//!   healed tail for flows to finish in.

use crate::fault::FaultPlan;
use crate::ids::NodeId;
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeKind, Topology};

/// How hard the chaos monkey shakes the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosIntensity {
    /// Sparse faults: at most one flap per fabric link, no rack outages,
    /// one crash storm, a couple of control-loss bursts.
    Low,
    /// Dense faults: several flaps per link with longer outages, one or
    /// two correlated rack outages, two crash storms, many bursts.
    High,
}

/// A replayable chaos-schedule specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// The single seed the whole schedule derives from.
    pub seed: u64,
    /// Fault density.
    pub intensity: ChaosIntensity,
    /// Faults are scheduled within the first 95% of this window.
    pub horizon: SimDuration,
}

/// The fabric links of a topology: deduplicated switch–switch pairs, in
/// deterministic (id-sorted) order, lower id first.
fn fabric_links(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    let mut links = Vec::new();
    for s in topo.switches() {
        for (_, peer, _, _) in topo.neighbors(s) {
            if topo.kind(peer) == NodeKind::Switch && s.0 < peer.0 {
                links.push((s, peer));
            }
        }
    }
    links
}

/// Switches that look like ToRs: at least one host neighbor and at least
/// one switch neighbor (so an "outage" severs uplinks, not hosts).
fn tor_switches(topo: &Topology) -> Vec<NodeId> {
    topo.switches()
        .into_iter()
        .filter(|&s| {
            let n = topo.neighbors(s);
            n.iter().any(|&(_, p, _, _)| topo.kind(p) == NodeKind::Host)
                && n.iter()
                    .any(|&(_, p, _, _)| topo.kind(p) == NodeKind::Switch)
        })
        .collect()
}

/// Uniform instant in `[lo, hi]` nanoseconds.
fn draw_time(rng: &mut Rng, lo: u64, hi: u64) -> SimTime {
    SimTime::from_nanos(rng.gen_range_inclusive(lo, hi))
}

/// Expand `cfg` into a concrete fault schedule for `topo`.
///
/// Pure and deterministic: the same `(topo, cfg)` always yields the same
/// plan. Panics if the horizon is shorter than 1 ms (too little room to
/// schedule a flap and its recovery).
pub fn generate(topo: &Topology, cfg: &ChaosConfig) -> FaultPlan {
    let h = cfg.horizon.as_nanos();
    assert!(h >= 1_000_000, "chaos horizon must be at least 1 ms");
    // Everything (including recoveries) lands before this.
    let latest = h * 95 / 100;
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut plan = FaultPlan::new();

    let links = fabric_links(topo);
    let switches = topo.switches();
    let hi = cfg.intensity == ChaosIntensity::High;

    // 1. Per-link flaps (non-overlapping windows on each link).
    let (dur_lo, dur_hi) = if hi {
        (h / 50, h / 4)
    } else {
        (h / 100, h / 10)
    };
    for &(a, b) in &links {
        let flaps = if hi {
            rng.gen_range_inclusive(1, 3)
        } else {
            rng.gen_range_inclusive(0, 1)
        };
        let mut starts: Vec<u64> = (0..flaps)
            .map(|_| rng.gen_range_inclusive(0, h * 9 / 10))
            .collect();
        starts.sort_unstable();
        let mut cursor = 0u64;
        for start in starts {
            if start < cursor {
                continue; // would overlap the previous window on this link
            }
            let dur = rng.gen_range_inclusive(dur_lo, dur_hi);
            let end = (start + dur).min(latest);
            if end <= start {
                continue;
            }
            plan = plan.link_down(SimTime::from_nanos(start), a, b).link_up(
                SimTime::from_nanos(end),
                a,
                b,
            );
            cursor = end + 1;
        }
    }

    // 2. Correlated rack outages: one ToR loses all its uplinks at once.
    // Each ToR is hit at most once so windows on a link never overlap.
    let tors = tor_switches(topo);
    let outages = if hi && !links.is_empty() && !tors.is_empty() {
        (rng.gen_range_inclusive(1, 2) as usize).min(tors.len())
    } else {
        0
    };
    let mut hit = Vec::new();
    for _ in 0..outages {
        let tor = loop {
            let t = tors[rng.gen_index(tors.len())];
            if !hit.contains(&t) {
                break t;
            }
        };
        hit.push(tor);
        let start = rng.gen_range_inclusive(0, h * 8 / 10);
        let dur = rng.gen_range_inclusive(h / 50, h / 8);
        let end = (start + dur).min(latest);
        for (_, peer, _, _) in topo.neighbors(tor) {
            if topo.kind(peer) == NodeKind::Switch {
                plan = plan
                    .link_down(SimTime::from_nanos(start), tor, peer)
                    .link_up(SimTime::from_nanos(end), tor, peer);
            }
        }
    }

    // 3. Arbitrator crash/restart storms over a random subset of switches.
    let storms = if hi { 2 } else { 1 };
    for _ in 0..storms {
        let start = rng.gen_range_inclusive(0, h * 8 / 10);
        let mut victims: Vec<NodeId> = switches
            .iter()
            .copied()
            .filter(|_| rng.gen_f64() < 0.5)
            .collect();
        if victims.is_empty() && !switches.is_empty() {
            victims.push(switches[rng.gen_index(switches.len())]);
        }
        for node in victims {
            let down = rng.gen_range_inclusive(h / 100, h / 10);
            let at = draw_time(&mut rng, start, (start + down / 4).min(latest - 1));
            let back = SimTime::from_nanos((at.as_nanos() + down).min(latest));
            plan = plan
                .arbitrator_crash(at, node)
                .arbitrator_restart(back, node);
        }
    }

    // 4. Control-loss bursts on random fabric-link directions.
    if !links.is_empty() {
        let bursts = if hi { 6 } else { 2 };
        for _ in 0..bursts {
            let (a, b) = links[rng.gen_index(links.len())];
            let (from, to) = if rng.gen_f64() < 0.5 { (a, b) } else { (b, a) };
            let at = rng.gen_range_inclusive(0, h * 9 / 10);
            let n = rng.gen_range_inclusive(1, 8);
            plan = plan.ctrl_loss_burst(SimTime::from_nanos(at.min(latest)), from, to, n);
        }
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;
    use crate::flow::{FlowSpec, ReceiverHint};
    use crate::host::{AgentCtx, AgentFactory, FlowAgent};
    use crate::queue::DropTailQdisc;
    use crate::time::Rate;
    use crate::topology::TopologyBuilder;
    use std::sync::Arc;

    struct NullFactory;
    struct NullAgent;
    impl FlowAgent for NullAgent {
        fn on_start(&mut self, _: &mut AgentCtx<'_, '_>) {}
        fn on_packet(&mut self, _: crate::packet::Packet, _: &mut AgentCtx<'_, '_>) {}
        fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_, '_>) {}
        fn is_done(&self) -> bool {
            false
        }
    }
    impl AgentFactory for NullFactory {
        fn sender(&self, _: &FlowSpec) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
        fn receiver(&self, _: ReceiverHint) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
    }

    /// 2 spines, 2 leaves, 2 hosts per leaf — smallest multi-path fabric.
    fn leaf_spine() -> Topology {
        let mut b = TopologyBuilder::new();
        let spines = [b.add_switch(), b.add_switch()];
        for _ in 0..2 {
            let leaf = b.add_switch();
            for s in spines {
                b.connect(leaf, s, Rate::from_gbps(40), SimDuration::from_micros(2));
            }
            for h in b.add_hosts(2) {
                b.connect(h, leaf, Rate::from_gbps(10), SimDuration::from_micros(1));
            }
        }
        b.build(Arc::new(NullFactory), &|_| Box::new(DropTailQdisc::new(16)))
            .topo
    }

    fn cfg(seed: u64, intensity: ChaosIntensity) -> ChaosConfig {
        ChaosConfig {
            seed,
            intensity,
            horizon: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let topo = leaf_spine();
        let a = generate(&topo, &cfg(42, ChaosIntensity::High));
        let b = generate(&topo, &cfg(42, ChaosIntensity::High));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let topo = leaf_spine();
        let a = generate(&topo, &cfg(1, ChaosIntensity::High));
        let b = generate(&topo, &cfg(2, ChaosIntensity::High));
        assert_ne!(a, b);
    }

    #[test]
    fn every_fault_heals_within_the_horizon() {
        let topo = leaf_spine();
        for seed in 0..16 {
            for intensity in [ChaosIntensity::Low, ChaosIntensity::High] {
                let c = cfg(seed, intensity);
                let plan = generate(&topo, &c);
                let latest = SimTime::from_nanos(c.horizon.as_nanos() * 95 / 100);
                let mut open_links = Vec::new();
                let mut crashed = Vec::new();
                for &(at, ev) in plan.events() {
                    assert!(at <= latest, "seed {seed}: event at {at} past {latest}");
                    match ev {
                        FaultEvent::LinkDown { a, b } => open_links.push((a, b)),
                        FaultEvent::LinkUp { a, b } => {
                            let i = open_links
                                .iter()
                                .position(|&l| l == (a, b))
                                .unwrap_or_else(|| panic!("seed {seed}: up without down"));
                            open_links.swap_remove(i);
                        }
                        FaultEvent::ArbitratorCrash { node } => crashed.push(node),
                        FaultEvent::ArbitratorRestart { node } => {
                            let i = crashed
                                .iter()
                                .position(|&n| n == node)
                                .unwrap_or_else(|| panic!("seed {seed}: restart w/o crash"));
                            crashed.swap_remove(i);
                        }
                        FaultEvent::CtrlLossBurst { .. } => {}
                    }
                }
                assert!(open_links.is_empty(), "seed {seed}: unhealed links");
                assert!(crashed.is_empty(), "seed {seed}: unrestarted arbitrators");
            }
        }
    }

    #[test]
    fn high_intensity_generates_more_faults() {
        let topo = leaf_spine();
        let total = |i: ChaosIntensity| -> usize {
            (0..8).map(|s| generate(&topo, &cfg(s, i)).len()).sum()
        };
        assert!(
            total(ChaosIntensity::High) > total(ChaosIntensity::Low),
            "high intensity should produce more fault events on average"
        );
    }

    #[test]
    fn only_fabric_links_are_flapped() {
        let topo = leaf_spine();
        let hosts = topo.hosts();
        for seed in 0..8 {
            let plan = generate(&topo, &cfg(seed, ChaosIntensity::High));
            for &(_, ev) in plan.events() {
                if let FaultEvent::LinkDown { a, b } | FaultEvent::LinkUp { a, b } = ev {
                    assert!(!hosts.contains(&a) && !hosts.contains(&b));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1 ms")]
    fn tiny_horizon_is_rejected() {
        let topo = leaf_spine();
        generate(
            &topo,
            &ChaosConfig {
                seed: 0,
                intensity: ChaosIntensity::Low,
                horizon: SimDuration::from_micros(10),
            },
        );
    }
}
