//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a schedule of [`FaultEvent`]s — link failures and
//! repairs, control-plane (arbitrator) crashes and restarts, and bursts of
//! control-packet loss. [`crate::sim::Simulation::inject_faults`] resolves
//! each event against the topology and enqueues per-node
//! [`FaultDirective`]s through the ordinary event queue, so a faulty run
//! is exactly as reproducible as a healthy one: same seed + same plan =
//! same trace.
//!
//! Semantics:
//!
//! * A **downed link** drops everything: queued packets are flushed (and
//!   counted) when the link goes down, packets offered while down are
//!   rejected, and a packet caught mid-serialization dies instead of being
//!   delivered. Both directions of the link fail together.
//! * An **arbitrator crash** is delivered to the node's control plugin
//!   ([`crate::switch::SwitchPlugin::on_fault`]) or host service
//!   ([`crate::host::HostService::on_fault`]); the data plane keeps
//!   forwarding. What "crash" means is up to the protocol — PASE wipes
//!   its soft arbitration state.
//! * A **control-loss burst** kills the next `n` control packets on one
//!   *direction* of a link (it wraps the port's queue discipline in a
//!   burst-mode [`crate::queue::LossyQdisc`]).
//! * A **degraded link** (gray failure) keeps forwarding but hurts: a
//!   seeded [`DegradeProfile`] imposes stochastic packet loss, payload
//!   corruption (detected and discarded by the destination's checksum,
//!   charged to the `corrupted` conservation term) and/or latency
//!   inflation with bounded jitter on both directions. Each direction
//!   draws from its own deterministic RNG (profile seed salted with the
//!   transmitting node and port), so degraded runs replay byte-identically
//!   and healthy runs never consume randomness.
//!
//! Every injection is recorded as a [`crate::trace::TraceEvent::Fault`]
//! and counted on the affected port
//! ([`crate::port::Port::faults_injected`]).

use std::collections::BTreeSet;

use crate::ids::{NodeId, PortId};
use crate::time::SimTime;
use crate::topology::{NodeKind, Topology};

/// How a degraded (gray-failing) link misbehaves. All fields are
/// per-packet odds or bounds; `seed` makes the misbehaviour reproducible.
///
/// Kept small and `Copy` so a [`FaultDirective::PortDegrade`] carrying it
/// fits the scheduler's 64-byte event budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeProfile {
    /// Seed for the per-direction degradation RNG. Each port salts it
    /// with its own identity, so the two directions of a link (and any
    /// two degraded links sharing a seed) draw independent sequences.
    pub seed: u64,
    /// Probability (parts per million) that a transmitted packet is lost.
    pub loss_ppm: u32,
    /// Probability (parts per million) that a transmitted packet is
    /// corrupted in flight (delivered, then discarded by the receiver's
    /// checksum).
    pub corrupt_ppm: u32,
    /// Fixed extra propagation delay added to every packet, nanoseconds.
    pub extra_delay_ns: u32,
    /// Uniform jitter bound: each packet gets an extra delay drawn from
    /// `[0, jitter_ns]` nanoseconds.
    pub jitter_ns: u32,
}

/// One scheduled fault, in topology terms (nodes and links).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Both directions of the link between `a` and `b` go down.
    LinkDown {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Both directions of the link between `a` and `b` come back up.
    LinkUp {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The control plugin / host service on `node` crashes, losing its
    /// soft state. The data plane is unaffected.
    ArbitratorCrash {
        /// The node whose arbitrator dies.
        node: NodeId,
    },
    /// The control plugin / host service on `node` restarts empty.
    ArbitratorRestart {
        /// The node whose arbitrator comes back.
        node: NodeId,
    },
    /// The next `n` control packets offered to the `from → to` direction
    /// of a link are dropped.
    CtrlLossBurst {
        /// Transmitting end of the faulty direction.
        from: NodeId,
        /// Receiving end of the faulty direction.
        to: NodeId,
        /// How many control packets die.
        n: u64,
    },
    /// The whole end-host `node` crashes: every live flow agent and the
    /// host service die, in-flight data addressed to the host is lost
    /// (accounted as `lost_to_crash`), and flows sourced there are moved
    /// to the terminal `Aborted` state. Unlike [`FaultEvent::ArbitratorCrash`]
    /// this kills the data plane endpoint, not just the control process.
    HostCrash {
        /// The host that dies.
        node: NodeId,
    },
    /// The crashed host `node` comes back empty, with a new incarnation
    /// number so pre-crash segments can be told apart from fresh traffic.
    HostRestart {
        /// The host that comes back.
        node: NodeId,
    },
    /// Both directions of the `a`–`b` link degrade per `profile` (gray
    /// failure: the link stays up but loses, corrupts and/or delays
    /// packets).
    LinkDegrade {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// How the link misbehaves while degraded.
        profile: DegradeProfile,
    },
    /// Both directions of the `a`–`b` link return to nominal behaviour.
    LinkRestore {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A control-plane overload storm begins at `node`'s arbitrator: every
    /// control message it handles is charged `amplify`× against its
    /// per-epoch processing budget, modeling a flash crowd of arbitration
    /// traffic competing for the same control CPU. The data plane is
    /// unaffected; protocols without a budget ignore the directive.
    CtrlStormStart {
        /// The overloaded arbitrator's node.
        node: NodeId,
        /// Budget-cost multiplier while the storm lasts (≥ 2).
        amplify: u32,
    },
    /// The overload storm at `node` subsides; budget accounting returns
    /// to a cost of 1 per message.
    CtrlStormEnd {
        /// The node whose arbitrator recovers.
        node: NodeId,
    },
}

/// A reproducible schedule of faults, built up-front and injected with
/// [`crate::sim::Simulation::inject_faults`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule both directions of the `a`–`b` link to fail at `at`.
    pub fn link_down(mut self, at: SimTime, a: NodeId, b: NodeId) -> Self {
        self.events.push((at, FaultEvent::LinkDown { a, b }));
        self
    }

    /// Schedule both directions of the `a`–`b` link to recover at `at`.
    pub fn link_up(mut self, at: SimTime, a: NodeId, b: NodeId) -> Self {
        self.events.push((at, FaultEvent::LinkUp { a, b }));
        self
    }

    /// Schedule the arbitrator on `node` to crash at `at`.
    pub fn arbitrator_crash(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push((at, FaultEvent::ArbitratorCrash { node }));
        self
    }

    /// Schedule the arbitrator on `node` to restart (empty) at `at`.
    pub fn arbitrator_restart(mut self, at: SimTime, node: NodeId) -> Self {
        self.events
            .push((at, FaultEvent::ArbitratorRestart { node }));
        self
    }

    /// Schedule the next `n` control packets on the `from → to` direction
    /// to be dropped, starting at `at`.
    pub fn ctrl_loss_burst(mut self, at: SimTime, from: NodeId, to: NodeId, n: u64) -> Self {
        self.events
            .push((at, FaultEvent::CtrlLossBurst { from, to, n }));
        self
    }

    /// Schedule the end-host `node` to crash (agents, service and all) at
    /// `at`.
    pub fn host_crash(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push((at, FaultEvent::HostCrash { node }));
        self
    }

    /// Schedule the crashed end-host `node` to come back empty at `at`.
    pub fn host_restart(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push((at, FaultEvent::HostRestart { node }));
        self
    }

    /// Schedule both directions of the `a`–`b` link to degrade per
    /// `profile` at `at` (gray failure).
    pub fn link_degrade(
        mut self,
        at: SimTime,
        a: NodeId,
        b: NodeId,
        profile: DegradeProfile,
    ) -> Self {
        self.events
            .push((at, FaultEvent::LinkDegrade { a, b, profile }));
        self
    }

    /// Schedule both directions of the `a`–`b` link to return to nominal
    /// behaviour at `at`.
    pub fn link_restore(mut self, at: SimTime, a: NodeId, b: NodeId) -> Self {
        self.events.push((at, FaultEvent::LinkRestore { a, b }));
        self
    }

    /// Schedule a control-plane overload storm to hit `node`'s arbitrator
    /// at `at`, charging each handled message `amplify`× against its
    /// per-epoch budget until the matching [`FaultPlan::ctrl_storm_end`].
    pub fn ctrl_storm_start(mut self, at: SimTime, node: NodeId, amplify: u32) -> Self {
        self.events
            .push((at, FaultEvent::CtrlStormStart { node, amplify }));
        self
    }

    /// Schedule the overload storm at `node` to subside at `at`.
    pub fn ctrl_storm_end(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push((at, FaultEvent::CtrlStormEnd { node }));
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check the plan against a topology before injection: every named
    /// node must exist, every link event must name an adjacent pair, and
    /// every down/crash must pair with a later up/restart (and vice
    /// versa) so a "healing" plan cannot silently leave state wedged.
    ///
    /// Validation is opt-in: tests that deliberately model *permanent*
    /// failures (a crash with no restart) simply skip it. Generated chaos
    /// storms always pass it.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        let n = topo.n_nodes() as u32;
        let node_ok = |id: NodeId| id.0 < n;
        let check_link = |what: &str, a: NodeId, b: NodeId| -> Result<(), String> {
            if !node_ok(a) || !node_ok(b) {
                return Err(format!(
                    "{what} names unknown node ({a}, {b}; topology has {n} nodes)"
                ));
            }
            if topo.port_between(a, b).is_none() || topo.port_between(b, a).is_none() {
                return Err(format!("{what} names non-adjacent nodes {a} and {b}"));
            }
            Ok(())
        };

        // Process events in time order (stable, so same-time events keep
        // insertion order) and track what is down at each point.
        let mut ordered: Vec<&(SimTime, FaultEvent)> = self.events.iter().collect();
        ordered.sort_by_key(|(at, _)| *at);
        let mut links_down: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut links_degraded: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut arbs_down: BTreeSet<NodeId> = BTreeSet::new();
        let mut hosts_down: BTreeSet<NodeId> = BTreeSet::new();
        let mut storms: BTreeSet<NodeId> = BTreeSet::new();
        let key = |a: NodeId, b: NodeId| if a.0 <= b.0 { (a, b) } else { (b, a) };
        for &&(at, ev) in &ordered {
            match ev {
                FaultEvent::LinkDown { a, b } => {
                    check_link("LinkDown", a, b)?;
                    if !links_down.insert(key(a, b)) {
                        return Err(format!("link {a}–{b} taken down twice (at {at})"));
                    }
                }
                FaultEvent::LinkUp { a, b } => {
                    check_link("LinkUp", a, b)?;
                    if !links_down.remove(&key(a, b)) {
                        return Err(format!("link {a}–{b} brought up while not down (at {at})"));
                    }
                }
                FaultEvent::ArbitratorCrash { node } => {
                    if !node_ok(node) {
                        return Err(format!("ArbitratorCrash names unknown node {node}"));
                    }
                    if !arbs_down.insert(node) {
                        return Err(format!("arbitrator on {node} crashed twice (at {at})"));
                    }
                }
                FaultEvent::ArbitratorRestart { node } => {
                    if !node_ok(node) {
                        return Err(format!("ArbitratorRestart names unknown node {node}"));
                    }
                    if !arbs_down.remove(&node) {
                        return Err(format!(
                            "arbitrator on {node} restarted while not crashed (at {at})"
                        ));
                    }
                }
                FaultEvent::CtrlLossBurst { from, to, .. } => {
                    check_link("CtrlLossBurst", from, to)?;
                }
                FaultEvent::HostCrash { node } => {
                    if !node_ok(node) {
                        return Err(format!("HostCrash names unknown node {node}"));
                    }
                    if topo.kind(node) != NodeKind::Host {
                        return Err(format!("HostCrash targets non-host node {node}"));
                    }
                    if !hosts_down.insert(node) {
                        return Err(format!("host {node} crashed twice (at {at})"));
                    }
                }
                FaultEvent::HostRestart { node } => {
                    if !node_ok(node) {
                        return Err(format!("HostRestart names unknown node {node}"));
                    }
                    if !hosts_down.remove(&node) {
                        return Err(format!("host {node} restarted while not crashed (at {at})"));
                    }
                }
                FaultEvent::LinkDegrade { a, b, .. } => {
                    check_link("LinkDegrade", a, b)?;
                    if !links_degraded.insert(key(a, b)) {
                        return Err(format!("link {a}–{b} degraded twice (at {at})"));
                    }
                }
                FaultEvent::LinkRestore { a, b } => {
                    check_link("LinkRestore", a, b)?;
                    if !links_degraded.remove(&key(a, b)) {
                        return Err(format!(
                            "link {a}–{b} restored while not degraded (at {at})"
                        ));
                    }
                }
                FaultEvent::CtrlStormStart { node, amplify } => {
                    if !node_ok(node) {
                        return Err(format!("CtrlStormStart names unknown node {node}"));
                    }
                    if amplify < 2 {
                        return Err(format!(
                            "CtrlStormStart on {node} with amplify {amplify} < 2 (at {at})"
                        ));
                    }
                    if !storms.insert(node) {
                        return Err(format!("ctrl storm on {node} started twice (at {at})"));
                    }
                }
                FaultEvent::CtrlStormEnd { node } => {
                    if !node_ok(node) {
                        return Err(format!("CtrlStormEnd names unknown node {node}"));
                    }
                    if !storms.remove(&node) {
                        return Err(format!(
                            "ctrl storm on {node} ended while not active (at {at})"
                        ));
                    }
                }
            }
        }
        if let Some(&(a, b)) = links_down.iter().next() {
            return Err(format!("link {a}–{b} is never brought back up"));
        }
        if let Some(&(a, b)) = links_degraded.iter().next() {
            return Err(format!("link {a}–{b} is never restored from degradation"));
        }
        if let Some(&node) = arbs_down.iter().next() {
            return Err(format!("arbitrator on {node} is never restarted"));
        }
        if let Some(&node) = hosts_down.iter().next() {
            return Err(format!("host {node} is never restarted"));
        }
        if let Some(&node) = storms.iter().next() {
            return Err(format!("ctrl storm on {node} never ends"));
        }
        Ok(())
    }
}

/// A fault resolved to one node, carried by
/// [`crate::event::EventKind::Fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirective {
    /// Take the node's output port down.
    PortDown(PortId),
    /// Bring the node's output port back up.
    PortUp(PortId),
    /// Crash the node's control plugin / host service.
    Crash,
    /// Restart the node's control plugin / host service.
    Restart,
    /// Drop the next `n` control packets offered to `port`.
    CtrlLossBurst {
        /// The affected output port.
        port: PortId,
        /// How many control packets die.
        n: u64,
    },
    /// Crash the whole end host: agents, service, in-flight deliveries.
    HostCrash,
    /// Bring the crashed end host back empty with a new incarnation.
    HostRestart,
    /// Degrade the node's output port per the profile (gray failure).
    PortDegrade {
        /// The affected output port.
        port: PortId,
        /// How the port misbehaves while degraded.
        profile: DegradeProfile,
    },
    /// Restore the node's output port to nominal behaviour.
    PortRestore(PortId),
    /// Begin an overload storm at the node's control plugin / host
    /// service: each handled control message costs `amplify`× budget.
    CtrlStormStart {
        /// Budget-cost multiplier while the storm lasts.
        amplify: u32,
    },
    /// End the overload storm at the node's control plugin / host service.
    CtrlStormEnd,
}

/// What a control plugin or host service is told when its node's
/// control plane faults (see [`crate::switch::SwitchPlugin::on_fault`]
/// and [`crate::host::HostService::on_fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// The control process died: lose all soft state; stop responding.
    Crash,
    /// The control process came back, empty.
    Restart,
    /// A control-plane overload storm begins: each handled message costs
    /// `amplify`× against the per-epoch budget. Protocols without budget
    /// accounting may ignore this.
    CtrlStormStart {
        /// Budget-cost multiplier while the storm lasts.
        amplify: u32,
    },
    /// The overload storm subsides: message cost returns to 1.
    CtrlStormEnd,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowSpec, ReceiverHint};
    use crate::host::{AgentCtx, AgentFactory, FlowAgent};
    use crate::queue::DropTailQdisc;
    use crate::time::{Rate, SimDuration};
    use crate::topology::TopologyBuilder;
    use std::sync::Arc;

    struct NullFactory;
    struct NullAgent;
    impl FlowAgent for NullAgent {
        fn on_start(&mut self, _: &mut AgentCtx<'_, '_>) {}
        fn on_packet(&mut self, _: crate::packet::Packet, _: &mut AgentCtx<'_, '_>) {}
        fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_, '_>) {}
        fn is_done(&self) -> bool {
            false
        }
    }
    impl AgentFactory for NullFactory {
        fn sender(&self, _: &FlowSpec) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
        fn receiver(&self, _: ReceiverHint) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
    }

    /// s0 — s1, with hosts h2 and h3 hanging off s1.
    fn tiny_topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        b.connect(s0, s1, Rate::from_gbps(40), SimDuration::from_micros(2));
        for h in b.add_hosts(2) {
            b.connect(h, s1, Rate::from_gbps(10), SimDuration::from_micros(1));
        }
        b.build(Arc::new(NullFactory), &|_| Box::new(DropTailQdisc::new(16)))
            .topo
    }

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn validate_accepts_a_balanced_plan() {
        let topo = tiny_topo();
        let plan = FaultPlan::new()
            .link_down(ms(1), NodeId(0), NodeId(1))
            .arbitrator_crash(ms(2), NodeId(1))
            .host_crash(ms(2), NodeId(2))
            .ctrl_loss_burst(ms(3), NodeId(1), NodeId(0), 4)
            .link_up(ms(4), NodeId(1), NodeId(0)) // endpoint order may differ
            .arbitrator_restart(ms(5), NodeId(1))
            .host_restart(ms(6), NodeId(2));
        assert_eq!(plan.validate(&topo), Ok(()));
    }

    #[test]
    fn validate_rejects_unknown_nodes() {
        let topo = tiny_topo();
        let err = FaultPlan::new()
            .arbitrator_crash(ms(1), NodeId(99))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("unknown node n99"), "{err}");
        let err = FaultPlan::new()
            .link_down(ms(1), NodeId(0), NodeId(42))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("unknown node"), "{err}");
    }

    #[test]
    fn validate_rejects_non_adjacent_links() {
        let topo = tiny_topo();
        // h2 and h3 both hang off s1 but have no direct link.
        let err = FaultPlan::new()
            .link_down(ms(1), NodeId(2), NodeId(3))
            .link_up(ms(2), NodeId(2), NodeId(3))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("non-adjacent"), "{err}");
        let err = FaultPlan::new()
            .ctrl_loss_burst(ms(1), NodeId(0), NodeId(2), 3)
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("non-adjacent"), "{err}");
    }

    #[test]
    fn validate_rejects_unbalanced_down_up_pairs() {
        let topo = tiny_topo();
        let err = FaultPlan::new()
            .link_down(ms(1), NodeId(0), NodeId(1))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("never brought back up"), "{err}");
        let err = FaultPlan::new()
            .link_up(ms(1), NodeId(0), NodeId(1))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("while not down"), "{err}");
        let err = FaultPlan::new()
            .arbitrator_crash(ms(1), NodeId(0))
            .arbitrator_crash(ms(2), NodeId(0))
            .arbitrator_restart(ms(3), NodeId(0))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("crashed twice"), "{err}");
        let err = FaultPlan::new()
            .host_restart(ms(1), NodeId(2))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("while not crashed"), "{err}");
        let err = FaultPlan::new()
            .host_crash(ms(1), NodeId(2))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("never restarted"), "{err}");
    }

    fn profile(seed: u64) -> DegradeProfile {
        DegradeProfile {
            seed,
            loss_ppm: 10_000,
            corrupt_ppm: 5_000,
            extra_delay_ns: 2_000,
            jitter_ns: 1_000,
        }
    }

    #[test]
    fn validate_accepts_balanced_degrade_restore() {
        let topo = tiny_topo();
        let plan = FaultPlan::new()
            .link_degrade(ms(1), NodeId(0), NodeId(1), profile(7))
            .link_restore(ms(3), NodeId(1), NodeId(0)); // endpoint order may differ
        assert_eq!(plan.validate(&topo), Ok(()));
    }

    #[test]
    fn validate_rejects_unbalanced_degrade_restore_pairs() {
        let topo = tiny_topo();
        let err = FaultPlan::new()
            .link_degrade(ms(1), NodeId(0), NodeId(1), profile(7))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("never restored"), "{err}");
        let err = FaultPlan::new()
            .link_restore(ms(1), NodeId(0), NodeId(1))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("while not degraded"), "{err}");
        let err = FaultPlan::new()
            .link_degrade(ms(1), NodeId(0), NodeId(1), profile(7))
            .link_degrade(ms(2), NodeId(1), NodeId(0), profile(8))
            .link_restore(ms(3), NodeId(0), NodeId(1))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("degraded twice"), "{err}");
    }

    #[test]
    fn validate_rejects_degrade_on_unknown_or_non_adjacent_link() {
        let topo = tiny_topo();
        let err = FaultPlan::new()
            .link_degrade(ms(1), NodeId(0), NodeId(42), profile(7))
            .link_restore(ms(2), NodeId(0), NodeId(42))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("unknown node"), "{err}");
        // h2 and h3 both hang off s1 but have no direct link.
        let err = FaultPlan::new()
            .link_degrade(ms(1), NodeId(2), NodeId(3), profile(7))
            .link_restore(ms(2), NodeId(2), NodeId(3))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("non-adjacent"), "{err}");
    }

    #[test]
    fn degrade_and_down_are_independent_state_machines() {
        // A link may be degraded and then (while still degraded) go fully
        // down; validate tracks the two conditions separately.
        let topo = tiny_topo();
        let plan = FaultPlan::new()
            .link_degrade(ms(1), NodeId(0), NodeId(1), profile(7))
            .link_down(ms(2), NodeId(0), NodeId(1))
            .link_up(ms(3), NodeId(0), NodeId(1))
            .link_restore(ms(4), NodeId(0), NodeId(1));
        assert_eq!(plan.validate(&topo), Ok(()));
    }

    #[test]
    fn validate_orders_by_time_not_insertion() {
        let topo = tiny_topo();
        // Inserted up-before-down, but the *times* are ordered correctly.
        let plan = FaultPlan::new()
            .link_up(ms(4), NodeId(0), NodeId(1))
            .link_down(ms(1), NodeId(0), NodeId(1));
        assert_eq!(plan.validate(&topo), Ok(()));
    }

    #[test]
    fn validate_accepts_balanced_ctrl_storms() {
        let topo = tiny_topo();
        let plan = FaultPlan::new()
            .ctrl_storm_start(ms(1), NodeId(1), 8)
            .ctrl_storm_end(ms(3), NodeId(1));
        assert_eq!(plan.validate(&topo), Ok(()));
    }

    #[test]
    fn validate_rejects_unbalanced_or_degenerate_ctrl_storms() {
        let topo = tiny_topo();
        let err = FaultPlan::new()
            .ctrl_storm_start(ms(1), NodeId(1), 8)
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("never ends"), "{err}");
        let err = FaultPlan::new()
            .ctrl_storm_end(ms(1), NodeId(1))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("while not active"), "{err}");
        let err = FaultPlan::new()
            .ctrl_storm_start(ms(1), NodeId(1), 8)
            .ctrl_storm_start(ms(2), NodeId(1), 4)
            .ctrl_storm_end(ms(3), NodeId(1))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("started twice"), "{err}");
        let err = FaultPlan::new()
            .ctrl_storm_start(ms(1), NodeId(1), 1)
            .ctrl_storm_end(ms(2), NodeId(1))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("amplify 1 < 2"), "{err}");
        let err = FaultPlan::new()
            .ctrl_storm_start(ms(1), NodeId(77), 4)
            .ctrl_storm_end(ms(2), NodeId(77))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("unknown node"), "{err}");
    }

    #[test]
    fn validate_rejects_host_crash_on_a_switch() {
        let topo = tiny_topo();
        let err = FaultPlan::new()
            .host_crash(ms(1), NodeId(0))
            .host_restart(ms(2), NodeId(0))
            .validate(&topo)
            .unwrap_err();
        assert!(err.contains("non-host"), "{err}");
    }

    #[test]
    fn builder_preserves_order_and_times() {
        let plan = FaultPlan::new()
            .link_down(SimTime::from_millis(1), NodeId(0), NodeId(1))
            .arbitrator_crash(SimTime::from_millis(2), NodeId(2))
            .ctrl_loss_burst(SimTime::from_millis(3), NodeId(1), NodeId(0), 5)
            .link_up(SimTime::from_millis(4), NodeId(0), NodeId(1))
            .arbitrator_restart(SimTime::from_millis(5), NodeId(2));
        assert_eq!(plan.len(), 5);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.events()[0],
            (
                SimTime::from_millis(1),
                FaultEvent::LinkDown {
                    a: NodeId(0),
                    b: NodeId(1)
                }
            )
        );
        assert_eq!(
            plan.events()[4],
            (
                SimTime::from_millis(5),
                FaultEvent::ArbitratorRestart { node: NodeId(2) }
            )
        );
    }

    #[test]
    fn plans_compare_equal_when_identical() {
        let mk = || {
            FaultPlan::new()
                .arbitrator_crash(SimTime::from_millis(2), NodeId(0))
                .arbitrator_restart(SimTime::from_millis(6), NodeId(0))
        };
        assert_eq!(mk(), mk());
        assert_ne!(mk(), FaultPlan::new());
    }
}
