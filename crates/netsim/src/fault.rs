//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a schedule of [`FaultEvent`]s — link failures and
//! repairs, control-plane (arbitrator) crashes and restarts, and bursts of
//! control-packet loss. [`crate::sim::Simulation::inject_faults`] resolves
//! each event against the topology and enqueues per-node
//! [`FaultDirective`]s through the ordinary event queue, so a faulty run
//! is exactly as reproducible as a healthy one: same seed + same plan =
//! same trace.
//!
//! Semantics:
//!
//! * A **downed link** drops everything: queued packets are flushed (and
//!   counted) when the link goes down, packets offered while down are
//!   rejected, and a packet caught mid-serialization dies instead of being
//!   delivered. Both directions of the link fail together.
//! * An **arbitrator crash** is delivered to the node's control plugin
//!   ([`crate::switch::SwitchPlugin::on_fault`]) or host service
//!   ([`crate::host::HostService::on_fault`]); the data plane keeps
//!   forwarding. What "crash" means is up to the protocol — PASE wipes
//!   its soft arbitration state.
//! * A **control-loss burst** kills the next `n` control packets on one
//!   *direction* of a link (it wraps the port's queue discipline in a
//!   burst-mode [`crate::queue::LossyQdisc`]).
//!
//! Every injection is recorded as a [`crate::trace::TraceEvent::Fault`]
//! and counted on the affected port
//! ([`crate::port::Port::faults_injected`]).

use crate::ids::{NodeId, PortId};
use crate::time::SimTime;

/// One scheduled fault, in topology terms (nodes and links).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Both directions of the link between `a` and `b` go down.
    LinkDown {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Both directions of the link between `a` and `b` come back up.
    LinkUp {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The control plugin / host service on `node` crashes, losing its
    /// soft state. The data plane is unaffected.
    ArbitratorCrash {
        /// The node whose arbitrator dies.
        node: NodeId,
    },
    /// The control plugin / host service on `node` restarts empty.
    ArbitratorRestart {
        /// The node whose arbitrator comes back.
        node: NodeId,
    },
    /// The next `n` control packets offered to the `from → to` direction
    /// of a link are dropped.
    CtrlLossBurst {
        /// Transmitting end of the faulty direction.
        from: NodeId,
        /// Receiving end of the faulty direction.
        to: NodeId,
        /// How many control packets die.
        n: u64,
    },
}

/// A reproducible schedule of faults, built up-front and injected with
/// [`crate::sim::Simulation::inject_faults`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule both directions of the `a`–`b` link to fail at `at`.
    pub fn link_down(mut self, at: SimTime, a: NodeId, b: NodeId) -> Self {
        self.events.push((at, FaultEvent::LinkDown { a, b }));
        self
    }

    /// Schedule both directions of the `a`–`b` link to recover at `at`.
    pub fn link_up(mut self, at: SimTime, a: NodeId, b: NodeId) -> Self {
        self.events.push((at, FaultEvent::LinkUp { a, b }));
        self
    }

    /// Schedule the arbitrator on `node` to crash at `at`.
    pub fn arbitrator_crash(mut self, at: SimTime, node: NodeId) -> Self {
        self.events.push((at, FaultEvent::ArbitratorCrash { node }));
        self
    }

    /// Schedule the arbitrator on `node` to restart (empty) at `at`.
    pub fn arbitrator_restart(mut self, at: SimTime, node: NodeId) -> Self {
        self.events
            .push((at, FaultEvent::ArbitratorRestart { node }));
        self
    }

    /// Schedule the next `n` control packets on the `from → to` direction
    /// to be dropped, starting at `at`.
    pub fn ctrl_loss_burst(mut self, at: SimTime, from: NodeId, to: NodeId, n: u64) -> Self {
        self.events
            .push((at, FaultEvent::CtrlLossBurst { from, to, n }));
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A fault resolved to one node, carried by
/// [`crate::event::EventKind::Fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirective {
    /// Take the node's output port down.
    PortDown(PortId),
    /// Bring the node's output port back up.
    PortUp(PortId),
    /// Crash the node's control plugin / host service.
    Crash,
    /// Restart the node's control plugin / host service.
    Restart,
    /// Drop the next `n` control packets offered to `port`.
    CtrlLossBurst {
        /// The affected output port.
        port: PortId,
        /// How many control packets die.
        n: u64,
    },
}

/// What a control plugin or host service is told when its node's
/// control plane faults (see [`crate::switch::SwitchPlugin::on_fault`]
/// and [`crate::host::HostService::on_fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// The control process died: lose all soft state; stop responding.
    Crash,
    /// The control process came back, empty.
    Restart,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order_and_times() {
        let plan = FaultPlan::new()
            .link_down(SimTime::from_millis(1), NodeId(0), NodeId(1))
            .arbitrator_crash(SimTime::from_millis(2), NodeId(2))
            .ctrl_loss_burst(SimTime::from_millis(3), NodeId(1), NodeId(0), 5)
            .link_up(SimTime::from_millis(4), NodeId(0), NodeId(1))
            .arbitrator_restart(SimTime::from_millis(5), NodeId(2));
        assert_eq!(plan.len(), 5);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.events()[0],
            (
                SimTime::from_millis(1),
                FaultEvent::LinkDown {
                    a: NodeId(0),
                    b: NodeId(1)
                }
            )
        );
        assert_eq!(
            plan.events()[4],
            (
                SimTime::from_millis(5),
                FaultEvent::ArbitratorRestart { node: NodeId(2) }
            )
        );
    }

    #[test]
    fn plans_compare_equal_when_identical() {
        let mk = || {
            FaultPlan::new()
                .arbitrator_crash(SimTime::from_millis(2), NodeId(0))
                .arbitrator_restart(SimTime::from_millis(6), NodeId(0))
        };
        assert_eq!(mk(), mk());
        assert_ne!(mk(), FaultPlan::new());
    }
}
