//! The simulation façade: owns the network, the scheduler and the stats,
//! and drives the event loop.

use crate::engine::{Ctx, Scheduler};
use crate::event::EventKind;
use crate::fault::{FaultDirective, FaultEvent, FaultPlan};
use crate::flow::FlowSpec;
use crate::ids::NodeId;
use crate::ids::PortId;
use crate::invariants::{
    is_ctrl_deliver, is_data_deliver, ConservationTerms, CtrlConservationTerms, InNetwork,
    Invariant, InvariantConfig, InvariantMonitor, InvariantReport, ProgressEvidence, Violation,
};
use crate::node::Node;
use crate::packet::PacketKind;
use crate::port::Port;
use crate::stats::StatsCollector;
use crate::time::SimTime;
use crate::topology::{Network, Topology};

/// Bounds on a simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunLimit {
    /// Stop once the clock passes this time.
    pub max_time: Option<SimTime>,
    /// Stop after this many events.
    pub max_events: Option<u64>,
    /// Stop as soon as every measured flow has completed (the usual
    /// experiment termination: background flows never finish).
    pub stop_when_measured_done: bool,
}

impl RunLimit {
    /// Run until all measured flows complete, with a time-limit backstop.
    pub fn until_measured_done(backstop: SimTime) -> RunLimit {
        RunLimit {
            max_time: Some(backstop),
            max_events: None,
            stop_when_measured_done: true,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// All measured flows completed.
    MeasuredComplete,
    /// The time limit was hit.
    TimeLimit,
    /// The event limit was hit.
    EventLimit,
}

/// A runnable simulation.
pub struct Simulation {
    sched: Scheduler,
    nodes: Vec<Node>,
    topo: Topology,
    stats: StatsCollector,
    invariants: Option<InvariantMonitor>,
}

impl Simulation {
    /// Wrap a constructed network.
    pub fn new(net: Network) -> Simulation {
        Simulation {
            sched: Scheduler::new(),
            nodes: net.nodes,
            topo: net.topo,
            stats: StatsCollector::new(),
            invariants: None,
        }
    }

    /// Topology metadata.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Measurement results.
    pub fn stats(&self) -> &StatsCollector {
        &self.stats
    }

    /// Install a trace sink (see [`crate::trace`]); events start flowing
    /// from the next processed event.
    pub fn set_tracer(&mut self, tracer: Box<dyn crate::trace::TraceSink>) {
        self.stats.set_tracer(tracer);
    }

    /// Mutable access to a node, for post-build wiring (installing switch
    /// plugins, host services) and for test inspection.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterate all nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The scheduler, for wiring that needs to seed events (e.g. periodic
    /// control-plane timers) before the run starts.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.sched
    }

    /// Shared access to the scheduler (clock, pending-event counts).
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Register a flow and schedule its start at `spec.start`.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        assert!(
            matches!(self.nodes[spec.src.index()], Node::Host(_)),
            "flow source {} is not a host",
            spec.src
        );
        assert!(
            matches!(self.nodes[spec.dst.index()], Node::Host(_)),
            "flow destination {} is not a host",
            spec.dst
        );
        assert_ne!(spec.src, spec.dst, "flow to self");
        self.stats.register_flow(&spec);
        let src = spec.src;
        let at = spec.start;
        self.sched.schedule_at(at, src, EventKind::flow_start(spec));
    }

    /// Register many flows at once. Equivalent to calling
    /// [`Simulation::add_flow`] per spec, but reserves scheduler capacity
    /// up front so a workload's arrival burst doesn't grow the event heap
    /// incrementally.
    pub fn add_flows<I>(&mut self, flows: I)
    where
        I: IntoIterator<Item = FlowSpec>,
    {
        let flows = flows.into_iter();
        // Lower bound only: upper bounds can be inflated or absent (see
        // `Scheduler::schedule_batch`), and growth handles the remainder.
        let (lo, _hi) = flows.size_hint();
        self.sched.reserve(lo);
        for spec in flows {
            self.add_flow(spec);
        }
    }

    /// Schedule every event of a [`FaultPlan`]. Link events are resolved
    /// against the topology (both directions of a link fail and recover
    /// together); node events go to the named node's control plane. Called
    /// before (or between) [`Simulation::run`] calls; injection uses the
    /// ordinary event queue, so determinism is preserved.
    ///
    /// Panics if the plan names a link that does not exist.
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        for &(at, event) in plan.events() {
            match event {
                FaultEvent::LinkDown { a, b } => {
                    let (pa, pb) = self.link_ports(a, b);
                    self.sched
                        .schedule_at(at, a, EventKind::Fault(FaultDirective::PortDown(pa)));
                    self.sched
                        .schedule_at(at, b, EventKind::Fault(FaultDirective::PortDown(pb)));
                }
                FaultEvent::LinkUp { a, b } => {
                    let (pa, pb) = self.link_ports(a, b);
                    self.sched
                        .schedule_at(at, a, EventKind::Fault(FaultDirective::PortUp(pa)));
                    self.sched
                        .schedule_at(at, b, EventKind::Fault(FaultDirective::PortUp(pb)));
                }
                FaultEvent::ArbitratorCrash { node } => {
                    self.sched
                        .schedule_at(at, node, EventKind::Fault(FaultDirective::Crash));
                }
                FaultEvent::ArbitratorRestart { node } => {
                    self.sched
                        .schedule_at(at, node, EventKind::Fault(FaultDirective::Restart));
                }
                FaultEvent::HostCrash { node } => {
                    self.sched
                        .schedule_at(at, node, EventKind::Fault(FaultDirective::HostCrash));
                }
                FaultEvent::HostRestart { node } => {
                    self.sched
                        .schedule_at(at, node, EventKind::Fault(FaultDirective::HostRestart));
                }
                FaultEvent::LinkDegrade { a, b, profile } => {
                    let (pa, pb) = self.link_ports(a, b);
                    self.sched.schedule_at(
                        at,
                        a,
                        EventKind::Fault(FaultDirective::PortDegrade { port: pa, profile }),
                    );
                    self.sched.schedule_at(
                        at,
                        b,
                        EventKind::Fault(FaultDirective::PortDegrade { port: pb, profile }),
                    );
                }
                FaultEvent::LinkRestore { a, b } => {
                    let (pa, pb) = self.link_ports(a, b);
                    self.sched.schedule_at(
                        at,
                        a,
                        EventKind::Fault(FaultDirective::PortRestore(pa)),
                    );
                    self.sched.schedule_at(
                        at,
                        b,
                        EventKind::Fault(FaultDirective::PortRestore(pb)),
                    );
                }
                FaultEvent::CtrlLossBurst { from, to, n } => {
                    let port = self
                        .topo
                        .port_between(from, to)
                        .unwrap_or_else(|| panic!("no link {from} -> {to} in fault plan"));
                    self.sched.schedule_at(
                        at,
                        from,
                        EventKind::Fault(FaultDirective::CtrlLossBurst { port, n }),
                    );
                }
                FaultEvent::CtrlStormStart { node, amplify } => {
                    self.sched.schedule_at(
                        at,
                        node,
                        EventKind::Fault(FaultDirective::CtrlStormStart { amplify }),
                    );
                }
                FaultEvent::CtrlStormEnd { node } => {
                    self.sched.schedule_at(
                        at,
                        node,
                        EventKind::Fault(FaultDirective::CtrlStormEnd),
                    );
                }
            }
        }
    }

    /// Turn on health-aware ECMP routing on every switch: flows are
    /// re-hashed off live-but-degraded siblings (per-port EWMA health
    /// below [`crate::port::HEALTHY_THRESHOLD`]) and return once the
    /// port's health recovers. Off by default — static `route_live`
    /// keeps traces of healthy runs byte-identical to earlier seeds.
    pub fn enable_health_aware_routing(&mut self) {
        for node in &mut self.nodes {
            if let Node::Switch(s) = node {
                s.set_health_aware(true);
            }
        }
    }

    /// Resolve both directions of the `a`–`b` link, panicking when absent.
    fn link_ports(&self, a: NodeId, b: NodeId) -> (PortId, PortId) {
        let pa = self
            .topo
            .port_between(a, b)
            .unwrap_or_else(|| panic!("no link {a} -> {b} in fault plan"));
        let pb = self
            .topo
            .port_between(b, a)
            .unwrap_or_else(|| panic!("no link {b} -> {a} in fault plan"));
        (pa, pb)
    }

    /// Run the event loop until a limit is reached or the queue drains.
    ///
    /// Flushes the trace sink (if any) before returning, so buffered
    /// sinks like [`crate::trace::TextTracer`] are readable at every
    /// point a caller regains control.
    pub fn run(&mut self, limit: RunLimit) -> RunOutcome {
        let outcome = self.run_inner(limit);
        self.stats.flush_tracer();
        self.stats.arena = self.sched.arena().stats();
        if outcome == RunOutcome::Drained {
            // Nothing is queued, in flight, or on the wire anymore, so
            // every arena packet must have been released: a nonzero count
            // here is a leaked box (a drop/consume path that forgot to
            // return it), which would silently defeat the recycling.
            assert_eq!(
                self.sched.arena().outstanding(),
                0,
                "packet arena leak: {} packets still outstanding after a drained run \
                 ({:?})",
                self.sched.arena().outstanding(),
                self.sched.arena().stats(),
            );
        }
        outcome
    }

    fn run_inner(&mut self, limit: RunLimit) -> RunOutcome {
        loop {
            if limit.stop_when_measured_done && self.stats.all_measured_complete() {
                return RunOutcome::MeasuredComplete;
            }
            if let Some(max_ev) = limit.max_events {
                if self.stats.events_executed >= max_ev {
                    return RunOutcome::EventLimit;
                }
            }
            if let Some(max_t) = limit.max_time {
                match self.sched.next_event_time() {
                    Some(t) if t > max_t => return RunOutcome::TimeLimit,
                    None => return RunOutcome::Drained,
                    _ => {}
                }
            }
            let Some((target, kind)) = self.sched.pop() else {
                return RunOutcome::Drained;
            };
            self.stats.events_executed += 1;
            if let Some(mon) = &mut self.invariants {
                let now = self.sched.now();
                if mon.on_event(now) {
                    Self::scan_queues(&self.nodes, now, mon);
                }
            }
            let mut ctx = Ctx {
                node: target,
                sched: &mut self.sched,
                stats: &mut self.stats,
            };
            self.nodes[target.index()].handle(kind, &mut ctx);
        }
    }

    /// Turn on online invariant monitoring (clock monotonicity every
    /// event, queue bounds periodically). Violations accumulate and are
    /// returned by [`Simulation::check_invariants`].
    pub fn enable_invariants(&mut self, cfg: InvariantConfig) {
        self.invariants = Some(InvariantMonitor::new(cfg));
    }

    /// Audit the global invariants (see [`crate::invariants`]): packet
    /// conservation, no stuck flow, queue bounds — plus anything the
    /// online monitor accumulated during [`Simulation::run`]. Usually
    /// called after a run stops; safe to call at any point, with or
    /// without [`Simulation::enable_invariants`].
    pub fn check_invariants(&self) -> InvariantReport {
        let now = self.sched.now();
        let cfg = self.invariants.as_ref().map(|m| m.cfg).unwrap_or_default();
        let mut violations: Vec<Violation> = self
            .invariants
            .as_ref()
            .map(|m| m.violations.clone())
            .unwrap_or_default();

        // One walk over ports and pending events feeds both the
        // conservation count and the stuck-flow evidence.
        let mut evidence = ProgressEvidence::default();
        let mut in_net = InNetwork::default();
        let mut ctrl_in_net = InNetwork::default();
        // Arena balance: every outstanding arena box must be somewhere we
        // can see — held by a port (queued or serializing) or riding a
        // pending Deliver event. Packets of *all* kinds count here, unlike
        // the per-plane conservation terms below.
        let mut held_in_ports = 0u64;
        Self::for_each_port(&self.nodes, &mut |node, port| {
            port.for_each_held(&mut |pkt| {
                evidence.note_flow(pkt.flow);
                held_in_ports += 1;
                match pkt.kind {
                    PacketKind::Data => in_net.in_ports += 1,
                    PacketKind::Ctrl => ctrl_in_net.in_ports += 1,
                    _ => {}
                }
            });
            let len = port.queue_len_pkts();
            if len > cfg.max_queue_pkts {
                violations.push(Violation {
                    at: now,
                    invariant: Invariant::QueueBound,
                    detail: format!(
                        "queue on {node} holds {len} pkts (bound {})",
                        cfg.max_queue_pkts
                    ),
                });
            }
        });
        let mut on_wire_total = 0u64;
        for (_, target, kind) in self.sched.pending_events() {
            evidence.note_event(target, kind);
            if matches!(kind, EventKind::Deliver(_)) {
                on_wire_total += 1;
            }
            if is_data_deliver(kind) {
                in_net.on_wire += 1;
            }
            if is_ctrl_deliver(kind) {
                ctrl_in_net.on_wire += 1;
            }
        }

        let outstanding = self.sched.arena().outstanding();
        if outstanding != (held_in_ports + on_wire_total) as i64 {
            violations.push(Violation {
                at: now,
                invariant: Invariant::ArenaBalance,
                detail: format!(
                    "arena outstanding {outstanding} != {held_in_ports} packets held \
                     in ports + {on_wire_total} on the wire",
                ),
            });
        }

        ConservationTerms {
            injected: self.stats.data_pkts_injected,
            delivered: self.stats.data_pkts_delivered,
            dropped: self.stats.data_pkts_dropped,
            corrupted: self.stats.data_pkts_corrupted,
            blackholed: self.stats.data_pkts_blackholed,
            consumed: self.stats.data_pkts_consumed,
            lost_to_crash: self.stats.data_pkts_lost_to_crash,
            in_network: in_net,
        }
        .check(now, &mut violations);

        CtrlConservationTerms {
            sent: self.stats.ctrl_pkts,
            processed: self.stats.ctrl_msgs_processed,
            shed: self.stats.ctrl_msgs_shed,
            dropped: self.stats.ctrl_pkts_dropped,
            corrupted: self.stats.ctrl_pkts_corrupted,
            blackholed: self.stats.ctrl_pkts_blackholed,
            lost_to_crash: self.stats.ctrl_lost_to_crash,
            unattended: self.stats.ctrl_unattended,
            in_network: ctrl_in_net,
        }
        .check(now, &mut violations);

        for rec in self.stats.flows() {
            if rec.completed.is_none()
                && !evidence.can_progress(rec.spec.id, rec.spec.src, rec.spec.dst)
            {
                violations.push(Violation {
                    at: now,
                    invariant: Invariant::StuckFlow,
                    detail: format!(
                        "{} ({} -> {}) incomplete with no pending event, packet, \
                         or control timer that could advance it",
                        rec.spec.id, rec.spec.src, rec.spec.dst
                    ),
                });
            }
        }

        InvariantReport { violations }
    }

    /// Periodic online scan: flag any port whose queue exceeds the bound.
    fn scan_queues(nodes: &[Node], now: SimTime, mon: &mut InvariantMonitor) {
        let bound = mon.cfg.max_queue_pkts;
        Self::for_each_port(nodes, &mut |node, port| {
            let len = port.queue_len_pkts();
            if len > bound {
                mon.note_queue_violation(now, node, len);
            }
        });
    }

    /// Visit every output port in the network.
    fn for_each_port(nodes: &[Node], f: &mut dyn FnMut(NodeId, &Port)) {
        for node in nodes {
            match node {
                Node::Host(h) => f(h.id(), h.port()),
                Node::Switch(s) => {
                    for port in s.ports() {
                        f(s.id(), port);
                    }
                }
            }
        }
    }
}

impl core::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now())
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.sched.pending())
            .finish()
    }
}
