//! The simulation façade: owns the network, the scheduler and the stats,
//! and drives the event loop.

use crate::engine::{Ctx, Scheduler};
use crate::event::EventKind;
use crate::fault::{FaultDirective, FaultEvent, FaultPlan};
use crate::flow::FlowSpec;
use crate::ids::NodeId;
use crate::ids::PortId;
use crate::node::Node;
use crate::stats::StatsCollector;
use crate::time::SimTime;
use crate::topology::{Network, Topology};

/// Bounds on a simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunLimit {
    /// Stop once the clock passes this time.
    pub max_time: Option<SimTime>,
    /// Stop after this many events.
    pub max_events: Option<u64>,
    /// Stop as soon as every measured flow has completed (the usual
    /// experiment termination: background flows never finish).
    pub stop_when_measured_done: bool,
}

impl RunLimit {
    /// Run until all measured flows complete, with a time-limit backstop.
    pub fn until_measured_done(backstop: SimTime) -> RunLimit {
        RunLimit {
            max_time: Some(backstop),
            max_events: None,
            stop_when_measured_done: true,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// All measured flows completed.
    MeasuredComplete,
    /// The time limit was hit.
    TimeLimit,
    /// The event limit was hit.
    EventLimit,
}

/// A runnable simulation.
pub struct Simulation {
    sched: Scheduler,
    nodes: Vec<Node>,
    topo: Topology,
    stats: StatsCollector,
}

impl Simulation {
    /// Wrap a constructed network.
    pub fn new(net: Network) -> Simulation {
        Simulation {
            sched: Scheduler::new(),
            nodes: net.nodes,
            topo: net.topo,
            stats: StatsCollector::new(),
        }
    }

    /// Topology metadata.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Measurement results.
    pub fn stats(&self) -> &StatsCollector {
        &self.stats
    }

    /// Install a trace sink (see [`crate::trace`]); events start flowing
    /// from the next processed event.
    pub fn set_tracer(&mut self, tracer: Box<dyn crate::trace::TraceSink>) {
        self.stats.set_tracer(tracer);
    }

    /// Mutable access to a node, for post-build wiring (installing switch
    /// plugins, host services) and for test inspection.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterate all nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The scheduler, for wiring that needs to seed events (e.g. periodic
    /// control-plane timers) before the run starts.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.sched
    }

    /// Register a flow and schedule its start at `spec.start`.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        assert!(
            matches!(self.nodes[spec.src.index()], Node::Host(_)),
            "flow source {} is not a host",
            spec.src
        );
        assert!(
            matches!(self.nodes[spec.dst.index()], Node::Host(_)),
            "flow destination {} is not a host",
            spec.dst
        );
        assert_ne!(spec.src, spec.dst, "flow to self");
        self.stats.register_flow(&spec);
        let src = spec.src;
        let at = spec.start;
        self.sched.schedule_at(at, src, EventKind::FlowStart(spec));
    }

    /// Schedule every event of a [`FaultPlan`]. Link events are resolved
    /// against the topology (both directions of a link fail and recover
    /// together); node events go to the named node's control plane. Called
    /// before (or between) [`Simulation::run`] calls; injection uses the
    /// ordinary event queue, so determinism is preserved.
    ///
    /// Panics if the plan names a link that does not exist.
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        for &(at, event) in plan.events() {
            match event {
                FaultEvent::LinkDown { a, b } => {
                    let (pa, pb) = self.link_ports(a, b);
                    self.sched
                        .schedule_at(at, a, EventKind::Fault(FaultDirective::PortDown(pa)));
                    self.sched
                        .schedule_at(at, b, EventKind::Fault(FaultDirective::PortDown(pb)));
                }
                FaultEvent::LinkUp { a, b } => {
                    let (pa, pb) = self.link_ports(a, b);
                    self.sched
                        .schedule_at(at, a, EventKind::Fault(FaultDirective::PortUp(pa)));
                    self.sched
                        .schedule_at(at, b, EventKind::Fault(FaultDirective::PortUp(pb)));
                }
                FaultEvent::ArbitratorCrash { node } => {
                    self.sched
                        .schedule_at(at, node, EventKind::Fault(FaultDirective::Crash));
                }
                FaultEvent::ArbitratorRestart { node } => {
                    self.sched
                        .schedule_at(at, node, EventKind::Fault(FaultDirective::Restart));
                }
                FaultEvent::CtrlLossBurst { from, to, n } => {
                    let port = self
                        .topo
                        .port_between(from, to)
                        .unwrap_or_else(|| panic!("no link {from} -> {to} in fault plan"));
                    self.sched.schedule_at(
                        at,
                        from,
                        EventKind::Fault(FaultDirective::CtrlLossBurst { port, n }),
                    );
                }
            }
        }
    }

    /// Resolve both directions of the `a`–`b` link, panicking when absent.
    fn link_ports(&self, a: NodeId, b: NodeId) -> (PortId, PortId) {
        let pa = self
            .topo
            .port_between(a, b)
            .unwrap_or_else(|| panic!("no link {a} -> {b} in fault plan"));
        let pb = self
            .topo
            .port_between(b, a)
            .unwrap_or_else(|| panic!("no link {b} -> {a} in fault plan"));
        (pa, pb)
    }

    /// Run the event loop until a limit is reached or the queue drains.
    pub fn run(&mut self, limit: RunLimit) -> RunOutcome {
        loop {
            if limit.stop_when_measured_done && self.stats.all_measured_complete() {
                return RunOutcome::MeasuredComplete;
            }
            if let Some(max_ev) = limit.max_events {
                if self.stats.events_executed >= max_ev {
                    return RunOutcome::EventLimit;
                }
            }
            if let Some(max_t) = limit.max_time {
                match self.sched.next_event_time() {
                    Some(t) if t > max_t => return RunOutcome::TimeLimit,
                    None => return RunOutcome::Drained,
                    _ => {}
                }
            }
            let Some((target, kind)) = self.sched.pop() else {
                return RunOutcome::Drained;
            };
            self.stats.events_executed += 1;
            let mut ctx = Ctx {
                node: target,
                sched: &mut self.sched,
                stats: &mut self.stats,
            };
            self.nodes[target.index()].handle(kind, &mut ctx);
        }
    }
}

impl core::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now())
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.sched.pending())
            .finish()
    }
}
