//! Topology description and construction.
//!
//! A [`TopologyBuilder`] accumulates hosts, switches and full-duplex links,
//! then [`TopologyBuilder::build`] computes shortest-path forwarding tables
//! and stamps out the node objects. The resulting [`Topology`] retains the
//! graph metadata (who connects to whom, at what rate) so that control
//! planes — PASE's arbitration hierarchy, PDQ's per-link arbitration — can
//! be wired up after construction.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::host::{AgentFactory, Host};
use crate::ids::{NodeId, PortId};
use crate::node::Node;
use crate::port::Port;
use crate::queue::Qdisc;
use crate::switch::{Fib, FibBuilder, Switch};
use crate::time::{Rate, SimDuration};

/// What kind of node occupies an id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host.
    Host,
    /// A switch.
    Switch,
}

/// One direction of a link, as seen from the transmitting node.
#[derive(Debug, Clone, Copy)]
pub struct PortSpec {
    /// The transmitting node.
    pub node: NodeId,
    /// Whether the transmitting node is a host.
    pub node_is_host: bool,
    /// The output port index on the transmitting node.
    pub port: PortId,
    /// The receiving node.
    pub peer: NodeId,
    /// Link capacity.
    pub rate: Rate,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

/// Chooses the queue discipline for each port at build time.
pub type QdiscChooser<'a> = dyn Fn(&PortSpec) -> Box<dyn Qdisc> + 'a;

/// Accumulates a topology description.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    /// Adjacency: per node, its ports in creation order.
    ports: Vec<Vec<(NodeId, Rate, SimDuration)>>,
}

impl TopologyBuilder {
    /// An empty topology.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Add a host, returning its id.
    pub fn add_host(&mut self) -> NodeId {
        self.add_node(NodeKind::Host)
    }

    /// Add `n` hosts, returning their ids.
    pub fn add_hosts(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_host()).collect()
    }

    /// Add a switch, returning its id.
    pub fn add_switch(&mut self) -> NodeId {
        self.add_node(NodeKind::Switch)
    }

    fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.ports.push(Vec::new());
        id
    }

    /// Connect `a` and `b` with a full-duplex link of the given capacity
    /// and one-way propagation delay. Creates one output port on each node.
    pub fn connect(&mut self, a: NodeId, b: NodeId, rate: Rate, delay: SimDuration) {
        assert_ne!(a, b, "self-links are not allowed");
        self.ports[a.index()].push((b, rate, delay));
        self.ports[b.index()].push((a, rate, delay));
    }

    /// Compute forwarding tables and construct the network.
    ///
    /// `factory` builds each host's flow agents; `qdisc_for` chooses a
    /// queue discipline per output port.
    pub fn build(&self, factory: Arc<dyn AgentFactory>, qdisc_for: &QdiscChooser<'_>) -> Network {
        let n = self.kinds.len();
        assert!(n > 0, "empty topology");
        for (i, kind) in self.kinds.iter().enumerate() {
            match kind {
                NodeKind::Host => assert_eq!(
                    self.ports[i].len(),
                    1,
                    "host n{i} must have exactly one access link"
                ),
                NodeKind::Switch => assert!(!self.ports[i].is_empty(), "switch n{i} has no links"),
            }
        }
        let mut fibs = self.compute_fibs();
        let mut nodes = Vec::with_capacity(n);
        for (i, kind) in self.kinds.iter().enumerate() {
            let id = NodeId(i as u32);
            let mk_port = |(pidx, &(peer, rate, delay)): (usize, &(NodeId, Rate, SimDuration))| {
                let spec = PortSpec {
                    node: id,
                    node_is_host: *kind == NodeKind::Host,
                    port: PortId(pidx as u32),
                    peer,
                    rate,
                    delay,
                };
                Port::new(spec.port, peer, rate, delay, qdisc_for(&spec))
            };
            match kind {
                NodeKind::Host => {
                    let port = self.ports[i]
                        .iter()
                        .enumerate()
                        .map(mk_port)
                        .next()
                        .unwrap();
                    nodes.push(Node::Host(Host::new(id, port, Arc::clone(&factory), None)));
                }
                NodeKind::Switch => {
                    let ports: Vec<Port> = self.ports[i].iter().enumerate().map(mk_port).collect();
                    let fib = fibs[i].take().expect("switch has a forwarding table");
                    nodes.push(Node::Switch(Switch::new(id, ports, fib)));
                }
            }
        }
        Network {
            nodes,
            topo: Topology {
                kinds: self.kinds.clone(),
                ports: self.ports.clone(),
            },
        }
    }

    /// Shortest-path forwarding tables with equal-cost multipath: for
    /// every switch, for every destination, the set of output ports on
    /// shortest paths — streamed destination-by-destination into compact
    /// run-length-encoded [`Fib`]s, so the dense switch×destination table
    /// (~10M entries on a k=32 fat-tree) never materializes. Hosts get
    /// `None`: their single access link needs no table.
    fn compute_fibs(&self) -> Vec<Option<Fib>> {
        let n = self.kinds.len();
        let mut builders: Vec<Option<FibBuilder>> = self
            .kinds
            .iter()
            .map(|k| match k {
                NodeKind::Switch => Some(FibBuilder::new()),
                NodeKind::Host => None,
            })
            .collect();
        // Scratch buffers reused across destinations.
        let mut dist = vec![u32::MAX; n];
        let mut q = VecDeque::with_capacity(n);
        let mut row: Vec<PortId> = Vec::new();
        for dst in 0..n {
            // BFS from the destination over the undirected graph.
            dist.fill(u32::MAX);
            dist[dst] = 0;
            q.clear();
            q.push_back(dst);
            while let Some(u) = q.pop_front() {
                for &(peer, _, _) in &self.ports[u] {
                    let v = peer.index();
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            // Next hops: any neighbor strictly closer to dst. Every
            // builder gets exactly one row per destination (possibly
            // empty), keeping the dense-id encoding aligned.
            for (u, builder) in builders.iter_mut().enumerate() {
                let Some(builder) = builder.as_mut() else {
                    continue;
                };
                row.clear();
                if u != dst && dist[u] != u32::MAX {
                    for (pidx, &(peer, _, _)) in self.ports[u].iter().enumerate() {
                        if dist[peer.index()] + 1 == dist[u] {
                            row.push(PortId(pidx as u32));
                        }
                    }
                }
                builder.push(&row);
            }
        }
        builders
            .into_iter()
            .map(|b| b.map(FibBuilder::finish))
            .collect()
    }
}

/// Immutable topology metadata retained after construction.
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    ports: Vec<Vec<(NodeId, Rate, SimDuration)>>,
}

impl Topology {
    /// Total number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// The kind of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id.index()]
    }

    /// All host ids in id order.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.ids_of(NodeKind::Host)
    }

    /// All switch ids in id order.
    pub fn switches(&self) -> Vec<NodeId> {
        self.ids_of(NodeKind::Switch)
    }

    fn ids_of(&self, want: NodeKind) -> Vec<NodeId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == want)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// The neighbors of a node in port order: `(port, peer, rate, delay)`.
    pub fn neighbors(&self, id: NodeId) -> Vec<(PortId, NodeId, Rate, SimDuration)> {
        self.ports[id.index()]
            .iter()
            .enumerate()
            .map(|(i, &(peer, rate, delay))| (PortId(i as u32), peer, rate, delay))
            .collect()
    }

    /// The output port on `from` that reaches directly-connected `to`.
    pub fn port_between(&self, from: NodeId, to: NodeId) -> Option<PortId> {
        self.ports[from.index()]
            .iter()
            .position(|&(peer, _, _)| peer == to)
            .map(|i| PortId(i as u32))
    }

    /// The rate of the directed link `from -> to`, if adjacent.
    pub fn link_rate(&self, from: NodeId, to: NodeId) -> Option<Rate> {
        self.ports[from.index()]
            .iter()
            .find(|&&(peer, _, _)| peer == to)
            .map(|&(_, rate, _)| rate)
    }

    /// The one-way propagation delay of the link `from -> to`, if adjacent.
    pub fn link_delay(&self, from: NodeId, to: NodeId) -> Option<SimDuration> {
        self.ports[from.index()]
            .iter()
            .find(|&&(peer, _, _)| peer == to)
            .map(|&(_, _, delay)| delay)
    }

    /// The ToR switch a host hangs off (its single neighbor).
    pub fn host_tor(&self, host: NodeId) -> NodeId {
        debug_assert_eq!(self.kind(host), NodeKind::Host);
        self.ports[host.index()][0].0
    }

    /// Hop count between two nodes (BFS), if connected.
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let n = self.kinds.len();
        let mut dist = vec![u32::MAX; n];
        dist[a.index()] = 0;
        let mut q = VecDeque::from([a.index()]);
        while let Some(u) = q.pop_front() {
            if u == b.index() {
                return Some(dist[u]);
            }
            for &(peer, _, _) in &self.ports[u] {
                let v = peer.index();
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        None
    }

    /// Base round-trip propagation + store-and-forward time between two
    /// hosts for a packet of `pkt_bytes` and an ACK of `ack_bytes`, in the
    /// absence of queueing. Useful for configuring transports' initial RTO
    /// and window computations.
    pub fn base_rtt(&self, a: NodeId, b: NodeId, pkt_bytes: u32, ack_bytes: u32) -> SimDuration {
        let path = self.path(a, b).expect("hosts must be connected");
        let mut total = SimDuration::ZERO;
        for w in path.windows(2) {
            let rate = self.link_rate(w[0], w[1]).unwrap();
            let delay = self.link_delay(w[0], w[1]).unwrap();
            total += delay + rate.tx_time(pkt_bytes as u64);
            total += delay + rate.tx_time(ack_bytes as u64);
        }
        total
    }

    /// One shortest path between two nodes (deterministic: lowest port
    /// indices win), as a node sequence including both endpoints.
    pub fn path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        let n = self.kinds.len();
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut dist = vec![u32::MAX; n];
        dist[a.index()] = 0;
        let mut q = VecDeque::from([a.index()]);
        while let Some(u) = q.pop_front() {
            for &(peer, _, _) in &self.ports[u] {
                let v = peer.index();
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    prev[v] = Some(u);
                    q.push_back(v);
                }
            }
        }
        if dist[b.index()] == u32::MAX {
            return None;
        }
        let mut path = vec![b];
        let mut cur = b.index();
        while let Some(p) = prev[cur] {
            path.push(NodeId(p as u32));
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// A constructed network: node objects plus retained topology metadata.
pub struct Network {
    /// The nodes, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// Topology metadata.
    pub topo: Topology,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowSpec, ReceiverHint};
    use crate::host::{AgentCtx, FlowAgent};
    use crate::queue::DropTailQdisc;

    /// A do-nothing agent factory for topology tests.
    struct NullFactory;
    struct NullAgent;
    impl FlowAgent for NullAgent {
        fn on_start(&mut self, _: &mut AgentCtx<'_, '_>) {}
        fn on_packet(&mut self, _: crate::packet::Packet, _: &mut AgentCtx<'_, '_>) {}
        fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_, '_>) {}
        fn is_done(&self) -> bool {
            false
        }
    }
    impl AgentFactory for NullFactory {
        fn sender(&self, _: &FlowSpec) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
        fn receiver(&self, _: ReceiverHint) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
    }

    fn star(n_hosts: usize) -> (TopologyBuilder, Vec<NodeId>, NodeId) {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch();
        let hosts = b.add_hosts(n_hosts);
        for &h in &hosts {
            b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(25));
        }
        (b, hosts, sw)
    }

    fn build(b: &TopologyBuilder) -> Network {
        b.build(Arc::new(NullFactory), &|_| Box::new(DropTailQdisc::new(16)))
    }

    #[test]
    fn star_routing() {
        let (b, hosts, sw) = star(3);
        let net = build(&b);
        assert_eq!(net.topo.hosts(), hosts);
        assert_eq!(net.topo.switches(), vec![sw]);
        assert_eq!(net.topo.host_tor(hosts[0]), sw);
        assert_eq!(net.topo.hop_count(hosts[0], hosts[1]), Some(2));
        assert_eq!(
            net.topo.path(hosts[0], hosts[2]),
            Some(vec![hosts[0], sw, hosts[2]])
        );
    }

    #[test]
    fn tree_routing_goes_up_and_down() {
        // host0 - tor0 - agg - tor1 - host1
        let mut b = TopologyBuilder::new();
        let tor0 = b.add_switch();
        let tor1 = b.add_switch();
        let agg = b.add_switch();
        let h0 = b.add_host();
        let h1 = b.add_host();
        b.connect(h0, tor0, Rate::from_gbps(1), SimDuration::from_micros(25));
        b.connect(h1, tor1, Rate::from_gbps(1), SimDuration::from_micros(25));
        b.connect(tor0, agg, Rate::from_gbps(10), SimDuration::from_micros(25));
        b.connect(tor1, agg, Rate::from_gbps(10), SimDuration::from_micros(25));
        let net = build(&b);
        assert_eq!(net.topo.path(h0, h1), Some(vec![h0, tor0, agg, tor1, h1]));
        assert_eq!(net.topo.hop_count(h0, h1), Some(4));
        assert_eq!(net.topo.link_rate(tor0, agg), Some(Rate::from_gbps(10)));
        assert_eq!(net.topo.port_between(tor0, agg), Some(PortId(1)));
    }

    #[test]
    fn base_rtt_accounts_for_all_hops() {
        let (b, hosts, _) = star(2);
        let net = build(&b);
        // Two links each way; per link: 25us prop + tx.
        // Data 1500B @1G = 12us; ACK 40B @1G = 0.32us.
        let rtt = net.topo.base_rtt(hosts[0], hosts[1], 1500, 40);
        let expect = SimDuration::from_nanos(2 * (25_000 + 12_000) + 2 * (25_000 + 320));
        assert_eq!(rtt, expect);
    }

    #[test]
    fn ecmp_fib_has_multiple_next_hops() {
        // Diamond: h0 - s0 - {s1, s2} - s3 - h1.
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        let s2 = b.add_switch();
        let s3 = b.add_switch();
        let h0 = b.add_host();
        let h1 = b.add_host();
        let r = Rate::from_gbps(10);
        let d = SimDuration::from_micros(10);
        b.connect(h0, s0, r, d);
        b.connect(s0, s1, r, d);
        b.connect(s0, s2, r, d);
        b.connect(s1, s3, r, d);
        b.connect(s2, s3, r, d);
        b.connect(s3, h1, r, d);
        let net = build(&b);
        // s0 should have two equal-cost ports toward h1.
        let Node::Switch(sw) = &net.nodes[s0.index()] else {
            panic!("expected switch");
        };
        // Route a few different flows; both paths must be reachable.
        use crate::ids::FlowId;
        let mut seen = std::collections::BTreeSet::new();
        for f in 0..32 {
            seen.insert(sw.route(h1, FlowId(f)).unwrap());
        }
        assert_eq!(seen.len(), 2, "ECMP should use both uplinks");
    }

    #[test]
    #[should_panic(expected = "must have exactly one access link")]
    fn host_with_two_links_rejected() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        let h = b.add_host();
        b.connect(h, s0, Rate::from_gbps(1), SimDuration::from_micros(1));
        b.connect(h, s1, Rate::from_gbps(1), SimDuration::from_micros(1));
        b.connect(s0, s1, Rate::from_gbps(1), SimDuration::from_micros(1));
        let _ = build(&b);
    }
}
