//! Hierarchical timing wheel: the O(1)-amortized event queue behind
//! [`crate::engine::Scheduler`]'s wheel engine.
//!
//! # Layout
//!
//! Timestamps are bucketed into *ticks* of `1 << tick_shift` nanoseconds
//! (256 ns by default). Four wheel levels of 256 slots each cover the next
//! `2^32` ticks (~18 minutes at the default tick) above the wheel's
//! *horizon* `H`; level `l` buckets events by digit `l` of their tick in
//! base 256. Everything beyond the top level's span sits in an `overflow`
//! min-heap, and everything already earlier than the horizon sits in a
//! small `ready` min-heap that pops in exact `(time, seq)` order.
//!
//! # Invariants
//!
//! - Every stored event has `tick >= H` except those in `ready`
//!   (`tick < H`), so `ready`'s min is always the global min.
//! - An event at level `l`, slot `d` shares all base-256 digits above `l`
//!   with `H` and has digit `l` equal to `d` (different from `H`'s, for
//!   `l > 0`). Overflow events differ from `H` above the top level.
//! - For every level `l >= 1`, slot `(l, digit_l(H))` is empty: whenever
//!   the horizon's carry rolls a high digit, [`TimingWheel::cascade`]
//!   immediately redistributes the slots the new horizon points at. This
//!   is what makes "lowest occupied level holds the earliest event" true
//!   even right after a carry.
//! - Whenever the horizon's top-level window prefix changes — by a carry
//!   rolling past the top level or by an explicit overflow-window jump —
//!   [`TimingWheel::promote_overflow_window`] immediately files every
//!   overflow event inside the new window into the wheel, keeping the
//!   "overflow differs from `H` above the top level" invariant true so a
//!   later insert into a wheel level can never leapfrog a stranded
//!   overflow event.
//!
//! A slot holds every event of one tick, possibly many distinct
//! nanosecond timestamps; that is fine because a drained slot is poured
//! into `ready`, which re-establishes the exact `(time, seq)` order. The
//! pop sequence is therefore *identical* to the binary heap's — the
//! differential tests in `tests/scheduler_order.rs` and the dual-engine
//! chaos pass in `scripts/ci.sh` hold the two engines to byte-equality.

use std::collections::BinaryHeap;

use crate::event::ScheduledEvent;
use crate::time::SimTime;

/// Default tick granularity: `1 << 8` = 256 ns per tick.
pub(crate) const DEFAULT_TICK_SHIFT: u32 = 8;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; ticks beyond `2^(SLOT_BITS*LEVELS)` from the horizon's
/// window go to the overflow heap.
const LEVELS: u32 = 4;
/// Mask extracting one base-`SLOTS` digit.
const DIGIT_MASK: u64 = (SLOTS as u64) - 1;

/// The wheel proper. See the module docs for the structure and the
/// invariants; [`crate::engine::Scheduler`] owns exactly one of these (or
/// a `BinaryHeap`, for the reference engine) and is the only user.
#[derive(Debug)]
pub(crate) struct TimingWheel {
    tick_shift: u32,
    /// `LEVELS * SLOTS` buckets, level-major.
    slots: Vec<Vec<ScheduledEvent>>,
    /// Events per level, to skip empty levels without scanning 256 slots.
    occupancy: [usize; LEVELS as usize],
    /// Events with `tick < horizon`, in exact pop order (min-heap via
    /// `ScheduledEvent`'s reversed `Ord`).
    ready: BinaryHeap<ScheduledEvent>,
    /// Events too far in the future for any wheel level.
    overflow: BinaryHeap<ScheduledEvent>,
    /// Wheel origin, in ticks. Only ever advances.
    horizon: u64,
    len: usize,
}

impl TimingWheel {
    pub(crate) fn new(tick_shift: u32) -> TimingWheel {
        assert!(
            tick_shift <= 20,
            "wheel tick must be at most 2^20 ns (~1 ms), got shift {tick_shift}"
        );
        TimingWheel {
            tick_shift,
            slots: (0..LEVELS as usize * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS as usize],
            ready: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            horizon: 0,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn tick_of(&self, t: SimTime) -> u64 {
        t.as_nanos() >> self.tick_shift
    }

    fn digit(tick: u64, level: u32) -> usize {
        ((tick >> (SLOT_BITS * level)) & DIGIT_MASK) as usize
    }

    pub(crate) fn push(&mut self, ev: ScheduledEvent) {
        self.len += 1;
        self.insert(ev);
    }

    /// File `ev` under the level/slot (or heap) its tick calls for,
    /// without touching `len` — also used to re-file events when a slot
    /// is redistributed.
    fn insert(&mut self, ev: ScheduledEvent) {
        let tick = self.tick_of(ev.time);
        if tick < self.horizon {
            // Already inside the served window (e.g. scheduled for "now"
            // mid-pop): ready orders it exactly.
            self.ready.push(ev);
            return;
        }
        let differing = tick ^ self.horizon;
        let level = if differing == 0 {
            0
        } else {
            (63 - differing.leading_zeros()) / SLOT_BITS
        };
        if level >= LEVELS {
            self.overflow.push(ev);
            return;
        }
        self.slots[level as usize * SLOTS + Self::digit(tick, level)].push(ev);
        self.occupancy[level as usize] += 1;
    }

    /// Pop the earliest event (by `(time, seq)`), or `None` when empty.
    pub(crate) fn pop(&mut self) -> Option<ScheduledEvent> {
        if self.ready.is_empty() && !self.refill() {
            return None;
        }
        // A hard expect in every profile: a silently desynced `len` would
        // corrupt conservation accounting far from the cause.
        let ev = self
            .ready
            .pop()
            .expect("refill reported events but ready is empty");
        self.len -= 1;
        Some(ev)
    }

    /// Timestamp of the earliest event without removing it. `&mut`
    /// because it may advance the horizon to pull the next slot into
    /// `ready`; amortized O(1) like [`TimingWheel::pop`].
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() && !self.refill() {
            return None;
        }
        self.ready.peek().map(|e| e.time)
    }

    /// Every pending event, in unspecified order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &ScheduledEvent> {
        self.ready
            .iter()
            .chain(self.slots.iter().flatten())
            .chain(self.overflow.iter())
    }

    /// Advance the horizon to the earliest pending tick and pour that
    /// tick's slot into `ready`. Returns `false` iff the wheel (slots and
    /// overflow both) is empty.
    fn refill(&mut self) -> bool {
        loop {
            if self.occupancy[0] > 0 {
                // Level-0 events all live at digits >= digit_0(H): they
                // share the digits above with H and their tick is >= H.
                let start = Self::digit(self.horizon, 0);
                for d in start..SLOTS {
                    if self.slots[d].is_empty() {
                        continue;
                    }
                    let drained = std::mem::take(&mut self.slots[d]);
                    self.occupancy[0] -= drained.len();
                    self.ready.extend(drained);
                    // The skipped slots were empty, so nothing pending
                    // lives below the new horizon.
                    self.horizon = (self.horizon & !DIGIT_MASK) + d as u64 + 1;
                    if d + 1 == SLOTS {
                        // The +1 carried into digit 1 (possibly further):
                        // redistribute the slots the new horizon points
                        // at before anything else is served, or a later
                        // insert into a low level could leapfrog them.
                        self.cascade();
                        // If the carry rolled past the top level into a
                        // new window, overflow events already inside it
                        // must be filed into the wheel now for the same
                        // reason (no-op when the prefix didn't change).
                        self.promote_overflow_window();
                    }
                    return true;
                }
                unreachable!("level-0 occupancy is nonzero but every slot scanned empty");
            }
            // Level 0 is dry. The earliest pending event is at the lowest
            // occupied level (higher levels differ from H in a higher
            // digit, putting them strictly later): enter its first
            // occupied slot and redistribute it downward.
            if let Some(level) = (1..LEVELS).find(|&l| self.occupancy[l as usize] > 0) {
                let start = Self::digit(self.horizon, level);
                let d = (start..SLOTS)
                    .find(|&d| !self.slots[level as usize * SLOTS + d].is_empty())
                    .expect("level occupancy is nonzero but every slot scanned empty");
                let drained = std::mem::take(&mut self.slots[level as usize * SLOTS + d]);
                self.occupancy[level as usize] -= drained.len();
                if d > start {
                    // Jump the horizon to the start of the slot's window:
                    // digit `level` becomes `d`, lower digits zero. The
                    // levels below are empty and slots between `start`
                    // and `d` are empty, so nothing is skipped.
                    let span = SLOT_BITS * level;
                    let kept = self.horizon >> (span + SLOT_BITS) << (span + SLOT_BITS);
                    self.horizon = kept | ((d as u64) << span);
                }
                for ev in drained {
                    self.insert(ev);
                }
                continue;
            }
            // Wheels are empty: promote the overflow window containing
            // the earliest far-future event. Everything in overflow is
            // at `tick >= H`, so the max() keeps the horizon monotone.
            let Some(first) = self.overflow.peek() else {
                return false;
            };
            let window = SLOT_BITS * LEVELS;
            let aligned = (self.tick_of(first.time) >> window) << window;
            self.horizon = self.horizon.max(aligned);
            self.promote_overflow_window();
        }
    }

    /// File every overflow event living in the horizon's top-level window
    /// into the wheel (or `ready`). No-op while the earliest overflow
    /// event sits in a later window. Must run every time the horizon's
    /// window prefix changes, or events stranded in overflow would be
    /// leapfrogged by later wheel-filed inserts.
    fn promote_overflow_window(&mut self) {
        let window = SLOT_BITS * LEVELS;
        let prefix = self.horizon >> window;
        while let Some(ev) = self.overflow.peek() {
            if self.tick_of(ev.time) >> window != prefix {
                break;
            }
            let ev = self.overflow.pop().expect("peeked event vanished");
            self.insert(ev);
        }
    }

    /// After a carry rolled digit 1 (and possibly higher digits) of the
    /// horizon, re-file every slot the new horizon points at, top level
    /// first so events step down one level at a time. Restores the
    /// "slot `(l, digit_l(H))` is empty" invariant.
    fn cascade(&mut self) {
        for level in (1..LEVELS).rev() {
            if self.occupancy[level as usize] == 0 {
                continue;
            }
            let idx = level as usize * SLOTS + Self::digit(self.horizon, level);
            if self.slots[idx].is_empty() {
                continue;
            }
            let drained = std::mem::take(&mut self.slots[idx]);
            self.occupancy[level as usize] -= drained.len();
            for ev in drained {
                self.insert(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ids::NodeId;

    fn ev(t_ns: u64, seq: u64) -> ScheduledEvent {
        ScheduledEvent {
            time: SimTime::from_nanos(t_ns),
            seq,
            target: NodeId(0),
            kind: EventKind::PluginTimer(seq),
        }
    }

    fn drain(w: &mut TimingWheel) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop())
            .map(|e| (e.time.as_nanos(), e.seq))
            .collect()
    }

    #[test]
    fn pops_in_time_then_seq_order_across_levels() {
        let mut w = TimingWheel::new(DEFAULT_TICK_SHIFT);
        // Same tick, distinct nanoseconds; distant ticks; overflow range.
        let times = [
            3u64,
            1,
            2,
            300,           // level 0, later slot
            70_000,        // level 1
            20_000_000,    // level 2
            6_000_000_000, // level 3 (6 s)
            u64::MAX / 2,  // overflow
            1,             // tie with seq 1 -> fires after it
        ];
        for (seq, &t) in times.iter().enumerate() {
            w.push(ev(t, seq as u64));
        }
        let got = drain(&mut w);
        let mut want: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn carry_across_level_boundary_keeps_order() {
        let tick = 1u64 << DEFAULT_TICK_SHIFT;
        let mut w = TimingWheel::new(DEFAULT_TICK_SHIFT);
        // Park the horizon just before a digit-1 rollover, with an event
        // waiting in the slot the carry will expose.
        let boundary = 256 * tick; // digit 1 becomes 1
        w.push(ev(boundary - tick, 0)); // last slot of the first window
        w.push(ev(boundary + 5, 1)); // just past the carry
        assert_eq!(w.pop().unwrap().seq, 0);
        // Insert after the carry, earlier than the parked event.
        w.push(ev(boundary + 1, 2));
        assert_eq!(
            drain(&mut w),
            vec![(boundary + 1, 2), (boundary + 5, 1)],
            "stale slot exposed by the carry must not be leapfrogged"
        );
    }

    #[test]
    fn carry_into_new_window_promotes_overflow() {
        let tick = 1u64 << DEFAULT_TICK_SHIFT;
        let window_ns = 1u64 << (DEFAULT_TICK_SHIFT + SLOT_BITS * LEVELS);
        let mut w = TimingWheel::new(DEFAULT_TICK_SHIFT);
        // Last tick of window 0: popping it carries the horizon's
        // top-level prefix into window 1.
        w.push(ev(window_ns - tick, 0));
        // Early in window 1: overflow at insert time.
        w.push(ev(window_ns + 10 * tick, 1));
        assert_eq!(w.pop().unwrap().seq, 0);
        // Post-carry insert, later than the parked overflow event but
        // filed straight into a wheel level.
        w.push(ev(window_ns + 20 * tick, 2));
        assert_eq!(
            drain(&mut w),
            vec![(window_ns + 10 * tick, 1), (window_ns + 20 * tick, 2)],
            "overflow events in the window the carry exposed must pop first"
        );
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn overflow_window_promotion_is_ordered() {
        let mut w = TimingWheel::new(DEFAULT_TICK_SHIFT);
        let window_ns = 1u64 << (DEFAULT_TICK_SHIFT + SLOT_BITS * LEVELS);
        w.push(ev(3 * window_ns + 7, 0));
        w.push(ev(window_ns + 1, 1));
        w.push(ev(5, 2));
        assert_eq!(
            drain(&mut w),
            vec![(5, 2), (window_ns + 1, 1), (3 * window_ns + 7, 0)]
        );
    }

    #[test]
    fn peek_matches_pop_and_is_stable() {
        let mut w = TimingWheel::new(DEFAULT_TICK_SHIFT);
        for seq in 0..100u64 {
            w.push(ev(seq * 9973 % 50_000, seq));
        }
        while let Some(t) = w.peek_time() {
            assert_eq!(w.peek_time(), Some(t));
            assert_eq!(w.pop().unwrap().time, t);
        }
        assert_eq!(w.len(), 0);
    }
}
