//! Global simulation invariants.
//!
//! The chaos harness ([`crate::chaos`]) throws randomized fault schedules
//! at the simulator; this module is the oracle that says whether the run
//! stayed sane. Five invariants are checked:
//!
//! 1. **Packet conservation.** Every data packet injected by a host is
//!    eventually accounted for exactly once:
//!    `injected = delivered + dropped + corrupted + blackholed +
//!    consumed + in-network + lost-to-crash`, where *in-network* counts
//!    packets sitting in queues, mid-serialization, or propagating
//!    (pending `Deliver` events) at the moment of the check,
//!    *lost-to-crash* counts packets that arrived at a crashed
//!    destination host, and *corrupted* counts packets mangled by a
//!    degraded link and discarded by the destination's checksum.
//! 2. **Control-message conservation.** Every control packet put on the
//!    wire is likewise accounted for exactly once:
//!    `sent = processed + shed + dropped + corrupted + blackholed +
//!    lost-to-crash + unattended + in-network`, where *processed* and
//!    *shed* are what arbitrators did with messages that reached them,
//!    *lost-to-crash* covers messages arriving at a crashed control
//!    process or host, and *unattended* counts messages delivered to a
//!    node with no control plugin/service installed.
//! 3. **No stuck flow.** An incomplete flow must have *some* way to make
//!    progress: a pending event referencing it (timer, delivery, start),
//!    one of its packets still in the network, or a control-plane timer
//!    pending at its endpoints. A flow with none of these will never
//!    finish — a lost-wakeup bug, not congestion. Background maintenance
//!    timers (tokens at or above
//!    [`crate::host::MAINTENANCE_TIMER_BASE`]) are *not* progress
//!    evidence: a perpetual GC tick can never advance a flow. Flows that
//!    ended in the terminal `Aborted` state count as complete — an
//!    endpoint crash with a recorded abort reason is a legitimate
//!    terminal outcome, not a stuck flow.
//! 4. **Monotonic event time.** The clock never runs backwards while
//!    processing events (checked online, every event).
//! 5. **Bounded queues.** No port's queue occupancy ever exceeds a
//!    configured packet bound (checked online, periodically, and once at
//!    the end).
//!
//! Online checks run inside [`crate::sim::Simulation::run`] once
//! [`crate::sim::Simulation::enable_invariants`] has been called; the
//! full (conservation + stuck-flow) audit is performed by
//! [`crate::sim::Simulation::check_invariants`], typically after the run
//! stops. Violations are collected, not panicked on, so a chaos sweep can
//! report every failing seed; [`InvariantReport::assert_clean`] converts
//! them into a panic for tests.

use std::collections::BTreeSet;

use crate::event::EventKind;
use crate::ids::{FlowId, NodeId};
use crate::packet::PacketKind;
use crate::time::SimTime;

/// Tuning knobs for the invariant checker.
#[derive(Debug, Clone, Copy)]
pub struct InvariantConfig {
    /// Maximum tolerated queue occupancy, in packets, on any single port.
    /// The default is far above any configured qdisc capacity in this
    /// repo, so tripping it means a queue is growing without bound.
    pub max_queue_pkts: usize,
    /// How often (in executed events) the online queue-bound scan runs.
    pub check_interval_events: u64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            max_queue_pkts: 4096,
            check_interval_events: 8192,
        }
    }
}

/// Which invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Data-packet conservation (injected vs. accounted).
    Conservation,
    /// Control-message conservation (sent vs. accounted).
    CtrlConservation,
    /// An incomplete flow with no pending means of progress.
    StuckFlow,
    /// The event clock ran backwards.
    MonotonicTime,
    /// A port queue exceeded the configured occupancy bound.
    QueueBound,
    /// Arena-outstanding packet count disagrees with the packets actually
    /// held in ports and on the wire (a leaked or double-released box).
    ArenaBalance,
}

impl core::fmt::Display for Invariant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Invariant::Conservation => "conservation",
            Invariant::CtrlConservation => "ctrl-conservation",
            Invariant::StuckFlow => "stuck-flow",
            Invariant::MonotonicTime => "monotonic-time",
            Invariant::QueueBound => "queue-bound",
            Invariant::ArenaBalance => "arena-balance",
        };
        f.write_str(name)
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Simulated time at which the violation was detected.
    pub at: SimTime,
    /// The invariant that was broken.
    pub invariant: Invariant,
    /// Human-readable specifics (counters, node/flow ids).
    pub detail: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.invariant, self.detail)
    }
}

/// The outcome of an invariant audit.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// Every violation found, in detection order.
    pub violations: Vec<Violation>,
}

impl InvariantReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with a readable listing if any invariant was violated.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "invariant violations:\n{self}");
    }
}

impl core::fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.violations.is_empty() {
            return writeln!(f, "all invariants hold");
        }
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Online invariant state threaded through the run loop.
///
/// Owned by [`crate::sim::Simulation`] once
/// [`crate::sim::Simulation::enable_invariants`] is called.
#[derive(Debug)]
pub(crate) struct InvariantMonitor {
    pub(crate) cfg: InvariantConfig,
    last_event_time: SimTime,
    events_seen: u64,
    pub(crate) violations: Vec<Violation>,
}

impl InvariantMonitor {
    pub(crate) fn new(cfg: InvariantConfig) -> InvariantMonitor {
        InvariantMonitor {
            cfg,
            last_event_time: SimTime::ZERO,
            events_seen: 0,
            violations: Vec::new(),
        }
    }

    /// Record one executed event; checks clock monotonicity and reports
    /// whether the periodic queue scan is due.
    pub(crate) fn on_event(&mut self, now: SimTime) -> bool {
        if now < self.last_event_time {
            self.violations.push(Violation {
                at: now,
                invariant: Invariant::MonotonicTime,
                detail: format!("clock went backwards: {} -> {now}", self.last_event_time),
            });
        }
        self.last_event_time = now;
        self.events_seen += 1;
        self.events_seen
            .is_multiple_of(self.cfg.check_interval_events)
    }

    /// Record a queue-bound violation found by a scan.
    pub(crate) fn note_queue_violation(&mut self, now: SimTime, node: NodeId, len: usize) {
        self.violations.push(Violation {
            at: now,
            invariant: Invariant::QueueBound,
            detail: format!(
                "queue on {node} holds {len} pkts (bound {})",
                self.cfg.max_queue_pkts
            ),
        });
    }
}

/// Snapshot of in-network data packets, taken by the conservation walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InNetwork {
    /// Data packets queued or mid-serialization on ports.
    pub in_ports: u64,
    /// Data packets propagating (pending `Deliver` events).
    pub on_wire: u64,
}

impl InNetwork {
    /// Total in-network data packets.
    pub fn total(&self) -> u64 {
        self.in_ports + self.on_wire
    }
}

/// Evidence that an incomplete flow can still make progress.
///
/// Built once per audit by scanning the pending event queue and the
/// in-network packet population; the stuck-flow check then queries it per
/// flow.
#[derive(Debug, Default)]
pub(crate) struct ProgressEvidence {
    /// Flows referenced by a pending event or an in-network packet.
    flows: BTreeSet<FlowId>,
    /// Nodes with a pending control-plane (plugin/service) timer.
    plugin_timer_nodes: BTreeSet<NodeId>,
}

impl ProgressEvidence {
    pub(crate) fn note_flow(&mut self, flow: FlowId) {
        self.flows.insert(flow);
    }

    pub(crate) fn note_plugin_timer(&mut self, node: NodeId) {
        self.plugin_timer_nodes.insert(node);
    }

    pub(crate) fn note_event(&mut self, target: NodeId, kind: &EventKind) {
        match kind {
            EventKind::Deliver(pkt) => self.note_flow(pkt.flow),
            EventKind::AgentTimer { flow, .. } => self.note_flow(*flow),
            EventKind::FlowStart(spec) => self.note_flow(spec.id),
            // Maintenance ticks (state GC) recur forever and advance no
            // flow; counting them would blind the stuck-flow check.
            EventKind::PluginTimer(token) if *token >= crate::host::MAINTENANCE_TIMER_BASE => {}
            EventKind::PluginTimer(_) => self.note_plugin_timer(target),
            // A pending TxComplete proves a port will drain, but the
            // packet it carries is already counted via the port walk;
            // faults reference no flow.
            EventKind::TxComplete(_) | EventKind::Fault(_) => {}
        }
    }

    /// Can `flow` (between `src` and `dst`) still make progress?
    pub(crate) fn can_progress(&self, flow: FlowId, src: NodeId, dst: NodeId) -> bool {
        self.flows.contains(&flow)
            || self.plugin_timer_nodes.contains(&src)
            || self.plugin_timer_nodes.contains(&dst)
    }
}

/// Inputs to the conservation equation, gathered by
/// [`crate::sim::Simulation::check_invariants`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConservationTerms {
    pub injected: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub blackholed: u64,
    pub consumed: u64,
    pub lost_to_crash: u64,
    pub in_network: InNetwork,
}

impl ConservationTerms {
    /// Check the books; push a violation on mismatch.
    pub(crate) fn check(&self, now: SimTime, out: &mut Vec<Violation>) {
        let accounted = self.delivered
            + self.dropped
            + self.corrupted
            + self.blackholed
            + self.consumed
            + self.lost_to_crash
            + self.in_network.total();
        if self.injected != accounted {
            out.push(Violation {
                at: now,
                invariant: Invariant::Conservation,
                detail: format!(
                    "injected {} != accounted {} (delivered {} + dropped {} + \
                     corrupted {} + blackholed {} + consumed {} + \
                     lost-to-crash {} + in-ports {} + on-wire {})",
                    self.injected,
                    accounted,
                    self.delivered,
                    self.dropped,
                    self.corrupted,
                    self.blackholed,
                    self.consumed,
                    self.lost_to_crash,
                    self.in_network.in_ports,
                    self.in_network.on_wire,
                ),
            });
        }
    }
}

/// Does this pending event carry an in-flight *data* packet?
pub(crate) fn is_data_deliver(kind: &EventKind) -> bool {
    matches!(kind, EventKind::Deliver(pkt) if pkt.kind == PacketKind::Data)
}

/// Does this pending event carry an in-flight *control* packet?
pub(crate) fn is_ctrl_deliver(kind: &EventKind) -> bool {
    matches!(kind, EventKind::Deliver(pkt) if pkt.kind == PacketKind::Ctrl)
}

/// Inputs to the control-message conservation equation, gathered by
/// [`crate::sim::Simulation::check_invariants`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct CtrlConservationTerms {
    pub sent: u64,
    pub processed: u64,
    pub shed: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub blackholed: u64,
    pub lost_to_crash: u64,
    pub unattended: u64,
    pub in_network: InNetwork,
}

impl CtrlConservationTerms {
    /// Check the control-plane books; push a violation on mismatch.
    pub(crate) fn check(&self, now: SimTime, out: &mut Vec<Violation>) {
        let accounted = self.processed
            + self.shed
            + self.dropped
            + self.corrupted
            + self.blackholed
            + self.lost_to_crash
            + self.unattended
            + self.in_network.total();
        if self.sent != accounted {
            out.push(Violation {
                at: now,
                invariant: Invariant::CtrlConservation,
                detail: format!(
                    "ctrl sent {} != accounted {} (processed {} + shed {} + \
                     dropped {} + corrupted {} + blackholed {} + \
                     lost-to-crash {} + unattended {} + in-ports {} + on-wire {})",
                    self.sent,
                    accounted,
                    self.processed,
                    self.shed,
                    self.dropped,
                    self.corrupted,
                    self.blackholed,
                    self.lost_to_crash,
                    self.unattended,
                    self.in_network.in_ports,
                    self.in_network.on_wire,
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_balanced_books_are_clean() {
        let terms = ConservationTerms {
            injected: 10,
            delivered: 4,
            dropped: 1,
            corrupted: 1,
            blackholed: 1,
            consumed: 0,
            lost_to_crash: 1,
            in_network: InNetwork {
                in_ports: 1,
                on_wire: 1,
            },
        };
        let mut out = Vec::new();
        terms.check(SimTime::ZERO, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn conservation_mismatch_is_reported() {
        let terms = ConservationTerms {
            injected: 10,
            delivered: 6,
            dropped: 1,
            corrupted: 0,
            blackholed: 0,
            consumed: 0,
            lost_to_crash: 0,
            in_network: InNetwork::default(),
        };
        let mut out = Vec::new();
        terms.check(SimTime::from_micros(3), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].invariant, Invariant::Conservation);
        assert!(out[0].detail.contains("injected 10"), "{}", out[0].detail);
        assert!(out[0].detail.contains("corrupted 0"), "{}", out[0].detail);
        assert!(
            out[0].detail.contains("lost-to-crash 0"),
            "{}",
            out[0].detail
        );
    }

    #[test]
    fn ctrl_conservation_balanced_books_are_clean() {
        let terms = CtrlConservationTerms {
            sent: 12,
            processed: 5,
            shed: 2,
            dropped: 1,
            corrupted: 1,
            blackholed: 0,
            lost_to_crash: 1,
            unattended: 1,
            in_network: InNetwork {
                in_ports: 0,
                on_wire: 1,
            },
        };
        let mut out = Vec::new();
        terms.check(SimTime::ZERO, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn ctrl_conservation_mismatch_is_reported() {
        let terms = CtrlConservationTerms {
            sent: 10,
            processed: 6,
            shed: 0,
            dropped: 1,
            corrupted: 0,
            blackholed: 0,
            lost_to_crash: 0,
            unattended: 0,
            in_network: InNetwork::default(),
        };
        let mut out = Vec::new();
        terms.check(SimTime::from_micros(3), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].invariant, Invariant::CtrlConservation);
        assert!(out[0].detail.contains("ctrl sent 10"), "{}", out[0].detail);
        assert!(out[0].detail.contains("shed 0"), "{}", out[0].detail);
    }

    #[test]
    fn monitor_flags_backwards_clock() {
        let mut m = InvariantMonitor::new(InvariantConfig::default());
        m.on_event(SimTime::from_micros(5));
        m.on_event(SimTime::from_micros(3));
        assert_eq!(m.violations.len(), 1);
        assert_eq!(m.violations[0].invariant, Invariant::MonotonicTime);
    }

    #[test]
    fn monitor_scan_cadence() {
        let mut m = InvariantMonitor::new(InvariantConfig {
            max_queue_pkts: 10,
            check_interval_events: 4,
        });
        let due: Vec<bool> = (0..8)
            .map(|i| m.on_event(SimTime::from_micros(i)))
            .collect();
        assert_eq!(
            due,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn progress_evidence_covers_timers_and_packets() {
        let mut ev = ProgressEvidence::default();
        ev.note_flow(FlowId(1));
        ev.note_plugin_timer(NodeId(9));
        assert!(ev.can_progress(FlowId(1), NodeId(0), NodeId(2)));
        // No direct reference, but a control timer pends at the source.
        assert!(ev.can_progress(FlowId(2), NodeId(9), NodeId(3)));
        assert!(!ev.can_progress(FlowId(2), NodeId(0), NodeId(3)));
    }

    #[test]
    fn maintenance_timers_are_not_progress_evidence() {
        use crate::host::MAINTENANCE_TIMER_BASE;
        let mut ev = ProgressEvidence::default();
        ev.note_event(NodeId(4), &EventKind::PluginTimer(MAINTENANCE_TIMER_BASE));
        ev.note_event(
            NodeId(4),
            &EventKind::PluginTimer(MAINTENANCE_TIMER_BASE + 17),
        );
        assert!(!ev.can_progress(FlowId(0), NodeId(4), NodeId(5)));
        // An ordinary control timer below the base still counts.
        ev.note_event(NodeId(4), &EventKind::PluginTimer(1));
        assert!(ev.can_progress(FlowId(0), NodeId(4), NodeId(5)));
    }

    #[test]
    fn report_formatting_and_assert() {
        let mut rep = InvariantReport::default();
        assert!(rep.is_clean());
        rep.assert_clean();
        rep.violations.push(Violation {
            at: SimTime::from_micros(1),
            invariant: Invariant::QueueBound,
            detail: "queue on n3 holds 9000 pkts (bound 4096)".into(),
        });
        assert!(!rep.is_clean());
        let text = format!("{rep}");
        assert!(text.contains("queue-bound"), "{text}");
    }
}
