//! A small, deterministic pseudo-random number generator.
//!
//! The simulator must be byte-for-byte reproducible from a seed and must
//! build offline, so workload generation uses this self-contained
//! xoshiro256** generator (Blackman & Vigna) instead of an external crate.
//! State is seeded through splitmix64 so that nearby seeds (0, 1, 2, ...)
//! produce unrelated streams.

/// splitmix64 step: advances `state` and returns the next output. Used to
/// expand a 64-bit seed into full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator from a 64-bit seed (splitmix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)` — safe for `ln()`.
    pub fn gen_f64_open(&mut self) -> f64 {
        loop {
            let u = self.gen_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`. Uses Lemire's
    /// multiply-shift with a rejection pass to stay unbiased.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0)");
        // Rejection zone: values below 2^64 mod n would bias the low range.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_inclusive({lo}, {hi})");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(span + 1)
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_below(n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = Rng::seed_from_u64(0);
        let mut b = Rng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.gen_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_below_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[r.gen_below(10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((4_200..=5_800).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = Rng::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1_000 {
            match r.gen_range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
