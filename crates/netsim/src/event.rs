//! Simulation events.

use crate::fault::FaultDirective;
use crate::flow::FlowSpec;
use crate::ids::{FlowId, NodeId, PortId};
use crate::packet::Packet;
use crate::time::SimTime;

/// What happens when an event fires. Every event targets exactly one node.
///
/// The two large payloads ([`Packet`], [`FlowSpec`]) are boxed so the
/// enum — and with it every [`ScheduledEvent`] the heap sifts — stays
/// pointer-sized-plus-discriminant instead of inheriting the ~140-byte
/// packet inline. Packets already live on the heap for their whole
/// wire-to-delivery lifetime, so the box is one allocation per packet,
/// not one per hop.
#[derive(Debug)]
pub enum EventKind {
    /// A packet finishes propagating across a link and arrives at the node.
    Deliver(Box<Packet>),
    /// The node's output port finishes serializing its in-flight packet.
    TxComplete(PortId),
    /// A timer set by one of the node's flow agents fires.
    AgentTimer {
        /// The flow whose agent set the timer.
        flow: FlowId,
        /// Opaque token chosen by the agent; stale-timer filtering is the
        /// agent's responsibility (epoch tokens).
        token: u64,
    },
    /// A timer set by the node's control plugin (switch plugin or host
    /// service) fires.
    PluginTimer(u64),
    /// A new flow arrives at its source host.
    FlowStart(Box<FlowSpec>),
    /// An injected fault fires at the node (see [`crate::fault`]).
    Fault(FaultDirective),
}

impl EventKind {
    /// Build a [`EventKind::Deliver`] from a packet by value.
    ///
    /// Use this instead of the variant constructor so call sites stay
    /// agnostic to how the payload is stored inside the event.
    pub fn deliver(pkt: Packet) -> EventKind {
        EventKind::Deliver(Box::new(pkt))
    }

    /// Build a [`EventKind::FlowStart`] from a spec by value (see
    /// [`EventKind::deliver`] for why this indirection exists).
    pub fn flow_start(spec: FlowSpec) -> EventKind {
        EventKind::FlowStart(Box::new(spec))
    }

    /// The variant name, for diagnostics: the scheduler's causal-order
    /// panics quote it so a chaos-sweep failure is attributable to an
    /// event kind straight from the message.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Deliver(_) => "Deliver",
            EventKind::TxComplete(_) => "TxComplete",
            EventKind::AgentTimer { .. } => "AgentTimer",
            EventKind::PluginTimer(_) => "PluginTimer",
            EventKind::FlowStart(_) => "FlowStart",
            EventKind::Fault(_) => "Fault",
        }
    }
}

/// An event scheduled for execution.
#[derive(Debug)]
pub(crate) struct ScheduledEvent {
    pub time: SimTime,
    /// Monotone tiebreaker: events at the same instant fire in the order
    /// they were scheduled, making runs fully deterministic.
    pub seq: u64,
    pub target: NodeId,
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(time_us: u64, seq: u64) -> ScheduledEvent {
        ScheduledEvent {
            time: SimTime::from_micros(time_us),
            seq,
            target: NodeId(0),
            kind: EventKind::PluginTimer(0),
        }
    }

    #[test]
    fn scheduled_event_stays_small() {
        // The event heap sifts events by move; boxing the packet and
        // flow-spec payloads is what keeps this at (time, seq, target,
        // kind) ≈ 48 bytes. A regression here silently taxes every
        // schedule/pop on the hot path.
        assert!(
            core::mem::size_of::<ScheduledEvent>() <= 64,
            "ScheduledEvent grew to {} bytes",
            core::mem::size_of::<ScheduledEvent>()
        );
    }

    #[test]
    fn heap_pops_earliest_first_then_fifo() {
        let mut h = BinaryHeap::new();
        h.push(ev(10, 2));
        h.push(ev(5, 3));
        h.push(ev(10, 1));
        h.push(ev(5, 0));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| h.pop())
            .map(|e| (e.time.as_nanos() / 1000, e.seq))
            .collect();
        assert_eq!(order, vec![(5, 0), (5, 3), (10, 1), (10, 2)]);
    }
}
