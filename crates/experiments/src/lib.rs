//! # experiments — regenerating every table and figure of the paper
//!
//! One module per figure under [`figs`]; each has a thin binary wrapper in
//! `src/bin/` and is also callable from `run_all`, which writes
//! `EXPERIMENTS.md`. All experiments accept `--quick` (reduced scale),
//! `--flows N`, `--seed S` and `--loads a,b,c` on the command line.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod figs;
pub mod opts;
pub mod report;

pub use opts::ExpOpts;
pub use report::{FigResult, Series};
