//! The chaos harness: seeded fault storms + the global invariant oracle.
//!
//! Each case builds a leaf-spine all-to-all workload under PASE or DCTCP,
//! expands a [`netsim::chaos::ChaosConfig`] into a fault schedule (link
//! flaps, rack outages, arbitrator crash storms, control-loss bursts;
//! with the host fault class also NIC flap trains and whole-host
//! crash/restart storms; with the gray fault class degrade trains that
//! impose stochastic loss, payload corruption and latency inflation, run
//! with health-aware rerouting enabled; with the overload fault class
//! control storms that amplify arbitrator inbox charges plus a
//! deterministic flash crowd of short flows inside each storm window),
//! runs to completion and then demands that
//!
//! 1. every flow finished — or ended in a terminal `Aborted { reason }`
//!    that is attributable to an injected host fault (a crashed endpoint,
//!    or a max-RTO give-up against a faulted peer),
//! 2. every global invariant holds ([`netsim::invariants`]: packet
//!    conservation including the lost-to-crash term, no stuck flow,
//!    monotonic time, bounded queues), and
//! 3. the run is deterministic: the same seed executed twice produces a
//!    byte-identical event trace.
//!
//! The `chaos` binary sweeps seeds × intensity × scheme × fault class;
//! `scripts/ci.sh` runs a fixed 8-seed smoke slice. A failing case prints
//! the exact command line that replays just that seed.

use std::collections::BTreeSet;

use netsim::chaos::{self, ChaosConfig, ChaosIntensity};
use netsim::fault::{FaultEvent, FaultPlan};
use netsim::flow::FlowSpec;
use netsim::invariants::InvariantConfig;
use netsim::prelude::*;
use netsim::rng::Rng;
use netsim::sim::RunOutcome;
use netsim::topology::NodeKind;
use netsim::trace::TextTracer;
use workloads::{CasePlan, Pattern, Scenario, Scheme, SizeDist, TopologySpec};

/// Which fault classes a chaos case injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Fabric faults only: link flaps, rack outages, arbitrator crash
    /// storms, control-loss bursts. Every flow must complete.
    Fabric,
    /// Fabric faults plus end-host faults: NIC flap trains and whole-host
    /// crash/restart storms. Flows touching a faulted host may end
    /// `Aborted`; anything else must still complete.
    Host,
    /// Fabric faults plus gray failures: degrade trains on fabric and NIC
    /// links (stochastic loss, payload corruption, latency inflation).
    /// Hosts never crash; switches run with health-aware rerouting so
    /// flows hash off degraded ECMP siblings. Every flow must complete
    /// unless its endpoint sat behind a degraded NIC link.
    Gray,
    /// Fabric faults plus control-plane overload: seeded control storms
    /// amplify every arbitrator's inbox charge while a deterministic
    /// flash crowd of short flows lands inside each storm window. Hosts
    /// never crash, so shedding must be graceful: every flow must still
    /// complete.
    Overload,
}

impl FaultClass {
    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Fabric => "fabric",
            FaultClass::Host => "host",
            FaultClass::Gray => "gray",
            FaultClass::Overload => "overload",
        }
    }

    /// Every class, in sweep order (`--faults all`).
    pub fn all() -> [FaultClass; 4] {
        [
            FaultClass::Fabric,
            FaultClass::Host,
            FaultClass::Gray,
            FaultClass::Overload,
        ]
    }

    fn host_faults(self) -> bool {
        self == FaultClass::Host
    }

    fn gray_faults(self) -> bool {
        self == FaultClass::Gray
    }

    fn overload_faults(self) -> bool {
        self == FaultClass::Overload
    }
}

/// Options for a chaos sweep (parsed by the `chaos` binary).
#[derive(Debug, Clone)]
pub struct ChaosOpts {
    /// Seeds to sweep.
    pub seeds: Vec<u64>,
    /// Schemes to exercise.
    pub schemes: Vec<Scheme>,
    /// Fault densities to exercise.
    pub intensities: Vec<ChaosIntensity>,
    /// Fault classes to exercise.
    pub fault_classes: Vec<FaultClass>,
    /// Reduced scale (fewer flows): the CI smoke profile.
    pub quick: bool,
    /// Per-case progress lines on stderr (also enabled by `CHAOS_LOG`).
    pub verbose: bool,
    /// Worker threads for case execution (`workloads::exec`); results
    /// and reporting stay in case order at any value.
    pub jobs: usize,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        ChaosOpts {
            seeds: (0..32).collect(),
            schemes: vec![Scheme::Pase, Scheme::Dctcp],
            intensities: vec![ChaosIntensity::Low, ChaosIntensity::High],
            fault_classes: FaultClass::all().to_vec(),
            quick: false,
            verbose: false,
            jobs: workloads::default_jobs(),
        }
    }
}

impl ChaosOpts {
    /// Parse the `chaos` binary's arguments.
    ///
    /// Recognized: `--seeds N` (sweep 0..N), `--seed-list a,b,c`,
    /// `--scheme pase|dctcp|both`, `--intensity low|high|both`,
    /// `--faults fabric|host|gray|overload|both|all`, `--jobs N`, `--quick`,
    /// `--verbose`.
    /// Setting the `CHAOS_LOG` environment variable (any non-empty
    /// value) also enables verbose output.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> ChaosOpts {
        let mut opts = ChaosOpts::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--verbose" => opts.verbose = true,
                "--seeds" => {
                    let n: u64 = take("--seeds").parse().expect("--seeds: integer");
                    assert!(n > 0, "--seeds must be positive");
                    opts.seeds = (0..n).collect();
                }
                "--seed-list" => {
                    opts.seeds = take("--seed-list")
                        .split(',')
                        .map(|s| s.trim().parse().expect("--seed-list: integers"))
                        .collect();
                }
                "--scheme" => {
                    opts.schemes = match take("--scheme").as_str() {
                        "pase" => vec![Scheme::Pase],
                        "dctcp" => vec![Scheme::Dctcp],
                        "both" => vec![Scheme::Pase, Scheme::Dctcp],
                        other => panic!("--scheme: pase|dctcp|both, got {other}"),
                    };
                }
                "--intensity" => {
                    opts.intensities = match take("--intensity").as_str() {
                        "low" => vec![ChaosIntensity::Low],
                        "high" => vec![ChaosIntensity::High],
                        "both" => vec![ChaosIntensity::Low, ChaosIntensity::High],
                        other => panic!("--intensity: low|high|both, got {other}"),
                    };
                }
                "--faults" => {
                    opts.fault_classes = match take("--faults").as_str() {
                        "fabric" => vec![FaultClass::Fabric],
                        "host" => vec![FaultClass::Host],
                        "gray" => vec![FaultClass::Gray],
                        "overload" => vec![FaultClass::Overload],
                        "both" => vec![FaultClass::Fabric, FaultClass::Host],
                        "all" => FaultClass::all().to_vec(),
                        other => {
                            panic!("--faults: fabric|host|gray|overload|both|all, got {other}")
                        }
                    };
                }
                "--jobs" => {
                    opts.jobs = take("--jobs").parse().expect("--jobs: integer");
                    assert!(opts.jobs > 0, "--jobs must be positive");
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        if std::env::var("CHAOS_LOG")
            .map(|v| !v.is_empty())
            .unwrap_or(false)
        {
            opts.verbose = true;
        }
        opts
    }
}

/// The chaos workload: all-to-all short flows on the small leaf-spine
/// fabric (2 spines x 4 leaves — every inter-leaf flow has two equal-cost
/// paths for the rerouter to fall back on). No background flows, so a
/// finished run has a quiescent data plane and conservation is exact.
fn chaos_scenario(quick: bool) -> Scenario {
    Scenario {
        name: "chaos-leaf-spine",
        topo: TopologySpec::small_leaf_spine(2),
        pattern: Pattern::AllToAll,
        sizes: SizeDist::UniformBytes {
            lo: 2_000,
            hi: 100_000,
        },
        deadlines: None,
        n_background: 0,
        n_flows: if quick { 80 } else { 250 },
    }
}

/// Chaos horizon: long enough to overlap most of the flow-arrival window,
/// short enough that the healed tail lets everything finish.
fn horizon(quick: bool) -> SimDuration {
    if quick {
        SimDuration::from_millis(10)
    } else {
        SimDuration::from_millis(30)
    }
}

/// What one chaos case did.
#[derive(Debug)]
pub struct CaseResult {
    /// The scheme under test.
    pub scheme: &'static str,
    /// Fault density.
    pub intensity: ChaosIntensity,
    /// Fault classes injected.
    pub fault_class: FaultClass,
    /// The seed (drives both workload and fault schedule).
    pub seed: u64,
    /// Invariant violations (empty = clean).
    pub violations: Vec<String>,
    /// Flows that never completed.
    pub incomplete_flows: usize,
    /// Flows that ended in a terminal `Aborted` state (all attributable
    /// to injected host faults, or the case fails).
    pub aborted_flows: usize,
    /// FNV-1a hash of the full event trace (determinism fingerprint).
    pub trace_hash: u64,
    /// FNV-1a hash of the aggregate stats counters and every flow's
    /// terminal record. The trace hash proves the event *sequence* is
    /// unchanged; this proves the bookkeeping derived from it is too, so
    /// sweeps can be compared across engine-optimization changes.
    pub stats_hash: u64,
    /// Data packets blackholed during the run (visibility, not a failure).
    pub blackholed: u64,
    /// Events executed by one run of the case (throughput numerator).
    pub events: u64,
    /// Data packets delivered by one run of the case.
    pub delivered: u64,
    /// Peak pending-event count in one run of the case.
    pub peak_pending: usize,
    /// How the run ended; anything but `MeasuredComplete` means the
    /// backstop truncated the case (surfaced by [`sweep`] exactly like
    /// [`workloads::backstop_warning`] does for figure sweeps).
    pub outcome: RunOutcome,
    /// Control messages processed across all arbitrators.
    pub ctrl_processed: u64,
    /// Control messages shed across all arbitrators.
    pub ctrl_shed: u64,
    /// Largest weighted per-epoch inbox depth any arbitrator saw.
    pub ctrl_peak_depth: u64,
    /// High-water mark of simultaneously outstanding arena packets in one
    /// run of the case.
    pub arena_peak_outstanding: u64,
    /// Arena allocations served from the free list instead of the global
    /// heap in one run of the case.
    pub arena_recycled: u64,
}

impl CaseResult {
    /// Did the case pass (all flows complete, all invariants hold)?
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.incomplete_flows == 0
    }

    /// The warning line for a backstop-truncated case, or `None` when the
    /// run ended normally — the chaos-sweep counterpart of
    /// [`workloads::backstop_warning`], so truncation is surfaced per
    /// case instead of hiding inside an incomplete-flows violation.
    pub fn backstop_warning(&self) -> Option<String> {
        if self.outcome == RunOutcome::MeasuredComplete {
            return None;
        }
        Some(format!(
            "backstop hit ({:?}): chaos {} {:?}/{} seed {} finished with \
             {} incomplete flows",
            self.outcome,
            self.scheme,
            self.intensity,
            self.fault_class.name(),
            self.seed,
            self.incomplete_flows
        ))
    }
}

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a fingerprint of the run's [`netsim::stats::StatsCollector`]
/// totals plus every flow's terminal record, serialized in a fixed
/// little-endian order.
fn stats_fingerprint(sim: &Simulation) -> u64 {
    fn push(bytes: &mut Vec<u8>, v: u64) {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let st = sim.stats();
    let mut bytes: Vec<u8> = Vec::with_capacity(4096);
    for v in [
        st.events_executed,
        st.data_pkts_injected,
        st.data_pkts_delivered,
        st.data_pkts_dropped,
        st.data_pkts_enqueued,
        st.data_pkts_blackholed,
        st.data_pkts_consumed,
        st.data_pkts_lost_to_crash,
        st.data_pkts_corrupted,
        st.blackhole_pkts,
        st.ctrl_pkts,
        st.ctrl_bytes,
        st.ctrl_msgs_processed,
        st.ctrl_msgs_shed,
        st.ctrl_pkts_dropped,
        st.ctrl_pkts_blackholed,
        st.ctrl_pkts_corrupted,
        st.ctrl_lost_to_crash,
        st.ctrl_unattended,
        // Arena lifecycle counters are a pure function of the event
        // sequence, so they must match across scheduler engines and job
        // counts just like every other stat.
        st.arena.allocated,
        st.arena.recycled,
        st.arena.released,
        st.arena.peak_outstanding,
    ] {
        push(&mut bytes, v);
    }
    for rec in st.flows() {
        push(&mut bytes, rec.spec.id.0);
        push(&mut bytes, rec.completed.map_or(u64::MAX, |t| t.as_nanos()));
        let reason = match (rec.aborted, rec.abort_reason) {
            (false, _) => 0,
            (true, None) => 1,
            (true, Some(AbortReason::EarlyTermination)) => 2,
            (true, Some(AbortReason::MaxRtosExceeded)) => 3,
            (true, Some(AbortReason::HostCrash)) => 4,
        };
        push(&mut bytes, reason);
        push(&mut bytes, rec.retransmitted_bytes);
        push(&mut bytes, rec.timeouts);
        push(&mut bytes, rec.probes_sent);
        push(&mut bytes, rec.drops);
    }
    fnv1a(&bytes)
}

/// Flash-crowd companions to the control storms: a deterministic burst of
/// short flows lands right as each storm's amplification begins, so the
/// shed pressure on the arbitrators is real arbitration demand and not
/// just an idle multiplier. Drawn from a dedicated RNG stream seeded off
/// the case seed; purely a function of `(plan, hosts, seed, quick)`.
fn flash_crowd_flows(
    plan: &FaultPlan,
    hosts: &[NodeId],
    seed: u64,
    quick: bool,
    flows: &mut Vec<FlowSpec>,
) {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x0ad1);
    let burst = if quick { 6 } else { 12 };
    let n = hosts.len();
    for &(at, ev) in plan.events() {
        let FaultEvent::CtrlStormStart { .. } = ev else {
            continue;
        };
        for i in 0..burst {
            let src = rng.gen_index(n);
            let mut dst = rng.gen_index(n - 1);
            if dst >= src {
                dst += 1;
            }
            let size = rng.gen_range_inclusive(2_000, 20_000);
            // Stagger arrivals a few microseconds apart: a crowd, not a
            // single synchronized spike.
            let start = at + SimDuration::from_micros(3 * i as u64);
            flows.push(FlowSpec::new(
                FlowId(flows.len() as u64),
                hosts[src],
                hosts[dst],
                size,
                start,
            ));
        }
    }
}

/// Execute one chaos case once and audit it.
fn run_once(
    scheme: Scheme,
    intensity: ChaosIntensity,
    fault_class: FaultClass,
    seed: u64,
    quick: bool,
) -> CaseResult {
    let scenario = chaos_scenario(quick);
    let (mut sim, hosts) = scheme.build_sim(&scenario.topo);
    sim.enable_invariants(InvariantConfig::default());
    if fault_class.gray_faults() {
        // The gray class is the detection/recovery story: switches keep
        // per-port health scores and re-hash flows off degraded siblings.
        sim.enable_health_aware_routing();
    }
    let tracer = TextTracer::new();
    let trace_buf = tracer.buffer();
    sim.set_tracer(Box::new(tracer));

    let plan = chaos::generate(
        sim.topo(),
        &ChaosConfig {
            seed,
            intensity,
            horizon: horizon(quick),
            host_faults: fault_class.host_faults(),
            gray_faults: fault_class.gray_faults(),
            overload: fault_class.overload_faults(),
        },
    );
    let mut flows = scenario.generate_flows(0.5, seed, &hosts);
    if fault_class.overload_faults() {
        flash_crowd_flows(&plan, &hosts, seed, quick, &mut flows);
    }
    sim.add_flows(flows);
    let mut violations: Vec<String> = Vec::new();
    if let Err(e) = plan.validate(sim.topo()) {
        violations.push(format!("generated fault plan invalid: {e}"));
    }
    sim.inject_faults(&plan);
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(120)));

    let report = sim.check_invariants();
    violations.extend(report.violations.iter().map(|v| v.to_string()));
    let incomplete_flows = sim
        .stats()
        .flows()
        .filter(|r| r.completed.is_none())
        .count();
    if incomplete_flows > 0 {
        violations.push(format!("{incomplete_flows} flows never completed"));
    }

    // Every aborted flow must be attributable to an injected host fault:
    // its source crashed (HostCrash), or its sender exhausted the RTO
    // budget against an endpoint that crashed, lost its NIC link, or sat
    // behind a degraded (gray) NIC link.
    let mut crashed_hosts: BTreeSet<NodeId> = BTreeSet::new();
    let mut flapped_hosts: BTreeSet<NodeId> = BTreeSet::new();
    for &(_, ev) in plan.events() {
        match ev {
            FaultEvent::HostCrash { node } => {
                crashed_hosts.insert(node);
            }
            FaultEvent::LinkDown { a, b } | FaultEvent::LinkDegrade { a, b, .. } => {
                for n in [a, b] {
                    if sim.topo().kind(n) == NodeKind::Host {
                        flapped_hosts.insert(n);
                    }
                }
            }
            _ => {}
        }
    }
    let mut aborted_flows = 0;
    for rec in sim.stats().flows() {
        let Some(reason) = rec.abort_reason else {
            continue;
        };
        aborted_flows += 1;
        let (src, dst) = (rec.spec.src, rec.spec.dst);
        let attributable = match reason {
            AbortReason::HostCrash => crashed_hosts.contains(&src),
            AbortReason::MaxRtosExceeded => [src, dst]
                .iter()
                .any(|n| crashed_hosts.contains(n) || flapped_hosts.contains(n)),
            AbortReason::EarlyTermination => false,
        };
        if !attributable {
            violations.push(format!(
                "{} ({src} -> {dst}) aborted with {reason:?} but neither endpoint \
                 was hit by an injected host fault",
                rec.spec.id
            ));
        }
    }

    let trace_hash = fnv1a(trace_buf.lock().expect("trace buffer poisoned").as_bytes());
    CaseResult {
        scheme: scheme.name(),
        intensity,
        fault_class,
        seed,
        violations,
        incomplete_flows,
        aborted_flows,
        trace_hash,
        stats_hash: stats_fingerprint(&sim),
        blackholed: sim.stats().data_pkts_blackholed,
        events: sim.stats().events_executed,
        delivered: sim.stats().data_pkts_delivered,
        peak_pending: sim.scheduler().peak_pending(),
        outcome,
        ctrl_processed: sim.stats().ctrl_msgs_processed,
        ctrl_shed: sim.stats().ctrl_msgs_shed,
        ctrl_peak_depth: sim
            .stats()
            .ctrl_peak_epoch_by_node()
            .map(|(_, d)| d)
            .max()
            .unwrap_or(0),
        arena_peak_outstanding: sim.stats().arena.peak_outstanding,
        arena_recycled: sim.stats().arena.recycled,
    }
}

/// Execute one chaos case **twice** and require byte-identical traces.
pub fn run_case(
    scheme: Scheme,
    intensity: ChaosIntensity,
    fault_class: FaultClass,
    seed: u64,
    quick: bool,
) -> CaseResult {
    let mut first = run_once(scheme, intensity, fault_class, seed, quick);
    let second = run_once(scheme, intensity, fault_class, seed, quick);
    if first.trace_hash != second.trace_hash {
        first.violations.push(format!(
            "non-deterministic: trace hash {:#018x} != {:#018x} on replay",
            first.trace_hash, second.trace_hash
        ));
    }
    if first.stats_hash != second.stats_hash {
        first.violations.push(format!(
            "non-deterministic: stats hash {:#018x} != {:#018x} on replay",
            first.stats_hash, second.stats_hash
        ));
    }
    first
}

/// The replay command for a failing case.
pub fn replay_command(r: &CaseResult, quick: bool) -> String {
    let intensity = match r.intensity {
        ChaosIntensity::Low => "low",
        ChaosIntensity::High => "high",
    };
    let scheme = match r.scheme {
        "PASE" => "pase",
        _ => "dctcp",
    };
    // The full flag set, so the replay reproduces the failing case
    // exactly: `--jobs 1` pins single-threaded execution (results are
    // identical at any job count, but the failure is easier to follow).
    format!(
        "CHAOS_LOG=1 cargo run --release -p experiments --bin chaos -- \
         --seed-list {} --scheme {} --intensity {} --faults {} --jobs 1{}",
        r.seed,
        scheme,
        intensity,
        r.fault_class.name(),
        if quick { " --quick" } else { "" }
    )
}

/// Run the full sweep. Returns every case result; the binary turns
/// failures into a non-zero exit.
///
/// Cases execute on the [`workloads::exec`] engine with `opts.jobs`
/// workers. The case order (scheme → fault class → intensity → seed) and
/// all stderr reporting are identical to the sequential sweep at any job
/// count: results come back ordered by case index and reporting happens
/// afterwards, in that order.
pub fn sweep(opts: &ChaosOpts) -> Vec<CaseResult> {
    let plan = CasePlan::new(
        opts.schemes
            .iter()
            .flat_map(|&scheme| {
                opts.fault_classes.iter().flat_map(move |&fault_class| {
                    opts.intensities.iter().flat_map(move |&intensity| {
                        opts.seeds
                            .iter()
                            .map(move |&seed| (scheme, fault_class, intensity, seed))
                    })
                })
            })
            .collect::<Vec<_>>(),
    );
    let out = plan.execute(opts.jobs, |&(scheme, fault_class, intensity, seed)| {
        run_case(scheme, intensity, fault_class, seed, opts.quick)
    });
    for r in &out {
        if opts.verbose || !r.passed() {
            eprintln!(
                "chaos {:>5} {:?}/{} seed {:>3}: {} (blackholed {}, aborted {}, \
                 shed {}/{}, events {}, trace {:#018x}, stats {:#018x})",
                r.scheme,
                r.intensity,
                r.fault_class.name(),
                r.seed,
                if r.passed() { "ok" } else { "FAIL" },
                r.blackholed,
                r.aborted_flows,
                r.ctrl_shed,
                r.ctrl_processed + r.ctrl_shed,
                r.events,
                r.trace_hash,
                r.stats_hash,
            );
        }
        if let Some(w) = r.backstop_warning() {
            eprintln!("warning: {w}");
        }
        if !r.passed() {
            for v in &r.violations {
                eprintln!("  violation: {v}");
            }
            eprintln!("  replay: {}", replay_command(r, opts.quick));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ChaosOpts {
        ChaosOpts::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn arg_parsing() {
        let o = parse("--seeds 4 --scheme pase --intensity high --faults host --quick");
        assert_eq!(o.seeds, vec![0, 1, 2, 3]);
        assert_eq!(o.schemes.len(), 1);
        assert_eq!(o.intensities, vec![ChaosIntensity::High]);
        assert_eq!(o.fault_classes, vec![FaultClass::Host]);
        assert!(o.quick);
        let o2 = parse("--seed-list 7,9");
        assert_eq!(o2.seeds, vec![7, 9]);
        assert_eq!(
            o2.fault_classes,
            FaultClass::all().to_vec(),
            "default sweeps every fault class"
        );
        let o3 = parse("--faults gray");
        assert_eq!(o3.fault_classes, vec![FaultClass::Gray]);
        let o4 = parse("--faults all");
        assert_eq!(o4.fault_classes, FaultClass::all().to_vec());
    }

    /// Every fault class's CLI name parses back to exactly that class —
    /// a rename that misses the parser (or vice versa) would make the
    /// replay command and the `--faults` help line lie.
    #[test]
    fn fault_class_names_round_trip_through_the_parser() {
        for class in FaultClass::all() {
            let o = parse(&format!("--faults {}", class.name()));
            assert_eq!(o.fault_classes, vec![class], "{}", class.name());
        }
    }

    /// The replay line a failing case prints must parse back into exactly
    /// that case's options — a drifted flag set would replay the wrong
    /// configuration.
    #[test]
    fn replay_command_round_trips_through_the_parser() {
        for (fault_class, quick) in [
            (FaultClass::Fabric, false),
            (FaultClass::Host, true),
            (FaultClass::Gray, true),
            (FaultClass::Overload, true),
        ] {
            let r = CaseResult {
                scheme: "PASE",
                intensity: ChaosIntensity::High,
                fault_class,
                seed: 17,
                violations: vec![],
                incomplete_flows: 0,
                aborted_flows: 0,
                trace_hash: 0,
                stats_hash: 0,
                blackholed: 0,
                events: 0,
                delivered: 0,
                peak_pending: 0,
                outcome: RunOutcome::MeasuredComplete,
                ctrl_processed: 0,
                ctrl_shed: 0,
                ctrl_peak_depth: 0,
                arena_peak_outstanding: 0,
                arena_recycled: 0,
            };
            let cmd = replay_command(&r, quick);
            let args = cmd
                .split_once(" -- ")
                .expect("replay command has a `--` separator")
                .1;
            let o = parse(args);
            assert_eq!(o.seeds, vec![17]);
            assert_eq!(o.schemes, vec![Scheme::Pase]);
            assert_eq!(o.intensities, vec![ChaosIntensity::High]);
            assert_eq!(o.fault_classes, vec![fault_class]);
            assert_eq!(o.quick, quick);
            assert_eq!(o.jobs, 1, "replay pins single-threaded execution");
        }
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_rejected() {
        parse("--bogus");
    }

    #[test]
    fn jobs_flag_parses() {
        assert_eq!(parse("--jobs 3").jobs, 3);
        assert!(parse("--quick").jobs > 0, "default comes from the engine");
    }

    #[test]
    #[should_panic(expected = "--jobs must be positive")]
    fn zero_jobs_rejected() {
        parse("--jobs 0");
    }

    /// A miniature slice of the CI smoke sweep: one seed per scheme and
    /// fault class at high intensity must complete with every invariant
    /// intact and a reproducible trace.
    #[test]
    fn chaos_smoke_slice_is_clean() {
        for scheme in [Scheme::Dctcp, Scheme::Pase] {
            for fault_class in FaultClass::all() {
                let r = run_case(scheme, ChaosIntensity::High, fault_class, 3, true);
                assert!(
                    r.passed(),
                    "{} {} seed 3 failed:\n{}",
                    r.scheme,
                    fault_class.name(),
                    r.violations.join("\n")
                );
            }
        }
    }

    /// The overload class must actually exercise the shed path on PASE
    /// (storms + flash crowds push arbitrators past their budget) while
    /// DCTCP — no control plane — sheds nothing and is untouched by it.
    #[test]
    fn overload_sheds_on_pase_and_is_inert_on_dctcp() {
        let p = run_case(
            Scheme::Pase,
            ChaosIntensity::High,
            FaultClass::Overload,
            3,
            true,
        );
        assert!(p.passed(), "{}", p.violations.join("\n"));
        assert!(
            p.ctrl_shed > 0,
            "storms at high intensity must shed (peak epoch depth {})",
            p.ctrl_peak_depth
        );
        assert!(p.ctrl_processed > 0, "shedding must not starve processing");
        let d = run_case(
            Scheme::Dctcp,
            ChaosIntensity::High,
            FaultClass::Overload,
            3,
            true,
        );
        assert!(d.passed(), "{}", d.violations.join("\n"));
        assert_eq!(d.ctrl_shed, 0, "DCTCP has no control plane to shed");
        assert_eq!(d.ctrl_processed, 0);
    }
}
