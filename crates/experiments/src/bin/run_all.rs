//! Run every experiment and write `EXPERIMENTS.md` plus per-figure JSON.
//!
//! ```sh
//! cargo run --release -p experiments --bin run_all -- [--quick] [--out results] [--jobs N]
//! ```
//!
//! `--jobs` (default: detected cores; `NETSIM_JOBS` overrides the
//! default) parallelizes case execution across every figure sweep;
//! the emitted tables are byte-identical at any job count.

use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let opts = experiments::ExpOpts::from_env();
    let started = Instant::now();
    let figs = experiments::figs::all(&opts);

    let mut md = String::new();
    let _ = writeln!(md, "# EXPERIMENTS — paper vs. measured\n");
    let _ = writeln!(
        md,
        "Reproduction of every figure in *Friends, not Foes* (SIGCOMM 2014).\n\
         Absolute numbers come from this repository's simulator, not the\n\
         authors' ns2 setup or testbed; the *shape* notes under each table\n\
         record the paper's qualitative claim next to what we measured.\n"
    );
    let _ = writeln!(
        md,
        "Configuration: {} flows/point, seed {}, loads {:?}, hosts/rack {}{}.\n",
        opts.flows,
        opts.seed,
        opts.loads,
        opts.hosts_per_rack,
        if opts.quick { " (QUICK mode)" } else { "" }
    );
    eprintln!("run_all: {} jobs", opts.jobs);
    for fig in &figs {
        fig.print();
        println!();
        md.push_str(&fig.to_markdown());
        if let Some(dir) = &opts.out_dir {
            fig.save_json(dir).expect("write JSON result");
        }
    }
    // Non-figure acceptance experiments (run separately; pass/fail, no
    // table): keep EXPERIMENTS.md the single index of what we measure.
    let _ = writeln!(
        md,
        "### chaos — seeded fault storms: fabric, host, gray *and* overload classes\n\n\
         `cargo run --release -p experiments --bin chaos` sweeps seeds \u{d7}\n\
         {{Low, High}} intensity \u{d7} {{PASE, DCTCP}} \u{d7} {{fabric, host, gray,\n\
         overload}} fault classes (`--faults fabric|host|gray|overload|both|all`).\n\
         The fabric class draws link-flap trains, rack outages, arbitrator crash\n\
         storms, and control-loss bursts; the host class adds NIC flap trains\n\
         and end-host crash/restart storms (at least one crash per storm); the\n\
         gray class adds degrade trains — links that stay up while losing,\n\
         corrupting and delaying packets (at least one degrade episode per\n\
         storm, health-aware rerouting enabled); the overload class adds\n\
         control-plane storms — amplified arbitrator inbox charges plus\n\
         deterministic flash-crowd flows — with no host crashes, so every flow\n\
         must complete. Every case must run twice with byte-identical traces,\n\
         keep all invariants clean under the extended conservation laws (data:\n\
         `injected = delivered + dropped + corrupted + blackholed + consumed +\n\
         in-network + lost-to-crash`; control: `sent = processed + shed +\n\
         dropped + corrupted + blackholed + lost-to-crash + unattended +\n\
         in-network`), and finish every flow either complete or `Aborted {{\n\
         reason }}` with the reason attributable to an injected fault (a\n\
         `HostCrash` abort needs its source crashed; a `MaxRtosExceeded` abort\n\
         needs a crashed, NIC-flapped or NIC-degraded endpoint). A failing case\n\
         prints its exact replay command (full flag set, pinned to `--jobs 1`).\n\
         `scripts/ci.sh` runs an 8-seed quick slice of all four fault classes\n\
         on every PR.\n"
    );
    let _ = writeln!(
        md,
        "### bench — simulator throughput baseline (first recording, 2026-08-05)\n\n\
         `scripts/bench.sh` (\u{2192} `BENCH_netsim.json`; the baseline below was\n\
         recorded under schema `netsim-bench/1`, the harness now emits\n\
         `netsim-bench/3` which adds a `gray-storm` scenario \u{2014} the chaos\n\
         harness under degrade trains with health-aware rerouting on \u{2014} and\n\
         an `overload-storm` scenario \u{2014} the same harness under control-plane\n\
         storms, keeping the bounded-inbox shed path on the measured hot path;\n\
         methodology in DESIGN.md \u{a7}8). Best-of-3 wall time, release profile,\n\
         fixed seeds; `events` is asserted identical across runs so throughput\n\
         deltas can never come from doing different work.\n\n\
         | scenario | events | events/s (before) | events/s (after) | speedup |\n\
         |---|---|---|---|---|\n\
         | sched-storm | 1,000,000 | 1,352,173 | 2,134,304 | 1.58\u{d7} |\n\
         | incast-pase | 471,326 | 3,218,655 | 6,418,871 | 1.99\u{d7} |\n\
         | incast-dctcp | 400,560 | 4,176,883 | 8,368,878 | 2.00\u{d7} |\n\
         | chaos-storm | 36,921,318 | 1,701,342 | 2,811,982 | 1.65\u{d7} |\n\n\
         \"Before\" is the tree at commit `cfa3138` plus the bench harness only;\n\
         \"after\" adds the hot-path work: boxed event payloads (one allocation\n\
         per packet, 48-byte heap elements), zero-cost disabled tracing\n\
         (`StatsCollector::tracing()` gates + chunked `TextTracer` flushing),\n\
         deterministic `IdHashBuilder` on the host agent map, and batch flow\n\
         scheduling. Proof of behaviour preservation: the full 256-case chaos\n\
         sweep (`./target/release/chaos --verbose`) produces byte-identical\n\
         per-case trace hashes and identical stats fingerprints before vs\n\
         after, and every scenario's event count is unchanged. Incast gains\n\
         the most because its per-event cost was dominated by packet moves and\n\
         tracing-path formatting; sched-storm is a pure scheduler loop, so it\n\
         bounds the heap-only improvement.\n"
    );
    let _ = writeln!(
        md,
        "### parallel case execution\n\n\
         Every sweep above ran on the `workloads::exec` engine (`--jobs`,\n\
         default: detected cores): cases execute on a `std::thread` work\n\
         pool and results return ordered by case index, so these tables\n\
         are byte-identical to a sequential run at any job count\n\
         (`tests/parallel_determinism.rs`; DESIGN.md \u{a7}8). Reference\n\
         wall-clock on the 1-core container this baseline was generated\n\
         on: the 64-case quick chaos sweep takes 12.2 s at `--jobs 1`,\n\
         11.5 s at `--jobs 2`, 12.2 s at `--jobs 4` \u{2014} flat, because a\n\
         single visible core serializes the workers \u{2014} and the full\n\
         256-case sweep (every per-case trace hash and stats fingerprint\n\
         verified identical to the pre-engine sequential binary) takes\n\
         144.5 s at `--jobs 2`. On a multi-core machine the same sweep\n\
         is embarrassingly parallel (cases share nothing) and wall clock\n\
         is expected to drop near-linearly in core count; the footer\n\
         below records this run's job count and detected cores so the\n\
         `run_all` trajectory stays interpretable across machines.\n"
    );
    let _ = writeln!(
        md,
        "\n*Generated in {:.1} s of wall-clock time with {} job(s) \
         ({} core(s) detected).*",
        started.elapsed().as_secs_f64(),
        opts.jobs,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    std::fs::write("EXPERIMENTS.md", md).expect("write EXPERIMENTS.md");
    eprintln!(
        "wrote EXPERIMENTS.md ({} figures) in {:.1}s",
        figs.len(),
        started.elapsed().as_secs_f64()
    );
}
