//! Run every experiment and write `EXPERIMENTS.md` plus per-figure JSON.
//!
//! ```sh
//! cargo run --release -p experiments --bin run_all -- [--quick] [--out results]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let opts = experiments::ExpOpts::from_env();
    let started = Instant::now();
    let figs = experiments::figs::all(&opts);

    let mut md = String::new();
    let _ = writeln!(md, "# EXPERIMENTS — paper vs. measured\n");
    let _ = writeln!(
        md,
        "Reproduction of every figure in *Friends, not Foes* (SIGCOMM 2014).\n\
         Absolute numbers come from this repository's simulator, not the\n\
         authors' ns2 setup or testbed; the *shape* notes under each table\n\
         record the paper's qualitative claim next to what we measured.\n"
    );
    let _ = writeln!(
        md,
        "Configuration: {} flows/point, seed {}, loads {:?}, hosts/rack {}{}.\n",
        opts.flows,
        opts.seed,
        opts.loads,
        opts.hosts_per_rack,
        if opts.quick { " (QUICK mode)" } else { "" }
    );
    for fig in &figs {
        fig.print();
        println!();
        md.push_str(&fig.to_markdown());
        if let Some(dir) = &opts.out_dir {
            fig.save_json(dir).expect("write JSON result");
        }
    }
    // Non-figure acceptance experiments (run separately; pass/fail, no
    // table): keep EXPERIMENTS.md the single index of what we measure.
    let _ = writeln!(
        md,
        "### chaos — seeded fault storms with fabric *and* host fault classes\n\n\
         `cargo run --release -p experiments --bin chaos` sweeps seeds \u{d7}\n\
         {{Low, High}} intensity \u{d7} {{PASE, DCTCP}} \u{d7} {{fabric, host}} fault\n\
         classes (`--faults fabric|host|both`). The fabric class draws link-flap\n\
         trains, rack outages, arbitrator crash storms, and control-loss bursts;\n\
         the host class adds NIC flap trains and end-host crash/restart storms\n\
         (at least one crash per storm). Every case must run twice with\n\
         byte-identical traces, keep all invariants clean under the extended\n\
         conservation law (`injected = delivered + dropped + blackholed +\n\
         consumed + in-network + lost-to-crash`), and finish every flow either\n\
         complete or `Aborted {{ reason }}` with the reason attributable to an\n\
         injected host fault (a `HostCrash` abort needs its source crashed; a\n\
         `MaxRtosExceeded` abort needs a crashed or NIC-flapped endpoint).\n\
         A failing case prints its exact replay command. `scripts/ci.sh` runs\n\
         an 8-seed quick slice of both fault classes on every PR.\n"
    );
    let _ = writeln!(
        md,
        "\n*Generated in {:.1} s of wall-clock time.*",
        started.elapsed().as_secs_f64()
    );
    std::fs::write("EXPERIMENTS.md", md).expect("write EXPERIMENTS.md");
    eprintln!(
        "wrote EXPERIMENTS.md ({} figures) in {:.1}s",
        figs.len(),
        started.elapsed().as_secs_f64()
    );
}
