//! Run every experiment and write `EXPERIMENTS.md` plus per-figure JSON.
//!
//! ```sh
//! cargo run --release -p experiments --bin run_all -- [--quick] [--out results]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let opts = experiments::ExpOpts::from_env();
    let started = Instant::now();
    let figs = experiments::figs::all(&opts);

    let mut md = String::new();
    let _ = writeln!(md, "# EXPERIMENTS — paper vs. measured\n");
    let _ = writeln!(
        md,
        "Reproduction of every figure in *Friends, not Foes* (SIGCOMM 2014).\n\
         Absolute numbers come from this repository's simulator, not the\n\
         authors' ns2 setup or testbed; the *shape* notes under each table\n\
         record the paper's qualitative claim next to what we measured.\n"
    );
    let _ = writeln!(
        md,
        "Configuration: {} flows/point, seed {}, loads {:?}, hosts/rack {}{}.\n",
        opts.flows,
        opts.seed,
        opts.loads,
        opts.hosts_per_rack,
        if opts.quick { " (QUICK mode)" } else { "" }
    );
    for fig in &figs {
        fig.print();
        println!();
        md.push_str(&fig.to_markdown());
        if let Some(dir) = &opts.out_dir {
            fig.save_json(dir).expect("write JSON result");
        }
    }
    let _ = writeln!(
        md,
        "\n*Generated in {:.1} s of wall-clock time.*",
        started.elapsed().as_secs_f64()
    );
    std::fs::write("EXPERIMENTS.md", md).expect("write EXPERIMENTS.md");
    eprintln!(
        "wrote EXPERIMENTS.md ({} figures) in {:.1}s",
        figs.len(),
        started.elapsed().as_secs_f64()
    );
}
