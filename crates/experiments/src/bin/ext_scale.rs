//! Binary wrapper for `experiments::figs::ext_scale::run`.

fn main() {
    let opts = experiments::ExpOpts::from_env();
    let fig = experiments::figs::ext_scale::run(&opts);
    fig.print();
    if let Some(dir) = &opts.out_dir {
        fig.save_json(dir).expect("write JSON result");
    }
}
