//! Binary wrapper for `experiments::figs::ext_faults::run_link_flap`.

fn main() {
    let opts = experiments::ExpOpts::from_env();
    let fig = experiments::figs::ext_faults::run_link_flap(&opts);
    fig.print();
    if let Some(dir) = &opts.out_dir {
        fig.save_json(dir).expect("write JSON result");
    }
}
