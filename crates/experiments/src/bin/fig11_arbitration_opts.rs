//! Binary wrapper for `experiments::figs::fig11` (Figures 11a and 11b).

fn main() {
    let opts = experiments::ExpOpts::from_env();
    for fig in experiments::figs::fig11::run(&opts) {
        fig.print();
        if let Some(dir) = &opts.out_dir {
            fig.save_json(dir).expect("write JSON result");
        }
    }
}
