//! Binary wrapper for `experiments::figs::micro_probing`.

fn main() {
    let opts = experiments::ExpOpts::from_env();
    let fig = experiments::figs::micro_probing::run(&opts);
    fig.print();
    if let Some(dir) = &opts.out_dir {
        fig.save_json(dir).expect("write JSON result");
    }
}
