//! Binary wrapper for `experiments::figs::ablations` (design-knob sweeps
//! and the heavy-tailed workload extension).

fn main() {
    let opts = experiments::ExpOpts::from_env();
    for fig in experiments::figs::ablations::run(&opts) {
        fig.print();
        if let Some(dir) = &opts.out_dir {
            fig.save_json(dir).expect("write JSON result");
        }
    }
}
