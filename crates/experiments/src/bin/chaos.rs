//! Chaos sweep: seeded fault storms × {PASE, DCTCP} with the global
//! invariant oracle. Non-zero exit if any case fails; each failing case
//! prints the command that replays just that seed.

use experiments::chaos::{sweep, ChaosOpts};

fn main() {
    let opts = ChaosOpts::from_args(std::env::args().skip(1));
    eprintln!(
        "chaos sweep: {} seeds x {} intensities x {} schemes x {} fault classes ({}, {} jobs)",
        opts.seeds.len(),
        opts.intensities.len(),
        opts.schemes.len(),
        opts.fault_classes.len(),
        if opts.quick { "quick" } else { "full" },
        opts.jobs,
    );
    let results = sweep(&opts);
    let failed = results.iter().filter(|r| !r.passed()).count();
    let blackholed: u64 = results.iter().map(|r| r.blackholed).sum();
    let aborted: usize = results.iter().map(|r| r.aborted_flows).sum();
    println!(
        "chaos: {}/{} cases clean; {} data packets blackholed, {} flows aborted \
         (all attributable) across the sweep",
        results.len() - failed,
        results.len(),
        blackholed,
        aborted
    );
    if failed > 0 {
        eprintln!("chaos: {failed} case(s) FAILED");
        std::process::exit(1);
    }
}
