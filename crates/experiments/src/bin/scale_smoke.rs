//! CI smoke for the production-scale fat-tree path: build the k=8
//! fabric (128 hosts) under PASE, check the compact route tables, run a
//! 2k-flow incast slice with invariants enabled under the dual-run
//! byte-identical-trace discipline, and hold the process to a peak-RSS
//! budget.
//!
//! Everything here is an assertion, not a measurement: the binary exits
//! non-zero on any violation, so `scripts/ci.sh` can run it directly.

use netsim::invariants::InvariantConfig;
use netsim::node::Node;
use netsim::prelude::*;
use netsim::trace::HashTracer;
use workloads::{Pattern, Scenario, Scheme, SizeDist, TopologySpec};

/// Peak-RSS ceiling for the whole smoke (two k=8 builds + runs). The
/// compact-FIB refactor keeps the k=8 world around 30 MiB; the budget
/// leaves ~8x headroom for allocator and toolchain noise while still
/// catching a return to dense per-switch route tables or per-flow
/// metric vectors that balloon with scale.
const PEAK_RSS_BUDGET: u64 = 256 * 1024 * 1024;

/// `VmHWM` from `/proc/self/status`, in bytes (0 when unavailable).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map_or(0, |kb| kb * 1024)
}

/// One traced, invariant-checked incast run; returns the trace digest
/// and the delivered-packet count.
fn run_once(scenario: &Scenario, seed: u64) -> (u64, u64) {
    let (mut sim, hosts) = Scheme::Pase.build_sim(&scenario.topo);

    // Route-table audit: every switch carries a compact interval FIB
    // covering the whole fabric in far fewer intervals than nodes.
    let n_nodes = sim.topo().n_nodes();
    let mut fib_bytes = 0usize;
    let mut switches = 0usize;
    for node in sim.nodes() {
        if let Node::Switch(sw) = node {
            switches += 1;
            fib_bytes += sw.fib().heap_bytes();
            assert!(
                sw.fib().intervals() < n_nodes / 2,
                "switch {:?}: {} FIB intervals for {} nodes — interval encoding broken",
                sw.id(),
                sw.fib().intervals(),
                n_nodes
            );
        }
    }
    assert_eq!(switches, 80, "k=8 fat-tree must have 16+32+32 switches");
    eprintln!(
        "scale_smoke: {} switches, {} nodes, {:.1} KiB total FIB",
        switches,
        n_nodes,
        fib_bytes as f64 / 1024.0
    );

    sim.enable_invariants(InvariantConfig::default());
    let tracer = HashTracer::new();
    let digest = tracer.digest();
    sim.set_tracer(Box::new(tracer));
    sim.add_flows(scenario.generate_flows(0.6, seed, &hosts));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(60)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "smoke incast must complete"
    );

    // Invariant oracle (packet conservation included) must be clean.
    let report = sim.check_invariants();
    assert!(
        report.violations.is_empty(),
        "invariant violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let incomplete = sim
        .stats()
        .flows()
        .filter(|r| r.completed.is_none())
        .count();
    assert_eq!(incomplete, 0, "every smoke flow must complete");

    let delivered = sim.stats().data_pkts_delivered;
    drop(sim); // flush the tracer
    let d = *digest.lock().unwrap();
    (d, delivered)
}

fn main() {
    // Flags are accepted for ci.sh symmetry (`--jobs N`) but the smoke
    // is two serial runs by construction — parallelism would only blur
    // the peak-RSS attribution.
    let _ = experiments::ExpOpts::from_env();
    let scenario = Scenario {
        name: "scale-smoke",
        topo: TopologySpec::fat_tree(8),
        pattern: Pattern::Incast { server: 0 },
        sizes: SizeDist::UniformBytes {
            lo: 2_000,
            hi: 198_000,
        },
        deadlines: None,
        n_background: 0,
        n_flows: 2_000,
    };

    let (d1, delivered1) = run_once(&scenario, 1);
    let (d2, delivered2) = run_once(&scenario, 1);
    assert_eq!(
        (d1, delivered1),
        (d2, delivered2),
        "dual-run trace digests diverged — determinism regression"
    );

    let rss = peak_rss_bytes();
    assert!(
        rss == 0 || rss <= PEAK_RSS_BUDGET,
        "peak RSS {} MiB exceeds the {} MiB smoke budget",
        rss / (1024 * 1024),
        PEAK_RSS_BUDGET / (1024 * 1024)
    );
    eprintln!(
        "scale_smoke: OK — 2000-flow incast on k=8 twice, digest {d1:#018x}, \
         {delivered1} pkts delivered, peak RSS {:.0} MiB (budget {} MiB)",
        rss as f64 / (1024.0 * 1024.0),
        PEAK_RSS_BUDGET / (1024 * 1024)
    );
}
