//! Result containers, table printing and JSON output.

use std::io::Write;
use std::path::Path;

/// One line on a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One value per x point (`NaN` → missing).
    pub ys: Vec<f64>,
}

/// A regenerated figure/table.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Identifier, e.g. "fig09a".
    pub id: String,
    /// Human title (matches the paper's caption).
    pub title: String,
    /// Meaning of the x axis.
    pub x_label: String,
    /// Meaning of the y axis.
    pub y_label: String,
    /// X values.
    pub xs: Vec<f64>,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form observations (shape checks, caveats).
    pub notes: Vec<String>,
}

impl FigResult {
    /// Create an empty result.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str, xs: Vec<f64>) -> FigResult {
        FigResult {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            xs,
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a series.
    pub fn push_series(&mut self, name: impl Into<String>, ys: Vec<f64>) {
        assert_eq!(ys.len(), self.xs.len(), "series length must match xs");
        self.series.push(Series {
            name: name.into(),
            ys,
        });
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Get a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("{:>12}", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {:>14}", s.name));
        }
        out.push('\n');
        for (i, x) in self.xs.iter().enumerate() {
            out.push_str(&format!("{x:>12.2}"));
            for s in &self.series {
                let y = s.ys[i];
                if y.is_nan() {
                    out.push_str(&format!(" {:>14}", "-"));
                } else {
                    out.push_str(&format!(" {y:>14.4}"));
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("(y: {})\n", self.y_label));
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        print!("{}", self.to_table());
    }

    /// Write the result as JSON into `dir/<id>.json`.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Render the result as pretty-printed JSON (2-space indent). The
    /// writer is hand-rolled so the workspace builds with no external
    /// dependencies; non-finite floats become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!("  \"x_label\": {},\n", json_str(&self.x_label)));
        out.push_str(&format!("  \"y_label\": {},\n", json_str(&self.y_label)));
        out.push_str("  \"xs\": ");
        out.push_str(&json_f64_array(&self.xs, 2));
        out.push_str(",\n  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_str(&s.name)));
            out.push_str("      \"ys\": ");
            out.push_str(&json_f64_array(&s.ys, 6));
            out.push_str("\n    }");
        }
        out.push_str(if self.series.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&json_str(n));
        }
        out.push_str(if self.notes.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }

    /// Render as a Markdown table (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.name));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for (i, x) in self.xs.iter().enumerate() {
            out.push_str(&format!("| {x:.2} |"));
            for s in &self.series {
                let y = s.ys[i];
                if y.is_nan() {
                    out.push_str(" - |");
                } else {
                    out.push_str(&format!(" {y:.4} |"));
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("\n*y: {}*\n\n", self.y_label));
        for n in &self.notes {
            out.push_str(&format!("- {n}\n"));
        }
        out.push('\n');
        out
    }
}

/// JSON-escape a string (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One float as a JSON token: `null` for non-finite values; integral
/// values keep a trailing `.0` so the type reads as a float.
fn json_f64(y: f64) -> String {
    if !y.is_finite() {
        "null".to_string()
    } else if y == y.trunc() && y.abs() < 1e15 {
        format!("{y:.1}")
    } else {
        format!("{y}")
    }
}

/// A flat float array on one line: `[1.0, 2.5, null]`.
fn json_f64_array(ys: &[f64], _indent: usize) -> String {
    let body: Vec<String> = ys.iter().map(|&y| json_f64(y)).collect();
    format!("[{}]", body.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigResult {
        let mut f = FigResult::new("figX", "Test", "load", "AFCT (ms)", vec![0.1, 0.5]);
        f.push_series("PASE", vec![1.0, 2.0]);
        f.push_series("DCTCP", vec![3.0, f64::NAN]);
        f.note("hello");
        f
    }

    #[test]
    fn table_contains_all_cells() {
        let t = sample().to_table();
        assert!(t.contains("PASE"));
        assert!(t.contains("DCTCP"));
        assert!(t.contains("3.0000"));
        assert!(t.contains("note: hello"));
    }

    #[test]
    fn markdown_has_header_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| 0.10 |"));
        assert!(md.contains(" - |"), "NaN renders as dash");
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn mismatched_series_rejected() {
        let mut f = FigResult::new("x", "t", "x", "y", vec![1.0]);
        f.push_series("bad", vec![1.0, 2.0]);
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("pase_repro_report_test");
        sample().save_json(&dir).unwrap();
        let raw = std::fs::read_to_string(dir.join("figX.json")).unwrap();
        assert!(raw.contains("\"id\": \"figX\""));
        assert!(raw.contains("\"name\": \"PASE\""));
        assert!(raw.contains("null"), "NaN serializes as null");
    }

    #[test]
    fn json_escapes_and_floats() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64_array(&[1.0, f64::NAN], 0), "[1.0, null]");
    }
}
