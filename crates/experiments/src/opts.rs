//! Command-line options shared by all experiment binaries.

use std::path::PathBuf;

/// Scale and reproducibility knobs for an experiment run.
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Measured flows per data point.
    pub flows: usize,
    /// Workload seed.
    pub seed: u64,
    /// Offered loads (fractions) to sweep.
    pub loads: Vec<f64>,
    /// Hosts per rack for left-right experiments (paper: 40 → 160 hosts).
    pub hosts_per_rack: usize,
    /// Where to write JSON results, if anywhere.
    pub out_dir: Option<PathBuf>,
    /// Quick mode (used by tests and smoke runs).
    pub quick: bool,
    /// Worker threads for case execution (`workloads::exec`). Defaults
    /// to the machine's available parallelism, overridable with the
    /// `NETSIM_JOBS` environment variable or `--jobs`.
    pub jobs: usize,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            flows: 2000,
            seed: 1,
            loads: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            hosts_per_rack: 40,
            out_dir: None,
            quick: false,
            jobs: workloads::default_jobs(),
        }
    }
}

impl ExpOpts {
    /// A reduced-scale configuration for fast smoke runs and tests.
    pub fn quick() -> ExpOpts {
        ExpOpts {
            flows: 150,
            loads: vec![0.2, 0.5, 0.8],
            hosts_per_rack: 10,
            quick: true,
            ..ExpOpts::default()
        }
    }

    /// Parse from the process arguments.
    ///
    /// Recognized flags: `--quick`, `--flows N`, `--seed S`,
    /// `--loads a,b,c`, `--hosts-per-rack N`, `--out DIR`, `--jobs N`.
    pub fn from_env() -> ExpOpts {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit argument iterator (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> ExpOpts {
        let mut opts = ExpOpts::default();
        let mut args = args.into_iter().peekable();
        let mut explicit_flows = None;
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match arg.as_str() {
                "--quick" => {
                    let keep = opts.clone();
                    opts = ExpOpts::quick();
                    opts.seed = keep.seed;
                    opts.jobs = keep.jobs;
                }
                "--flows" => {
                    explicit_flows = Some(take("--flows").parse().expect("--flows: integer"));
                }
                "--seed" => opts.seed = take("--seed").parse().expect("--seed: integer"),
                "--loads" => {
                    opts.loads = take("--loads")
                        .split(',')
                        .map(|s| s.trim().parse().expect("--loads: comma-separated floats"))
                        .collect();
                }
                "--hosts-per-rack" => {
                    opts.hosts_per_rack = take("--hosts-per-rack")
                        .parse()
                        .expect("--hosts-per-rack: integer");
                }
                "--out" => opts.out_dir = Some(PathBuf::from(take("--out"))),
                "--jobs" => {
                    opts.jobs = take("--jobs").parse().expect("--jobs: integer");
                    assert!(opts.jobs > 0, "--jobs must be positive");
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        if let Some(f) = explicit_flows {
            opts.flows = f;
        }
        assert!(!opts.loads.is_empty(), "need at least one load");
        assert!(
            opts.loads.iter().all(|l| (0.01..=1.2).contains(l)),
            "loads must be sane fractions"
        );
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ExpOpts {
        ExpOpts::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let o = parse("");
        assert_eq!(o.flows, 2000);
        assert_eq!(o.loads.len(), 9);
        assert!(!o.quick);
    }

    #[test]
    fn quick_mode_scales_down_but_keeps_seed() {
        let o = parse("--seed 9 --quick");
        assert!(o.quick);
        assert_eq!(o.seed, 9);
        assert!(o.flows < 500);
    }

    #[test]
    fn explicit_flows_override_quick() {
        let o = parse("--quick --flows 42");
        assert_eq!(o.flows, 42);
    }

    #[test]
    fn loads_parse() {
        let o = parse("--loads 0.2,0.5,0.9");
        assert_eq!(o.loads, vec![0.2, 0.5, 0.9]);
    }

    #[test]
    fn jobs_parse_and_survive_quick() {
        assert!(parse("").jobs >= 1, "default jobs must be positive");
        assert_eq!(parse("--jobs 3").jobs, 3);
        assert_eq!(parse("--jobs 3 --quick").jobs, 3, "--quick keeps --jobs");
    }

    #[test]
    #[should_panic(expected = "--jobs must be positive")]
    fn zero_jobs_rejected() {
        parse("--jobs 0");
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_rejected() {
        parse("--bogus");
    }
}
