//! Figure 2: limits of arbitration — PDQ vs DCTCP AFCT on the intra-rack
//! workload (flow-switching overhead shows at high load).

use workloads::{Scenario, Scheme};

use super::common::{afct, loads_pct, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 2.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::medium_intra_rack(opts.flows);
    let mut fig = FigResult::new(
        "fig02",
        "Arbitration alone: PDQ vs DCTCP (AFCT)",
        "load(%)",
        "AFCT (ms)",
        loads_pct(&opts.loads),
    );
    sweep_into(
        &mut fig,
        &[("PDQ", Scheme::Pdq), ("DCTCP", Scheme::Dctcp)],
        scenario,
        opts,
        afct,
    );
    let first = 0;
    let last = fig.xs.len() - 1;
    let pdq = fig.series_named("PDQ").unwrap().ys.clone();
    let dctcp = fig.series_named("DCTCP").unwrap().ys.clone();
    fig.note(format!(
        "paper shape: PDQ wins at low load (measured {:.2} vs {:.2} ms), degrades toward/past DCTCP at high load (measured {:.2} vs {:.2} ms)",
        pdq[first], dctcp[first], pdq[last], dctcp[last]
    ));
    fig
}
