//! Shared helpers for figure modules.

use workloads::{RunMetrics, RunSpec, Scenario, Scheme};

use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Run `scheme` over `loads` on `scenario`, extracting one y per load.
pub fn load_sweep(
    scheme: Scheme,
    scenario: Scenario,
    loads: &[f64],
    seed: u64,
    metric: impl Fn(&RunMetrics) -> f64,
) -> Vec<f64> {
    loads
        .iter()
        .map(|&load| metric(&RunSpec::new(scheme, scenario, load, seed).run()))
        .collect()
}

/// Sweep several `(label, scheme)` pairs into a figure. The figure's x
/// axis is load-in-percent; `opts.loads` supplies the fractions.
pub fn sweep_into(
    fig: &mut FigResult,
    entries: &[(&str, Scheme)],
    scenario: Scenario,
    opts: &ExpOpts,
    metric: impl Fn(&RunMetrics) -> f64 + Copy,
) {
    debug_assert_eq!(fig.xs.len(), opts.loads.len());
    for &(label, scheme) in entries {
        let ys = load_sweep(scheme, scenario, &opts.loads, opts.seed, metric);
        fig.push_series(label, ys);
    }
}

/// AFCT in milliseconds.
pub fn afct(m: &RunMetrics) -> f64 {
    m.afct_ms
}

/// 99th-percentile FCT in milliseconds.
pub fn p99(m: &RunMetrics) -> f64 {
    m.p99_ms
}

/// Application throughput (fraction of deadlines met).
pub fn app_throughput(m: &RunMetrics) -> f64 {
    m.app_throughput.unwrap_or(f64::NAN)
}

/// Loss rate in percent.
pub fn loss_pct(m: &RunMetrics) -> f64 {
    m.loss_rate * 100.0
}

/// Loads as percentages for the x axis (the paper plots "Offered load (%)").
pub fn loads_pct(loads: &[f64]) -> Vec<f64> {
    loads.iter().map(|l| l * 100.0).collect()
}

/// Percentiles used for tabular CDF figures.
pub const CDF_PERCENTILES: [f64; 9] = [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.5, 100.0];

/// Extract the tabular CDF (FCT at each of [`CDF_PERCENTILES`]).
pub fn cdf_row(m: &RunMetrics) -> Vec<f64> {
    CDF_PERCENTILES
        .iter()
        .map(|&p| workloads::percentile(&m.fcts_ms, p))
        .collect()
}

/// Percent improvement of `better` over `base` (positive = better is
/// smaller).
pub fn improvement_pct(base: f64, better: f64) -> f64 {
    if base <= 0.0 || !base.is_finite() {
        return f64::NAN;
    }
    (base - better) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_pct_signs() {
        assert!((improvement_pct(4.0, 2.0) - 50.0).abs() < 1e-12);
        assert!((improvement_pct(2.0, 4.0) + 100.0).abs() < 1e-12);
        assert_eq!(improvement_pct(2.0, 2.0), 0.0);
        assert!(improvement_pct(0.0, 1.0).is_nan());
        assert!(improvement_pct(f64::NAN, 1.0).is_nan());
    }

    #[test]
    fn loads_pct_scales() {
        assert_eq!(loads_pct(&[0.1, 0.95]), vec![10.0, 95.0]);
    }

    #[test]
    fn cdf_percentiles_are_sorted_unique() {
        let mut sorted = CDF_PERCENTILES.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, CDF_PERCENTILES.to_vec());
        assert_eq!(*CDF_PERCENTILES.last().unwrap(), 100.0);
    }
}
