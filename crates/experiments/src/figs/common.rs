//! Shared helpers for figure modules.
//!
//! Every figure expresses its cases as a flat [`CasePlan`] and executes
//! it through `workloads::exec` ([`sweep_grid`] for (scheme, load)
//! grids); no figure module hand-rolls case iteration. Results come
//! back ordered by case index, so figure output is byte-identical at
//! any `--jobs` value.

use netsim::sim::RunOutcome;
use workloads::{run_specs, CasePlan, RunMetrics, RunSpec, Scenario, Scheme};

use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Run a `(label, scheme)` × `loads` grid on `scenario` through the
/// parallel engine, returning one row of [`RunMetrics`] per entry
/// (row order = entry order, column order = load order).
pub fn sweep_grid(
    entries: &[(&str, Scheme)],
    scenario: Scenario,
    loads: &[f64],
    opts: &ExpOpts,
) -> Vec<Vec<RunMetrics>> {
    let plan = CasePlan::new(
        entries
            .iter()
            .flat_map(|&(_, scheme)| {
                loads
                    .iter()
                    .map(move |&load| RunSpec::new(scheme, scenario, load, opts.seed))
            })
            .collect::<Vec<_>>(),
    );
    let mut flat = run_specs(plan.cases(), opts.jobs).into_iter();
    entries
        .iter()
        .map(|_| {
            loads
                .iter()
                .map(|_| flat.next().expect("full grid"))
                .collect()
        })
        .collect()
}

/// Run `scheme` over `loads` on `scenario`, extracting one y per load.
pub fn load_sweep(
    scheme: Scheme,
    scenario: Scenario,
    loads: &[f64],
    opts: &ExpOpts,
    metric: impl Fn(&RunMetrics) -> f64,
) -> Vec<f64> {
    let row = sweep_grid(&[("", scheme)], scenario, loads, opts)
        .pop()
        .expect("one row");
    row.iter().map(metric).collect()
}

/// Append a note for every truncated cell in a row, so a sweep never
/// silently averages a run the backstop cut short.
pub fn note_backstops(fig: &mut FigResult, label: &str, loads: &[f64], row: &[RunMetrics]) {
    for (&load, m) in loads.iter().zip(row) {
        if m.outcome != RunOutcome::MeasuredComplete {
            fig.note(format!(
                "WARNING: {label} at load {load:.2} hit the run backstop ({:?}): only {}/{} \
                 measured flows finished; its cells are computed from a truncated population",
                m.outcome, m.n_completed, m.n_flows
            ));
        }
    }
}

/// Sweep several `(label, scheme)` pairs into a figure. The figure's x
/// axis is load-in-percent; `opts.loads` supplies the fractions.
pub fn sweep_into(
    fig: &mut FigResult,
    entries: &[(&str, Scheme)],
    scenario: Scenario,
    opts: &ExpOpts,
    metric: impl Fn(&RunMetrics) -> f64 + Copy,
) {
    debug_assert_eq!(fig.xs.len(), opts.loads.len());
    let rows = sweep_grid(entries, scenario, &opts.loads, opts);
    for (&(label, _), row) in entries.iter().zip(&rows) {
        fig.push_series(label, row.iter().map(metric).collect());
        note_backstops(fig, label, &opts.loads, row);
    }
}

/// Run each `(label, scheme)` once at `load` and tabulate its FCT CDF
/// (one series per entry, x = [`CDF_PERCENTILES`]).
pub fn cdf_sweep_into(
    fig: &mut FigResult,
    entries: &[(&str, Scheme)],
    scenario: Scenario,
    load: f64,
    opts: &ExpOpts,
) {
    let rows = sweep_grid(entries, scenario, &[load], opts);
    for (&(label, _), row) in entries.iter().zip(&rows) {
        fig.push_series(label, cdf_row(&row[0]));
        note_backstops(fig, label, &[load], row);
    }
}

/// AFCT in milliseconds.
pub fn afct(m: &RunMetrics) -> f64 {
    m.afct_ms
}

/// 99th-percentile FCT in milliseconds.
pub fn p99(m: &RunMetrics) -> f64 {
    m.p99_ms
}

/// Application throughput (fraction of deadlines met).
pub fn app_throughput(m: &RunMetrics) -> f64 {
    m.app_throughput.unwrap_or(f64::NAN)
}

/// Loss rate in percent.
pub fn loss_pct(m: &RunMetrics) -> f64 {
    m.loss_rate * 100.0
}

/// Loads as percentages for the x axis (the paper plots "Offered load (%)").
pub fn loads_pct(loads: &[f64]) -> Vec<f64> {
    loads.iter().map(|l| l * 100.0).collect()
}

/// Percentiles used for tabular CDF figures.
pub const CDF_PERCENTILES: [f64; 9] = [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.5, 100.0];

/// Extract the tabular CDF (FCT at each of [`CDF_PERCENTILES`]).
pub fn cdf_row(m: &RunMetrics) -> Vec<f64> {
    CDF_PERCENTILES
        .iter()
        .map(|&p| workloads::percentile(&m.fcts_ms, p))
        .collect()
}

/// Percent improvement of `better` over `base` (positive = better is
/// smaller).
pub fn improvement_pct(base: f64, better: f64) -> f64 {
    if base <= 0.0 || !base.is_finite() {
        return f64::NAN;
    }
    (base - better) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_pct_signs() {
        assert!((improvement_pct(4.0, 2.0) - 50.0).abs() < 1e-12);
        assert!((improvement_pct(2.0, 4.0) + 100.0).abs() < 1e-12);
        assert_eq!(improvement_pct(2.0, 2.0), 0.0);
        assert!(improvement_pct(0.0, 1.0).is_nan());
        assert!(improvement_pct(f64::NAN, 1.0).is_nan());
    }

    #[test]
    fn loads_pct_scales() {
        assert_eq!(loads_pct(&[0.1, 0.95]), vec![10.0, 95.0]);
    }

    #[test]
    fn cdf_percentiles_are_sorted_unique() {
        let mut sorted = CDF_PERCENTILES.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, CDF_PERCENTILES.to_vec());
        assert_eq!(*CDF_PERCENTILES.last().unwrap(), 100.0);
    }

    #[test]
    fn sweep_grid_rows_line_up_with_entries() {
        let opts = ExpOpts {
            flows: 20,
            hosts_per_rack: 4,
            quick: true,
            jobs: 2,
            ..ExpOpts::quick()
        };
        let scenario = workloads::Scenario::all_to_all_intra(5, opts.flows);
        let rows = sweep_grid(
            &[("DCTCP", Scheme::Dctcp), ("TCP", Scheme::Tcp)],
            scenario,
            &[0.3, 0.6],
            &opts,
        );
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.len() == 2));
        // Row 0 really is DCTCP at loads [0.3, 0.6]: spot-check against a
        // direct sequential run.
        let direct = RunSpec::new(Scheme::Dctcp, scenario, 0.6, opts.seed).run();
        assert_eq!(rows[0][1].fcts_ms, direct.fcts_ms);
    }

    #[test]
    fn truncated_cells_are_noted() {
        let mut fig = FigResult::new("t", "t", "x", "y", vec![30.0]);
        let opts = ExpOpts {
            flows: 10,
            jobs: 1,
            ..ExpOpts::quick()
        };
        let scenario = workloads::Scenario::all_to_all_intra(5, opts.flows);
        // Forge a truncated row by running with a zero backstop.
        let spec = RunSpec {
            backstop_s: 0,
            ..RunSpec::new(Scheme::Dctcp, scenario, 0.3, opts.seed)
        };
        let row = vec![spec.run()];
        note_backstops(&mut fig, "DCTCP", &[0.3], &row);
        assert_eq!(fig.notes.len(), 1);
        assert!(fig.notes[0].contains("backstop"), "{}", fig.notes[0]);
    }
}
