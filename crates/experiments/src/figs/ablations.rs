//! Ablations beyond the paper's figures: sensitivity of PASE to its own
//! design knobs (DESIGN.md §10). Three sweeps at a fixed high load on the
//! left-right scenario:
//!
//! * **pruning depth** — how many top queues climb the hierarchy
//!   (paper §3.1.2 argues top-2 is the sweet spot);
//! * **arbitration refresh period** — staleness vs control overhead;
//! * **heavy-tailed workload** — PASE vs DCTCP vs pFabric on a
//!   web-search-like size mix (intro motivation).

use workloads::{Scenario, Scheme};

use super::common::{improvement_pct, sweep_grid, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Load at which the knob sweeps run.
const ABLATION_LOAD: f64 = 0.7;

/// Pruning-depth sweep: AFCT and control packets for depth 1, 2, 3 and
/// pruning disabled. Delegation is switched off so requests actually
/// climb the hierarchy — with delegation on, nothing passes the ToR and
/// pruning has almost nothing to prune.
pub fn prune_depth(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let mut base = Scheme::pase_config_for(&scenario.topo);
    base.delegation = false;
    let mut fig = FigResult::new(
        "ablation_prune",
        "Early-pruning depth at 70% load (left-right)",
        "prune depth",
        "AFCT (ms) / ctrl packets",
        vec![1.0, 2.0, 3.0, f64::INFINITY],
    );
    let entries: Vec<(&str, Scheme)> = [
        ("depth 1", Some(1u8)),
        ("depth 2", Some(2)),
        ("depth 3", Some(3)),
        ("no pruning", None),
    ]
    .map(|(label, depth)| {
        let mut cfg = base;
        match depth {
            Some(d) => {
                cfg.early_pruning = true;
                cfg.prune_depth = d;
            }
            None => cfg.early_pruning = false,
        }
        (label, Scheme::PaseWith(cfg))
    })
    .to_vec();
    let rows = sweep_grid(&entries, scenario, &[ABLATION_LOAD], opts);
    let afcts: Vec<f64> = rows.iter().map(|r| r[0].afct_ms).collect();
    let ctrls: Vec<f64> = rows.iter().map(|r| r[0].ctrl_pkts as f64).collect();
    fig.push_series("AFCT(ms)", afcts.clone());
    fig.push_series("ctrl pkts", ctrls.clone());
    fig.note(format!(
        "depth-2 AFCT is within {:.1}% of unpruned; pruning saves little on this scenario \
         because the *lower*-level links (host and ToR uplinks) are far from saturated, so \
         flows are almost never mapped outside the top queues before the request climbs — \
         the Fig. 11b overhead reduction comes mostly from delegation",
        improvement_pct(afcts[3], afcts[1]).abs(),
    ));
    fig
}

/// Refresh-period sweep: multiples of the base RTT.
pub fn refresh_period(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let base = Scheme::pase_config_for(&scenario.topo);
    let multiples = [0.5, 1.0, 2.0, 4.0, 8.0];
    let mut fig = FigResult::new(
        "ablation_refresh",
        "Arbitration refresh period at 70% load (left-right)",
        "refresh (x base RTT)",
        "AFCT (ms) / ctrl packets",
        multiples.to_vec(),
    );
    let labels: Vec<String> = multiples.iter().map(|m| format!("{m}x RTT")).collect();
    let entries: Vec<(&str, Scheme)> = multiples
        .iter()
        .zip(&labels)
        .map(|(&m, label)| {
            let mut cfg = base;
            cfg.arb_refresh = base.base_rtt.mul_f64(m);
            cfg.arb_expiry = cfg.arb_refresh.saturating_mul(4);
            (label.as_str(), Scheme::PaseWith(cfg))
        })
        .collect();
    let rows = sweep_grid(&entries, scenario, &[ABLATION_LOAD], opts);
    fig.push_series("AFCT(ms)", rows.iter().map(|r| r[0].afct_ms).collect());
    fig.push_series(
        "ctrl pkts",
        rows.iter().map(|r| r[0].ctrl_pkts as f64).collect(),
    );
    fig.note("staler arbitration trades AFCT for control overhead; one RTT is the paper's operating point");
    fig
}

/// Heavy-tailed workload (extension): PASE vs DCTCP vs pFabric.
pub fn websearch(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::websearch_left_right(opts.hosts_per_rack, opts.flows);
    let loads = if opts.quick {
        vec![0.5]
    } else {
        vec![0.3, 0.5, 0.7]
    };
    let mut fig = FigResult::new(
        "ext_websearch",
        "Heavy-tailed (web-search-like) sizes: AFCT (left-right)",
        "load(%)",
        "AFCT (ms)",
        loads.iter().map(|l| l * 100.0).collect(),
    );
    let opts_at = ExpOpts {
        loads: loads.clone(),
        ..opts.clone()
    };
    sweep_into(
        &mut fig,
        &[
            ("PASE", Scheme::Pase),
            ("DCTCP", Scheme::Dctcp),
            ("pFabric", Scheme::PFabric),
        ],
        scenario,
        &opts_at,
        super::common::afct,
    );
    fig.note("with a long tail, SRPT-style scheduling helps even more: most flows are short and jump the few elephants");
    fig
}

/// All ablations, in order.
pub fn run(opts: &ExpOpts) -> Vec<FigResult> {
    vec![prune_depth(opts), refresh_period(opts), websearch(opts)]
}
