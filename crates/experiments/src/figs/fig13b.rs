//! Figure 13b: the testbed experiment (9 clients -> 1 server, 1 Gbps,
//! 250 us RTT, U(100..500) KB) — PASE vs DCTCP, AFCT.
//!
//! The paper ran this on a Linux kernel implementation; here the same
//! scenario runs on the simulator (the paper itself reports that the
//! testbed "matches the results we observed in ns2 simulations").

use workloads::{Scenario, Scheme};

use super::common::{afct, improvement_pct, loads_pct, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 13b.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::testbed(opts.flows);
    let mut fig = FigResult::new(
        "fig13b",
        "Testbed-like incast: PASE vs DCTCP (AFCT)",
        "load(%)",
        "AFCT (ms)",
        loads_pct(&opts.loads),
    );
    sweep_into(
        &mut fig,
        &[("PASE", Scheme::Pase), ("DCTCP", Scheme::Dctcp)],
        scenario,
        opts,
        afct,
    );
    let pase = fig.series_named("PASE").unwrap().ys.clone();
    let dctcp = fig.series_named("DCTCP").unwrap().ys.clone();
    let mid = fig.xs.len() / 2;
    fig.note(format!(
        "paper shape: PASE ~50-60% lower AFCT than DCTCP; measured mid-load improvement {:.0}%",
        improvement_pct(dctcp[mid], pase[mid])
    ));
    fig
}
