//! Figure 9b: distribution of FCTs at 70% load on the left-right scenario
//! (the paper plots a CDF; we tabulate FCT at fixed percentiles).

use workloads::{Scenario, Scheme};

use super::common::{cdf_sweep_into, CDF_PERCENTILES};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Load at which the paper draws the CDF.
pub const CDF_LOAD: f64 = 0.7;

/// Regenerate Figure 9b.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let mut fig = FigResult::new(
        "fig09b",
        "FCT distribution at 70% load (left-right)",
        "percentile",
        "FCT (ms)",
        CDF_PERCENTILES.to_vec(),
    );
    cdf_sweep_into(
        &mut fig,
        &[
            ("PASE", Scheme::Pase),
            ("L2DCT", Scheme::L2dct),
            ("DCTCP", Scheme::Dctcp),
        ],
        scenario,
        CDF_LOAD,
        opts,
    );
    fig.note("paper shape: PASE's distribution dominates (better FCT at almost every percentile)");
    fig
}
