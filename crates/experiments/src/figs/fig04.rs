//! Figure 4: pFabric loss rate vs load on the intra-rack worker →
//! aggregator workload (U(2..198) KB).

use workloads::{Scenario, Scheme};

use super::common::{loads_pct, loss_pct, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 4.
pub fn run(opts: &ExpOpts) -> FigResult {
    let hosts = if opts.quick { 8 } else { 20 };
    let scenario = Scenario::all_to_all_intra(hosts, opts.flows);
    // The paper sweeps up to 95% here.
    let mut loads = opts.loads.clone();
    if !opts.quick && loads.last().is_some_and(|&l| l <= 0.9) {
        loads.push(0.95);
    }
    let mut fig = FigResult::new(
        "fig04",
        "pFabric loss rate under all-to-all load",
        "load(%)",
        "data packet loss rate (%)",
        loads_pct(&loads),
    );
    let opts2 = ExpOpts {
        loads,
        ..opts.clone()
    };
    sweep_into(
        &mut fig,
        &[("pFabric", Scheme::PFabric)],
        scenario,
        &opts2,
        loss_pct,
    );
    let ys = &fig.series[0].ys;
    fig.note(format!(
        "paper shape: loss rate shoots up with load (paper: >40% at 80%); measured {:.1}% at the lowest vs {:.1}% at the highest load",
        ys[0],
        ys[ys.len() - 1]
    ));
    fig
}
