//! §4.3.2 micro-benchmark: the benefit of bottom-queue probing at high
//! load on the all-to-all intra-rack scenario (paper: ~2.4% at 80% load,
//! ~11% at 90%).

use workloads::{Scenario, Scheme};

use super::common::{improvement_pct, loads_pct, sweep_grid};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate the probing micro-benchmark.
pub fn run(opts: &ExpOpts) -> FigResult {
    let hosts = if opts.quick { 8 } else { 20 };
    let scenario = Scenario::all_to_all_intra(hosts, opts.flows);
    let cfg = Scheme::pase_config_for(&scenario.topo);
    let mut cfg_off = cfg;
    cfg_off.probe_bottom_queue = false;
    cfg_off.probe_on_timeout = false;
    let loads = if opts.quick {
        vec![0.8]
    } else {
        vec![0.8, 0.9]
    };
    let mut fig = FigResult::new(
        "micro_probing",
        "Probing for lowest-queue flows: AFCT with probing on/off",
        "load(%)",
        "AFCT (ms)",
        loads_pct(&loads),
    );
    let rows = sweep_grid(
        &[
            ("probing ON", Scheme::PaseWith(cfg)),
            ("probing OFF", Scheme::PaseWith(cfg_off)),
        ],
        scenario,
        &loads,
        opts,
    );
    let on: Vec<f64> = rows[0].iter().map(|m| m.afct_ms).collect();
    let off: Vec<f64> = rows[1].iter().map(|m| m.afct_ms).collect();
    fig.push_series("probing ON", on.clone());
    fig.push_series("probing OFF", off.clone());
    fig.push_series(
        "improvement(%)",
        off.iter()
            .zip(&on)
            .map(|(&o, &n)| improvement_pct(o, n))
            .collect(),
    );
    fig.note("paper: probing improves AFCT ~2.4% at 80% load and ~11% at 90%");
    fig
}
