//! Figure 11: what the control-plane optimizations (early pruning +
//! delegation) buy — AFCT improvement (a) and overhead reduction (b) on
//! the left-right scenario.

use workloads::{Scenario, Scheme};

use super::common::{improvement_pct, loads_pct, sweep_grid};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figures 11a and 11b (returned in that order).
pub fn run(opts: &ExpOpts) -> Vec<FigResult> {
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let base_cfg = Scheme::pase_config_for(&scenario.topo);
    let rows = sweep_grid(
        &[
            ("optimizations ON", Scheme::PaseWith(base_cfg)),
            (
                "optimizations OFF",
                Scheme::PaseWith(base_cfg.without_optimizations()),
            ),
        ],
        scenario,
        &opts.loads,
        opts,
    );
    let afct_on: Vec<f64> = rows[0].iter().map(|m| m.afct_ms).collect();
    let ctrl_on: Vec<f64> = rows[0].iter().map(|m| m.ctrl_pkts as f64).collect();
    let afct_off: Vec<f64> = rows[1].iter().map(|m| m.afct_ms).collect();
    let ctrl_off: Vec<f64> = rows[1].iter().map(|m| m.ctrl_pkts as f64).collect();
    let mut fig_a = FigResult::new(
        "fig11a",
        "AFCT improvement from early pruning + delegation",
        "load(%)",
        "AFCT improvement (%)",
        loads_pct(&opts.loads),
    );
    fig_a.push_series(
        "improvement",
        afct_off
            .iter()
            .zip(&afct_on)
            .map(|(&off, &on)| improvement_pct(off, on))
            .collect(),
    );
    fig_a.note(
        "paper: optimizations improve AFCT ~4-10% (their flows wait for arbitration, so \
         delegation removes setup latency). Our flows start on local information and \
         refine (see PaseConfig::wait_for_initial_arb), so the AFCT effect is near zero \
         and can dip slightly negative: the virtual-slice rigidity costs a little accuracy.",
    );

    let mut fig_b = FigResult::new(
        "fig11b",
        "Control-overhead reduction from early pruning + delegation",
        "load(%)",
        "control packets saved (%)",
        loads_pct(&opts.loads),
    );
    fig_b.push_series(
        "reduction",
        ctrl_off
            .iter()
            .zip(&ctrl_on)
            .map(|(&off, &on)| improvement_pct(off, on))
            .collect(),
    );
    fig_b.note("paper shape: up to ~50% fewer arbitration messages, growing with load");
    vec![fig_a, fig_b]
}
