//! Extension: AFCT under a gray failure, health-aware routing on vs off.
//!
//! A gray failure is a link that stays "up" while silently misbehaving:
//! it loses a few percent of packets, corrupts payloads (discarded at
//! the receiver's checksum) and inflates latency. On an ECMP fabric the
//! hash keeps spraying flows onto it, so the victims pay repeated RTOs
//! while every sibling path sits healthy. This experiment degrades one
//! spine uplink of the first leaf on the small leaf–spine fabric and
//! compares PASE, pFabric and DCTCP AFCT with the switch's EWMA
//! port-health rerouting off (hash is blind) and on (degraded siblings
//! are shunned while a healthy equal-cost port exists).

use netsim::prelude::*;
use workloads::{collect, CasePlan, RunMetrics, Scenario, Scheme};

use crate::opts::ExpOpts;
use crate::report::FigResult;

/// One gray-failure case: when the degrade starts and heals, what it
/// does to the link, and whether switches may route around it.
#[derive(Debug, Clone, Copy)]
struct GrayCase {
    from: SimTime,
    until: SimTime,
    profile: DegradeProfile,
    health_aware: bool,
}

/// One run: build the scheme on the leaf–spine scenario, degrade the
/// highest-id spine uplink of the first leaf, run to completion.
///
/// The *highest*-id spine is deliberate: PASE's control plane treats the
/// lowest-id spine as each leaf's arbitration parent, so degrading the
/// other one isolates the data-path effect for every scheme (the PASE
/// degraded-channel watchdog is exercised separately in `pase`'s tests).
fn run_gray(
    scheme: Scheme,
    scenario: &Scenario,
    load: f64,
    seed: u64,
    gray: Option<GrayCase>,
) -> RunMetrics {
    let (mut sim, hosts) = scheme.build_sim(&scenario.topo);
    if let Some(g) = gray {
        if g.health_aware {
            sim.enable_health_aware_routing();
        }
        let leaf = sim.topo().host_tor(hosts[0]);
        let all_hosts = sim.topo().hosts();
        let spine = sim
            .topo()
            .neighbors(leaf)
            .into_iter()
            .map(|(_, peer, _, _)| peer)
            .filter(|peer| !all_hosts.contains(peer))
            .max()
            .expect("leaf must have spine uplinks");
        sim.inject_faults(
            &FaultPlan::new()
                .link_degrade(g.from, leaf, spine, g.profile)
                .link_restore(g.until, leaf, spine),
        );
    }
    for spec in scenario.generate_flows(load, seed, &hosts) {
        sim.add_flow(spec);
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(120)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "{} must complete despite the degraded uplink",
        scheme.name()
    );
    collect(&sim, outcome)
}

/// Regenerate the gray-failure extension table: AFCT per load for each
/// scheme healthy, degraded with hash-blind ECMP, and degraded with
/// health-aware rerouting.
pub fn run(opts: &ExpOpts) -> FigResult {
    let loads: Vec<f64> = if opts.quick {
        vec![0.3, 0.6]
    } else {
        opts.loads.clone()
    };
    let scenario = Scenario::gray_leaf_spine(opts.hosts_per_rack, opts.flows);
    // The degrade covers the whole flow-arrival window: it starts before
    // the first measured arrival and heals long after the last, so every
    // flow hashed onto the sick uplink lives with it (a realistic gray
    // failure persists far longer than any one flow).
    let profile = DegradeProfile {
        seed: opts.seed ^ 0x9e37_79b9_7f4a_7c15,
        loss_ppm: 50_000,
        corrupt_ppm: 20_000,
        extra_delay_ns: 20_000,
        jitter_ns: 10_000,
    };
    let gray = |health_aware: bool| GrayCase {
        from: SimTime::from_micros(100),
        until: SimTime::from_secs(60),
        profile,
        health_aware,
    };

    let mut fig = FigResult::new(
        "ext_gray",
        "Gray failure: AFCT with one degraded spine uplink (5% loss, 2% corruption)",
        "load",
        "AFCT (ms)",
        loads.clone(),
    );
    let cases: [(&str, Scheme, Option<GrayCase>); 9] = [
        ("PASE", Scheme::Pase, None),
        ("PASE gray", Scheme::Pase, Some(gray(false))),
        ("PASE gray+HA", Scheme::Pase, Some(gray(true))),
        ("pFabric", Scheme::PFabric, None),
        ("pFabric gray", Scheme::PFabric, Some(gray(false))),
        ("pFabric gray+HA", Scheme::PFabric, Some(gray(true))),
        ("DCTCP", Scheme::Dctcp, None),
        ("DCTCP gray", Scheme::Dctcp, Some(gray(false))),
        ("DCTCP gray+HA", Scheme::Dctcp, Some(gray(true))),
    ];
    let plan = CasePlan::new(
        cases
            .iter()
            .flat_map(|&(_, scheme, g)| loads.iter().map(move |&load| (scheme, load, g)))
            .collect::<Vec<_>>(),
    );
    let afcts = plan.execute(opts.jobs, |&(scheme, load, g)| {
        run_gray(scheme, &scenario, load, opts.seed, g).afct_ms
    });
    for ((name, _, _), row) in cases.iter().zip(afcts.chunks(loads.len())) {
        fig.push_series(*name, row.to_vec());
    }

    // The headline delta: how much of the gray-failure AFCT penalty does
    // health-aware rerouting claw back, averaged over the load sweep?
    for chunk in cases.chunks(3) {
        let scheme = chunk[0].0;
        let healthy = fig.series_named(scheme).unwrap().ys.clone();
        let blind = fig
            .series_named(&format!("{scheme} gray"))
            .unwrap()
            .ys
            .clone();
        let aware = fig
            .series_named(&format!("{scheme} gray+HA"))
            .unwrap()
            .ys
            .clone();
        let mean = |ys: &[f64]| ys.iter().sum::<f64>() / ys.len() as f64;
        let (h, b, a) = (mean(&healthy), mean(&blind), mean(&aware));
        fig.note(format!(
            "{scheme}: mean AFCT {h:.3} ms healthy, {b:.3} ms degraded hash-blind, \
             {a:.3} ms with health-aware rerouting — rerouting recovers {:.0}% of the \
             gray-failure penalty",
            if b > h {
                100.0 * (b - a) / (b - h)
            } else {
                0.0
            }
        ));
    }
    fig.note(
        "one of the first leaf's two spine uplinks is degraded (5% loss, 2% payload \
         corruption, +20 us latency, 10 us jitter) across the whole arrival window; \
         the degraded spine is the non-parent one for PASE's control plane, so only \
         the data path is sick",
    );
    fig.note(
        "expected: every cell completes; hash-blind ECMP keeps half of the first \
         leaf's flows on the sick path and their RTO recovery dominates AFCT; with \
         health-aware rerouting the leaf's EWMA port health collapses within a few \
         drops and re-hashes those flows onto the healthy spine, so 'gray+HA' sits \
         near the healthy line (the residual gap is the reverse direction: ACKs from \
         remote leaves still hash across both spines and the spine has no sibling \
         for its one downlink to the leaf — degraded beats blackhole)",
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the experiment itself: the gray failure
    /// must hurt, and health-aware rerouting must claw back most of the
    /// penalty for every scheme.
    #[test]
    fn health_aware_rerouting_beats_hash_blind_ecmp() {
        let opts = ExpOpts {
            flows: 120,
            hosts_per_rack: 4,
            jobs: 2,
            ..ExpOpts::quick()
        };
        let fig = run(&opts);
        let mean = |name: &str| {
            let ys = &fig.series_named(name).expect(name).ys;
            ys.iter().sum::<f64>() / ys.len() as f64
        };
        for scheme in ["PASE", "pFabric", "DCTCP"] {
            let healthy = mean(scheme);
            let blind = mean(&format!("{scheme} gray"));
            let aware = mean(&format!("{scheme} gray+HA"));
            assert!(
                blind > healthy,
                "{scheme}: the gray failure must cost AFCT ({blind} vs {healthy})"
            );
            assert!(
                aware < healthy + (blind - healthy) / 2.0,
                "{scheme}: rerouting must recover most of the penalty \
                 (healthy {healthy}, blind {blind}, aware {aware})"
            );
        }
    }
}
