//! Extension: the classic incast microbenchmark.
//!
//! `N` synchronized senders each ship one 64 KB block to a single
//! receiver (a partition–aggregate response wave). We report the *incast
//! completion time* — when the last block lands — for each transport as
//! the fan-in grows. This is the stress case behind the paper's deadline
//! scenarios: shallow-queue designs (pFabric) shed bursts, loss-based
//! designs stall on timeouts, ECN/arbitration designs absorb the wave.

use netsim::prelude::*;
use workloads::{CasePlan, Scheme, TopologySpec};

use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Block size each sender contributes.
const BLOCK: u64 = 64_000;

/// One incast wave of `fan_in` senders; returns (completion ms, loss).
fn run_wave(scheme: Scheme, fan_in: usize) -> (f64, f64) {
    let topo = TopologySpec::intra_rack(fan_in + 1);
    let (mut sim, hosts) = scheme.build_sim(&topo);
    let receiver = hosts[fan_in];
    for (i, &h) in hosts.iter().take(fan_in).enumerate() {
        sim.add_flow(FlowSpec::new(
            FlowId(i as u64),
            h,
            receiver,
            BLOCK,
            SimTime::ZERO,
        ));
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete, "{}", scheme.name());
    let last_done = sim
        .stats()
        .flows()
        .map(|r| r.completed.expect("completed"))
        .max()
        .expect("flows exist");
    (last_done.as_millis_f64(), sim.stats().data_loss_rate())
}

/// Regenerate the incast extension table.
pub fn run(opts: &ExpOpts) -> FigResult {
    let fan_ins: Vec<usize> = if opts.quick {
        vec![4, 16]
    } else {
        vec![4, 8, 16, 32, 48]
    };
    let mut fig = FigResult::new(
        "ext_incast",
        "Incast: completion time of an N-to-1 synchronized wave (64 KB each)",
        "fan-in",
        "wave completion (ms)",
        fan_ins.iter().map(|&n| n as f64).collect(),
    );
    let schemes = [Scheme::Pase, Scheme::Dctcp, Scheme::PFabric, Scheme::Tcp];
    let plan = CasePlan::new(
        schemes
            .iter()
            .flat_map(|&scheme| fan_ins.iter().map(move |&n| (scheme, n)))
            .collect::<Vec<_>>(),
    );
    let waves = plan.execute(opts.jobs, |&(scheme, n)| run_wave(scheme, n));
    for (scheme, row) in schemes.iter().zip(waves.chunks(fan_ins.len())) {
        fig.push_series(scheme.name(), row.iter().map(|&(t, _)| t).collect());
        if *scheme == Scheme::PFabric || *scheme == Scheme::Tcp {
            fig.push_series(
                format!("{} loss(%)", scheme.name()),
                row.iter().map(|&(_, l)| l * 100.0).collect(),
            );
        }
    }
    // The ideal completion: N x 64KB + headers at 1 Gbps.
    let ideal: Vec<f64> = fan_ins
        .iter()
        .map(|&n| (n as u64 * BLOCK) as f64 * 8.0 * 1.0274 / 1e9 * 1e3)
        .collect();
    fig.push_series("ideal", ideal);
    fig.note(
        "expected: PASE/DCTCP track the ideal serialization time (ECN absorbs the wave); \
         TCP overshoots via loss + RTO; pFabric sheds bursts but recovers on its 1 ms RTO",
    );
    fig
}
