//! Figure 1: limits of self-adjusting endpoints — D2TCP and DCTCP vs
//! pFabric on the deadline workload (the D2TCP paper's experiment 4.1.3
//! replica: intra-rack, 20 machines, U(100..500) KB, deadlines U(5..25) ms).

use workloads::{Scenario, Scheme};

use super::common::{app_throughput, loads_pct, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 1.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::deadline_intra_rack(opts.flows);
    let mut fig = FigResult::new(
        "fig01",
        "Self-adjusting endpoints vs pFabric (application throughput)",
        "load(%)",
        "fraction of deadlines met",
        loads_pct(&opts.loads),
    );
    sweep_into(
        &mut fig,
        &[
            ("pFabric", Scheme::PFabric),
            ("D2TCP", Scheme::D2tcp),
            ("DCTCP", Scheme::Dctcp),
        ],
        scenario,
        opts,
        app_throughput,
    );
    shape_notes(&mut fig);
    fig
}

fn shape_notes(fig: &mut FigResult) {
    let last = fig.xs.len() - 1;
    let get = |name: &str| fig.series_named(name).map(|s| s.ys[last]);
    if let (Some(pf), Some(d2), Some(dc)) = (get("pFabric"), get("D2TCP"), get("DCTCP")) {
        fig.note(format!(
            "paper shape @highest load: pFabric >> D2TCP ~ DCTCP; measured {pf:.2} vs {d2:.2} vs {dc:.2}"
        ));
    }
}
