//! One module per regenerated figure.
//!
//! | Module | Paper figure | Content |
//! |---|---|---|
//! | [`fig01`] | Fig. 1 | D2TCP/DCTCP vs pFabric, application throughput |
//! | [`fig02`] | Fig. 2 | PDQ vs DCTCP, AFCT (flow-switching overhead) |
//! | [`fig03`] | Fig. 3 | toy multi-link example, per-flow FCTs |
//! | [`fig04`] | Fig. 4 | pFabric loss rate vs load |
//! | [`fig09a`] | Fig. 9a | PASE vs L2DCT vs DCTCP, AFCT, left-right |
//! | [`fig09b`] | Fig. 9b | FCT distribution at 70% load, left-right |
//! | [`fig09c`] | Fig. 9c | PASE vs D2TCP vs DCTCP, application throughput |
//! | [`fig10a`] | Fig. 10a | PASE vs pFabric, 99th-percentile FCT |
//! | [`fig10b`] | Fig. 10b | PASE vs pFabric FCT distribution at 70% |
//! | [`fig10c`] | Fig. 10c | PASE vs pFabric, AFCT, all-to-all intra-rack |
//! | [`fig11`] | Fig. 11 | arbitration optimizations: AFCT + overhead |
//! | [`fig12a`] | Fig. 12a | end-to-end vs local-only arbitration |
//! | [`fig12b`] | Fig. 12b | AFCT vs number of priority queues |
//! | [`fig13a`] | Fig. 13a | PASE vs PASE-DCTCP (reference rate) |
//! | [`fig13b`] | Fig. 13b | testbed-like: PASE vs DCTCP |
//! | [`micro_probing`] | §4.3.2 | probing on/off at high load |

pub mod ablations;
pub mod common;
pub mod ext_faults;
pub mod ext_gray;
pub mod ext_incast;
pub mod ext_overload;
pub mod ext_scale;

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig09a;
pub mod fig09b;
pub mod fig09c;
pub mod fig10a;
pub mod fig10b;
pub mod fig10c;
pub mod fig11;
pub mod fig12a;
pub mod fig12b;
pub mod fig13a;
pub mod fig13b;
pub mod micro_probing;

use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Run every figure (used by `run_all`). Returns them in paper order.
pub fn all(opts: &ExpOpts) -> Vec<FigResult> {
    let mut out = vec![
        fig01::run(opts),
        fig02::run(opts),
        fig03::run(opts),
        fig04::run(opts),
        fig09a::run(opts),
        fig09b::run(opts),
        fig09c::run(opts),
        fig10a::run(opts),
        fig10b::run(opts),
        fig10c::run(opts),
    ];
    out.extend(fig11::run(opts));
    out.push(fig12a::run(opts));
    out.push(fig12b::run(opts));
    out.push(fig13a::run(opts));
    out.push(fig13b::run(opts));
    out.push(micro_probing::run(opts));
    out.extend(ablations::run(opts));
    out.push(ext_incast::run(opts));
    out.push(ext_faults::run(opts));
    out.push(ext_faults::run_link_flap(opts));
    out.push(ext_gray::run(opts));
    out.push(ext_overload::run(opts));
    out.push(ext_scale::run(opts));
    out
}
