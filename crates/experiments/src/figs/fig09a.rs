//! Figure 9a: PASE vs the deployment-friendly schemes (L2DCT, DCTCP) —
//! AFCT on the left-right inter-rack scenario.

use workloads::{Scenario, Scheme};

use super::common::{afct, improvement_pct, loads_pct, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 9a.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let mut fig = FigResult::new(
        "fig09a",
        "PASE vs deployment-friendly transports (AFCT, left-right)",
        "load(%)",
        "AFCT (ms)",
        loads_pct(&opts.loads),
    );
    sweep_into(
        &mut fig,
        &[
            ("PASE", Scheme::Pase),
            ("L2DCT", Scheme::L2dct),
            ("DCTCP", Scheme::Dctcp),
        ],
        scenario,
        opts,
        afct,
    );
    let pase = fig.series_named("PASE").unwrap().ys.clone();
    let l2dct = fig.series_named("L2DCT").unwrap().ys.clone();
    let dctcp = fig.series_named("DCTCP").unwrap().ys.clone();
    let mid = fig.xs.len() / 2;
    fig.note(format!(
        "paper shape: PASE better than L2DCT by >=50% and DCTCP by >=70% across loads; measured at mid-load: {:.0}% vs L2DCT, {:.0}% vs DCTCP",
        improvement_pct(l2dct[mid], pase[mid]),
        improvement_pct(dctcp[mid], pase[mid]),
    ));
    fig
}
