//! Figure 12b: how many hardware priority queues does PASE need?
//! (3, 4, 6, 8 queues on the left-right scenario.)

use workloads::{Scenario, Scheme};

use super::common::{afct, loads_pct, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Queue counts swept (paper: 3/4/6/8).
pub const QUEUE_COUNTS: [u8; 4] = [3, 4, 6, 8];

/// Regenerate Figure 12b.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let base = Scheme::pase_config_for(&scenario.topo);
    let mut fig = FigResult::new(
        "fig12b",
        "PASE with a varying number of priority queues (AFCT, left-right)",
        "load(%)",
        "AFCT (ms)",
        loads_pct(&opts.loads),
    );
    let configs: Vec<(String, Scheme)> = QUEUE_COUNTS
        .iter()
        .map(|&n| {
            let mut cfg = base;
            cfg.n_queues = n;
            (format!("{n} Queues"), Scheme::PaseWith(cfg))
        })
        .collect();
    let entries: Vec<(&str, Scheme)> = configs
        .iter()
        .map(|(name, s)| (name.as_str(), *s))
        .collect();
    sweep_into(&mut fig, &entries, scenario, opts, afct);
    fig.note("paper shape: 4 queues already capture most of the benefit at >=70% load; beyond that, marginal");
    fig
}
