//! Extension: AFCT under a control-plane overload storm, load shedding
//! on vs off.
//!
//! An arbitration storm models a flash crowd hammering PASE's control
//! plane: every arbitrator's inbox charge is amplified while a burst of
//! short flows lands mid-window. With the shed policy on, overloaded
//! arbitrators drop stale refreshes first and answer everything else
//! with an explicit load-shed reply, so senders back off their refresh
//! cadence multiplicatively and the AFCT inflation stays bounded. With
//! it off (the pre-protection ablation) the bounded inbox tail-drops
//! silently — responses and `FlowDone` releases included — so leases
//! leak until expiry, watchdogs trip fleet-wide, and AFCT collapses to
//! the self-adjusting floor. DCTCP rides along as a control: it has no
//! control plane, so the storm only contributes its flash-crowd flows.

use netsim::prelude::*;
use netsim::rng::Rng;
use workloads::{collect, CasePlan, RunMetrics, Scenario, Scheme};

use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Inbox-charge amplification during the storm (the modelled crowd is
/// ~50× the simulated sender population).
const AMPLIFY: u32 = 48;

/// One case's control-plane ledger, for the notes.
#[derive(Debug, Clone, Copy, Default)]
struct CtrlLoad {
    processed: u64,
    shed: u64,
    bytes: u64,
    peak_depth: u64,
}

/// Deterministic flash crowd: three bursts of short flows at 25/50/75%
/// of the arrival window, drawn from a dedicated RNG stream.
fn flash_crowd(flows: &mut Vec<FlowSpec>, hosts: &[NodeId], seed: u64, quick: bool) {
    let window = flows
        .iter()
        .filter(|f| f.measured)
        .map(|f| f.start.as_nanos())
        .max()
        .unwrap_or(0);
    let burst = if quick { 8 } else { 16 };
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x0ad1);
    let n = hosts.len();
    for frac in [1u64, 2, 3] {
        let at = SimTime::from_nanos(window * frac / 4);
        for i in 0..burst {
            let src = rng.gen_index(n);
            let mut dst = rng.gen_index(n - 1);
            if dst >= src {
                dst += 1;
            }
            let size = rng.gen_range_inclusive(2_000, 20_000);
            let mut spec = FlowSpec::new(
                FlowId(flows.len() as u64),
                hosts[src],
                hosts[dst],
                size,
                at + SimDuration::from_micros(3 * i as u64),
            );
            // The crowd pressures the arbitrators and the fabric but is
            // not measured: every case's AFCT population is the same
            // base workload, so series differ only by the storm's
            // control-plane effect (plus the crowd's data contention).
            spec.measured = false;
            flows.push(spec);
        }
    }
}

/// One run: build the scheme on the leaf–spine scenario and, for storm
/// cases, storm every arbitrator (hosts and switches alike) in an
/// episode around each flash-crowd burst. Episodic — not permanent —
/// overload is the regime the shed policy is built for: during a burst
/// the protected arbitrators keep answering fresh requests and tell
/// everyone else to back off, then recover between bursts; a permanent
/// storm would just be a dead control plane, which the crash watchdog
/// already covers.
fn run_overload(
    scheme: Scheme,
    scenario: &Scenario,
    load: f64,
    seed: u64,
    storm: bool,
    quick: bool,
) -> (RunMetrics, CtrlLoad) {
    let (mut sim, hosts) = scheme.build_sim(&scenario.topo);
    let mut flows = scenario.generate_flows(load, seed, &hosts);
    if storm {
        let window = flows
            .iter()
            .filter(|f| f.measured)
            .map(|f| f.start.as_nanos())
            .max()
            .unwrap_or(0);
        let mut plan = FaultPlan::new();
        // One episode per burst, centred slightly after it: the crowd's
        // arbitration spike leads the inbox-charge wave. Episodes span
        // ~w/6 each and never overlap (bursts sit w/4 apart).
        for frac in [1u64, 2, 3] {
            let mid = window * frac / 4;
            let from = SimTime::from_nanos(mid.saturating_sub(window / 24).max(1_000));
            let until = SimTime::from_nanos(mid + window / 8);
            for sw in sim.topo().switches() {
                plan = plan
                    .ctrl_storm_start(from, sw, AMPLIFY)
                    .ctrl_storm_end(until, sw);
            }
            for &h in &hosts {
                plan = plan
                    .ctrl_storm_start(from, h, AMPLIFY)
                    .ctrl_storm_end(until, h);
            }
        }
        sim.inject_faults(&plan);
        flash_crowd(&mut flows, &hosts, seed, quick);
    }
    sim.add_flows(flows);
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(120)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "{} must complete despite the arbitration storm",
        scheme.name()
    );
    let ctrl = CtrlLoad {
        processed: sim.stats().ctrl_msgs_processed,
        shed: sim.stats().ctrl_msgs_shed,
        bytes: sim.stats().ctrl_bytes,
        peak_depth: sim
            .stats()
            .ctrl_peak_epoch_by_node()
            .map(|(_, d)| d)
            .max()
            .unwrap_or(0),
    };
    (collect(&sim, outcome), ctrl)
}

/// Regenerate the overload extension table: AFCT per load for PASE
/// healthy, stormed with shedding, stormed with the naive tail-drop
/// inbox, and DCTCP healthy/stormed as the no-control-plane control.
pub fn run(opts: &ExpOpts) -> FigResult {
    let loads: Vec<f64> = if opts.quick {
        vec![0.3, 0.6]
    } else {
        opts.loads.clone()
    };
    let scenario = Scenario::overload_leaf_spine(opts.hosts_per_rack, opts.flows);
    let pase = Scheme::PaseWith(Scheme::pase_config_for(&scenario.topo));
    let noshed = Scheme::PaseWith(Scheme::pase_config_for(&scenario.topo).without_shedding());

    let mut fig = FigResult::new(
        "ext_overload",
        "Control-plane overload: AFCT under an arbitration storm, shedding on vs off",
        "load",
        "AFCT (ms)",
        loads.clone(),
    );
    let cases: [(&str, Scheme, bool); 5] = [
        ("PASE", pase, false),
        ("PASE storm", pase, true),
        ("PASE storm noshed", noshed, true),
        ("DCTCP", Scheme::Dctcp, false),
        ("DCTCP storm", Scheme::Dctcp, true),
    ];
    let plan = CasePlan::new(
        cases
            .iter()
            .flat_map(|&(_, scheme, storm)| loads.iter().map(move |&load| (scheme, load, storm)))
            .collect::<Vec<_>>(),
    );
    let results = plan.execute(opts.jobs, |&(scheme, load, storm)| {
        let (m, ctrl) = run_overload(scheme, &scenario, load, opts.seed, storm, opts.quick);
        (m.afct_ms, ctrl)
    });
    for ((name, _, _), row) in cases.iter().zip(results.chunks(loads.len())) {
        fig.push_series(*name, row.iter().map(|(afct, _)| *afct).collect());
        let n = row.len() as u64;
        let sum = row
            .iter()
            .fold(CtrlLoad::default(), |acc, (_, c)| CtrlLoad {
                processed: acc.processed + c.processed,
                shed: acc.shed + c.shed,
                bytes: acc.bytes + c.bytes,
                peak_depth: acc.peak_depth.max(c.peak_depth),
            });
        fig.note(format!(
            "{name}: mean ctrl processed {} / shed {} per run, mean ctrl bytes {}, \
             peak weighted inbox depth {}",
            sum.processed / n,
            sum.shed / n,
            sum.bytes / n,
            sum.peak_depth
        ));
    }

    let mean = |name: &str| {
        let ys = &fig.series_named(name).expect(name).ys;
        ys.iter().sum::<f64>() / ys.len() as f64
    };
    let (healthy, shed, noshed_afct) =
        (mean("PASE"), mean("PASE storm"), mean("PASE storm noshed"));
    fig.note(format!(
        "PASE: mean AFCT {healthy:.3} ms healthy, {shed:.3} ms stormed with load \
         shedding, {noshed_afct:.3} ms stormed with the naive tail-drop inbox — \
         shedding keeps the overload penalty at {:.0}% of the unprotected one",
        if noshed_afct > healthy {
            100.0 * (shed - healthy).max(0.0) / (noshed_afct - healthy)
        } else {
            0.0
        }
    ));
    fig.note(format!(
        "three flash-crowd bursts of short flows land at 25/50/75% of the arrival \
         window; around each burst every arbitrator (hosts and switches) is stormed \
         at {AMPLIFY}x inbox charge for ~1/6 of the window, then recovers"
    ));
    fig.note(
        "expected: with shedding on, stale refreshes are shed first and every shed \
         request still draws a backpressure reply, so in-flight flows keep their \
         last allocation, stretch their refresh cadence, and ride out each burst; \
         with shedding off the bounded inbox silently tail-drops everything — \
         responses and FlowDone releases included — so each episode leaks leases, \
         silences every sender, and slams the fleet into cwnd-1 fallback while new \
         flows start blind; DCTCP has no control plane, so its storm series moves \
         only by the flash-crowd flows",
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar for the experiment itself: the storm must
    /// actually shed, shedding must beat the naive tail-drop inbox, and
    /// everything still completes (asserted inside each run).
    #[test]
    fn shedding_bounds_the_overload_penalty() {
        let opts = ExpOpts {
            flows: 120,
            hosts_per_rack: 4,
            jobs: 2,
            ..ExpOpts::quick()
        };
        let fig = run(&opts);
        let mean = |name: &str| {
            let ys = &fig.series_named(name).expect(name).ys;
            ys.iter().sum::<f64>() / ys.len() as f64
        };
        let (healthy, shed, noshed) = (mean("PASE"), mean("PASE storm"), mean("PASE storm noshed"));
        assert!(
            noshed > healthy,
            "the unprotected storm must cost AFCT ({noshed} vs {healthy})"
        );
        assert!(
            shed < noshed,
            "load shedding must beat the naive tail-drop inbox \
             (shed {shed}, noshed {noshed})"
        );
        let shed_note = fig
            .notes
            .iter()
            .find(|n| n.starts_with("PASE storm:"))
            .expect("ctrl-load note for the shedding storm case");
        assert!(
            !shed_note.contains("shed 0 "),
            "the stormed shedding case must actually shed: {shed_note}"
        );
    }
}
