//! Figure 10c: AFCT — PASE vs pFabric on the all-to-all intra-rack
//! scenario, with the paper's per-load improvement percentages.

use workloads::{Scenario, Scheme};

use super::common::{afct, improvement_pct, loads_pct, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 10c.
pub fn run(opts: &ExpOpts) -> FigResult {
    let hosts = if opts.quick { 8 } else { 20 };
    let scenario = Scenario::all_to_all_intra(hosts, opts.flows);
    let mut fig = FigResult::new(
        "fig10c",
        "AFCT: PASE vs pFabric (all-to-all intra-rack)",
        "load(%)",
        "AFCT (ms)",
        loads_pct(&opts.loads),
    );
    sweep_into(
        &mut fig,
        &[("PASE", Scheme::Pase), ("pFabric", Scheme::PFabric)],
        scenario,
        opts,
        afct,
    );
    let pase = fig.series_named("PASE").unwrap().ys.clone();
    let pf = fig.series_named("pFabric").unwrap().ys.clone();
    let imps: Vec<f64> = pase
        .iter()
        .zip(&pf)
        .map(|(&p, &f)| improvement_pct(f, p))
        .collect();
    fig.push_series("improvement(%)", imps);
    fig.note("paper shape: PASE lower AFCT across all loads, up to ~85% improvement at high load");
    fig
}
