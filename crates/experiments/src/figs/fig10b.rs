//! Figure 10b: FCT distribution at 70% load, PASE vs pFabric
//! (left-right scenario; tabulated CDF).

use workloads::{RunSpec, Scenario, Scheme};

use super::common::{cdf_row, CDF_PERCENTILES};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 10b.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let mut fig = FigResult::new(
        "fig10b",
        "FCT distribution at 70% load: PASE vs pFabric (left-right)",
        "percentile",
        "FCT (ms)",
        CDF_PERCENTILES.to_vec(),
    );
    for (label, scheme) in [("PASE", Scheme::Pase), ("pFabric", Scheme::PFabric)] {
        let m = RunSpec::new(scheme, scenario, super::fig09b::CDF_LOAD, opts.seed).run();
        fig.push_series(label, cdf_row(&m));
    }
    fig.note("paper shape: similar bodies; pFabric's tail inflates from persistent loss");
    fig
}
