//! Figure 10b: FCT distribution at 70% load, PASE vs pFabric
//! (left-right scenario; tabulated CDF).

use workloads::{Scenario, Scheme};

use super::common::{cdf_sweep_into, CDF_PERCENTILES};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 10b.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let mut fig = FigResult::new(
        "fig10b",
        "FCT distribution at 70% load: PASE vs pFabric (left-right)",
        "percentile",
        "FCT (ms)",
        CDF_PERCENTILES.to_vec(),
    );
    cdf_sweep_into(
        &mut fig,
        &[("PASE", Scheme::Pase), ("pFabric", Scheme::PFabric)],
        scenario,
        super::fig09b::CDF_LOAD,
        opts,
    );
    fig.note("paper shape: similar bodies; pFabric's tail inflates from persistent loss");
    fig
}
