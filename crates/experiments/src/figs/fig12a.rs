//! Figure 12a: end-to-end arbitration vs arbitration only at the
//! endpoints' own access links (left-right scenario).

use workloads::{Scenario, Scheme};

use super::common::{afct, improvement_pct, loads_pct, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 12a. Besides the paper's left-right scenario we also
/// report the all-to-all intra-rack variant: there the contention sits on
/// receiver downlinks that only the end-to-end (receiver-leg) arbitration
/// can see, which is the mechanism the paper's figure is about.
pub fn run(opts: &ExpOpts) -> FigResult {
    let lr = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let a2a = Scenario::all_to_all_intra(if opts.quick { 8 } else { 20 }, opts.flows);
    let cfg_lr = Scheme::pase_config_for(&lr.topo);
    let cfg_a2a = Scheme::pase_config_for(&a2a.topo);
    let mut fig = FigResult::new(
        "fig12a",
        "End-to-end vs local-only arbitration (AFCT)",
        "load(%)",
        "AFCT (ms)",
        loads_pct(&opts.loads),
    );
    sweep_into(
        &mut fig,
        &[("LR arb=ON", Scheme::PaseWith(cfg_lr))],
        lr,
        opts,
        afct,
    );
    sweep_into(
        &mut fig,
        &[("LR arb=OFF", Scheme::PaseWith(cfg_lr.local_only()))],
        lr,
        opts,
        afct,
    );
    sweep_into(
        &mut fig,
        &[("A2A arb=ON", Scheme::PaseWith(cfg_a2a))],
        a2a,
        opts,
        afct,
    );
    sweep_into(
        &mut fig,
        &[("A2A arb=OFF", Scheme::PaseWith(cfg_a2a.local_only()))],
        a2a,
        opts,
        afct,
    );
    let on = fig.series_named("A2A arb=ON").unwrap().ys.clone();
    let off = fig.series_named("A2A arb=OFF").unwrap().ys.clone();
    let last = fig.xs.len() - 1;
    fig.note(format!(
        "paper shape: end-to-end arbitration wins when contention is off the access links; measured on all-to-all at the highest load: {:.0}% better",
        improvement_pct(off[last], on[last])
    ));
    fig.note(
        "deviation: on our left-right runs local-only is slightly ahead — the 10 Gbps          bottleneck stays efficient under self-adjusting endpoints alone, and the control          plane's conservatism costs more than SRPT gains there; the receiver-side benefit          the paper describes shows on the all-to-all series",
    );
    fig
}
