//! Extension: the paper's scalability claim, exercised end to end.
//!
//! PASE's pitch is that explicit arbitration scales to production
//! fabrics because the control plane is hierarchical: ToR arbitrators
//! aggregate their rack's demands, early pruning keeps most requests
//! from ever climbing past the ToR, and delegation moves the
//! aggregation–core allocation down to the ToRs entirely. This
//! experiment runs the k-ary fat-tree at production scale (k = 16,
//! 1024 hosts, ≥100k flows in the full profile) and reports what the
//! three-tier hierarchy actually does:
//!
//! - headline: PASE vs DCTCP AFCT on the same fabric and workload, with
//!   invariants enabled and the PASE run executed twice under the
//!   dual-run byte-identical-trace discipline (a [`HashTracer`] digest
//!   per run, asserted equal — the scale refactor must not cost
//!   determinism);
//! - per-tier control-plane load: arbitration messages processed per
//!   second per arbitrator at the ToR, aggregation and core tiers;
//! - pruning effectiveness vs `prune_depth`: the fraction of
//!   cross-core requests a ToR arbitrator answers locally instead of
//!   forwarding, swept over the pruning depth with delegation disabled
//!   (delegation subsumes pruning for aggregation–core requests, so the
//!   sweep isolates the pruning knob the paper's §3.1.2 tunes).
//!
//! Metrics for the big runs stream through the GK quantile sketch
//! ([`MetricsMode::Sketch`]) so the collector stays O(active flows) —
//! exactly the path the scale refactor added.

use netsim::prelude::*;
use netsim::topology::NodeKind;
use netsim::trace::HashTracer;
use pase::tree::{Level, TreeInfo};
use workloads::{
    collect_with, CasePlan, MetricsMode, Pattern, RunMetrics, Scenario, Scheme, SizeDist,
    TopologySpec,
};

use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Offered load on each host's access link.
const LOAD: f64 = 0.6;

/// Per-tier arbitration load: processed messages and arbitrator count.
#[derive(Debug, Clone, Copy, Default)]
struct TierLoad {
    msgs: [u64; 3],
    arbs: [u64; 3],
}

impl TierLoad {
    fn tier(level: Level) -> usize {
        match level {
            Level::Tor => 0,
            Level::Agg => 1,
            Level::Core => 2,
        }
    }

    /// Group the per-arbitrator processed tallies by tree tier. Host
    /// arbitrators are excluded: the tiers under test are the switch
    /// hierarchy (ToR → agg → core).
    fn measure(sim: &Simulation) -> TierLoad {
        let tree = TreeInfo::from_topology(sim.topo());
        let mut out = TierLoad::default();
        for sw in sim.topo().switches() {
            out.arbs[Self::tier(tree.level(sw))] += 1;
        }
        for (node, n) in sim.stats().ctrl_processed_by_node() {
            if sim.topo().kind(node) == NodeKind::Switch {
                out.msgs[Self::tier(tree.level(node))] += n;
            }
        }
        out
    }

    /// Mean messages per second per arbitrator in one tier.
    fn per_arb_per_sec(&self, tier: usize, secs: f64) -> f64 {
        if self.arbs[tier] == 0 || secs <= 0.0 {
            return 0.0;
        }
        self.msgs[tier] as f64 / self.arbs[tier] as f64 / secs
    }
}

/// What one run produced, beyond its flow metrics.
struct RunOut {
    metrics: RunMetrics,
    tiers: TierLoad,
    /// Simulated seconds actually elapsed (denominator for msgs/sec).
    sim_secs: f64,
    /// Total requests answered locally by pruning / forwarded upward.
    pruned: u64,
    climbed: u64,
    /// Trace digest, when a tracer was installed.
    digest: Option<u64>,
}

/// The scale workload: all-to-all on the k-ary fat-tree, the paper's
/// uniform inter-rack mix at production scale.
fn scale_scenario(k: usize, n_flows: usize) -> Scenario {
    Scenario {
        name: "ext-scale",
        topo: TopologySpec::fat_tree(k),
        pattern: Pattern::AllToAll,
        sizes: SizeDist::UniformBytes {
            lo: 2_000,
            hi: 198_000,
        },
        deadlines: None,
        n_background: 0,
        n_flows,
    }
}

/// Build, (optionally) trace, run and audit one case on the fat-tree.
fn run_scale(scheme: Scheme, scenario: &Scenario, seed: u64, traced: bool) -> RunOut {
    let (mut sim, hosts) = scheme.build_sim(&scenario.topo);
    sim.enable_invariants(InvariantConfig::default());
    let digest = traced.then(|| {
        let tracer = HashTracer::new();
        let handle = tracer.digest();
        sim.set_tracer(Box::new(tracer));
        handle
    });
    sim.add_flows(scenario.generate_flows(LOAD, seed, &hosts));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(120)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "{} must complete the scale run",
        scheme.name()
    );
    let report = sim.check_invariants();
    assert!(
        report.violations.is_empty(),
        "{} scale run violated invariants:\n{}",
        scheme.name(),
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let tiers = TierLoad::measure(&sim);
    let sim_secs = sim.now().as_nanos() as f64 / 1e9;
    let pruned: u64 = sim.stats().arb_pruned_by_node().map(|(_, n)| n).sum();
    let climbed: u64 = sim.stats().arb_climbed_by_node().map(|(_, n)| n).sum();
    // The big runs stream their FCTs through the quantile sketch so the
    // collector never materializes a per-flow vector.
    let metrics = collect_with(&sim, outcome, MetricsMode::Sketch);
    RunOut {
        metrics,
        tiers,
        sim_secs,
        pruned,
        climbed,
        digest: digest.map(|h| {
            drop(sim); // flush the tracer (publish-on-drop)
            *h.lock().unwrap()
        }),
    }
}

/// PASE with pruning at an explicit depth and delegation off, so every
/// cross-core request faces the prune decision at its ToR.
fn pruning_scheme(topo: &TopologySpec, depth: u8) -> Scheme {
    let mut cfg = Scheme::pase_config_for(topo);
    cfg.delegation = false;
    cfg.early_pruning = true;
    cfg.prune_depth = depth;
    Scheme::PaseWith(cfg)
}

/// Regenerate the scale extension: pruning effectiveness and per-tier
/// arbitration load vs prune depth, with the PASE-vs-DCTCP headline
/// (dual-run determinism included) in the notes.
pub fn run(opts: &ExpOpts) -> FigResult {
    let (k, headline_flows, depths): (usize, usize, Vec<u8>) = if opts.quick {
        (4, opts.flows.max(300), vec![1, 2, 8])
    } else {
        (16, opts.flows.max(100_000), vec![1, 2, 4, 8])
    };
    // The depth sweep isolates the control plane, not tail FCT: a
    // fraction of the headline's flow count per point keeps the full
    // profile tractable while still pushing >10⁴ requests per run.
    let sweep_flows = if opts.quick {
        headline_flows
    } else {
        headline_flows / 20
    };
    let headline = scale_scenario(k, headline_flows);
    let n_hosts = headline.topo.n_hosts();

    let mut fig = FigResult::new(
        "ext_scale",
        "Production-scale fat-tree: three-tier arbitration load and pruning vs depth",
        "prune depth (queues forwarded upward)",
        "prune fraction (%) / arbitration msgs per sec per arbitrator",
        depths.iter().map(|&d| d as f64).collect(),
    );

    // Headline: PASE twice (dual-run trace discipline), DCTCP once.
    let pase = run_scale(Scheme::Pase, &headline, opts.seed, true);
    let replay = run_scale(Scheme::Pase, &headline, opts.seed, true);
    assert_eq!(
        pase.digest, replay.digest,
        "PASE dual-run trace digests diverged at k={k}"
    );
    let dctcp = run_scale(Scheme::Dctcp, &headline, opts.seed, false);
    fig.note(format!(
        "headline fabric: k={k} fat-tree, {n_hosts} hosts, {headline_flows} flows at load \
         {LOAD}; invariants enabled; PASE executed twice with byte-identical trace digests \
         ({:#018x})",
        pase.digest.unwrap_or(0)
    ));
    fig.note(format!(
        "PASE: AFCT {:.3} ms, p99 {:.3} ms, {} flows completed (metrics via GK sketch)",
        pase.metrics.afct_ms, pase.metrics.p99_ms, pase.metrics.n_completed
    ));
    fig.note(format!(
        "DCTCP: AFCT {:.3} ms, p99 {:.3} ms, {} flows completed",
        dctcp.metrics.afct_ms, dctcp.metrics.p99_ms, dctcp.metrics.n_completed
    ));
    fig.note(format!(
        "PASE per-tier arbitration load (default config, delegation on): ToR {:.0} \
         msgs/s per arbitrator ({} arbs), agg {:.0} ({}), core {:.0} ({})",
        pase.tiers.per_arb_per_sec(0, pase.sim_secs),
        pase.tiers.arbs[0],
        pase.tiers.per_arb_per_sec(1, pase.sim_secs),
        pase.tiers.arbs[1],
        pase.tiers.per_arb_per_sec(2, pase.sim_secs),
        pase.tiers.arbs[2],
    ));

    // Pruning-effectiveness sweep: delegation off, depth varied.
    let sweep = scale_scenario(k, sweep_flows);
    let plan = CasePlan::new(depths.clone());
    let runs = plan.execute(opts.jobs, |&depth| {
        let out = run_scale(pruning_scheme(&sweep.topo, depth), &sweep, opts.seed, false);
        (
            out.pruned,
            out.climbed,
            out.tiers,
            out.sim_secs,
            out.metrics.afct_ms,
        )
    });
    let frac = |pruned: u64, climbed: u64| {
        if pruned + climbed == 0 {
            0.0
        } else {
            100.0 * pruned as f64 / (pruned + climbed) as f64
        }
    };
    fig.push_series(
        "prune fraction (%)",
        runs.iter().map(|&(p, c, ..)| frac(p, c)).collect(),
    );
    for (tier, name) in [
        (0, "ToR msgs/s per arb"),
        (1, "agg msgs/s per arb"),
        (2, "core msgs/s per arb"),
    ] {
        fig.push_series(
            name,
            runs.iter()
                .map(|&(_, _, t, secs, _)| t.per_arb_per_sec(tier, secs))
                .collect(),
        );
    }
    for (&depth, &(pruned, climbed, _, _, afct)) in depths.iter().zip(&runs) {
        fig.note(format!(
            "depth {depth}: {pruned} requests answered locally instead of climbing, \
             {climbed} forwarded upward ({:.1}% pruned), AFCT {afct:.3} ms \
             ({sweep_flows} flows, delegation off)",
            frac(pruned, climbed)
        ));
    }
    fig.note(
        "expected: pruning answers most requests at the host/ToR at shallow depths and \
         forwards more as the depth grows, so the prune fraction falls and the ToR/agg \
         per-arbitrator load rises with depth; core arbitrators process no requests at \
         any depth because the aggregation tier owns the agg-core links (with delegation \
         on, even that allocation moves down to the ToRs) — the hierarchy, not a central \
         arbitrator, is what absorbs production scale",
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar at smoke scale: the dual-run digests match
    /// (asserted inside `run`), pruning actually fires and weakens as
    /// the depth grows, and every tier carries arbitration load.
    #[test]
    fn pruning_and_tier_load_behave_at_smoke_scale() {
        let opts = ExpOpts {
            jobs: 2,
            ..ExpOpts::quick()
        };
        let fig = run(&opts);
        let series = |name: &str| fig.series_named(name).expect(name).ys.clone();
        let prune = series("prune fraction (%)");
        assert!(
            prune[0] > 0.0,
            "depth 1 must prune some cross-core requests: {prune:?}"
        );
        assert!(
            prune.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "prune fraction must not rise with depth: {prune:?}"
        );
        let tor = series("ToR msgs/s per arb");
        assert!(
            tor.iter().all(|&v| v > 0.0),
            "ToR arbitrators must carry load at every depth: {tor:?}"
        );
        assert!(
            fig.notes.iter().any(|n| n.contains("byte-identical")),
            "the dual-run determinism note must be present"
        );
    }
}
