//! Figure 10a: 99th-percentile FCT — PASE vs pFabric on the left-right
//! scenario. pFabric wins slightly at low load; PASE wins at >= 60%.

use workloads::{Scenario, Scheme};

use super::common::{loads_pct, p99, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 10a.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let mut fig = FigResult::new(
        "fig10a",
        "Tail FCT: PASE vs pFabric (p99, left-right)",
        "load(%)",
        "99th percentile FCT (ms)",
        loads_pct(&opts.loads),
    );
    sweep_into(
        &mut fig,
        &[("PASE", Scheme::Pase), ("pFabric", Scheme::PFabric)],
        scenario,
        opts,
        p99,
    );
    let pase = fig.series_named("PASE").unwrap().ys.clone();
    let pf = fig.series_named("pFabric").unwrap().ys.clone();
    let last = fig.xs.len() - 1;
    fig.note(format!(
        "paper shape: comparable at low load, PASE better at high load (paper: >85% at 90% load); measured at highest load: {:.2} vs {:.2} ms",
        pase[last], pf[last]
    ));
    fig
}
