//! Figure 9c: deadline-constrained flows — application throughput of
//! PASE vs D2TCP vs DCTCP on the intra-rack deadline workload.
//!
//! PASE arbitrates with the EDF criterion here (paper §3.1.1: FlowSize
//! "can be replaced by deadline").

use pase::Criterion;
use workloads::{Scenario, Scheme};

use super::common::{app_throughput, loads_pct, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 9c.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::deadline_intra_rack(opts.flows);
    let mut pase_cfg = Scheme::pase_config_for(&scenario.topo);
    pase_cfg.criterion = Criterion::Edf;
    let mut fig = FigResult::new(
        "fig09c",
        "Deadline flows: application throughput (intra-rack)",
        "load(%)",
        "fraction of deadlines met",
        loads_pct(&opts.loads),
    );
    sweep_into(
        &mut fig,
        &[
            ("PASE", Scheme::PaseWith(pase_cfg)),
            ("D2TCP", Scheme::D2tcp),
            ("DCTCP", Scheme::Dctcp),
        ],
        scenario,
        opts,
        app_throughput,
    );
    let last = fig.xs.len() - 1;
    let pase = fig.series_named("PASE").unwrap().ys[last];
    let d2 = fig.series_named("D2TCP").unwrap().ys[last];
    fig.note(format!(
        "paper shape: PASE >> D2TCP/DCTCP at high load; measured at the highest load: {pase:.2} vs {d2:.2}"
    ));
    fig
}
