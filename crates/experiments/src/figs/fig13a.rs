//! Figure 13a: the value of the reference rate — PASE vs PASE-DCTCP
//! (arbitrated queues but plain DCTCP rate control) on the intra-rack
//! U(100..500) KB workload.

use workloads::{Scenario, Scheme};

use super::common::{afct, improvement_pct, loads_pct, sweep_into};
use crate::opts::ExpOpts;
use crate::report::FigResult;

/// Regenerate Figure 13a.
pub fn run(opts: &ExpOpts) -> FigResult {
    let scenario = Scenario::medium_intra_rack(opts.flows);
    let cfg = Scheme::pase_config_for(&scenario.topo);
    let mut fig = FigResult::new(
        "fig13a",
        "Guided rate control: PASE vs PASE-DCTCP (AFCT, intra-rack)",
        "load(%)",
        "AFCT (ms)",
        loads_pct(&opts.loads),
    );
    sweep_into(
        &mut fig,
        &[
            ("PASE", Scheme::PaseWith(cfg)),
            ("PASE-DCTCP", Scheme::PaseWith(cfg.without_reference_rate())),
        ],
        scenario,
        opts,
        afct,
    );
    let pase = fig.series_named("PASE").unwrap().ys.clone();
    let nodctcp = fig.series_named("PASE-DCTCP").unwrap().ys.clone();
    let mid = fig.xs.len() / 2;
    fig.note(format!(
        "paper shape: reference rate halves AFCT (paper ~50%); measured mid-load improvement {:.0}%",
        improvement_pct(nodctcp[mid], pase[mid])
    ));
    fig
}
