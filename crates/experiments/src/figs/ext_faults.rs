//! Extension: AFCT under an arbitrator outage.
//!
//! The paper's recovery story (§3.1.3) is qualitative: arbitrators keep
//! only soft state, and a flow that stops hearing back "falls back to
//! the self-adjusting behavior". This experiment quantifies it. We run
//! the left-right workload and, mid-run, crash **every** arbitrator; in
//! the `outage` variant they restart after a blackout window and rebuild
//! their state purely from endpoint refreshes, in the `blackout` variant
//! they never come back. DCTCP — which has no control plane to lose —
//! runs under the identical fault plan as the reference point: PASE's
//! degraded mode *is* a DCTCP-style self-adjusting transport, so during
//! the outage its AFCT should drift toward (but never past) the DCTCP
//! line, and with a restart it should recover most of the gap.

use netsim::prelude::*;
use workloads::{collect, CasePlan, RunMetrics, Scenario, Scheme};

use crate::opts::ExpOpts;
use crate::report::FigResult;

/// When the arbitrators die and (optionally) come back.
#[derive(Debug, Clone, Copy)]
struct Outage {
    crash: SimTime,
    restart: Option<SimTime>,
}

/// One run: build the scheme on the scenario's topology, inject the
/// outage (crash + optional restart on every switch), run to completion.
fn run_with_outage(
    scheme: Scheme,
    scenario: &Scenario,
    load: f64,
    seed: u64,
    outage: Option<Outage>,
) -> RunMetrics {
    let (mut sim, hosts) = scheme.build_sim(&scenario.topo);
    for spec in scenario.generate_flows(load, seed, &hosts) {
        sim.add_flow(spec);
    }
    if let Some(o) = outage {
        let mut plan = FaultPlan::new();
        for sw in sim.topo().switches() {
            plan = plan.arbitrator_crash(o.crash, sw);
            if let Some(r) = o.restart {
                plan = plan.arbitrator_restart(r, sw);
            }
        }
        sim.inject_faults(&plan);
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(120)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "{} must complete even under the outage",
        scheme.name()
    );
    collect(&sim, outcome)
}

/// Regenerate the fault-tolerance extension table.
pub fn run(opts: &ExpOpts) -> FigResult {
    let loads: Vec<f64> = if opts.quick {
        vec![0.3, 0.6]
    } else {
        opts.loads.clone()
    };
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    // Place the blackout well inside the flow-arrival window so a
    // meaningful share of flows lives through it. Quick runs are an
    // order of magnitude shorter than full ones.
    let (crash, restart) = if opts.quick {
        (SimTime::from_millis(2), SimTime::from_millis(8))
    } else {
        (SimTime::from_millis(10), SimTime::from_millis(40))
    };
    let outage = Outage {
        crash,
        restart: Some(restart),
    };
    let blackout = Outage {
        crash,
        restart: None,
    };

    let mut fig = FigResult::new(
        "ext_faults",
        "Arbitrator outage: AFCT with a fleet-wide control-plane crash mid-run",
        "load",
        "AFCT (ms)",
        loads.clone(),
    );
    let cases: [(&str, Scheme, Option<Outage>); 5] = [
        ("PASE", Scheme::Pase, None),
        ("PASE outage", Scheme::Pase, Some(outage)),
        ("PASE blackout", Scheme::Pase, Some(blackout)),
        ("DCTCP", Scheme::Dctcp, None),
        ("DCTCP outage", Scheme::Dctcp, Some(outage)),
    ];
    let plan = CasePlan::new(
        cases
            .iter()
            .flat_map(|&(_, scheme, o)| loads.iter().map(move |&load| (scheme, load, o)))
            .collect::<Vec<_>>(),
    );
    let afcts = plan.execute(opts.jobs, |&(scheme, load, o)| {
        run_with_outage(scheme, &scenario, load, opts.seed, o).afct_ms
    });
    for ((name, _, _), row) in cases.iter().zip(afcts.chunks(loads.len())) {
        fig.push_series(*name, row.to_vec());
    }
    fig.note(format!(
        "arbitrators crash at {crash}; the outage variant restarts them at {restart} \
         (soft state rebuilt from endpoint refreshes alone), the blackout variant never does"
    ));
    fig.note(
        "expected: every cell completes (no hangs); PASE-blackout degrades toward but not past \
         DCTCP (fallback *is* a DCTCP-style transport on the lowest queue); PASE-outage sits \
         between PASE and PASE-blackout at loads where a meaningful share of flows overlaps \
         the blackout window (differences at light load are within noise); DCTCP is unaffected \
         by the fault plan (no control plane to lose)",
    );
    fig
}

/// One run under a periodically flapping ToR uplink: every `period`, the
/// first rack's single uplink goes down for `period / 4`, over a window
/// covering most of the flow-arrival process.
fn run_with_flaps(
    scheme: Scheme,
    scenario: &Scenario,
    load: f64,
    seed: u64,
    flap: Option<(SimTime, SimDuration, SimDuration)>, // (first, period, window)
) -> RunMetrics {
    let (mut sim, hosts) = scheme.build_sim(&scenario.topo);
    for spec in scenario.generate_flows(load, seed, &hosts) {
        sim.add_flow(spec);
    }
    if let Some((first, period, window)) = flap {
        let tor = sim.topo().host_tor(hosts[0]);
        // The ToR's single uplink is its unique switch neighbor.
        let all_hosts = sim.topo().hosts();
        let agg = sim
            .topo()
            .neighbors(tor)
            .into_iter()
            .map(|(_, peer, _, _)| peer)
            .find(|peer| !all_hosts.contains(peer))
            .expect("ToR must have an uplink");
        let mut plan = FaultPlan::new();
        let mut at = first;
        let end = first + window;
        while at < end {
            plan = plan
                .link_down(at, tor, agg)
                .link_up(at + period / 4, tor, agg);
            at += period;
        }
        sim.inject_faults(&plan);
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(120)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "{} must complete despite the flapping uplink",
        scheme.name()
    );
    collect(&sim, outcome)
}

/// Regenerate the link-flap extension table: AFCT vs. flap period for a
/// ToR uplink that is down 25% of the time while flows arrive.
pub fn run_link_flap(opts: &ExpOpts) -> FigResult {
    let periods_ms: Vec<u64> = if opts.quick {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 8, 16]
    };
    let scenario = Scenario::left_right(opts.hosts_per_rack, opts.flows);
    let load = 0.6;
    // Start flapping once the arrival process is under way and keep it up
    // across most of the arrival window (quick runs are much shorter).
    let (first, window) = if opts.quick {
        (SimTime::from_millis(1), SimDuration::from_millis(16))
    } else {
        (SimTime::from_millis(5), SimDuration::from_millis(60))
    };

    let mut fig = FigResult::new(
        "ext_link_flap",
        "Flapping ToR uplink: AFCT vs. flap period (25% downtime) at 60% load",
        "flap period (ms)",
        "AFCT (ms)",
        periods_ms.iter().map(|&p| p as f64).collect(),
    );
    let schemes = [Scheme::Pase, Scheme::Dctcp];
    // One case per (scheme, period) plus a healthy baseline per scheme.
    let plan = CasePlan::new(
        schemes
            .iter()
            .flat_map(|&scheme| {
                periods_ms
                    .iter()
                    .map(move |&p| (scheme, Some(p)))
                    .chain(std::iter::once((scheme, None)))
            })
            .collect::<Vec<_>>(),
    );
    let afcts = plan.execute(opts.jobs, |&(scheme, period_ms)| {
        let flap = period_ms.map(|p| (first, SimDuration::from_millis(p), window));
        run_with_flaps(scheme, &scenario, load, opts.seed, flap).afct_ms
    });
    for (scheme, row) in schemes.iter().zip(afcts.chunks(periods_ms.len() + 1)) {
        fig.push_series(scheme.name(), row[..periods_ms.len()].to_vec());
        let healthy = row[periods_ms.len()];
        fig.push_series(
            format!("{} no-fault", scheme.name()),
            vec![healthy; periods_ms.len()],
        );
    }
    fig.note(format!(
        "rack 0's single uplink flaps from {first} over a {window} window: down period/4, \
         up 3*period/4; packets caught behind the dead link are counted blackholes and \
         recovered by retransmission"
    ));
    fig.note(
        "expected: every cell completes (flows ride out each outage via RTO + the healed \
         link) and both schemes sit well above their no-fault baselines; at full scale \
         shorter periods hurt more — each outage interrupts a fresh set of in-flight flows \
         and restarts their backoff — while quick runs can be non-monotonic when a single \
         outage happens to line up with the retransmission backoff schedule",
    );
    fig
}
