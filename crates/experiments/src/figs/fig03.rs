//! Figure 3: the toy multi-link example showing the cost of switch-local
//! prioritization.
//!
//! Flow 1 (src1 → dst1) has the highest priority, flow 2 (src2 → dst1)
//! medium, flow 3 (src2 → dst2) the lowest. Flows 1 and 2 share dst1's
//! downlink, so only flow 1 should progress there; but pFabric keeps
//! transmitting flow 2's packets on src2's uplink — where they beat
//! flow 3's — only to drop them downstream. Flow 3, which shares *no*
//! link with flow 1, gets stalled. PASE's arbitration assigns flow 2 a
//! low queue end-to-end, letting flow 3 run in parallel with flow 1.

use std::sync::Arc;

use netsim::prelude::*;
use pase::{install, pase_qdisc, PaseFactory};
use pfabric::{PFabricConfig, PFabricFactory, PFabricQdisc};
use workloads::{CasePlan, Scheme};

use crate::opts::ExpOpts;
use crate::report::FigResult;

const MB: u64 = 1_000_000;

/// Flow sizes: flow 1 smallest (highest priority) ... flow 3 largest.
const SIZES: [u64; 3] = [MB, 2 * MB, 3 * MB];

fn toy_topology(
    factory: Arc<dyn netsim::host::AgentFactory>,
    qdisc: &netsim::topology::QdiscChooser<'_>,
) -> (Simulation, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch();
    let hosts = b.add_hosts(4); // src1, src2, dst1, dst2
    for &h in &hosts {
        b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(25));
    }
    (Simulation::new(b.build(factory, qdisc)), hosts)
}

fn add_toy_flows(sim: &mut Simulation, hosts: &[NodeId]) {
    let (src1, src2, dst1, dst2) = (hosts[0], hosts[1], hosts[2], hosts[3]);
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        src1,
        dst1,
        SIZES[0],
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        src2,
        dst1,
        SIZES[1],
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(2),
        src2,
        dst2,
        SIZES[2],
        SimTime::ZERO,
    ));
}

fn fcts_ms(sim: &Simulation) -> Vec<f64> {
    (0..3)
        .map(|i| {
            sim.stats()
                .flow(FlowId(i))
                .and_then(|r| r.fct())
                .map_or(f64::NAN, |d| d.as_millis_f64())
        })
        .collect()
}

/// Which of the two toy fabrics a case runs.
#[derive(Debug, Clone, Copy)]
enum ToyFabric {
    PFabric,
    Pase,
}

/// One toy case end to end: (per-flow FCTs ms, data packets dropped).
fn run_toy(fabric: ToyFabric) -> (Vec<f64>, u64) {
    let (mut sim, hosts) = match fabric {
        ToyFabric::PFabric => {
            let cfg = PFabricConfig {
                cwnd_pkts: 38,
                rto: SimDuration::from_millis(1),
                ..PFabricConfig::default()
            };
            toy_topology(Arc::new(PFabricFactory::new(cfg)), &|_| {
                Box::new(PFabricQdisc::new(24))
            })
        }
        ToyFabric::Pase => {
            let cfg = Scheme::pase_config_for(&workloads::TopologySpec::intra_rack(4));
            let built = toy_topology(Arc::new(PaseFactory::new(cfg)), &|_| {
                Box::new(pase_qdisc(&cfg, 500, 20))
            });
            let (mut sim, hosts) = built;
            install(&mut sim, cfg);
            (sim, hosts)
        }
    };
    add_toy_flows(&mut sim, &hosts);
    sim.run(RunLimit::until_measured_done(SimTime::from_secs(60)));
    (fcts_ms(&sim), sim.stats().data_pkts_dropped)
}

/// Regenerate Figure 3 (as per-flow FCTs under both fabrics).
pub fn run(opts: &ExpOpts) -> FigResult {
    let plan = CasePlan::new(vec![ToyFabric::PFabric, ToyFabric::Pase]);
    let mut results = plan.execute(opts.jobs, |&fabric| run_toy(fabric));
    let (pase, pase_drops) = results.pop().expect("PASE case");
    let (pf, pf_drops) = results.pop().expect("pFabric case");

    let mut fig = FigResult::new(
        "fig03",
        "Toy multi-link example: per-flow FCT",
        "flow#",
        "FCT (ms)",
        vec![1.0, 2.0, 3.0],
    );
    fig.push_series("pFabric", pf.clone());
    fig.push_series("PASE", pase.clone());
    // Ideal: flow 3 runs in parallel with flow 1 => ~size3/1Gbps = 24 ms
    // + (flow2 tail). pFabric stalls flow 3 behind flow 2's doomed
    // packets.
    fig.note(format!(
        "paper shape: pFabric stalls flow 3 (measured {:.1} ms) while PASE lets it run in parallel with flow 1 (measured {:.1} ms)",
        pf[2], pase[2]
    ));
    fig.note(format!(
        "pFabric drops {pf_drops} data packets on the toy; PASE drops {pase_drops}"
    ));
    fig
}
