//! Randomized tests for Algorithm 1: the arbitration decisions must
//! satisfy the paper's invariants for arbitrary flow populations. Cases
//! are generated from netsim's seeded [`Rng`] so the suite is
//! deterministic and dependency-free.

use netsim::ids::FlowId;
use netsim::rng::Rng;
use netsim::time::{Rate, SimTime};
use pase::{FlowEntry, LinkArbitrator, PaseConfig};

fn entry(remaining: u64, demand_mbps: u64) -> FlowEntry {
    FlowEntry {
        remaining,
        deadline: None,
        demand: Rate::from_mbps(demand_mbps),
        task: None,
        last_update: SimTime::ZERO,
    }
}

/// 1..40 flows of (remaining bytes, demand Mbps).
fn flows(rng: &mut Rng) -> Vec<(u64, u64)> {
    let n = rng.gen_range_inclusive(1, 39) as usize;
    (0..n)
        .map(|_| {
            (
                rng.gen_range_inclusive(1, 9_999_999),
                rng.gen_range_inclusive(1, 999),
            )
        })
        .collect()
}

fn cap_mbps(rng: &mut Rng) -> u64 {
    rng.gen_range_inclusive(100, 9_999)
}

const CASES: u64 = 128;

/// Invariants over every decision:
/// * queue indices are valid;
/// * top-queue flows get a positive rate at most their demand;
/// * non-top flows get exactly the base rate;
/// * the aggregate reference rate of top-queue flows never exceeds the
///   link capacity (admission control).
#[test]
fn algorithm1_invariants() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xa161 ^ seed);
        let flows = flows(&mut rng);
        let cfg = PaseConfig::default();
        let capacity = Rate::from_mbps(cap_mbps(&mut rng));
        let mut arb = LinkArbitrator::new(capacity, &cfg);
        for (i, &(remaining, demand)) in flows.iter().enumerate() {
            arb.update(FlowId(i as u64), entry(remaining, demand));
        }
        let mut top_rate_sum = 0u64;
        for (i, &(_, demand)) in flows.iter().enumerate() {
            let d = arb.decide(FlowId(i as u64));
            assert!(d.queue < cfg.n_queues);
            if d.queue == 0 {
                assert!(!d.rate.is_zero());
                assert!(d.rate.as_bps() <= Rate::from_mbps(demand).as_bps());
                top_rate_sum += d.rate.as_bps();
            } else {
                assert_eq!(d.rate, cfg.base_rate());
            }
        }
        assert!(
            top_rate_sum <= capacity.as_bps(),
            "top queue overcommitted: {} > {}",
            top_rate_sum,
            capacity.as_bps()
        );
    }
}

/// SRPT monotonicity: if flow A has strictly smaller remaining size than
/// flow B, A's queue is never worse than B's.
#[test]
fn srpt_is_monotone() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5291 ^ seed);
        let flows = flows(&mut rng);
        let cfg = PaseConfig::default();
        let mut arb = LinkArbitrator::new(Rate::from_mbps(cap_mbps(&mut rng)), &cfg);
        for (i, &(remaining, demand)) in flows.iter().enumerate() {
            arb.update(FlowId(i as u64), entry(remaining, demand));
        }
        let decisions: Vec<_> = (0..flows.len())
            .map(|i| arb.decide(FlowId(i as u64)))
            .collect();
        for i in 0..flows.len() {
            for j in 0..flows.len() {
                if flows[i].0 < flows[j].0 {
                    assert!(
                        decisions[i].queue <= decisions[j].queue,
                        "flow {} (rem {}) in q{} but flow {} (rem {}) in q{}",
                        i,
                        flows[i].0,
                        decisions[i].queue,
                        j,
                        flows[j].0,
                        decisions[j].queue
                    );
                }
            }
        }
    }
}

/// Exactly the most-critical flow always lands in the top queue (there is
/// always spare capacity for it).
#[test]
fn most_critical_flow_is_top() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xc217 ^ seed);
        let flows = flows(&mut rng);
        let cfg = PaseConfig::default();
        let mut arb = LinkArbitrator::new(Rate::from_mbps(cap_mbps(&mut rng)), &cfg);
        for (i, &(remaining, demand)) in flows.iter().enumerate() {
            arb.update(FlowId(i as u64), entry(remaining, demand));
        }
        // The flow with the smallest (remaining, id) key.
        let best = (0..flows.len()).min_by_key(|&i| (flows[i].0, i)).unwrap();
        assert_eq!(arb.decide(FlowId(best as u64)).queue, 0);
    }
}

/// Decisions are insensitive to update order (the sorted list is a
/// function of the set, not the insertion sequence).
#[test]
fn order_independent() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x02de ^ seed);
        let flows = flows(&mut rng);
        let cap = cap_mbps(&mut rng);
        let cfg = PaseConfig::default();
        let mut a = LinkArbitrator::new(Rate::from_mbps(cap), &cfg);
        for (i, &(remaining, demand)) in flows.iter().enumerate() {
            a.update(FlowId(i as u64), entry(remaining, demand));
        }
        let forward: Vec<_> = (0..flows.len())
            .map(|i| a.decide(FlowId(i as u64)))
            .collect();

        let mut b = LinkArbitrator::new(Rate::from_mbps(cap), &cfg);
        for (i, &(remaining, demand)) in flows.iter().enumerate().rev() {
            b.update(FlowId(i as u64), entry(remaining, demand));
        }
        let backward: Vec<_> = (0..flows.len())
            .map(|i| b.decide(FlowId(i as u64)))
            .collect();
        assert_eq!(forward, backward);
    }
}

/// top_queue_demand is capped by capacity and covers the whole demand
/// when the link is underloaded.
#[test]
fn top_queue_demand_bounds() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x70b5 ^ seed);
        let flows = flows(&mut rng);
        let cfg = PaseConfig::default();
        let capacity = Rate::from_mbps(cap_mbps(&mut rng));
        let mut arb = LinkArbitrator::new(capacity, &cfg);
        let mut total = 0u64;
        for (i, &(remaining, demand)) in flows.iter().enumerate() {
            arb.update(FlowId(i as u64), entry(remaining, demand));
            total += Rate::from_mbps(demand).as_bps();
        }
        let top = arb.top_queue_demand().as_bps();
        assert!(top <= capacity.as_bps());
        if total <= capacity.as_bps() {
            assert_eq!(
                top, total,
                "underloaded link should carry all demand on top"
            );
        }
    }
}
