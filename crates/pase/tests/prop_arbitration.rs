//! Property-based tests for Algorithm 1: the arbitration decisions must
//! satisfy the paper's invariants for arbitrary flow populations.

use proptest::prelude::*;

use netsim::ids::FlowId;
use netsim::time::{Rate, SimTime};
use pase::{FlowEntry, LinkArbitrator, PaseConfig};

fn entry(remaining: u64, demand_mbps: u64) -> FlowEntry {
    FlowEntry {
        remaining,
        deadline: None,
        demand: Rate::from_mbps(demand_mbps),
        task: None,
        last_update: SimTime::ZERO,
    }
}

fn flows() -> impl Strategy<Value = Vec<(u64, u64)>> {
    // (remaining, demand in Mbps); remaining values unique-ish via id mix.
    prop::collection::vec((1u64..10_000_000, 1u64..1000), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Invariants over every decision:
    /// * queue indices are valid;
    /// * top-queue flows get a positive rate at most their demand;
    /// * non-top flows get exactly the base rate;
    /// * the aggregate reference rate of top-queue flows never exceeds
    ///   the link capacity (admission control).
    #[test]
    fn algorithm1_invariants(flows in flows(), cap_mbps in 100u64..10_000) {
        let cfg = PaseConfig::default();
        let capacity = Rate::from_mbps(cap_mbps);
        let mut arb = LinkArbitrator::new(capacity, &cfg);
        for (i, &(remaining, demand)) in flows.iter().enumerate() {
            arb.update(FlowId(i as u64), entry(remaining, demand));
        }
        let mut top_rate_sum = 0u64;
        for (i, &(_, demand)) in flows.iter().enumerate() {
            let d = arb.decide(FlowId(i as u64));
            prop_assert!(d.queue < cfg.n_queues);
            if d.queue == 0 {
                prop_assert!(!d.rate.is_zero());
                prop_assert!(d.rate.as_bps() <= Rate::from_mbps(demand).as_bps());
                top_rate_sum += d.rate.as_bps();
            } else {
                prop_assert_eq!(d.rate, cfg.base_rate());
            }
        }
        prop_assert!(
            top_rate_sum <= capacity.as_bps(),
            "top queue overcommitted: {} > {}",
            top_rate_sum,
            capacity.as_bps()
        );
    }

    /// SRPT monotonicity: if flow A has strictly smaller remaining size
    /// than flow B, A's queue is never worse than B's.
    #[test]
    fn srpt_is_monotone(flows in flows(), cap_mbps in 100u64..10_000) {
        let cfg = PaseConfig::default();
        let mut arb = LinkArbitrator::new(Rate::from_mbps(cap_mbps), &cfg);
        for (i, &(remaining, demand)) in flows.iter().enumerate() {
            arb.update(FlowId(i as u64), entry(remaining, demand));
        }
        let decisions: Vec<_> = (0..flows.len())
            .map(|i| arb.decide(FlowId(i as u64)))
            .collect();
        for i in 0..flows.len() {
            for j in 0..flows.len() {
                if flows[i].0 < flows[j].0 {
                    prop_assert!(
                        decisions[i].queue <= decisions[j].queue,
                        "flow {} (rem {}) in q{} but flow {} (rem {}) in q{}",
                        i, flows[i].0, decisions[i].queue,
                        j, flows[j].0, decisions[j].queue
                    );
                }
            }
        }
    }

    /// Exactly the most-critical flow always lands in the top queue
    /// (there is always spare capacity for it), and removing it promotes
    /// someone else when demand persists.
    #[test]
    fn most_critical_flow_is_top(flows in flows(), cap_mbps in 100u64..10_000) {
        let cfg = PaseConfig::default();
        let mut arb = LinkArbitrator::new(Rate::from_mbps(cap_mbps), &cfg);
        for (i, &(remaining, demand)) in flows.iter().enumerate() {
            arb.update(FlowId(i as u64), entry(remaining, demand));
        }
        // The flow with the smallest (remaining, id) key.
        let best = (0..flows.len())
            .min_by_key(|&i| (flows[i].0, i))
            .unwrap();
        prop_assert_eq!(arb.decide(FlowId(best as u64)).queue, 0);
    }

    /// Decisions are insensitive to update order (the sorted list is a
    /// function of the set, not the insertion sequence).
    #[test]
    fn order_independent(mut flows in flows(), cap_mbps in 100u64..10_000) {
        let cfg = PaseConfig::default();
        let mut a = LinkArbitrator::new(Rate::from_mbps(cap_mbps), &cfg);
        for (i, &(remaining, demand)) in flows.iter().enumerate() {
            a.update(FlowId(i as u64), entry(remaining, demand));
        }
        let forward: Vec<_> = (0..flows.len()).map(|i| a.decide(FlowId(i as u64))).collect();

        let mut b = LinkArbitrator::new(Rate::from_mbps(cap_mbps), &cfg);
        let indexed: Vec<(usize, (u64, u64))> = flows.drain(..).enumerate().collect();
        for &(i, (remaining, demand)) in indexed.iter().rev() {
            b.update(FlowId(i as u64), entry(remaining, demand));
        }
        let backward: Vec<_> = (0..indexed.len()).map(|i| b.decide(FlowId(i as u64))).collect();
        prop_assert_eq!(forward, backward);
    }

    /// top_queue_demand is capped by capacity and covers the whole demand
    /// when the link is underloaded.
    #[test]
    fn top_queue_demand_bounds(flows in flows(), cap_mbps in 100u64..10_000) {
        let cfg = PaseConfig::default();
        let capacity = Rate::from_mbps(cap_mbps);
        let mut arb = LinkArbitrator::new(capacity, &cfg);
        let mut total = 0u64;
        for (i, &(remaining, demand)) in flows.iter().enumerate() {
            arb.update(FlowId(i as u64), entry(remaining, demand));
            total += Rate::from_mbps(demand).as_bps();
        }
        let top = arb.top_queue_demand().as_bps();
        prop_assert!(top <= capacity.as_bps());
        if total <= capacity.as_bps() {
            prop_assert_eq!(top, total, "underloaded link should carry all demand on top");
        }
    }
}
