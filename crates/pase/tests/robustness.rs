//! Robustness and white-box tests for the PASE endpoint:
//! Algorithm 2's window state, the reorder guard observed on the wire,
//! tolerance to control-plane packet loss, and recovery from injected
//! arbitrator crashes (watchdog fallback + re-attach).

use std::sync::Arc;

use netsim::node::Node;
use netsim::packet::PacketKind;
use netsim::prelude::*;
use netsim::queue::LossyQdisc;
use netsim::trace::{TextTracer, TraceEvent, TraceSink};
use pase::{install, pase_qdisc, PaseConfig, PaseFactory, PaseSender, PaseSwitchPlugin};

fn cfg() -> PaseConfig {
    PaseConfig {
        base_rtt: SimDuration::from_micros(100),
        arb_refresh: SimDuration::from_micros(100),
        arb_expiry: SimDuration::from_micros(400),
        ..PaseConfig::default()
    }
}

fn star_sim_with(
    n: usize,
    cfg: PaseConfig,
    qdisc_for: &netsim::topology::QdiscChooser<'_>,
) -> (Simulation, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch();
    let hosts = b.add_hosts(n);
    for &h in &hosts {
        b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(25));
    }
    let net = b.build(Arc::new(PaseFactory::new(cfg)), qdisc_for);
    let mut sim = Simulation::new(net);
    install(&mut sim, cfg);
    (sim, hosts)
}

#[test]
fn algorithm2_window_states_white_box() {
    // Three flows to one receiver, distinct sizes: after the receiver-leg
    // responses arrive, the smallest flow must sit in the top queue with a
    // reference-rate window; the others in lower queues with cwnd ~1.
    let cfg = cfg();
    let (mut sim, hosts) = star_sim_with(4, cfg, &|_| Box::new(pase_qdisc(&cfg, 250, 20)));
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[3],
        2_000_000,
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[1],
        hosts[3],
        1_200_000,
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(2),
        hosts[2],
        hosts[3],
        100_000,
        SimTime::ZERO,
    ));
    // Run long enough for a couple of arbitration rounds but not to
    // completion (~1 ms).
    sim.run(RunLimit {
        max_time: Some(SimTime::from_millis(1)),
        max_events: None,
        stop_when_measured_done: false,
    });
    // Inspect the live senders.
    let q_of = |sim: &mut Simulation, host: NodeId, flow: u64| {
        let Node::Host(h) = sim.node_mut(host) else {
            panic!()
        };
        let s = h
            .agent_as::<PaseSender>(FlowId(flow))
            .expect("sender still live");
        (s.queue(), s.cwnd(), s.rref())
    };
    let (q2, cwnd2, rref2) = q_of(&mut sim, hosts[2], 2);
    let (q0, cwnd0, _) = q_of(&mut sim, hosts[0], 0);
    let (q1, _, _) = q_of(&mut sim, hosts[1], 1);
    assert_eq!(q2, 0, "smallest flow rides the top queue");
    assert!(q0 > 0, "largest flow is pushed down (q{q0})");
    assert!(q1 > 0, "middle flow is pushed down (q{q1})");
    // Top-queue window tracks Rref x RTT (~8+ packets at ~1 Gbps).
    assert!(
        cwnd2 > 4.0,
        "top-queue window should reflect the reference rate, got {cwnd2}"
    );
    assert!(!rref2.is_zero());
    // Lower-queue flows run the DCTCP laws from a small window.
    assert!(
        cwnd0 <= cwnd2,
        "demoted flow's window ({cwnd0}) should not exceed the top flow's ({cwnd2})"
    );
}

/// Trace sink asserting per-flow in-order data arrival at the receiver's
/// access link (the switch's port toward the receiver).
struct OrderChecker {
    watch_port_node: NodeId,
    highest_seq: std::collections::HashMap<u64, u64>,
    violations: Arc<std::sync::atomic::AtomicU64>,
}

impl TraceSink for OrderChecker {
    fn on_event(&mut self, _now: SimTime, event: &TraceEvent) {
        if let TraceEvent::Tx {
            node,
            flow,
            kind: PacketKind::Data,
            seq,
            ..
        } = *event
        {
            if node != self.watch_port_node {
                return;
            }
            let hi = self.highest_seq.entry(flow.0).or_insert(0);
            if seq < *hi {
                self.violations
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            *hi = (*hi).max(seq);
        }
    }
}

#[test]
fn queue_promotions_do_not_reorder_data_on_the_wire() {
    // Churny workload: many flows whose queues shift as they progress. On
    // a lossless run, the reorder guard must keep each flow's data in
    // order on the final hop (no retransmissions => any regression in seq
    // is a real reorder).
    let cfg = cfg();
    let (mut sim, hosts) = star_sim_with(6, cfg, &|_| Box::new(pase_qdisc(&cfg, 500, 20)));
    let violations = Arc::new(std::sync::atomic::AtomicU64::new(0));
    sim.set_tracer(Box::new(OrderChecker {
        watch_port_node: NodeId(0), // the switch
        highest_seq: Default::default(),
        violations: Arc::clone(&violations),
    }));
    for i in 0..18u64 {
        sim.add_flow(FlowSpec::new(
            FlowId(i),
            hosts[(i % 5) as usize],
            hosts[5],
            40_000 + 30_000 * (i % 6),
            SimTime::from_micros(i * 120),
        ));
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    // Precondition for the invariant: nothing was lost or retransmitted.
    assert_eq!(
        sim.stats().data_pkts_dropped,
        0,
        "test needs a lossless run"
    );
    let rtx: u64 = sim.stats().flows().map(|r| r.retransmitted_bytes).sum();
    assert_eq!(rtx, 0, "test needs a retransmission-free run");
    assert_eq!(
        violations.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "data reordered on the wire despite the reorder guard"
    );
}

#[test]
fn control_plane_loss_does_not_stall_flows() {
    // Drop every 3rd control packet in the fabric: arbitration responses
    // and FlowDone messages get lost. Flows must still complete (local
    // decisions + periodic refresh are the fallback) and arbitrator state
    // must still converge via expiry.
    let cfg = cfg();
    let (mut sim, hosts) = star_sim_with(6, cfg, &|spec| {
        let inner = Box::new(pase_qdisc(&cfg, 250, 20));
        if spec.node_is_host {
            inner
        } else {
            Box::new(LossyQdisc::for_kind(inner, 3, PacketKind::Ctrl))
        }
    });
    for i in 0..15u64 {
        let src = (i % 5) as usize;
        let dst = {
            let d = ((i + 1) % 6) as usize;
            if d == src {
                5
            } else {
                d
            }
        };
        sim.add_flow(FlowSpec::new(
            FlowId(i),
            hosts[src],
            hosts[dst],
            80_000,
            SimTime::from_micros(i * 150),
        ));
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "flows must survive control-plane loss"
    );
}

/// Scaled-down 3-tier fabric (4 racks × `per_rack` hosts, 2 aggs, 1
/// core): the smallest topology where switch-resident arbitrators carry
/// real state, so crashing them means something.
fn three_tier_sim(per_rack: usize, cfg: PaseConfig) -> (Simulation, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let core = b.add_switch();
    let mut hosts = vec![];
    for _ in 0..2 {
        let agg = b.add_switch();
        b.connect(agg, core, Rate::from_gbps(10), SimDuration::from_micros(25));
        for _ in 0..2 {
            let tor = b.add_switch();
            b.connect(tor, agg, Rate::from_gbps(10), SimDuration::from_micros(25));
            for _ in 0..per_rack {
                let h = b.add_host();
                b.connect(h, tor, Rate::from_gbps(1), SimDuration::from_micros(25));
                hosts.push(h);
            }
        }
    }
    let net = b.build(Arc::new(PaseFactory::new(cfg)), &|spec| {
        let k = if spec.rate.as_bps() >= 10_000_000_000 {
            65
        } else {
            20
        };
        Box::new(pase_qdisc(&cfg, 500, k))
    });
    let mut sim = Simulation::new(net);
    install(&mut sim, cfg);
    (sim, hosts)
}

/// A plan that crashes (or restarts) every switch arbitrator at `at`.
fn all_switches(sim: &Simulation, at: SimTime, restart: bool) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for sw in sim.topo().switches() {
        plan = if restart {
            plan.arbitrator_restart(at, sw)
        } else {
            plan.arbitrator_crash(at, sw)
        };
    }
    plan
}

fn until(ms: u64) -> RunLimit {
    RunLimit {
        max_time: Some(SimTime::from_millis(ms)),
        max_events: None,
        stop_when_measured_done: false,
    }
}

fn sender_state(sim: &mut Simulation, host: NodeId, flow: u64) -> (bool, u8, Rate) {
    let Node::Host(h) = sim.node_mut(host) else {
        panic!()
    };
    let s = h
        .agent_as::<PaseSender>(FlowId(flow))
        .expect("sender still live");
    (s.in_fallback(), s.queue(), s.rref())
}

#[test]
fn arbitrator_crash_without_restart_completes_via_fallback() {
    // Every switch arbitrator dies at 1 ms and never comes back. Senders
    // stop hearing responses, trip the watchdog, degrade to
    // self-adjusting mode — and every flow still finishes.
    let cfg = cfg();
    let (mut sim, hosts) = three_tier_sim(2, cfg);
    // Cross-core flow (needs ToR + delegated arbitration) plus two
    // same-subtree flows.
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[7],
        2_000_000,
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[1],
        hosts[3],
        150_000,
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(2),
        hosts[2],
        hosts[6],
        150_000,
        SimTime::from_micros(500),
    ));
    let plan = all_switches(&sim, SimTime::from_millis(1), false);
    sim.inject_faults(&plan);

    // Mid-run: the long cross-core flow must have degraded.
    sim.run(until(4));
    let (fb, q, _) = sender_state(&mut sim, hosts[0], 0);
    assert!(fb, "watchdog must trip after k silent refresh rounds");
    assert_eq!(q, cfg.lowest_queue(), "fallback rides the lowest queue");
    let tor = sim.topo().host_tor(hosts[0]);
    let Node::Switch(sw) = sim.node_mut(tor) else {
        panic!()
    };
    assert!(sw.plugin_as::<PaseSwitchPlugin>().unwrap().is_crashed());

    // And still: everything completes with no control plane at all.
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "flows must complete on pure self-adjustment"
    );
}

#[test]
fn arbitrator_restart_re_attaches_endpoints() {
    // Crash at 1 ms, restart at 2 ms (past `arb_expiry`, so all soft
    // state is long gone). The solo sender must fall back during the
    // outage, then re-attach to a top-queue/reference-rate assignment
    // rebuilt purely from its own refresh requests.
    let cfg = cfg();
    let (mut sim, hosts) = three_tier_sim(2, cfg);
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[7],
        4_000_000,
        SimTime::ZERO,
    ));
    let crash = all_switches(&sim, SimTime::from_millis(1), false);
    let restart = all_switches(&sim, SimTime::from_millis(2), true);
    sim.inject_faults(&crash);
    sim.inject_faults(&restart);

    // During the outage: fallback.
    sim.run(until(2));
    let (fb, q, _) = sender_state(&mut sim, hosts[0], 0);
    assert!(fb, "sender must degrade during the outage");
    assert_eq!(q, cfg.lowest_queue());

    // Well after the restart: re-attached. The solo flow owns every link
    // on its path again, so arbitration puts it back in the top queue
    // with a reference rate far above the fallback base rate.
    sim.run(until(15));
    let (fb, q, rref) = sender_state(&mut sim, hosts[0], 0);
    assert!(!fb, "responses resumed: fallback must end");
    assert_eq!(q, 0, "solo flow re-attaches to the top queue");
    assert!(
        rref.as_bps() > 2 * cfg.base_rate().as_bps(),
        "reference rate must be re-established, got {rref}"
    );
    // The restarted ToR re-learned the flow from refreshes alone.
    let tor = sim.topo().host_tor(hosts[0]);
    let Node::Switch(sw) = sim.node_mut(tor) else {
        panic!()
    };
    let plugin = sw.plugin_as::<PaseSwitchPlugin>().unwrap();
    assert!(!plugin.is_crashed());
    assert!(
        plugin.up_flows() >= 1,
        "soft state must rebuild from refreshes"
    );

    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
}

#[test]
fn identical_fault_plans_give_byte_identical_traces() {
    // Determinism under faults: two runs with the same flows and the same
    // fault plan must produce byte-identical trace output.
    let run = || {
        let cfg = cfg();
        let (mut sim, hosts) = three_tier_sim(2, cfg);
        let tracer = TextTracer::new();
        let buf = tracer.buffer();
        sim.set_tracer(Box::new(tracer));
        for i in 0..6u64 {
            sim.add_flow(FlowSpec::new(
                FlowId(i),
                hosts[(i % 4) as usize],
                hosts[4 + (i % 4) as usize],
                60_000 + i * 20_000,
                SimTime::from_micros(i * 130),
            ));
        }
        let tor0 = sim.topo().host_tor(hosts[0]);
        let agg = sim.topo().switches()[1];
        let plan = FaultPlan::new()
            .arbitrator_crash(SimTime::from_micros(800), tor0)
            .arbitrator_restart(SimTime::from_millis(3), tor0)
            .ctrl_loss_burst(SimTime::from_micros(900), tor0, agg, 3)
            .link_down(SimTime::from_millis(1), hosts[1], tor0)
            .link_up(SimTime::from_millis(2), hosts[1], tor0);
        sim.inject_faults(&plan);
        sim.run(until(40));
        let out = buf.lock().unwrap().clone();
        out
    };
    let a = run();
    let b = run();
    assert!(a.contains("FLT"), "fault events must appear in the trace");
    assert_eq!(a, b, "same seed + same fault plan must replay identically");
}

#[test]
fn host_arbitrator_crash_wipes_service_and_falls_back() {
    // Crash the control *process* on hosts[3] (not the machine): both of
    // its leaf arbitrators and the cached legs are wiped, and every flow
    // that depended on it — a remote sender waiting on its receiver leg
    // and a local sender using its uplink arbitrator — trips the watchdog
    // and still completes in self-adjusting fallback.
    let cfg = cfg();
    let (mut sim, hosts) = star_sim_with(4, cfg, &|_| Box::new(pase_qdisc(&cfg, 250, 20)));
    // Remote sender whose receiver leg terminates at hosts[3]...
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[3],
        2_000_000,
        SimTime::ZERO,
    ));
    // ...and a local sender arbitrating hosts[3]'s own uplink.
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[3],
        hosts[1],
        2_000_000,
        SimTime::ZERO,
    ));
    let plan = FaultPlan::new().arbitrator_crash(SimTime::from_millis(1), hosts[3]);
    sim.inject_faults(&plan);

    sim.run(until(4));
    {
        let Node::Host(h) = sim.node_mut(hosts[3]) else {
            panic!()
        };
        let svc = h.service_as::<pase::PaseHostService>().unwrap();
        assert!(svc.is_crashed(), "crash directive must reach the service");
        assert_eq!(svc.uplink_flows(), 0, "uplink arbitrator must be wiped");
        assert_eq!(svc.downlink_flows(), 0, "downlink arbitrator must be wiped");
    }
    let (fb0, q0, _) = sender_state(&mut sim, hosts[0], 0);
    assert!(
        fb0,
        "remote sender loses its receiver leg and must fall back"
    );
    assert_eq!(q0, cfg.lowest_queue());
    let (fb1, q1, _) = sender_state(&mut sim, hosts[3], 1);
    assert!(
        fb1,
        "local sender loses its uplink arbitrator and must fall back"
    );
    assert_eq!(q1, cfg.lowest_queue());

    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "watchdog fallback must still complete both flows"
    );
}

#[test]
fn crashed_host_lease_expiry_frees_the_top_queue() {
    // A machine crash kills a top-queue flow without any FlowDone: only
    // the lease GC can reclaim its PrioQue/Rref share. The demoted
    // competitor must be promoted back to the top queue once the dead
    // entry expires — a crashed host cannot wedge the priority ladder.
    let cfg = cfg();
    let (mut sim, hosts) = three_tier_sim(2, cfg);
    // Small cross-core flow: wins the top queue on every shared link.
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[7],
        400_000,
        SimTime::ZERO,
    ));
    // Big flow to the *same receiver*: contends for the 1 Gbps downlink
    // (and the whole shared path) and is demoted behind the small one.
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[1],
        hosts[7],
        8_000_000,
        SimTime::ZERO,
    ));
    let plan = FaultPlan::new()
        .host_crash(SimTime::from_micros(1100), hosts[0])
        .host_restart(SimTime::from_millis(20), hosts[0]);
    sim.inject_faults(&plan);

    // Just before the crash: the small flow holds the top queue.
    sim.run(until(1));
    let (_, q0, _) = sender_state(&mut sim, hosts[0], 0);
    assert_eq!(q0, 0, "small flow must own the top queue pre-crash");
    let (_, q1, _) = sender_state(&mut sim, hosts[1], 1);
    assert!(q1 > 0, "big flow must start demoted (q{q1})");

    // Well past `arb_expiry` after the crash: every arbitrator on the
    // shared path has expired the dead flow's lease and the survivor is
    // solo again.
    sim.run(until(6));
    assert_eq!(sim.stats().aborts_on(hosts[0]), 1, "crash aborts the flow");
    let tor = sim.topo().host_tor(hosts[1]);
    {
        let Node::Switch(sw) = sim.node_mut(tor) else {
            panic!()
        };
        let plugin = sw.plugin_as::<PaseSwitchPlugin>().unwrap();
        assert_eq!(
            plugin.up_flows(),
            1,
            "dead flow's ToR lease must expire without a FlowDone"
        );
    }
    let (fb1, q1, rref1) = sender_state(&mut sim, hosts[1], 1);
    assert!(!fb1, "survivor never lost its own control plane");
    assert_eq!(q1, 0, "survivor must be promoted once the lease expires");
    assert!(
        rref1.as_bps() > 2 * cfg.base_rate().as_bps(),
        "survivor must inherit the freed reference rate, got {rref1}"
    );

    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
}

#[test]
fn degraded_control_channel_trips_the_watchdog_and_flows_complete() {
    // Gray failures on both access links: the sender's drops most
    // packets in each direction, but arbitration responses still trickle
    // through — and each one resets `last_response`, defeating the
    // hard-silence watchdog, so only the decaying net-miss counter can
    // drive the flow into bounded self-adjusting fallback. The
    // receiver's link corrupts (but never drops) payloads, so the
    // receiver-side checksum discard and RTO/probe recovery get
    // exercised at full transmission rate once the lossy link heals.
    let cfg = cfg();
    let (mut sim, hosts) = star_sim_with(4, cfg, &|_| Box::new(pase_qdisc(&cfg, 250, 20)));
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[3],
        1_000_000,
        SimTime::ZERO,
    ));
    let sw = NodeId(0);
    let lossy = DegradeProfile {
        seed: 7,
        loss_ppm: 700_000,
        corrupt_ppm: 0,
        extra_delay_ns: 0,
        jitter_ns: 0,
    };
    let corrupting = DegradeProfile {
        seed: 11,
        loss_ppm: 0,
        corrupt_ppm: 200_000,
        extra_delay_ns: 0,
        jitter_ns: 0,
    };
    let plan = FaultPlan::new()
        .link_degrade(SimTime::from_micros(500), hosts[0], sw, lossy)
        .link_restore(SimTime::from_millis(50), hosts[0], sw)
        .link_degrade(SimTime::from_micros(500), hosts[3], sw, corrupting)
        .link_restore(SimTime::from_millis(400), hosts[3], sw);
    sim.inject_faults(&plan);

    sim.run(until(10));
    let (fb, q, _) = sender_state(&mut sim, hosts[0], 0);
    assert!(fb, "net-missed refresh rounds must trip the watchdog");
    assert_eq!(q, cfg.lowest_queue(), "fallback rides the lowest queue");

    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "transport recovery must finish the flow on a gray link"
    );
    assert!(
        sim.stats().data_pkts_corrupted > 0,
        "the degraded link must corrupt some payloads"
    );
}

#[test]
fn sustained_shedding_backs_off_then_trips_fallback_and_completes() {
    // A control storm amplifies the receiver-side arbitrator's inbox
    // charge far past its (deliberately tiny) budget, so every refresh of
    // the remote flow draws a `shedding: true` reply instead of an
    // arbitration answer. The sender must stretch its refresh cadence
    // multiplicatively, then — after `watchdog_k` net shed rounds —
    // degrade to self-adjusting fallback exactly like a dead control
    // channel. When the storm ends, clean responses resume, fallback
    // ends, and the flow completes.
    let cfg = PaseConfig {
        ctrl_budget_per_epoch: 4,
        ..cfg()
    };
    let (mut sim, hosts) = star_sim_with(4, cfg, &|_| Box::new(pase_qdisc(&cfg, 250, 20)));
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[3],
        5_000_000,
        SimTime::ZERO,
    ));
    let plan = FaultPlan::new()
        .ctrl_storm_start(SimTime::from_micros(500), hosts[3], 64)
        .ctrl_storm_end(SimTime::from_millis(10), hosts[3]);
    sim.inject_faults(&plan);

    // Mid-storm: sustained shedding has tripped the fallback.
    sim.run(until(5));
    assert!(
        sim.stats().ctrl_msgs_shed > 0,
        "the storm must shed requests"
    );
    assert!(
        sim.stats().ctrl_shed_on(hosts[3]) > 0,
        "shedding happens at the stormed arbitrator"
    );
    {
        let Node::Host(h) = sim.node_mut(hosts[0]) else {
            panic!()
        };
        let s = h.agent_as::<PaseSender>(FlowId(0)).expect("sender live");
        assert!(
            s.in_fallback(),
            "sustained shedding must degrade the flow (shed rounds {})",
            s.shed_rounds()
        );
        assert!(
            s.shed_backoff() > 0,
            "shed replies must stretch the refresh cadence"
        );
        assert_eq!(
            s.queue(),
            cfg.lowest_queue(),
            "fallback rides the lowest queue"
        );
    }

    // Well after the storm: clean responses drain the shed integrator
    // (exit is hysteretic — one lucky reply mid-storm must not flap the
    // flow out of fallback and slam its cwnd), fallback ends, and the
    // flow finishes under restored arbitration. The drain is bounded by
    // ~2*watchdog_k clean rounds at the backed-off cadence.
    sim.run(until(25));
    let (fb, _, _) = sender_state(&mut sim, hosts[0], 0);
    assert!(!fb, "clean responses after the storm must end fallback");
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "a shedding control plane must never strand a flow"
    );
}

#[test]
fn total_arbitration_blackout_still_completes() {
    // Drop EVERY control packet: PASE degrades to endpoint-local
    // arbitration plus self-adjustment, and still finishes.
    let cfg = cfg();
    let (mut sim, hosts) = star_sim_with(4, cfg, &|spec| {
        let inner = Box::new(pase_qdisc(&cfg, 250, 20));
        if spec.node_is_host {
            inner
        } else {
            Box::new(LossyQdisc::for_kind(inner, 1, PacketKind::Ctrl))
        }
    });
    for i in 0..6u64 {
        sim.add_flow(FlowSpec::new(
            FlowId(i),
            hosts[(i % 3) as usize],
            hosts[3],
            100_000,
            SimTime::from_micros(i * 100),
        ));
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(20)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
}
