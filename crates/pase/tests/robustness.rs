//! Robustness and white-box tests for the PASE endpoint:
//! Algorithm 2's window state, the reorder guard observed on the wire,
//! and tolerance to control-plane packet loss.

use std::sync::Arc;

use netsim::node::Node;
use netsim::packet::PacketKind;
use netsim::prelude::*;
use netsim::queue::LossyQdisc;
use netsim::trace::{TraceEvent, TraceSink};
use pase::{install, pase_qdisc, PaseConfig, PaseFactory, PaseSender};

fn cfg() -> PaseConfig {
    PaseConfig {
        base_rtt: SimDuration::from_micros(100),
        arb_refresh: SimDuration::from_micros(100),
        arb_expiry: SimDuration::from_micros(400),
        ..PaseConfig::default()
    }
}

fn star_sim_with(
    n: usize,
    cfg: PaseConfig,
    qdisc_for: &netsim::topology::QdiscChooser<'_>,
) -> (Simulation, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch();
    let hosts = b.add_hosts(n);
    for &h in &hosts {
        b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(25));
    }
    let net = b.build(Arc::new(PaseFactory::new(cfg)), qdisc_for);
    let mut sim = Simulation::new(net);
    install(&mut sim, cfg);
    (sim, hosts)
}

#[test]
fn algorithm2_window_states_white_box() {
    // Three flows to one receiver, distinct sizes: after the receiver-leg
    // responses arrive, the smallest flow must sit in the top queue with a
    // reference-rate window; the others in lower queues with cwnd ~1.
    let cfg = cfg();
    let (mut sim, hosts) = star_sim_with(4, cfg, &|_| Box::new(pase_qdisc(&cfg, 250, 20)));
    sim.add_flow(FlowSpec::new(FlowId(0), hosts[0], hosts[3], 2_000_000, SimTime::ZERO));
    sim.add_flow(FlowSpec::new(FlowId(1), hosts[1], hosts[3], 1_200_000, SimTime::ZERO));
    sim.add_flow(FlowSpec::new(FlowId(2), hosts[2], hosts[3], 100_000, SimTime::ZERO));
    // Run long enough for a couple of arbitration rounds but not to
    // completion (~1 ms).
    sim.run(RunLimit {
        max_time: Some(SimTime::from_millis(1)),
        max_events: None,
        stop_when_measured_done: false,
    });
    // Inspect the live senders.
    let q_of = |sim: &mut Simulation, host: NodeId, flow: u64| {
        let Node::Host(h) = sim.node_mut(host) else { panic!() };
        let s = h
            .agent_as::<PaseSender>(FlowId(flow))
            .expect("sender still live");
        (s.queue(), s.cwnd(), s.rref())
    };
    let (q2, cwnd2, rref2) = q_of(&mut sim, hosts[2], 2);
    let (q0, cwnd0, _) = q_of(&mut sim, hosts[0], 0);
    let (q1, _, _) = q_of(&mut sim, hosts[1], 1);
    assert_eq!(q2, 0, "smallest flow rides the top queue");
    assert!(q0 > 0, "largest flow is pushed down (q{q0})");
    assert!(q1 > 0, "middle flow is pushed down (q{q1})");
    // Top-queue window tracks Rref x RTT (~8+ packets at ~1 Gbps).
    assert!(
        cwnd2 > 4.0,
        "top-queue window should reflect the reference rate, got {cwnd2}"
    );
    assert!(!rref2.is_zero());
    // Lower-queue flows run the DCTCP laws from a small window.
    assert!(
        cwnd0 <= cwnd2,
        "demoted flow's window ({cwnd0}) should not exceed the top flow's ({cwnd2})"
    );
}

/// Trace sink asserting per-flow in-order data arrival at the receiver's
/// access link (the switch's port toward the receiver).
struct OrderChecker {
    watch_port_node: NodeId,
    highest_seq: std::collections::HashMap<u64, u64>,
    violations: Arc<std::sync::atomic::AtomicU64>,
}

impl TraceSink for OrderChecker {
    fn on_event(&mut self, _now: SimTime, event: &TraceEvent) {
        if let TraceEvent::Tx {
            node,
            flow,
            kind: PacketKind::Data,
            seq,
            ..
        } = *event
        {
            if node != self.watch_port_node {
                return;
            }
            let hi = self.highest_seq.entry(flow.0).or_insert(0);
            if seq < *hi {
                self.violations
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            *hi = (*hi).max(seq);
        }
    }
}

#[test]
fn queue_promotions_do_not_reorder_data_on_the_wire() {
    // Churny workload: many flows whose queues shift as they progress. On
    // a lossless run, the reorder guard must keep each flow's data in
    // order on the final hop (no retransmissions => any regression in seq
    // is a real reorder).
    let cfg = cfg();
    let (mut sim, hosts) = star_sim_with(6, cfg, &|_| Box::new(pase_qdisc(&cfg, 500, 20)));
    let violations = Arc::new(std::sync::atomic::AtomicU64::new(0));
    sim.set_tracer(Box::new(OrderChecker {
        watch_port_node: NodeId(0), // the switch
        highest_seq: Default::default(),
        violations: Arc::clone(&violations),
    }));
    for i in 0..18u64 {
        sim.add_flow(FlowSpec::new(
            FlowId(i),
            hosts[(i % 5) as usize],
            hosts[5],
            40_000 + 30_000 * (i % 6),
            SimTime::from_micros(i * 120),
        ));
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    // Precondition for the invariant: nothing was lost or retransmitted.
    assert_eq!(sim.stats().data_pkts_dropped, 0, "test needs a lossless run");
    let rtx: u64 = sim.stats().flows().map(|r| r.retransmitted_bytes).sum();
    assert_eq!(rtx, 0, "test needs a retransmission-free run");
    assert_eq!(
        violations.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "data reordered on the wire despite the reorder guard"
    );
}

#[test]
fn control_plane_loss_does_not_stall_flows() {
    // Drop every 3rd control packet in the fabric: arbitration responses
    // and FlowDone messages get lost. Flows must still complete (local
    // decisions + periodic refresh are the fallback) and arbitrator state
    // must still converge via expiry.
    let cfg = cfg();
    let (mut sim, hosts) = star_sim_with(6, cfg, &|spec| {
        let inner = Box::new(pase_qdisc(&cfg, 250, 20));
        if spec.node_is_host {
            inner
        } else {
            Box::new(LossyQdisc::for_kind(inner, 3, PacketKind::Ctrl))
        }
    });
    for i in 0..15u64 {
        let src = (i % 5) as usize;
        let dst = {
            let d = ((i + 1) % 6) as usize;
            if d == src {
                5
            } else {
                d
            }
        };
        sim.add_flow(FlowSpec::new(
            FlowId(i),
            hosts[src],
            hosts[dst],
            80_000,
            SimTime::from_micros(i * 150),
        ));
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
    assert_eq!(
        outcome,
        RunOutcome::MeasuredComplete,
        "flows must survive control-plane loss"
    );
}

#[test]
fn total_arbitration_blackout_still_completes() {
    // Drop EVERY control packet: PASE degrades to endpoint-local
    // arbitration plus self-adjustment, and still finishes.
    let cfg = cfg();
    let (mut sim, hosts) = star_sim_with(4, cfg, &|spec| {
        let inner = Box::new(pase_qdisc(&cfg, 250, 20));
        if spec.node_is_host {
            inner
        } else {
            Box::new(LossyQdisc::for_kind(inner, 1, PacketKind::Ctrl))
        }
    });
    for i in 0..6u64 {
        sim.add_flow(FlowSpec::new(
            FlowId(i),
            hosts[(i % 3) as usize],
            hosts[3],
            100_000,
            SimTime::from_micros(i * 100),
        ));
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(20)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
}
