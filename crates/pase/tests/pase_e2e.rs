//! End-to-end PASE behaviour: intra-rack, inter-rack, optimizations.

use std::sync::Arc;

use netsim::node::Node;
use netsim::prelude::*;
use pase::{install, pase_qdisc, PaseConfig, PaseFactory};

fn cfg_intra() -> PaseConfig {
    PaseConfig {
        base_rtt: SimDuration::from_micros(100),
        arb_refresh: SimDuration::from_micros(100),
        arb_expiry: SimDuration::from_micros(400),
        ..PaseConfig::default()
    }
}

/// Single rack of `n` hosts.
fn star_sim(n: usize, cfg: PaseConfig) -> (Simulation, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch();
    let hosts = b.add_hosts(n);
    for &h in &hosts {
        b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(25));
    }
    let net = b.build(Arc::new(PaseFactory::new(cfg)), &|_| {
        Box::new(pase_qdisc(&cfg, 250, 20))
    });
    let mut sim = Simulation::new(net);
    install(&mut sim, cfg);
    (sim, hosts)
}

/// The paper's 3-tier baseline, scaled down: `per_rack` hosts × 4 racks,
/// 2 aggs, 1 core; 1 Gbps access, 10 Gbps up.
fn three_tier_sim(per_rack: usize, cfg: PaseConfig) -> (Simulation, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let core = b.add_switch();
    let mut hosts = vec![];
    for a in 0..2 {
        let agg = b.add_switch();
        b.connect(agg, core, Rate::from_gbps(10), SimDuration::from_micros(25));
        for _ in 0..2 {
            let tor = b.add_switch();
            b.connect(tor, agg, Rate::from_gbps(10), SimDuration::from_micros(25));
            for _ in 0..per_rack {
                let h = b.add_host();
                b.connect(h, tor, Rate::from_gbps(1), SimDuration::from_micros(25));
                hosts.push(h);
            }
        }
        let _ = a;
    }
    let net = b.build(Arc::new(PaseFactory::new(cfg)), &|spec| {
        let k = if spec.rate.as_bps() >= 10_000_000_000 {
            65
        } else {
            20
        };
        Box::new(pase_qdisc(&cfg, 500, k))
    });
    let mut sim = Simulation::new(net);
    install(&mut sim, cfg);
    (sim, hosts)
}

#[test]
fn solo_intra_rack_flow_starts_at_reference_rate() {
    let (mut sim, hosts) = star_sim(2, cfg_intra());
    let size = 100_000u64;
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        size,
        SimTime::ZERO,
    ));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(2)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let fct = sim.stats().flow(FlowId(0)).unwrap().fct().unwrap();
    // No slow start: ~0.85 ms serialization + ~0.1 ms RTT. DCTCP takes
    // several RTTs more (see the transport crate's e2e tests).
    assert!(
        fct < SimDuration::from_micros(1600),
        "PASE solo FCT should be near-ideal, got {fct}"
    );
}

#[test]
fn short_flow_preempts_long_via_priority_queues() {
    let (mut sim, hosts) = star_sim(3, cfg_intra());
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[2],
        5_000_000,
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[1],
        hosts[2],
        50_000,
        SimTime::from_millis(10),
    ));
    sim.run(RunLimit::until_measured_done(SimTime::from_secs(5)));
    let short = sim.stats().flow(FlowId(1)).unwrap().fct().unwrap();
    assert!(
        short < SimDuration::from_millis(2),
        "short flow should preempt: {short}"
    );
    // Work conservation: the long flow still finishes reasonably.
    let long = sim.stats().flow(FlowId(0)).unwrap().fct().unwrap();
    assert!(long < SimDuration::from_millis(60), "long flow FCT {long}");
}

#[test]
fn srpt_ordering_across_many_flows() {
    // Flows of distinct sizes to a common receiver, all starting together:
    // completion order must follow size order (SRPT).
    let (mut sim, hosts) = star_sim(6, cfg_intra());
    let sizes = [400_000u64, 100_000, 300_000, 50_000, 200_000];
    for (i, &s) in sizes.iter().enumerate() {
        sim.add_flow(FlowSpec::new(
            FlowId(i as u64),
            hosts[i],
            hosts[5],
            s,
            SimTime::ZERO,
        ));
    }
    sim.run(RunLimit::until_measured_done(SimTime::from_secs(5)));
    let mut completions: Vec<(u64, u64)> = sim
        .stats()
        .flows()
        .map(|r| (r.completed.unwrap().as_nanos(), r.spec.size))
        .collect();
    completions.sort();
    let order: Vec<u64> = completions.iter().map(|&(_, s)| s).collect();
    assert_eq!(
        order,
        vec![50_000, 100_000, 200_000, 300_000, 400_000],
        "completion order should follow SRPT"
    );
}

#[test]
fn inter_rack_flow_uses_network_arbitration() {
    let (mut sim, hosts) = three_tier_sim(3, PaseConfig::default());
    // hosts[0] is in rack 0; hosts[9] in rack 3 (across the core).
    let src = hosts[0];
    let dst = hosts[9];
    sim.add_flow(FlowSpec::new(FlowId(0), src, dst, 200_000, SimTime::ZERO));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(2)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    // Arbitration messages must have flowed.
    assert!(sim.stats().ctrl_pkts > 0, "control plane must be exercised");
    assert!(sim.stats().ctrl_msgs_processed > 0);
    let fct = sim.stats().flow(FlowId(0)).unwrap().fct().unwrap();
    assert!(fct < SimDuration::from_millis(4), "inter-rack FCT {fct}");
}

#[test]
fn intra_rack_flows_do_not_use_the_network_control_plane() {
    // Paper §3.1.2: intra-rack arbitration is endpoint-only.
    let (mut sim, hosts) = three_tier_sim(3, PaseConfig::default());
    // Both endpoints in rack 0.
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        200_000,
        SimTime::ZERO,
    ));
    sim.run(RunLimit::until_measured_done(SimTime::from_secs(2)));
    // The only control packets are the receiver-leg request/response and
    // FlowDone between the two hosts (plus delegation heartbeats): no
    // requests should reach the ToR/agg arbitrators as *arbitration* load.
    // We check that the ToR tracked no flows.
    let tor = sim.topo().host_tor(hosts[0]);
    let Node::Switch(sw) = sim.node_mut(tor) else {
        panic!()
    };
    let plugin = sw
        .plugin_as::<pase::PaseSwitchPlugin>()
        .expect("plugin installed");
    assert_eq!(plugin.up_flows(), 0);
    assert_eq!(plugin.down_flows(), 0);
}

#[test]
fn all_to_all_contention_completes_with_low_loss() {
    let (mut sim, hosts) = star_sim(8, cfg_intra());
    // 24 flows, random-ish pattern, overlapping in time.
    for i in 0..24u64 {
        let src = (i % 7) as usize;
        let dst = ((i + 3) % 8) as usize;
        let dst = if dst == src { 7 } else { dst };
        sim.add_flow(FlowSpec::new(
            FlowId(i),
            hosts[src],
            hosts[dst],
            30_000 + 13_000 * (i % 9),
            SimTime::from_micros(i * 53),
        ));
    }
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let loss = sim.stats().data_loss_rate();
    assert!(loss < 0.02, "PASE should keep loss low, got {loss:.4}");
}

#[test]
fn optimizations_reduce_control_overhead() {
    // Left-right traffic across the core, with and without pruning +
    // delegation (paper Fig. 11b).
    let run = |cfg: PaseConfig| {
        let (mut sim, hosts) = three_tier_sim(4, cfg);
        // Left subtree: racks 0-1 (hosts 0..8); right: racks 2-3 (8..16).
        for i in 0..30u64 {
            sim.add_flow(FlowSpec::new(
                FlowId(i),
                hosts[(i % 8) as usize],
                hosts[8 + (i % 8) as usize],
                40_000 + 9_000 * (i % 7),
                SimTime::from_micros(i * 80),
            ));
        }
        sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
        assert_eq!(
            sim.stats().completed_measured(),
            30,
            "all flows must finish"
        );
        sim.stats().ctrl_pkts
    };
    let with_opts = run(PaseConfig::default());
    let without = run(PaseConfig::default().without_optimizations());
    assert!(
        with_opts < without,
        "pruning+delegation must reduce control packets: {with_opts} vs {without}"
    );
}

#[test]
fn end_to_end_beats_local_only_off_the_access_links() {
    // Contention at the receiver downlink, senders on different hosts:
    // local-only arbitration cannot see it (paper Fig. 12a).
    let run = |cfg: PaseConfig| {
        let (mut sim, hosts) = star_sim(5, cfg);
        for i in 0..8u64 {
            sim.add_flow(FlowSpec::new(
                FlowId(i),
                hosts[(i % 4) as usize],
                hosts[4],
                120_000,
                SimTime::from_micros(i * 10),
            ));
        }
        sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
        let total: u64 = sim
            .stats()
            .flows()
            .map(|r| r.fct().unwrap().as_nanos())
            .sum();
        total as f64 / 8.0 / 1e6 // AFCT ms
    };
    let e2e = run(cfg_intra());
    let local = run(cfg_intra().local_only());
    assert!(
        e2e < local,
        "end-to-end arbitration should win: {e2e:.3} ms vs {local:.3} ms"
    );
}

#[test]
fn deterministic_runs() {
    let run = || {
        let (mut sim, hosts) = three_tier_sim(3, PaseConfig::default());
        for i in 0..12u64 {
            sim.add_flow(FlowSpec::new(
                FlowId(i),
                hosts[(i % 6) as usize],
                hosts[6 + (i % 6) as usize],
                25_000 + i * 8_000,
                SimTime::from_micros(i * 91),
            ));
        }
        sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
        sim.stats()
            .flows()
            .map(|r| r.fct().unwrap().as_nanos())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn background_flows_ride_the_lowest_queue() {
    let (mut sim, hosts) = star_sim(3, cfg_intra());
    sim.add_flow(FlowSpec::background(
        FlowId(0),
        hosts[0],
        hosts[2],
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[1],
        hosts[2],
        100_000,
        SimTime::from_millis(5),
    ));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(5)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let fct = sim.stats().flow(FlowId(1)).unwrap().fct().unwrap();
    // The background flow must not delay the foreground flow much.
    assert!(
        fct < SimDuration::from_millis(2),
        "foreground flow should cut through background traffic: {fct}"
    );
}

#[test]
fn delegation_rebalances_toward_the_busy_rack() {
    // All cross-core traffic originates in rack 0; after a few delegation
    // periods rack 0's ToR should own (almost) the whole agg-core uplink
    // slice while its idle sibling keeps only the minimum share.
    let cfg = PaseConfig::default();
    let (mut sim, hosts) = three_tier_sim(3, cfg);
    // Rack 0 = hosts 0..3, rack 1 = 3..6 (same agg); racks 2,3 across the
    // core. Send sustained traffic rack0 -> rack3.
    for i in 0..12u64 {
        sim.add_flow(FlowSpec::new(
            FlowId(i),
            hosts[(i % 3) as usize],
            hosts[9 + (i % 3) as usize],
            400_000,
            SimTime::from_micros(i * 40),
        ));
    }
    sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
    let tor0 = sim.topo().host_tor(hosts[0]);
    let tor1 = sim.topo().host_tor(hosts[3]);
    let cap0 = {
        let Node::Switch(sw) = sim.node_mut(tor0) else {
            panic!()
        };
        sw.plugin_as::<pase::PaseSwitchPlugin>()
            .unwrap()
            .deleg_up_capacity()
            .expect("tor0 has a delegated slice")
    };
    let cap1 = {
        let Node::Switch(sw) = sim.node_mut(tor1) else {
            panic!()
        };
        sw.plugin_as::<pase::PaseSwitchPlugin>()
            .unwrap()
            .deleg_up_capacity()
            .expect("tor1 has a delegated slice")
    };
    assert!(
        cap0.as_bps() > 2 * cap1.as_bps(),
        "busy rack should own most of the delegated capacity: {cap0} vs {cap1}"
    );
}

#[test]
fn task_aware_scheduling_serializes_tasks() {
    // Two partition-aggregate tasks to the same aggregator, the older one
    // with *larger* flows. Under SRPT the younger task's small flows would
    // cut in; under task-aware arbitration the older task finishes first.
    let run = |criterion: pase::Criterion| {
        let mut cfg = cfg_intra();
        cfg.criterion = criterion;
        let (mut sim, hosts) = star_sim(5, cfg);
        let mut id = 0u64;
        // Task 0 (older): big flows from hosts 0-1.
        for w in 0..2 {
            sim.add_flow(
                FlowSpec::new(FlowId(id), hosts[w], hosts[4], 400_000, SimTime::ZERO).with_task(0),
            );
            id += 1;
        }
        // Task 1 (younger): small flows from hosts 2-3, arriving just after.
        for w in 2..4 {
            sim.add_flow(
                FlowSpec::new(
                    FlowId(id),
                    hosts[w],
                    hosts[4],
                    60_000,
                    SimTime::from_micros(200),
                )
                .with_task(1),
            );
            id += 1;
        }
        sim.run(RunLimit::until_measured_done(SimTime::from_secs(5)));
        // Task completion time = last flow of the task.
        let task_done = |task: u64| {
            sim.stats()
                .flows()
                .filter(|r| r.spec.task == Some(task))
                .map(|r| r.completed.unwrap().as_nanos())
                .max()
                .unwrap()
        };
        (task_done(0), task_done(1))
    };
    let (srpt_t0, _) = run(pase::Criterion::SrptSize);
    let (task_t0, task_t1) = run(pase::Criterion::TaskAware);
    // Task-aware must finish the older task earlier than SRPT does
    // (SRPT lets the younger task's small flows preempt).
    assert!(
        task_t0 < srpt_t0,
        "task-aware should finish task 0 sooner: {task_t0} vs {srpt_t0}"
    );
    // And the older task completes before the younger one.
    assert!(task_t0 < task_t1);
}

#[test]
fn tree_extraction_handles_multi_rooted_fabrics() {
    // A 2-spine leaf-spine: TreeInfo should classify leaves as ToRs,
    // spines as aggs, and give each leaf a deterministic single parent.
    use pase::{Level, TreeInfo};
    let mut b = TopologyBuilder::new();
    let spines = [b.add_switch(), b.add_switch()];
    let mut leaves = vec![];
    let mut hosts = vec![];
    for _ in 0..3 {
        let leaf = b.add_switch();
        for &s in &spines {
            b.connect(leaf, s, Rate::from_gbps(10), SimDuration::from_micros(25));
        }
        let h = b.add_host();
        b.connect(h, leaf, Rate::from_gbps(1), SimDuration::from_micros(25));
        leaves.push(leaf);
        hosts.push(h);
    }
    let cfg = PaseConfig::default();
    let net = b.build(Arc::new(PaseFactory::new(cfg)), &|_| {
        Box::new(pase_qdisc(&cfg, 100, 20))
    });
    let tree = TreeInfo::from_topology(&net.topo);
    for &l in &leaves {
        assert_eq!(tree.level(l), Level::Tor);
        // Deterministic single parent: the lowest-id spine.
        assert_eq!(tree.parent(l), Some(spines[0]));
    }
    assert_eq!(tree.level(spines[0]), Level::Agg);
    assert_eq!(tree.level(spines[1]), Level::Agg);
    assert!(!tree.same_rack(hosts[0], hosts[1]));
    assert!(
        tree.same_agg_subtree(hosts[0], hosts[1]),
        "one shared parent"
    );
}
