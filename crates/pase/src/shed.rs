//! Per-arbitrator control-inbox budgeting (overload protection).
//!
//! Every PASE arbitrator — the endpoint host service and the switch
//! plugins alike — meters its control inbox against a per-epoch budget
//! (an epoch is one `arb_refresh` window). Under an injected control
//! storm ([`netsim::fault::FaultEvent::CtrlStormStart`]) each arriving
//! message is charged `amplify`× its normal weight, modelling a flash
//! crowd of senders hammering the same arbitrator. When the weighted
//! depth crosses the budget the arbitrator *sheds* instead of queueing
//! without bound: stale refreshes first (a request for a flow it already
//! arbitrates), then — past twice the budget — fresh requests too.
//! Responses, `FlowDone` releases and delegation traffic are never shed:
//! dropping a release leaks arbitrator state, and responses are the very
//! signal that lets senders back off.

use netsim::time::{SimDuration, SimTime};

use crate::config::PaseConfig;

/// A weighted per-epoch control-inbox meter.
#[derive(Debug, Clone, Copy)]
pub struct InboxBudget {
    /// Messages (weight units) one epoch may absorb before shedding.
    budget: u64,
    /// Epoch length (one `arb_refresh` window).
    epoch: SimDuration,
    /// Master switch ([`PaseConfig::shed_enabled`]).
    enabled: bool,
    /// Per-message weight; 1 normally, the storm's factor while stormed.
    amplify: u32,
    /// When the current epoch started.
    epoch_start: SimTime,
    /// Weighted arrivals so far this epoch.
    depth: u64,
}

impl InboxBudget {
    /// A meter with the configured budget and epoch.
    pub fn new(cfg: &PaseConfig) -> InboxBudget {
        InboxBudget {
            budget: cfg.ctrl_budget_per_epoch as u64,
            epoch: cfg.arb_refresh,
            enabled: cfg.shed_enabled,
            amplify: 1,
            epoch_start: SimTime::ZERO,
            depth: 0,
        }
    }

    /// An injected control storm began: arrivals now cost `amplify`×.
    pub fn storm_start(&mut self, amplify: u32) {
        self.amplify = amplify.max(2);
    }

    /// The storm ended; arrivals cost their normal weight again.
    pub fn storm_end(&mut self) {
        self.amplify = 1;
    }

    /// Whether a storm is currently amplifying this inbox (tests).
    pub fn stormed(&self) -> bool {
        self.amplify > 1
    }

    /// Charge one arriving control message at `now`, rolling the epoch
    /// window when it has elapsed. Returns the weighted inbox depth after
    /// the arrival — feed it to
    /// [`netsim::stats::StatsCollector::note_ctrl_epoch_depth`] (which
    /// keeps the per-node peak) and to [`InboxBudget::should_shed`].
    pub fn charge(&mut self, now: SimTime) -> u64 {
        if now >= self.epoch_start + self.epoch {
            self.epoch_start = now;
            self.depth = 0;
        }
        self.depth += self.amplify as u64;
        self.depth
    }

    /// Whether the priority-aware shed policy is active. When it is not,
    /// the inbox is still bounded — [`InboxBudget::overflowed`] models a
    /// naive arbitrator that silently tail-drops *any* overflow message,
    /// responses and `FlowDone` releases included.
    pub fn protected(&self) -> bool {
        self.enabled
    }

    /// Hard inbox capacity: past twice the budget the inbox is full. A
    /// protected arbitrator sheds requests with a backpressure reply at
    /// this point; an unprotected one tail-drops whatever arrived.
    pub fn overflowed(&self, depth: u64) -> bool {
        depth > self.budget.saturating_mul(2)
    }

    /// Shed verdict for a *request* arriving at weighted depth `depth`.
    /// `stale` marks a refresh of a flow the arbitrator already holds.
    /// Past the budget, stale refreshes are shed (the live entry keeps
    /// arbitrating until it expires); past twice the budget, fresh
    /// requests are shed too. Non-request messages are never shed — do
    /// not consult this for them.
    pub fn should_shed(&self, depth: u64, stale: bool) -> bool {
        if !self.enabled {
            return false;
        }
        if self.overflowed(depth) {
            return true;
        }
        depth > self.budget && stale
    }

    /// Forget in-epoch state (arbitrator crash wipes soft state).
    pub fn clear(&mut self, now: SimTime) {
        self.epoch_start = now;
        self.depth = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> InboxBudget {
        let cfg = PaseConfig {
            ctrl_budget_per_epoch: 4,
            arb_refresh: SimDuration::from_micros(100),
            ..PaseConfig::default()
        };
        InboxBudget::new(&cfg)
    }

    #[test]
    fn budget_resets_each_epoch() {
        let mut b = tiny();
        let t0 = SimTime::from_micros(1);
        for _ in 0..4 {
            b.charge(t0);
        }
        assert!(!b.should_shed(4, true), "within budget: nothing sheds");
        let depth = b.charge(t0);
        assert!(b.should_shed(depth, true), "5th stale refresh sheds");
        // Next epoch: the meter starts over.
        let t1 = SimTime::from_micros(200);
        assert_eq!(b.charge(t1), 1);
        assert!(!b.should_shed(1, true));
    }

    #[test]
    fn fresh_requests_survive_until_twice_the_budget() {
        let mut b = tiny();
        let t = SimTime::from_micros(1);
        let mut depth = 0;
        for _ in 0..8 {
            depth = b.charge(t);
        }
        assert_eq!(depth, 8);
        assert!(b.should_shed(depth, true), "stale refresh past budget");
        assert!(!b.should_shed(depth, false), "fresh request under 2x");
        depth = b.charge(t);
        assert!(b.should_shed(depth, false), "fresh request past 2x budget");
    }

    #[test]
    fn storms_amplify_the_charge_and_end_cleanly() {
        let mut b = tiny();
        let t = SimTime::from_micros(1);
        b.storm_start(8);
        assert!(b.stormed());
        assert_eq!(b.charge(t), 8, "one stormed arrival costs amplify");
        assert!(b.should_shed(8, true), "a single stale refresh sheds");
        b.storm_end();
        assert!(!b.stormed());
        assert_eq!(b.charge(t), 9, "post-storm arrivals cost 1 again");
    }

    #[test]
    fn unprotected_inbox_still_overflows_at_hard_capacity() {
        let b = tiny();
        let naive = {
            let cfg = PaseConfig {
                ctrl_budget_per_epoch: 4,
                arb_refresh: SimDuration::from_micros(100),
                ..PaseConfig::default()
            }
            .without_shedding();
            InboxBudget::new(&cfg)
        };
        assert!(!naive.protected());
        assert!(b.protected());
        // Same hard capacity either way: the bound is physical, only the
        // policy (backpressure shed vs silent tail drop) differs.
        for depth in [1, 8, 9, 100] {
            assert_eq!(naive.overflowed(depth), depth > 8);
            assert_eq!(b.overflowed(depth), depth > 8);
        }
    }

    #[test]
    fn disabled_meter_never_sheds() {
        let cfg = PaseConfig {
            ctrl_budget_per_epoch: 1,
            ..PaseConfig::default()
        }
        .without_shedding();
        let mut b = InboxBudget::new(&cfg);
        let t = SimTime::from_micros(1);
        for _ in 0..100 {
            b.charge(t);
        }
        assert!(
            !b.should_shed(100, true),
            "shedding off: process everything"
        );
    }
}
