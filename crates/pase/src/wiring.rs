//! Wiring PASE onto a built simulation.

use std::sync::Arc;

use netsim::event::EventKind;
use netsim::host::MAINTENANCE_TIMER_BASE;
use netsim::node::Node;
use netsim::sim::Simulation;

use crate::config::PaseConfig;
use crate::host_service::PaseHostService;
use crate::plugin::{PaseSwitchPlugin, DELEG_TIMER_TOKEN};
use crate::tree::{Level, TreeInfo};

/// Install the PASE control plane on every host and switch of `sim`:
/// endpoint arbitrators as host services, ToR/agg arbitrators as switch
/// plugins, and the periodic delegation timers.
///
/// Call after [`netsim::topology::TopologyBuilder::build`] and before
/// scheduling flows.
pub fn install(sim: &mut Simulation, cfg: PaseConfig) -> Arc<TreeInfo> {
    let tree = Arc::new(TreeInfo::from_topology(sim.topo()));
    let hosts = sim.topo().hosts();
    let switches = sim.topo().switches();
    // Hosts: endpoint arbitrators for their own access links.
    for h in hosts {
        let rate = sim
            .topo()
            .link_rate(h, sim.topo().host_tor(h))
            .expect("host access link");
        if let Node::Host(host) = sim.node_mut(h) {
            host.set_service(Box::new(PaseHostService::new(
                cfg,
                h,
                rate,
                Arc::clone(&tree),
            )));
        }
        // Kick off the periodic lease GC of the endpoint arbitrators.
        sim.scheduler_mut().schedule_in(
            cfg.arb_expiry,
            h,
            EventKind::PluginTimer(MAINTENANCE_TIMER_BASE),
        );
    }
    // Switches: ToR and aggregation arbitrators (the core needs none: all
    // of its links are arbitrated from below).
    if cfg.end_to_end {
        for sw in switches {
            let level = tree.level(sw);
            if level == Level::Core {
                continue;
            }
            if let Node::Switch(s) = sim.node_mut(sw) {
                s.set_plugin(Box::new(PaseSwitchPlugin::new(cfg, sw, Arc::clone(&tree))));
            }
            // Kick off the delegation report loop on ToRs.
            if cfg.delegation && level == Level::Tor && tree.parent(sw).is_some() {
                sim.scheduler_mut().schedule_in(
                    cfg.deleg_period,
                    sw,
                    EventKind::PluginTimer(DELEG_TIMER_TOKEN),
                );
            }
            // And the periodic lease GC of the switch arbitrators.
            sim.scheduler_mut().schedule_in(
                cfg.arb_expiry,
                sw,
                EventKind::PluginTimer(MAINTENANCE_TIMER_BASE),
            );
        }
    }
    tree
}
