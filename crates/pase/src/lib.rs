//! # pase — the paper's contribution
//!
//! PASE ("Friends, not Foes", SIGCOMM 2014) synthesizes the three
//! transport strategies of prior data-center designs, each doing only what
//! it is best at:
//!
//! | Strategy | Role in PASE | Module |
//! |---|---|---|
//! | Arbitration | coarse-grained inter-flow prioritization: per-link arbitrators assign each flow a priority queue and a reference rate (Algorithm 1) | [`algorithm`], [`host_service`], [`plugin`] |
//! | In-network prioritization | per-packet, sub-RTT scheduling using the few strict-priority queues commodity switches already have | [`netsim::queue::StrictPrioQdisc`] |
//! | Self-adjusting endpoints | discover spare capacity / back off via DCTCP control laws, bootstrapped by the reference rate (Algorithm 2) | [`endpoint`] |
//!
//! The control plane is scalable by construction (paper §3.1.2):
//! **bottom-up arbitration** (intra-rack flows never leave the endpoints),
//! **early pruning** (only top-queue flows climb the hierarchy) and
//! **delegation** (agg–core capacity is sliced and handed to ToR
//! arbitrators). Everything is deployment friendly: switches need only
//! priority queues + ECN ([`netsim::queue::StrictPrioQdisc`] over RED).
//!
//! ## Usage
//!
//! ```ignore
//! let net = topology_builder.build(Arc::new(PaseFactory::new(cfg)), &qdisc_chooser);
//! let mut sim = Simulation::new(net);
//! pase::install(&mut sim, cfg);          // arbitrators + delegation timers
//! sim.add_flow(...);
//! sim.run(RunLimit::until_measured_done(backstop));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod config;
pub mod endpoint;
pub mod host_service;
pub mod messages;
pub mod plugin;
pub mod shed;
pub mod tree;
mod wiring;

pub use algorithm::{Decision, FlowEntry, LinkArbitrator};
pub use config::{Criterion, PaseConfig};
pub use endpoint::PaseSender;
pub use host_service::{ArbPlan, LegResults, PaseHostService};
pub use messages::{ArbMsg, ArbRequest, ArbResponse, Leg};
pub use plugin::PaseSwitchPlugin;
pub use shed::InboxBudget;
pub use tree::{Level, TreeInfo};
pub use wiring::install;

use netsim::flow::{FlowSpec, ReceiverHint};
use netsim::host::{AgentFactory, FlowAgent};
use netsim::queue::StrictPrioQdisc;
use transport::{ReceiverConfig, SimpleReceiver};

/// Builds PASE senders and receivers.
#[derive(Debug, Clone, Default)]
pub struct PaseFactory {
    cfg: PaseConfig,
}

impl PaseFactory {
    /// A factory with the given parameters.
    pub fn new(cfg: PaseConfig) -> PaseFactory {
        PaseFactory { cfg }
    }
}

impl AgentFactory for PaseFactory {
    fn sender(&self, spec: &FlowSpec) -> Box<dyn FlowAgent> {
        Box::new(PaseSender::new(spec, self.cfg))
    }

    fn receiver(&self, hint: ReceiverHint) -> Box<dyn FlowAgent> {
        // ACKs ride the top priority band (they are tiny and pace the
        // forward path; queueing them behind bulk data would distort
        // scheduling).
        Box::new(SimpleReceiver::new(
            hint,
            ReceiverConfig {
                ack_prio: 0,
                ack_rank: 0,
            },
        ))
    }
}

/// The switch queue discipline PASE assumes: `n` strict-priority bands
/// with per-band RED/ECN (paper §3.3: PRIO + RED, eight queues, marking
/// threshold `K`).
pub fn pase_qdisc(cfg: &PaseConfig, band_cap_pkts: usize, mark_thresh: usize) -> StrictPrioQdisc {
    StrictPrioQdisc::new(cfg.n_queues as usize, band_cap_pkts, mark_thresh)
}
