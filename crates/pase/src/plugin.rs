//! PASE switch-resident arbitrators.
//!
//! One plugin instance runs co-located with each ToR and aggregation
//! switch. A ToR arbitrates its uplink (`ToR → agg`) for sender legs and
//! its downlink (`agg → ToR`) for receiver legs; with **delegation** it
//! additionally owns a virtual slice of the `agg → core` (sender) and
//! `core → agg` (receiver) links so inter-rack flows get a decision one
//! hop from the source (paper §3.1.2). An aggregation switch arbitrates
//! the real agg–core links when delegation is off, and rebalances the
//! delegated virtual capacities when it is on.
//!
//! **Early pruning** stops requests from climbing once a flow falls
//! outside the top `prune_depth` queues.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use netsim::fault::NodeFault;
use netsim::host::MAINTENANCE_TIMER_BASE;
use netsim::ids::NodeId;
use netsim::packet::Packet;
use netsim::switch::{SwitchIo, SwitchPlugin};
use netsim::time::{Rate, SimTime};

use crate::algorithm::{FlowEntry, LinkArbitrator};
use crate::config::PaseConfig;
use crate::messages::{ArbMsg, ArbRequest, ArbResponse, Leg};
use crate::shed::InboxBudget;
use crate::tree::{Level, TreeInfo};

/// Base timer token for the periodic delegation report (child side). The
/// live token is `DELEG_TIMER_TOKEN + epoch`, where the epoch bumps on
/// every arbitrator restart so stale pre-crash timers die silently.
pub const DELEG_TIMER_TOKEN: u64 = 1;

/// PASE arbitrator co-located with a switch.
pub struct PaseSwitchPlugin {
    cfg: PaseConfig,
    me: NodeId,
    level: Level,
    tree: Arc<TreeInfo>,
    /// Arbitrates `me → parent` for sender legs.
    up: Option<LinkArbitrator>,
    /// Arbitrates `parent → me` for receiver legs.
    down: Option<LinkArbitrator>,
    /// ToR only, delegation on: virtual slice of `agg → core`.
    deleg_up: Option<LinkArbitrator>,
    /// ToR only, delegation on: virtual slice of `core → agg`.
    deleg_down: Option<LinkArbitrator>,
    /// Agg only, delegation on: children's last reported demands.
    child_demands: HashMap<NodeId, (Rate, Rate)>,
    /// Injected-fault state: a crashed arbitrator ignores all control
    /// traffic and timers until restarted (the data plane keeps
    /// forwarding — only the co-located control process dies).
    crashed: bool,
    /// Generation counter for the delegation report loop. A restart
    /// starts a fresh chain under a new epoch so a timer still pending
    /// from before the crash cannot double the reporting rate.
    deleg_epoch: u64,
    /// Generation counter for the periodic lease-GC tick (same restart
    /// discipline as `deleg_epoch`).
    maint_epoch: u64,
    /// Control-inbox meter shared by every arbitrator this plugin owns
    /// (overload protection; see [`crate::shed`]).
    budget: InboxBudget,
}

impl PaseSwitchPlugin {
    /// Build the arbitrator for switch `me`.
    pub fn new(cfg: PaseConfig, me: NodeId, tree: Arc<TreeInfo>) -> Self {
        let level = tree.level(me);
        let uplink_rate = tree.uplink_rate(me);
        let (up, down) = match uplink_rate {
            Some(rate) => (
                Some(LinkArbitrator::new(rate, &cfg)),
                Some(LinkArbitrator::new(rate, &cfg)),
            ),
            None => (None, None),
        };
        // A ToR under an agg that itself has a core uplink gets delegated
        // slices of the agg–core links.
        let (deleg_up, deleg_down) = if cfg.delegation && level == Level::Tor {
            match tree.parent(me).and_then(|agg| {
                tree.uplink_rate(agg)
                    .map(|r| (r, tree.children(agg).len().max(1)))
            }) {
                Some((agg_core_rate, n_children)) => {
                    let slice = agg_core_rate.mul_f64(1.0 / n_children as f64);
                    (
                        Some(LinkArbitrator::new(slice, &cfg)),
                        Some(LinkArbitrator::new(slice, &cfg)),
                    )
                }
                None => (None, None),
            }
        } else {
            (None, None)
        };
        PaseSwitchPlugin {
            cfg,
            me,
            level,
            tree,
            up,
            down,
            deleg_up,
            deleg_down,
            child_demands: HashMap::new(),
            crashed: false,
            deleg_epoch: 0,
            maint_epoch: 0,
            budget: InboxBudget::new(&cfg),
        }
    }

    /// Expire leases on every arbitrator this plugin owns: entries whose
    /// endpoint stopped refreshing (crashed host) are dropped after
    /// `arb_expiry` even when no request traffic arrives to trigger the
    /// request-path GC, so a dead flow cannot wedge the top queue.
    fn gc_all(&mut self, now: SimTime) {
        let expiry = self.cfg.arb_expiry;
        for arb in [
            self.up.as_mut(),
            self.down.as_mut(),
            self.deleg_up.as_mut(),
            self.deleg_down.as_mut(),
        ]
        .into_iter()
        .flatten()
        {
            arb.gc(now, expiry);
        }
    }

    /// Whether an injected crash currently has this arbitrator down
    /// (tests).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Whether an injected control storm is amplifying this arbitrator's
    /// inbox (tests).
    pub fn is_stormed(&self) -> bool {
        self.budget.stormed()
    }

    /// Current delegated uplink-slice capacity (tests).
    pub fn deleg_up_capacity(&self) -> Option<Rate> {
        self.deleg_up.as_ref().map(|a| a.capacity())
    }

    /// Flows tracked by the uplink arbitrator (tests).
    pub fn up_flows(&self) -> usize {
        self.up.as_ref().map_or(0, |a| a.n_flows())
    }

    /// Flows tracked by the downlink arbitrator (tests).
    pub fn down_flows(&self) -> usize {
        self.down.as_ref().map_or(0, |a| a.n_flows())
    }

    fn entry_from(req: &ArbRequest, now: SimTime) -> FlowEntry {
        FlowEntry {
            remaining: req.remaining,
            deadline: req.deadline,
            demand: req.demand,
            task: req.task,
            last_update: now,
        }
    }

    /// Does this flow's path cross the core (i.e. leave the agg subtree)?
    fn crosses_core(&self, req: &ArbRequest) -> bool {
        !self.tree.same_agg_subtree(req.src, req.dst)
    }

    fn reply(&self, req: &ArbRequest, shedding: bool, io: &mut SwitchIo<'_, '_>) {
        let resp = ArbMsg::Response(ArbResponse {
            flow: req.flow,
            leg: req.leg,
            queue: req.acc_queue,
            rate: req.acc_rate,
            shedding,
        });
        io.send(Packet::ctrl(
            req.flow,
            self.me,
            req.reply_to,
            Box::new(resp),
        ));
    }

    /// Whether any arbitrator on this request's leg already holds a live
    /// entry for the flow (making the request a *stale refresh* — the
    /// first thing an overloaded arbitrator sheds).
    fn is_refresh(&self, req: &ArbRequest) -> bool {
        let (primary, deleg) = match req.leg {
            Leg::Sender => (self.up.as_ref(), self.deleg_up.as_ref()),
            Leg::Receiver => (self.down.as_ref(), self.deleg_down.as_ref()),
        };
        primary.is_some_and(|a| a.contains(req.flow)) || deleg.is_some_and(|a| a.contains(req.flow))
    }

    fn handle_request(&mut self, mut req: ArbRequest, io: &mut SwitchIo<'_, '_>) {
        let now = io.now();
        let expiry = self.cfg.arb_expiry;
        // Which of my links lie on this leg of the path?
        let primary = match req.leg {
            Leg::Sender => self.up.as_mut(),
            Leg::Receiver => self.down.as_mut(),
        };
        if let Some(arb) = primary {
            arb.gc(now, expiry);
            let d = arb.update_and_decide(req.flow, Self::entry_from(&req, now));
            req.accumulate(d.queue, d.rate);
        }
        let crosses_core = self.crosses_core(&req);
        if self.level == Level::Tor && crosses_core {
            // The agg–core hop still needs arbitration.
            let deleg = match req.leg {
                Leg::Sender => self.deleg_up.as_mut(),
                Leg::Receiver => self.deleg_down.as_mut(),
            };
            if let Some(arb) = deleg {
                // Delegation: decide locally on the virtual slice.
                arb.gc(now, expiry);
                let d = arb.update_and_decide(req.flow, Self::entry_from(&req, now));
                req.accumulate(d.queue, d.rate);
            } else if let Some(parent) = self.tree.parent(self.me) {
                // No delegation: climb, unless pruned.
                let pruned = self.cfg.early_pruning && req.acc_queue >= self.cfg.prune_depth;
                if !pruned {
                    io.sim.stats.note_arb_climbed(self.me);
                    io.send(Packet::ctrl(
                        req.flow,
                        self.me,
                        parent,
                        Box::new(ArbMsg::Request(req)),
                    ));
                    return;
                }
                io.sim.stats.note_arb_pruned(self.me);
            }
        }
        self.reply(&req, false, io);
    }

    fn handle_flow_done(
        &mut self,
        flow: netsim::ids::FlowId,
        src: NodeId,
        dst: NodeId,
        leg: Leg,
        io: &mut SwitchIo<'_, '_>,
    ) {
        match leg {
            Leg::Sender => {
                if let Some(a) = self.up.as_mut() {
                    a.remove(flow);
                }
                if let Some(a) = self.deleg_up.as_mut() {
                    a.remove(flow);
                }
            }
            Leg::Receiver => {
                if let Some(a) = self.down.as_mut() {
                    a.remove(flow);
                }
                if let Some(a) = self.deleg_down.as_mut() {
                    a.remove(flow);
                }
            }
        }
        // Without delegation the parent also holds state for core-crossing
        // flows.
        let crosses_core = !self.tree.same_agg_subtree(src, dst);
        if self.level == Level::Tor && crosses_core && !self.cfg.delegation {
            if let Some(parent) = self.tree.parent(self.me) {
                io.send(Packet::ctrl(
                    flow,
                    self.me,
                    parent,
                    Box::new(ArbMsg::FlowDone {
                        flow,
                        src,
                        dst,
                        leg,
                    }),
                ));
            }
        }
    }

    /// Agg side: rebalance the delegated virtual links across children in
    /// proportion to their reported demands (with a minimum share so idle
    /// children can ramp up).
    fn rebalance_and_grant(&mut self, reporter: NodeId, io: &mut SwitchIo<'_, '_>) {
        let Some(total) = self.tree.uplink_rate(self.me) else {
            return;
        };
        let min_share = self.cfg.deleg_min_share;
        let floor_up =
            |d: Rate| -> f64 { (d.as_bps() as f64).max(total.as_bps() as f64 * min_share) };
        let children = self.tree.children(self.me).to_vec();
        let sum_up: f64 = children
            .iter()
            .map(|c| floor_up(self.child_demands.get(c).map_or(Rate::ZERO, |d| d.0)))
            .sum();
        let sum_down: f64 = children
            .iter()
            .map(|c| floor_up(self.child_demands.get(c).map_or(Rate::ZERO, |d| d.1)))
            .sum();
        let (rep_up, rep_down) = self
            .child_demands
            .get(&reporter)
            .copied()
            .unwrap_or((Rate::ZERO, Rate::ZERO));
        let up_capacity = total.mul_f64(floor_up(rep_up) / sum_up.max(1.0));
        let down_capacity = total.mul_f64(floor_up(rep_down) / sum_down.max(1.0));
        io.send(Packet::ctrl(
            netsim::ids::FlowId(u64::MAX),
            self.me,
            reporter,
            Box::new(ArbMsg::DelegGrant {
                up_capacity,
                down_capacity,
            }),
        ));
    }
}

impl SwitchPlugin for PaseSwitchPlugin {
    fn on_ctrl(&mut self, mut pkt: Packet, io: &mut SwitchIo<'_, '_>) {
        if self.crashed {
            // A crashed arbitrator is a black hole: requests addressed to
            // it die here, and the sending endpoints' watchdogs handle
            // the silence (see [`crate::endpoint`]).
            io.sim.stats.note_ctrl_lost_to_crash();
            return;
        }
        let Some(msg) = pkt.take_proto::<ArbMsg>() else {
            io.sim.stats.note_ctrl_unattended();
            return;
        };
        let now = io.now();
        let depth = self.budget.charge(now);
        io.sim.stats.note_ctrl_epoch_depth(self.me, depth);
        if !self.budget.protected() && self.budget.overflowed(depth) {
            // Unprotected bounded inbox: silent tail drop of whatever
            // arrived — responses and FlowDone releases included, so
            // leases leak until expiry and senders hear nothing but their
            // watchdogs. This is the failure mode the priority-aware shed
            // policy exists to prevent.
            io.sim.stats.note_ctrl_shed(self.me);
            if io.sim.stats.tracing() {
                io.sim.stats.trace_event(
                    now,
                    &netsim::trace::TraceEvent::Shed {
                        node: self.me,
                        flow: pkt.flow,
                        stale: false,
                    },
                );
            }
            return;
        }
        match *msg {
            ArbMsg::Request(req) => {
                // Overloaded: shed instead of arbitrating. The reply
                // carries whatever the leg accumulated so far plus the
                // load-shed signal, so the sender still gets an answer —
                // just not a fresh decision — and backs off. Releases
                // (`FlowDone`) and delegation traffic are never shed.
                let stale = self.is_refresh(&req);
                if self.budget.should_shed(depth, stale) {
                    io.sim.stats.note_ctrl_shed(self.me);
                    if io.sim.stats.tracing() {
                        io.sim.stats.trace_event(
                            now,
                            &netsim::trace::TraceEvent::Shed {
                                node: self.me,
                                flow: req.flow,
                                stale,
                            },
                        );
                    }
                    self.reply(&req, true, io);
                    return;
                }
                io.sim.stats.note_ctrl_processed(self.me);
                self.handle_request(req, io)
            }
            ArbMsg::FlowDone {
                flow,
                src,
                dst,
                leg,
            } => {
                io.sim.stats.note_ctrl_processed(self.me);
                self.handle_flow_done(flow, src, dst, leg, io)
            }
            ArbMsg::DelegUpdate {
                child,
                up_demand,
                down_demand,
            } => {
                io.sim.stats.note_ctrl_processed(self.me);
                self.child_demands.insert(child, (up_demand, down_demand));
                self.rebalance_and_grant(child, io);
            }
            ArbMsg::DelegGrant {
                up_capacity,
                down_capacity,
            } => {
                io.sim.stats.note_ctrl_processed(self.me);
                if let Some(a) = self.deleg_up.as_mut() {
                    a.set_capacity(up_capacity);
                }
                if let Some(a) = self.deleg_down.as_mut() {
                    a.set_capacity(down_capacity);
                }
            }
            ArbMsg::Response(_) => {
                // Responses are addressed to hosts, never to switches.
                io.sim.stats.note_ctrl_processed(self.me);
                debug_assert!(false, "arbitration response delivered to a switch");
            }
        }
    }

    fn on_timer(&mut self, token: u64, io: &mut SwitchIo<'_, '_>) {
        if token == MAINTENANCE_TIMER_BASE + self.maint_epoch {
            // Lease GC. A crashed plugin skips the tick (its state is
            // already gone); the restart path re-arms under a new epoch.
            if !self.crashed {
                let now = io.now();
                self.gc_all(now);
                io.set_timer(
                    self.cfg.arb_expiry,
                    MAINTENANCE_TIMER_BASE + self.maint_epoch,
                );
            }
            return;
        }
        if self.crashed
            || token != DELEG_TIMER_TOKEN + self.deleg_epoch
            || !self.cfg.delegation
            || self.level != Level::Tor
        {
            return;
        }
        let Some(parent) = self.tree.parent(self.me) else {
            return;
        };
        // Report demand on the delegated slices so the parent can
        // rebalance; only aggregate information travels (paper §3.1.2).
        if self.deleg_up.is_some() || self.deleg_down.is_some() {
            let up_demand = self
                .deleg_up
                .as_ref()
                .map_or(Rate::ZERO, |a| a.top_queue_demand());
            let down_demand = self
                .deleg_down
                .as_ref()
                .map_or(Rate::ZERO, |a| a.top_queue_demand());
            io.send(Packet::ctrl(
                netsim::ids::FlowId(u64::MAX),
                self.me,
                parent,
                Box::new(ArbMsg::DelegUpdate {
                    child: self.me,
                    up_demand,
                    down_demand,
                }),
            ));
        }
        io.set_timer(self.cfg.deleg_period, DELEG_TIMER_TOKEN + self.deleg_epoch);
    }

    fn on_fault(&mut self, fault: NodeFault, io: &mut SwitchIo<'_, '_>) {
        match fault {
            NodeFault::Crash => {
                self.crashed = true;
                // All arbitration soft state dies with the process; only
                // the periodic endpoint refreshes can rebuild it.
                if let Some(a) = self.up.as_mut() {
                    a.clear();
                }
                if let Some(a) = self.down.as_mut() {
                    a.clear();
                }
                if let Some(a) = self.deleg_up.as_mut() {
                    a.clear();
                }
                if let Some(a) = self.deleg_down.as_mut() {
                    a.clear();
                }
                self.child_demands.clear();
                self.budget.clear(io.now());
            }
            NodeFault::CtrlStormStart { amplify } => self.budget.storm_start(amplify),
            NodeFault::CtrlStormEnd => self.budget.storm_end(),
            NodeFault::Restart => {
                if !self.crashed {
                    return;
                }
                self.crashed = false;
                // The fresh process starts empty and re-learns purely from
                // the next refresh round (within `arb_expiry`). Restart the
                // delegation report and lease-GC loops under new epochs: a
                // timer still pending from before the crash is now stale
                // and inert.
                self.deleg_epoch += 1;
                if self.cfg.delegation
                    && self.level == Level::Tor
                    && self.tree.parent(self.me).is_some()
                {
                    io.set_timer(self.cfg.deleg_period, DELEG_TIMER_TOKEN + self.deleg_epoch);
                }
                self.maint_epoch += 1;
                io.set_timer(
                    self.cfg.arb_expiry,
                    MAINTENANCE_TIMER_BASE + self.maint_epoch,
                );
            }
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
