//! The PASE endpoint control plane.
//!
//! Each host runs two leaf arbitrators (paper §3.1: arbitration "can be
//! implemented at the end-hosts themselves, e.g., for their own links to
//! the switch"):
//!
//! * the **uplink** arbitrator for `host → ToR`, consulted synchronously
//!   by local sender agents (zero latency — this is why intra-rack flows
//!   "incur no additional network latency for arbitration");
//! * the **downlink** arbitrator for `ToR → host`, driven by receiver-leg
//!   requests arriving as control packets from remote sources.
//!
//! The service also caches arbitration responses per flow so sender agents
//! can read them when woken.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use netsim::fault::NodeFault;
use netsim::host::{HostIo, HostService, MAINTENANCE_TIMER_BASE};
use netsim::ids::{FlowId, NodeId};
use netsim::packet::Packet;
use netsim::time::{Rate, SimTime};

use crate::algorithm::{Decision, FlowEntry, LinkArbitrator};
use crate::config::PaseConfig;
use crate::messages::{ArbMsg, ArbRequest, ArbResponse, Leg};
use crate::shed::InboxBudget;
use crate::tree::TreeInfo;

/// Cached per-flow results from the two legs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LegResults {
    /// Latest sender-leg (network) response.
    pub sender: Option<Decision>,
    /// Latest receiver-leg response.
    pub receiver: Option<Decision>,
    /// A leg response arrived carrying the load-shed signal since the
    /// sender last consumed it (see [`PaseHostService::take_shed`]).
    pub shed: bool,
}

/// Where a source must send its arbitration traffic for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbPlan {
    /// ToR to contact for the sender leg (`None`: intra-rack or
    /// local-only arbitration).
    pub sender_leg_to: Option<NodeId>,
    /// Destination host to contact for the receiver leg (`None`:
    /// local-only arbitration).
    pub receiver_leg_to: Option<NodeId>,
}

/// Host-local PASE control state.
pub struct PaseHostService {
    cfg: PaseConfig,
    me: NodeId,
    tree: Arc<TreeInfo>,
    uplink: LinkArbitrator,
    downlink: LinkArbitrator,
    legs: HashMap<FlowId, LegResults>,
    /// Injected-fault state: a crashed control process ignores control
    /// packets and timers until restarted (mirrors
    /// [`crate::plugin::PaseSwitchPlugin`]).
    crashed: bool,
    /// Generation counter for the periodic lease-GC tick; bumped on
    /// restart so pre-crash ticks die silently.
    gc_epoch: u64,
    /// Control-inbox meter shared by the two leaf arbitrators (overload
    /// protection; see [`crate::shed`]).
    budget: InboxBudget,
}

impl PaseHostService {
    /// Create the service for host `me` with access link `access_rate`.
    pub fn new(cfg: PaseConfig, me: NodeId, access_rate: Rate, tree: Arc<TreeInfo>) -> Self {
        PaseHostService {
            cfg,
            me,
            tree,
            uplink: LinkArbitrator::new(access_rate, &cfg),
            downlink: LinkArbitrator::new(access_rate, &cfg),
            legs: HashMap::new(),
            crashed: false,
            gc_epoch: 0,
            budget: InboxBudget::new(&cfg),
        }
    }

    /// Whether an injected crash currently has the control process down
    /// (tests).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Compute the control-plane plan for a flow sourced at this host.
    pub fn plan(&self, dst: NodeId) -> ArbPlan {
        if !self.cfg.end_to_end {
            return ArbPlan {
                sender_leg_to: None,
                receiver_leg_to: None,
            };
        }
        let sender_leg_to = if self.tree.same_rack(self.me, dst) {
            None // intra-rack: endpoints only (paper §3.1.2)
        } else {
            Some(self.tree.tor_of(self.me))
        };
        ArbPlan {
            sender_leg_to,
            receiver_leg_to: Some(dst),
        }
    }

    /// Synchronous arbitration of the local uplink for a sender agent.
    /// Inserts/refreshes the entry and returns the decision.
    #[allow(clippy::too_many_arguments)]
    pub fn local_update(
        &mut self,
        flow: FlowId,
        remaining: u64,
        deadline: Option<SimTime>,
        task: Option<u64>,
        demand: Rate,
        now: SimTime,
    ) -> Decision {
        self.uplink.gc(now, self.cfg.arb_expiry);
        self.legs.entry(flow).or_default();
        self.uplink.update_and_decide(
            flow,
            FlowEntry {
                remaining,
                deadline,
                demand,
                task,
                last_update: now,
            },
        )
    }

    /// Remove a finished flow from local state.
    pub fn local_remove(&mut self, flow: FlowId) {
        self.uplink.remove(flow);
        self.legs.remove(&flow);
    }

    /// Latest leg responses for a flow.
    pub fn leg_results(&self, flow: FlowId) -> LegResults {
        self.legs.get(&flow).copied().unwrap_or_default()
    }

    /// Read and clear the load-shed signal for `flow`. The local sender
    /// consumes it once per wake-up to drive its refresh backoff.
    pub fn take_shed(&mut self, flow: FlowId) -> bool {
        match self.legs.get_mut(&flow) {
            Some(slot) => core::mem::take(&mut slot.shed),
            None => false,
        }
    }

    /// Whether an injected control storm is amplifying this host's
    /// arbitrators (tests).
    pub fn is_stormed(&self) -> bool {
        self.budget.stormed()
    }

    /// Number of flows tracked by the uplink arbitrator (tests).
    pub fn uplink_flows(&self) -> usize {
        self.uplink.n_flows()
    }

    /// Number of flows tracked by the downlink arbitrator (tests).
    pub fn downlink_flows(&self) -> usize {
        self.downlink.n_flows()
    }

    /// Handle a receiver-leg request for a flow destined to this host.
    fn on_receiver_request(&mut self, mut req: ArbRequest, io: &mut HostIo<'_, '_, '_>) {
        let now = io.now();
        self.downlink.gc(now, self.cfg.arb_expiry);
        let d = self.downlink.update_and_decide(
            req.flow,
            FlowEntry {
                remaining: req.remaining,
                deadline: req.deadline,
                demand: req.demand,
                task: req.task,
                last_update: now,
            },
        );
        req.accumulate(d.queue, d.rate);
        // Forward up the destination half of the tree unless intra-rack or
        // pruned (paper §3.1.2).
        let cross_rack = !self.tree.same_rack(req.src, self.me);
        let pruned = self.cfg.early_pruning && req.acc_queue >= self.cfg.prune_depth;
        if cross_rack && pruned {
            io.sim.stats.note_arb_pruned(self.me);
        }
        let forward = cross_rack && !pruned;
        if forward {
            io.sim.stats.note_arb_climbed(self.me);
            let tor = self.tree.tor_of(self.me);
            io.send(Packet::ctrl(
                req.flow,
                self.me,
                tor,
                Box::new(ArbMsg::Request(req)),
            ));
        } else {
            let resp = ArbMsg::Response(ArbResponse {
                flow: req.flow,
                leg: Leg::Receiver,
                queue: req.acc_queue,
                rate: req.acc_rate,
                shedding: false,
            });
            io.send(Packet::ctrl(
                req.flow,
                self.me,
                req.reply_to,
                Box::new(resp),
            ));
        }
    }
}

impl HostService for PaseHostService {
    fn on_ctrl(&mut self, mut pkt: Packet, io: &mut HostIo<'_, '_, '_>) {
        if self.crashed {
            // A crashed control process is a black hole: remote requests
            // and leg responses die here and the senders' watchdogs
            // handle the silence (see [`crate::endpoint`]).
            io.sim.stats.note_ctrl_lost_to_crash();
            return;
        }
        let Some(msg) = pkt.take_proto::<ArbMsg>() else {
            io.sim.stats.note_ctrl_unattended();
            return;
        };
        let now = io.now();
        let depth = self.budget.charge(now);
        io.sim.stats.note_ctrl_epoch_depth(self.me, depth);
        if !self.budget.protected() && self.budget.overflowed(depth) {
            // Unprotected bounded inbox: silent tail drop of whatever
            // arrived — responses and FlowDone releases included, so
            // leases leak until expiry and senders hear nothing but their
            // watchdogs. This is the failure mode the priority-aware shed
            // policy exists to prevent.
            io.sim.stats.note_ctrl_shed(self.me);
            if io.sim.stats.tracing() {
                io.sim.stats.trace_event(
                    now,
                    &netsim::trace::TraceEvent::Shed {
                        node: self.me,
                        flow: pkt.flow,
                        stale: false,
                    },
                );
            }
            return;
        }
        match *msg {
            ArbMsg::Request(req) => {
                debug_assert_eq!(req.leg, Leg::Receiver, "hosts only serve receiver legs");
                // Overloaded: shed instead of arbitrating. The reply
                // carries whatever the leg accumulated so far plus the
                // load-shed signal, so the sender still gets an answer —
                // just not a fresh decision — and backs off.
                let stale = self.downlink.contains(req.flow);
                if self.budget.should_shed(depth, stale) {
                    io.sim.stats.note_ctrl_shed(self.me);
                    if io.sim.stats.tracing() {
                        io.sim.stats.trace_event(
                            now,
                            &netsim::trace::TraceEvent::Shed {
                                node: self.me,
                                flow: req.flow,
                                stale,
                            },
                        );
                    }
                    io.send(Packet::ctrl(
                        req.flow,
                        self.me,
                        req.reply_to,
                        Box::new(ArbMsg::Response(ArbResponse {
                            flow: req.flow,
                            leg: Leg::Receiver,
                            queue: req.acc_queue,
                            rate: req.acc_rate,
                            shedding: true,
                        })),
                    ));
                    return;
                }
                io.sim.stats.note_ctrl_processed(self.me);
                self.on_receiver_request(req, io);
            }
            ArbMsg::Response(resp) => {
                io.sim.stats.note_ctrl_processed(self.me);
                let slot = self.legs.entry(resp.flow).or_default();
                if resp.shedding {
                    // A shed reply is backpressure, not a decision — its
                    // queue/rate merely echo what the sender already
                    // believed. Age the leg out so the flow rides its
                    // always-fresh local (uplink) arbitration until the
                    // overloaded arbitrator answers for real: a stale
                    // crowd-era allocation held across a backed-off
                    // refresh gap would keep throttling or suppressing
                    // the flow long after the burst has drained.
                    match resp.leg {
                        Leg::Sender => slot.sender = None,
                        Leg::Receiver => slot.receiver = None,
                    }
                } else {
                    let d = Decision {
                        queue: resp.queue,
                        rate: resp.rate,
                    };
                    match resp.leg {
                        Leg::Sender => slot.sender = Some(d),
                        Leg::Receiver => slot.receiver = Some(d),
                    }
                }
                slot.shed |= resp.shedding;
                io.wake_flow(resp.flow);
            }
            ArbMsg::FlowDone { flow, src, leg, .. } => {
                io.sim.stats.note_ctrl_processed(self.me);
                debug_assert_eq!(leg, Leg::Receiver);
                self.downlink.remove(flow);
                // Propagate up the destination half if the flow left the
                // rack (the ToR and above also hold state).
                if self.cfg.end_to_end && !self.tree.same_rack(src, self.me) {
                    let tor = self.tree.tor_of(self.me);
                    io.send(Packet::ctrl(
                        flow,
                        self.me,
                        tor,
                        Box::new(ArbMsg::FlowDone {
                            flow,
                            src,
                            dst: self.me,
                            leg,
                        }),
                    ));
                }
            }
            ArbMsg::DelegUpdate { .. } | ArbMsg::DelegGrant { .. } => {
                // Delegation messages never target hosts.
                io.sim.stats.note_ctrl_processed(self.me);
            }
        }
    }

    fn on_timer(&mut self, token: u64, io: &mut HostIo<'_, '_, '_>) {
        // Periodic lease GC: entries whose owner stopped refreshing
        // (crashed endpoint, lost FlowDone) expire after `arb_expiry` even
        // when no request traffic touches the arbitrator in the meantime,
        // so a dead flow cannot wedge the top priority queue. The tick is
        // infrastructure (not flow progress): the token rides above
        // [`MAINTENANCE_TIMER_BASE`] so the stuck-flow oracle ignores it.
        if token != MAINTENANCE_TIMER_BASE + self.gc_epoch || self.crashed {
            return;
        }
        let now = io.now();
        self.uplink.gc(now, self.cfg.arb_expiry);
        self.downlink.gc(now, self.cfg.arb_expiry);
        io.set_timer(self.cfg.arb_expiry, MAINTENANCE_TIMER_BASE + self.gc_epoch);
    }

    fn on_fault(&mut self, fault: NodeFault, io: &mut HostIo<'_, '_, '_>) {
        match fault {
            NodeFault::Crash => {
                // The endpoint control process loses everything: both leaf
                // arbitrators and the cached leg responses. Local senders
                // repopulate the uplink (and re-request the legs) on their
                // next refresh; remote senders repopulate the downlink the
                // same way once the process restarts.
                self.crashed = true;
                self.uplink.clear();
                self.downlink.clear();
                self.legs.clear();
                self.budget.clear(io.now());
            }
            NodeFault::CtrlStormStart { amplify } => self.budget.storm_start(amplify),
            NodeFault::CtrlStormEnd => self.budget.storm_end(),
            NodeFault::Restart => {
                if !self.crashed {
                    return;
                }
                self.crashed = false;
                // Fresh process, fresh GC loop: a tick still pending from
                // before the crash is now stale and inert.
                self.gc_epoch += 1;
                io.set_timer(self.cfg.arb_expiry, MAINTENANCE_TIMER_BASE + self.gc_epoch);
            }
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
