//! PASE control-plane messages.
//!
//! These ride in real 40-byte control packets through the network (and
//! therefore consume link capacity and are counted as overhead — the
//! quantity Fig. 11b measures).

use netsim::ids::{FlowId, NodeId};
use netsim::time::{Rate, SimTime};

/// Which half of the path a request/response covers (paper Fig. 5: the
/// end-to-end path is split at the root; each leaf initiates its half).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Source half: source uplink, ToR uplink, (delegated) agg–core.
    Sender,
    /// Destination half: destination downlink, agg–ToR, core–agg.
    Receiver,
}

/// A request traveling up the arbitration hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct ArbRequest {
    /// The flow being arbitrated.
    pub flow: FlowId,
    /// Where the response must be sent (the flow's source host).
    pub reply_to: NodeId,
    /// The flow's source host.
    pub src: NodeId,
    /// The flow's destination host.
    pub dst: NodeId,
    /// Remaining flow size (the `FlowSize` input of Algorithm 1).
    pub remaining: u64,
    /// Deadline, when the EDF criterion is in use.
    pub deadline: Option<SimTime>,
    /// Task id, when task-aware scheduling is in use.
    pub task: Option<u64>,
    /// The source's demand (max rate it could use).
    pub demand: Rate,
    /// Which half of the path this request covers.
    pub leg: Leg,
    /// Worst (highest-index) queue assigned so far along this leg.
    pub acc_queue: u8,
    /// Smallest reference rate assigned so far along this leg.
    pub acc_rate: Rate,
}

impl ArbRequest {
    /// Fold one arbitrator's decision into the accumulators.
    pub fn accumulate(&mut self, queue: u8, rate: Rate) {
        self.acc_queue = self.acc_queue.max(queue);
        self.acc_rate = self.acc_rate.min(rate);
    }
}

/// The response returned to the source.
#[derive(Debug, Clone, Copy)]
pub struct ArbResponse {
    /// The flow concerned.
    pub flow: FlowId,
    /// Which leg this response covers.
    pub leg: Leg,
    /// The leg's queue assignment (worst along the leg).
    pub queue: u8,
    /// The leg's reference rate (smallest along the leg).
    pub rate: Rate,
    /// Load-shed signal, piggybacked free of charge (control packets are
    /// fixed 40-byte): an arbitrator along the leg was over its per-epoch
    /// budget and answered without arbitrating. Senders seeing this back
    /// off their refresh cadence multiplicatively.
    pub shedding: bool,
}

/// One PASE control message.
#[derive(Debug, Clone, Copy)]
pub enum ArbMsg {
    /// Request traveling toward the root.
    Request(ArbRequest),
    /// Response traveling back to the source.
    Response(ArbResponse),
    /// The flow finished: release arbitrator state along the path.
    FlowDone {
        /// The finished flow.
        flow: FlowId,
        /// Source host of the flow.
        src: NodeId,
        /// Destination host of the flow.
        dst: NodeId,
        /// Which leg of the path this notification cleans.
        leg: Leg,
    },
    /// Child → parent: aggregate top-queue demand on the delegated virtual
    /// link (paper §3.1.2: "only aggregate information about flows is sent
    /// by the child arbitrators").
    DelegUpdate {
        /// The reporting child arbitrator.
        child: NodeId,
        /// Demand on the delegated uplink slice (toward the core).
        up_demand: Rate,
        /// Demand on the delegated downlink slice (from the core).
        down_demand: Rate,
    },
    /// Parent → child: the child's new virtual-link capacities.
    DelegGrant {
        /// Capacity of the uplink slice.
        up_capacity: Rate,
        /// Capacity of the downlink slice.
        down_capacity: Rate,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_takes_worst_queue_and_min_rate() {
        let mut r = ArbRequest {
            flow: FlowId(1),
            reply_to: NodeId(0),
            src: NodeId(0),
            dst: NodeId(9),
            remaining: 50_000,
            deadline: None,
            task: None,
            demand: Rate::from_gbps(1),
            leg: Leg::Sender,
            acc_queue: 0,
            acc_rate: Rate::from_gbps(1),
        };
        r.accumulate(2, Rate::from_mbps(400));
        assert_eq!(r.acc_queue, 2);
        assert_eq!(r.acc_rate, Rate::from_mbps(400));
        r.accumulate(1, Rate::from_mbps(700));
        assert_eq!(r.acc_queue, 2, "queue only worsens");
        assert_eq!(r.acc_rate, Rate::from_mbps(400), "rate only shrinks");
    }
}
