//! Algorithm 1: per-link arbitration.
//!
//! Every arbitrated link keeps a list of the flows traversing it, sorted
//! by the scheduling criterion. For one flow the arbitrator computes:
//!
//! * `ADH` — the aggregate demand of flows with higher priority;
//! * the priority queue: the top queue if `ADH < C`, otherwise
//!   `⌈ADH/C⌉` (1-based; clamped to the lowest queue) — each intermediate
//!   queue "accommodates flows with an aggregate demand of C";
//! * the reference rate: `min(demand, C − ADH)` when the flow makes the
//!   top queue, otherwise the base rate (one packet per RTT).

use std::collections::HashMap;

use netsim::ids::FlowId;
use netsim::time::{Rate, SimTime};

use crate::config::{Criterion, PaseConfig};

/// One flow's entry in a link arbitrator.
#[derive(Debug, Clone, Copy)]
pub struct FlowEntry {
    /// Remaining size (`FlowSize` of Algorithm 1).
    pub remaining: u64,
    /// Deadline (EDF criterion), if any.
    pub deadline: Option<SimTime>,
    /// The source's demand.
    pub demand: Rate,
    /// Task id for task-aware scheduling, if any.
    pub task: Option<u64>,
    /// Last refresh time (entries expire).
    pub last_update: SimTime,
}

/// The decision returned by the arbitrator for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Priority queue, 0-based (0 = highest).
    pub queue: u8,
    /// Reference rate.
    pub rate: Rate,
}

/// A per-link arbitrator (Algorithm 1).
#[derive(Debug)]
pub struct LinkArbitrator {
    /// The link's (possibly virtual/delegated) capacity.
    capacity: Rate,
    flows: HashMap<FlowId, FlowEntry>,
    criterion: Criterion,
    n_queues: u8,
    base_rate: Rate,
}

impl LinkArbitrator {
    /// Create an arbitrator for a link of `capacity`.
    pub fn new(capacity: Rate, cfg: &PaseConfig) -> LinkArbitrator {
        LinkArbitrator {
            capacity,
            flows: HashMap::new(),
            criterion: cfg.criterion,
            n_queues: cfg.n_queues,
            base_rate: cfg.base_rate(),
        }
    }

    /// Current (virtual) link capacity.
    pub fn capacity(&self) -> Rate {
        self.capacity
    }

    /// Update the capacity (delegation rebalancing).
    pub fn set_capacity(&mut self, capacity: Rate) {
        self.capacity = capacity;
    }

    /// Number of flows currently tracked.
    pub fn n_flows(&self) -> usize {
        self.flows.len()
    }

    /// Whether the arbitrator holds a live entry for `flow`. A request
    /// for a known flow is a *refresh* — the cheapest thing an overloaded
    /// arbitrator can shed, because the existing entry keeps arbitrating
    /// until it expires.
    pub fn contains(&self, flow: FlowId) -> bool {
        self.flows.contains_key(&flow)
    }

    /// Priority key: lower sorts first (more critical).
    fn key(&self, id: FlowId, e: &FlowEntry) -> (u64, u64, u64) {
        match self.criterion {
            Criterion::SrptSize => (0, e.remaining, id.0),
            Criterion::Edf => (
                e.deadline.map_or(u64::MAX, |d| d.as_nanos()),
                e.remaining,
                id.0,
            ),
            Criterion::TaskAware => (e.task.unwrap_or(u64::MAX), e.remaining, id.0),
        }
    }

    /// Step 1 of Algorithm 1: insert or refresh the flow's entry.
    pub fn update(&mut self, flow: FlowId, entry: FlowEntry) {
        self.flows.insert(flow, entry);
    }

    /// Remove a finished flow.
    pub fn remove(&mut self, flow: FlowId) {
        self.flows.remove(&flow);
    }

    /// Forget every flow (an arbitrator crash wipes all soft state; the
    /// next refresh round repopulates it, paper §3.1.3).
    pub fn clear(&mut self) {
        self.flows.clear();
    }

    /// Drop entries older than `expiry` before `now`.
    pub fn gc(&mut self, now: SimTime, expiry: netsim::time::SimDuration) {
        self.flows.retain(|_, e| e.last_update + expiry >= now);
    }

    /// Step 2 of Algorithm 1: compute the flow's queue and reference rate.
    ///
    /// # Panics
    /// The flow must have been [`LinkArbitrator::update`]d first.
    pub fn decide(&self, flow: FlowId) -> Decision {
        let me = &self.flows[&flow];
        let my_key = self.key(flow, me);
        // ADH: aggregate demand of strictly higher-priority flows.
        let mut adh = Rate::ZERO;
        for (id, e) in &self.flows {
            if *id != flow && self.key(*id, e) < my_key {
                adh = adh.saturating_add(e.demand);
            }
        }
        let c = self.capacity.as_bps();
        if adh.as_bps() < c {
            // Top queue: spare capacity exists.
            let spare = Rate::from_bps(c - adh.as_bps());
            Decision {
                queue: 0,
                rate: me.demand.min(spare),
            }
        } else {
            // PrioQue = ceil(ADH/C) (1-based, clamped to the lowest
            // queue). At exact multiples of C the paper's ceiling would
            // put a flow with zero spare capacity in the top queue, which
            // contradicts the ADH < C branch; `floor + 1` is identical
            // everywhere else and consistent at the boundary.
            let q_1based = adh.as_bps() / c.max(1) + 1;
            let queue = q_1based.min(self.n_queues as u64) as u8 - 1;
            Decision {
                queue,
                rate: self.base_rate,
            }
        }
    }

    /// Convenience: update then decide.
    pub fn update_and_decide(&mut self, flow: FlowId, entry: FlowEntry) -> Decision {
        self.update(flow, entry);
        self.decide(flow)
    }

    /// Aggregate demand of flows currently mapped to the top queue — the
    /// quantity a child arbitrator reports to its parent for delegation
    /// rebalancing.
    pub fn top_queue_demand(&self) -> Rate {
        // Flows sorted by key take capacity in order; the top queue holds
        // those whose prefix demand is below capacity.
        let mut order: Vec<(&FlowId, &FlowEntry)> = self.flows.iter().collect();
        order.sort_by_key(|(id, e)| self.key(**id, e));
        let mut sum = Rate::ZERO;
        let mut top = Rate::ZERO;
        for (_, e) in order {
            if sum.as_bps() < self.capacity.as_bps() {
                top = top.saturating_add(e.demand.min(self.capacity.saturating_sub(sum)));
            } else {
                break;
            }
            sum = sum.saturating_add(e.demand);
        }
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    fn entry(remaining: u64, demand_mbps: u64) -> FlowEntry {
        FlowEntry {
            remaining,
            deadline: None,
            demand: Rate::from_mbps(demand_mbps),
            task: None,
            last_update: SimTime::ZERO,
        }
    }

    fn arb(capacity_mbps: u64) -> LinkArbitrator {
        LinkArbitrator::new(Rate::from_mbps(capacity_mbps), &PaseConfig::default())
    }

    #[test]
    fn clear_wipes_all_soft_state() {
        let mut a = arb(1000);
        a.update(FlowId(1), entry(10_000, 500));
        a.update(FlowId(2), entry(20_000, 500));
        assert_eq!(a.n_flows(), 2);
        a.clear();
        assert_eq!(a.n_flows(), 0);
        // A crashed-and-cleared arbitrator re-learns from scratch: the
        // first flow back gets the whole link again.
        let d = a.update_and_decide(FlowId(3), entry(5_000, 700));
        assert_eq!(d.queue, 0);
        assert_eq!(d.rate, Rate::from_mbps(700));
    }

    #[test]
    fn sole_flow_gets_top_queue_and_its_demand() {
        let mut a = arb(1000);
        let d = a.update_and_decide(FlowId(1), entry(100_000, 800));
        assert_eq!(d.queue, 0);
        assert_eq!(d.rate, Rate::from_mbps(800));
    }

    #[test]
    fn demand_capped_by_spare_capacity() {
        let mut a = arb(1000);
        a.update(FlowId(1), entry(10_000, 700)); // higher priority
        let d = a.update_and_decide(FlowId(2), entry(50_000, 700));
        assert_eq!(d.queue, 0, "spare capacity remains");
        assert_eq!(d.rate, Rate::from_mbps(300));
    }

    #[test]
    fn saturated_link_maps_to_intermediate_queues() {
        let mut a = arb(1000);
        // Three higher-priority flows of 500 Mbps each = 1.5 C.
        a.update(FlowId(1), entry(1_000, 500));
        a.update(FlowId(2), entry(2_000, 500));
        a.update(FlowId(3), entry(3_000, 500));
        let d = a.update_and_decide(FlowId(4), entry(50_000, 500));
        // ADH = 1.5 C -> ceil = 2 (1-based) -> 0-based queue 1.
        assert_eq!(d.queue, 1);
        assert_eq!(d.rate, PaseConfig::default().base_rate());
    }

    #[test]
    fn very_high_adh_clamps_to_lowest_queue() {
        let mut a = arb(100);
        for i in 0..30 {
            a.update(FlowId(i), entry(1_000 + i, 100));
        }
        let d = a.update_and_decide(FlowId(99), entry(1_000_000, 100));
        // ADH = 30 C -> would be queue 30; clamped to queue 7 (0-based).
        assert_eq!(d.queue, PaseConfig::default().lowest_queue());
    }

    #[test]
    fn srpt_orders_by_remaining_size() {
        let mut a = arb(1000);
        a.update(FlowId(1), entry(900_000, 1000)); // big flow
        let d_small = a.update_and_decide(FlowId(2), entry(1_000, 1000));
        assert_eq!(d_small.queue, 0, "small flow outranks big");
        let d_big = a.decide(FlowId(1));
        assert!(d_big.queue >= 1, "big flow pushed down");
    }

    #[test]
    fn edf_prioritizes_deadlines() {
        let cfg = PaseConfig {
            criterion: Criterion::Edf,
            ..PaseConfig::default()
        };
        let mut a = LinkArbitrator::new(Rate::from_mbps(1000), &cfg);
        let mut e1 = entry(900_000, 1000);
        e1.deadline = Some(SimTime::from_millis(5));
        a.update(FlowId(1), e1);
        // Smaller flow without a deadline loses to the deadline flow.
        let d = a.update_and_decide(FlowId(2), entry(1_000, 1000));
        assert!(d.queue >= 1);
        assert_eq!(a.decide(FlowId(1)).queue, 0);
    }

    #[test]
    fn task_aware_orders_by_task_then_size() {
        let cfg = PaseConfig {
            criterion: Criterion::TaskAware,
            ..PaseConfig::default()
        };
        let mut a = LinkArbitrator::new(Rate::from_mbps(1000), &cfg);
        let mut old_task_big = entry(900_000, 1000);
        old_task_big.task = Some(1);
        let mut new_task_small = entry(1_000, 1000);
        new_task_small.task = Some(2);
        a.update(FlowId(1), old_task_big);
        a.update(FlowId(2), new_task_small);
        // The older task wins even though its flow is larger.
        assert_eq!(a.decide(FlowId(1)).queue, 0);
        assert!(a.decide(FlowId(2)).queue >= 1);
        // Task-less flows sort after any task.
        let d = a.update_and_decide(FlowId(3), entry(10, 1000));
        assert!(d.queue >= 1);
    }

    #[test]
    fn removal_and_expiry_restore_priority() {
        let mut a = arb(1000);
        a.update(FlowId(1), entry(1_000, 1000));
        let d2 = a.update_and_decide(FlowId(2), entry(2_000, 1000));
        assert!(d2.queue >= 1);
        a.remove(FlowId(1));
        assert_eq!(a.decide(FlowId(2)).queue, 0);

        // Expiry path: flow 2 is stale (t = 0), flow 3 is fresh.
        let mut fresh = entry(500, 1000);
        fresh.last_update = SimTime::from_millis(10);
        a.update(FlowId(3), fresh);
        a.gc(SimTime::from_millis(10), SimDuration::from_millis(1));
        assert_eq!(a.n_flows(), 1, "stale entry dropped, fresh kept");
        assert_eq!(a.decide(FlowId(3)).queue, 0);
    }

    #[test]
    fn top_queue_demand_saturates_at_capacity() {
        let mut a = arb(1000);
        a.update(FlowId(1), entry(1_000, 600));
        a.update(FlowId(2), entry(2_000, 600));
        a.update(FlowId(3), entry(3_000, 600));
        // Flow1 600 + flow2 400 (clipped) = 1000; flow3 excluded.
        assert_eq!(a.top_queue_demand(), Rate::from_mbps(1000));
        let mut b = arb(1000);
        b.update(FlowId(1), entry(1_000, 300));
        assert_eq!(b.top_queue_demand(), Rate::from_mbps(300));
    }
}
