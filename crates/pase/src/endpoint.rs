//! The PASE end-host transport (paper §3.2).
//!
//! The sender combines the three strategies:
//!
//! * **Arbitration** tells it a priority queue and a reference rate: the
//!   local uplink decision is synchronous (same host); the sender- and
//!   receiver-leg decisions arrive as control responses and are merged as
//!   `queue = max`, `rate = min` (the bottleneck rules).
//! * **Guided rate control** (Algorithm 2): top-queue flows set
//!   `cwnd = Rref × RTT` instead of slow-starting; intermediate-queue
//!   flows run DCTCP control laws; bottom-queue flows hold `cwnd = 1`.
//!   A marked ACK always triggers the DCTCP decrease.
//! * **Priority-aware loss recovery**: lower-queue flows answer timeouts
//!   with header-only probes that distinguish "lost" from "parked behind
//!   higher-priority traffic"; minimum RTOs are 10 ms (top queue) vs
//!   200 ms (rest). Optionally, bottom-queue flows replace their
//!   1-packet-per-RTT trickle with probes entirely (§4.3.2).
//! * **Reordering guard**: on a queue promotion the sender drains
//!   in-flight lower-priority packets before sending at the new priority.
//! * **Graceful degradation**: a watchdog counts refresh rounds with no
//!   arbitration response; after `watchdog_k` silent periods the flow
//!   falls back to pure self-adjusting mode (lowest queue, DCTCP laws,
//!   data never suppressed) with bounded exponential backoff on
//!   re-requests, and re-attaches to its arbitrated `PrioQue`/`Rref`
//!   assignment as soon as a response arrives.

use netsim::flow::FlowSpec;
use netsim::host::{AgentCtx, FlowAgent, WAKEUP_TOKEN};
use netsim::packet::{Packet, PacketKind};
use netsim::time::{Rate, SimDuration, SimTime};
use transport::{AckKind, LossEvent, RttEstimator, TxEngine};

use crate::algorithm::Decision;
use crate::config::PaseConfig;
use crate::host_service::{ArbPlan, PaseHostService};
use crate::messages::{ArbMsg, ArbRequest, Leg};

/// Token bases for the sender's own timers; [`TxEngine`] epochs stay far
/// below these.
const REFRESH_TOKEN_BASE: u64 = 1 << 40;
const PACE_TOKEN_BASE: u64 = 1 << 41;

/// The PASE sender agent.
pub struct PaseSender {
    spec: FlowSpec,
    cfg: PaseConfig,
    engine: TxEngine,
    plan: ArbPlan,

    // Arbitration state.
    local: Decision,
    queue: u8,
    rref: Rate,
    /// Band actually written on outgoing data (lags `queue` during the
    /// reordering-guard hold).
    tx_prio: u8,

    // DCTCP machinery for the self-adjusting part.
    alpha: f64,
    obs_end: u64,
    obs_acked: u64,
    obs_marked: u64,
    next_decrease_at: u64,
    /// Algorithm 2's `isInterQueue` flag.
    is_inter_queue: bool,
    /// Slow-start threshold, only used in PASE-DCTCP mode (Fig. 13a).
    ssthresh: f64,

    // Reordering guard: while `Some(barrier)`, new data keeps the old
    // (lower) priority until everything sent before the promotion is
    // acknowledged, then switches to the new priority.
    reorder_barrier: Option<u64>,
    // Probe-based loss recovery: `Some(acked_at_send)` while a recovery
    // probe is outstanding.
    recovery_probe: Option<u64>,
    // Bottom-queue pacing probes.
    pace_epoch: u64,
    refresh_epoch: u64,
    started: bool,
    // Control-plane watchdog (graceful degradation, paper §3.1.3: "in
    // case a flow does not hear back from an arbitrator, it falls back to
    // the self-adjusting behavior").
    /// When the last arbitration response (either leg) arrived.
    last_response: SimTime,
    /// Consecutive refresh rounds without any arbitration response;
    /// drives the bounded exponential re-request backoff.
    refresh_misses: u32,
    /// Decaying tally of missed refresh rounds: +1 per round with no
    /// response, −1 (floor 0) per round with one. Catches a *degraded*
    /// control channel — one that still answers occasionally, so every
    /// response resets `last_response` and defeats the hard-silence
    /// watchdog — by integrating misses faster than sporadic responses
    /// drain them.
    degraded_rounds: u32,
    /// The delay the last-armed refresh timer was set with (cadence ×
    /// backoff). A round counts as missed only if no response landed
    /// within this interval plus one base RTT of in-flight grace —
    /// measuring against the bare cadence would brand every backed-off
    /// round, and every topology whose reply latency straddles
    /// `arb_refresh`, as degraded.
    refresh_interval: SimDuration,
    /// Arbitration declared unreachable: the flow runs in pure
    /// self-adjusting mode (lowest queue, DCTCP laws) until a response
    /// resumes.
    in_fallback: bool,
    /// Capped backoff exponent driven by load-shed replies: each shed
    /// response doubles the refresh spacing (up to `refresh_backoff_cap`),
    /// each clean response halves it back, so a storm of senders drains
    /// its own pressure multiplicatively.
    shed_backoff: u32,
    /// Decaying tally of shed responses: +1 per shed reply, −1 (floor 0)
    /// per clean one. Sustained shedding — `watchdog_k` net shed rounds —
    /// degrades the flow to self-adjusting fallback exactly like a dead
    /// or gray control channel: an arbitrator that only ever sheds us is
    /// not arbitrating for us.
    shed_rounds: u32,
    /// Inter-rack flows hold their first data until the sender-leg
    /// arbitration response arrives (paper §3.1.2: "a flow starts as soon
    /// as it receives arbitration information from the child arbitrator").
    /// The refresh timer is the fallback if the response is lost.
    awaiting_initial_arb: bool,
    done: bool,
}

impl PaseSender {
    /// Create a sender for `spec`.
    pub fn new(spec: &FlowSpec, cfg: PaseConfig) -> PaseSender {
        let rtt = RttEstimator::new(cfg.min_rto_top, cfg.max_rto);
        PaseSender {
            spec: spec.clone(),
            cfg,
            engine: TxEngine::new(spec.id, spec.src, spec.dst, spec.size, cfg.mss, 1.0, rtt),
            plan: ArbPlan {
                sender_leg_to: None,
                receiver_leg_to: None,
            },
            local: Decision {
                queue: cfg.lowest_queue(),
                rate: cfg.base_rate(),
            },
            queue: cfg.lowest_queue(),
            rref: cfg.base_rate(),
            tx_prio: cfg.lowest_queue(),
            alpha: 0.0,
            obs_end: 0,
            obs_acked: 0,
            obs_marked: 0,
            next_decrease_at: 0,
            is_inter_queue: false,
            ssthresh: f64::INFINITY,
            reorder_barrier: None,
            recovery_probe: None,
            pace_epoch: 0,
            refresh_epoch: 0,
            started: false,
            last_response: SimTime::ZERO,
            refresh_misses: 0,
            degraded_rounds: 0,
            refresh_interval: cfg.arb_refresh,
            in_fallback: false,
            shed_backoff: 0,
            shed_rounds: 0,
            awaiting_initial_arb: false,
            done: false,
        }
    }

    /// Effective queue (tests/inspection).
    pub fn queue(&self) -> u8 {
        self.queue
    }

    /// Effective reference rate (tests/inspection).
    pub fn rref(&self) -> Rate {
        self.rref
    }

    /// Current congestion window in packets (tests/inspection).
    pub fn cwnd(&self) -> f64 {
        self.engine.cwnd
    }

    /// Whether the watchdog has the flow in self-adjusting fallback
    /// (tests/inspection).
    pub fn in_fallback(&self) -> bool {
        self.in_fallback
    }

    /// Net missed refresh rounds on the control channel
    /// (tests/inspection).
    pub fn degraded_rounds(&self) -> u32 {
        self.degraded_rounds
    }

    /// Current shed-driven refresh-backoff exponent (tests/inspection).
    pub fn shed_backoff(&self) -> u32 {
        self.shed_backoff
    }

    /// Net shed responses on the control channel (tests/inspection).
    pub fn shed_rounds(&self) -> u32 {
        self.shed_rounds
    }

    fn srtt(&self) -> SimDuration {
        self.engine.rtt.srtt().unwrap_or(self.cfg.base_rtt)
    }

    /// The flow's demand: what it could use if unconstrained — the NIC
    /// rate, capped by what the remaining bytes can fill in one RTT
    /// (paper §3.1.1: "for short flows ... this is set to a lower value").
    fn demand(&self, ctx: &AgentCtx<'_, '_>) -> Rate {
        let nic = ctx.host.port.rate;
        let remaining_wire =
            self.engine.remaining() + (self.engine.remaining() / self.cfg.mss as u64 + 1) * 40;
        let per_rtt =
            Rate::from_bps((remaining_wire as f64 * 8.0 / self.cfg.base_rtt.as_secs_f64()) as u64);
        nic.min(per_rtt)
    }

    fn reference_cwnd_pkts(&self) -> f64 {
        let bytes_per_rtt = self.rref.bytes_in(self.srtt());
        (bytes_per_rtt as f64 / (self.cfg.mss as f64 + 40.0)).max(1.0)
    }

    fn in_bottom_queue(&self) -> bool {
        self.queue >= self.cfg.lowest_queue()
    }

    /// Should data transmission be suppressed in favor of pacing probes?
    /// Never in fallback: with no arbitrator to promote us out of the
    /// bottom queue, probing instead of sending would stall forever.
    fn data_suppressed(&self) -> bool {
        !self.in_fallback
            && self.cfg.probe_bottom_queue
            && self.in_bottom_queue()
            && !self.spec.is_background()
            && self.cfg.end_to_end
    }

    /// Run local arbitration and fire off the leg requests. Returns
    /// whether a sender-leg request was actually sent (pruning may skip
    /// it).
    fn arbitrate(&mut self, ctx: &mut AgentCtx<'_, '_>) -> bool {
        if self.spec.is_background() {
            // Background traffic rides the dedicated lowest queue and is
            // not arbitrated (paper §3.3).
            self.queue = self.cfg.lowest_queue();
            self.tx_prio = self.queue;
            return false;
        }
        let now = ctx.now();
        let flow = self.spec.id;
        let remaining = self.engine.remaining();
        // A deadline that has already passed no longer confers urgency:
        // under EDF an expired flow would otherwise hold the top queue
        // forever and starve still-meetable flows (EDF's overload
        // pathology). It falls back to size-based priority.
        let deadline = self.spec.deadline_abs().filter(|d| *d > now);
        let task = self.spec.task;
        let demand = self.demand(ctx);
        let Some(svc) = ctx.service::<PaseHostService>() else {
            // No control plane installed: degrade to a single queue.
            return false;
        };
        if svc.is_crashed() {
            // The local control process is down: the synchronous uplink
            // decision fails exactly like the remote legs do, and the
            // watchdog drops the flow to self-adjusting fallback.
            return false;
        }
        self.plan = svc.plan(self.spec.dst);
        self.local = svc.local_update(flow, remaining, deadline, task, demand, now);

        // Sender-leg request (pruned if the local decision is already out
        // of the top queues).
        let mut sender_leg_sent = false;
        if let Some(tor) = self.plan.sender_leg_to {
            let pruned = self.cfg.early_pruning && self.local.queue >= self.cfg.prune_depth;
            if pruned {
                ctx.sim.stats.note_arb_pruned(self.spec.src);
            } else {
                ctx.sim.stats.note_arb_climbed(self.spec.src);
                sender_leg_sent = true;
                let req = ArbRequest {
                    flow,
                    reply_to: self.spec.src,
                    src: self.spec.src,
                    dst: self.spec.dst,
                    remaining,
                    deadline,
                    task,
                    demand,
                    leg: Leg::Sender,
                    acc_queue: self.local.queue,
                    acc_rate: self.local.rate,
                };
                ctx.send(Packet::ctrl(
                    flow,
                    self.spec.src,
                    tor,
                    Box::new(ArbMsg::Request(req)),
                ));
            }
        }
        // Receiver-leg request: the destination arbitrates its downlink.
        if let Some(dst) = self.plan.receiver_leg_to {
            let req = ArbRequest {
                flow,
                reply_to: self.spec.src,
                src: self.spec.src,
                dst: self.spec.dst,
                remaining,
                deadline,
                task,
                demand,
                leg: Leg::Receiver,
                acc_queue: 0,
                acc_rate: demand,
            };
            ctx.send(Packet::ctrl(
                flow,
                self.spec.src,
                dst,
                Box::new(ArbMsg::Request(req)),
            ));
        }
        self.recompute_effective(ctx);
        sender_leg_sent
    }

    /// Merge the local and leg decisions into the effective queue/rate and
    /// apply Algorithm 2's state transitions.
    fn recompute_effective(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        if self.in_fallback {
            // Fallback pins the flow to the lowest queue at base rate; the
            // merge below would resurrect the (possibly stale, possibly
            // uncoordinated) local decision. Exit happens in the WAKEUP
            // path, before this is called again.
            self.queue = self.cfg.lowest_queue();
            self.rref = self.cfg.base_rate();
            self.sync_tx_prio();
            self.engine.rtt.set_min_rto(self.cfg.min_rto_low);
            return;
        }
        let legs = match ctx.service::<PaseHostService>() {
            Some(svc) => svc.leg_results(self.spec.id),
            None => Default::default(),
        };
        let mut queue = self.local.queue;
        let mut rref = self.local.rate;
        for d in [legs.sender, legs.receiver].into_iter().flatten() {
            queue = queue.max(d.queue);
            rref = rref.min(d.rate);
        }
        let old_queue = self.queue;
        self.queue = queue.min(self.cfg.lowest_queue());
        self.rref = rref;

        if self.queue < old_queue && self.engine.flight_bytes() > 0 {
            // Promotion: keep sending at the old (lower) priority until
            // everything already in flight is acknowledged, so packets of
            // the two priorities cannot reorder (paper §3.2). Demotions
            // apply immediately (low-priority packets sent later cannot
            // overtake earlier high-priority ones).
            self.reorder_barrier = Some(self.engine.snd_nxt());
        }
        self.sync_tx_prio();
        // Per-queue minimum RTO (Table 3).
        let min_rto = if self.queue == 0 {
            self.cfg.min_rto_top
        } else {
            self.cfg.min_rto_low
        };
        self.engine.rtt.set_min_rto(min_rto);

        // Algorithm 2 state transitions on queue change.
        if self.cfg.use_reference_rate && old_queue != self.queue {
            if self.queue == 0 {
                self.engine.cwnd = self.reference_cwnd_pkts();
                self.is_inter_queue = false;
            } else if self.in_bottom_queue() {
                self.engine.cwnd = 1.0;
                self.is_inter_queue = false;
            } else if !self.is_inter_queue {
                self.is_inter_queue = true;
                self.engine.cwnd = 1.0;
            }
        }
        // Entering the bottom queue with pacing probes: start the pacer.
        if self.data_suppressed() && self.started {
            self.start_pace_probes(ctx);
        }
    }

    fn start_pace_probes(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        self.pace_epoch += 1;
        ctx.set_timer(self.srtt(), PACE_TOKEN_BASE + self.pace_epoch);
    }

    fn send_pace_probe(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        let mut probe = Packet::probe(
            self.spec.id,
            self.spec.src,
            self.spec.dst,
            self.engine.acked(),
        );
        probe.prio = self.tx_prio;
        ctx.sim.stats.note_probe(self.spec.id);
        ctx.send(probe);
    }

    /// Algorithm 2's per-ACK window law.
    fn on_new_ack(&mut self, newly: u64, ece: bool) {
        // DCTCP marked-fraction estimator (shared by all modes).
        self.obs_acked += newly;
        if ece {
            self.obs_marked += newly;
        }
        if self.engine.acked() >= self.obs_end {
            if self.obs_acked > 0 {
                let f = self.obs_marked as f64 / self.obs_acked as f64;
                self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g * f;
            }
            self.obs_acked = 0;
            self.obs_marked = 0;
            self.obs_end = self.engine.snd_nxt();
        }

        let pkts = newly as f64 / self.cfg.mss as f64;
        if ece && self.engine.acked() >= self.next_decrease_at {
            // Marked ACK: DCTCP decrease law (all queues).
            self.engine.cwnd = (self.engine.cwnd * (1.0 - self.alpha / 2.0)).max(1.0);
            self.ssthresh = self.engine.cwnd;
            self.next_decrease_at = self.engine.snd_nxt();
            return;
        }
        if self.engine.in_recovery() {
            return;
        }
        if self.in_fallback {
            // Self-adjusting fallback: plain DCTCP growth (the marked-ACK
            // decrease above still applies), exactly as if no arbitrator
            // had ever answered.
            let pkts = pkts * 0.5;
            if self.engine.cwnd < self.ssthresh {
                self.engine.cwnd += pkts;
            } else {
                self.engine.cwnd += pkts / self.engine.cwnd;
            }
            return;
        }
        if !self.cfg.use_reference_rate {
            // PASE-DCTCP (Fig. 13a): plain DCTCP growth, with the same
            // delayed-ACK pacing real DCTCP stacks exhibit (half a packet
            // of growth per acked packet).
            let pkts = pkts * 0.5;
            if self.engine.cwnd < self.ssthresh {
                self.engine.cwnd += pkts;
            } else {
                self.engine.cwnd += pkts / self.engine.cwnd;
            }
            return;
        }
        if self.queue == 0 {
            // Top queue: the window tracks the reference rate.
            self.engine.cwnd = self.reference_cwnd_pkts();
            self.is_inter_queue = false;
        } else if self.in_bottom_queue() {
            self.engine.cwnd = 1.0;
            self.is_inter_queue = false;
        } else if self.is_inter_queue {
            // Intermediate queues: DCTCP control laws. Algorithm 2 prints
            // only the congestion-avoidance step, but DCTCP's laws include
            // slow start below ssthresh; without it, flows parked at
            // cwnd=1 cannot keep the fabric busy when the top queue
            // drains, defeating the work-conservation role of the lower
            // queues (paper §2.2).
            if self.engine.cwnd < self.ssthresh {
                self.engine.cwnd += pkts;
            } else {
                self.engine.cwnd += pkts / self.engine.cwnd;
            }
        } else {
            self.is_inter_queue = true;
            self.engine.cwnd = 1.0;
        }
    }

    fn on_loss(&mut self, loss: LossEvent) {
        match loss {
            LossEvent::FastRetransmit => {
                self.engine.cwnd = (self.engine.cwnd / 2.0).max(1.0);
                self.ssthresh = self.engine.cwnd;
            }
            LossEvent::Timeout => {
                self.ssthresh = (self.engine.cwnd / 2.0).max(2.0);
                self.engine.cwnd = 1.0;
            }
        }
    }

    /// Resolve the wire priority: the effective queue, unless a reorder
    /// barrier still pins us to the previous (lower) priority. While the
    /// barrier is active the flow keeps sending at the old priority; every
    /// such transmission extends the barrier, so the switch happens at the
    /// first moment nothing sent at the old priority is still in flight.
    fn sync_tx_prio(&mut self) {
        if let Some(b) = self.reorder_barrier {
            if self.engine.acked() >= b.min(self.engine.snd_nxt())
                && self.engine.flight_bytes() == 0
            {
                self.reorder_barrier = None;
            } else if self.engine.acked() >= b {
                // Original barrier cleared but packets sent during the
                // drain window are still out: extend to the send frontier.
                self.reorder_barrier = Some(self.engine.snd_nxt());
            }
        }
        match self.reorder_barrier {
            Some(_) => self.tx_prio = self.tx_prio.max(self.queue),
            None => self.tx_prio = self.queue,
        }
    }

    fn pump(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        if self.data_suppressed() || self.awaiting_initial_arb {
            return;
        }
        self.sync_tx_prio();
        let prio = self.tx_prio;
        self.engine.pump(ctx, |pkt| {
            pkt.prio = prio;
            pkt.ecn_capable = true;
        });
    }

    fn finish(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        ctx.flow_completed();
        self.done = true;
        self.release_arbitration(ctx);
    }

    /// Terminal give-up: the peer stopped responding for the engine's
    /// whole RTO budget (crashed host). The flow ends in an attributable
    /// `Aborted` state and releases its arbitrator claims so PrioQue/Rref
    /// capacity returns to live flows immediately rather than waiting for
    /// lease expiry.
    fn abort(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        ctx.flow_aborted(netsim::trace::AbortReason::MaxRtosExceeded);
        self.done = true;
        self.release_arbitration(ctx);
    }

    /// Tell the arbitrators to release our state (both legs).
    fn release_arbitration(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        if self.spec.is_background() {
            return;
        }
        let flow = self.spec.id;
        if let Some(svc) = ctx.service::<PaseHostService>() {
            svc.local_remove(flow);
        }
        if let Some(tor) = self.plan.sender_leg_to {
            ctx.send(Packet::ctrl(
                flow,
                self.spec.src,
                tor,
                Box::new(ArbMsg::FlowDone {
                    flow,
                    src: self.spec.src,
                    dst: self.spec.dst,
                    leg: Leg::Sender,
                }),
            ));
        }
        if let Some(dst) = self.plan.receiver_leg_to {
            ctx.send(Packet::ctrl(
                flow,
                self.spec.src,
                dst,
                Box::new(ArbMsg::FlowDone {
                    flow,
                    src: self.spec.src,
                    dst: self.spec.dst,
                    leg: Leg::Receiver,
                }),
            ));
        }
    }

    fn arm_refresh(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        self.refresh_epoch += 1;
        // Bounded exponential backoff on re-requests, but only once the
        // watchdog has declared the control plane dead — or once the
        // arbitrators start load-shedding us: each further silent or shed
        // round doubles the spacing (capped) so a crashed or overloaded
        // arbitrator is not hammered every RTT. Healthy flows keep the
        // exact `arb_refresh` cadence — response latency routinely spans
        // a whole refresh period, and stretching the cadence on such
        // ordinary lag skews arbitration for every flow.
        let exp = {
            let silent = if self.in_fallback {
                self.refresh_misses
            } else {
                0
            };
            silent
                .max(self.shed_backoff)
                .min(self.cfg.refresh_backoff_cap)
        };
        let delay = self.cfg.arb_refresh.saturating_mul(1u64 << exp);
        self.refresh_interval = delay;
        ctx.set_timer(delay, REFRESH_TOKEN_BASE + self.refresh_epoch);
    }

    /// Has the watchdog expired: `watchdog_k` refresh periods without any
    /// arbitration response, on a flow that expects responses?
    fn watchdog_expired(&self, now: SimTime) -> bool {
        let expects_responses =
            self.plan.sender_leg_to.is_some() || self.plan.receiver_leg_to.is_some();
        expects_responses
            && now
                >= self.last_response
                    + self
                        .cfg
                        .arb_refresh
                        .saturating_mul(self.cfg.watchdog_k as u64)
    }

    /// Has the control channel *degraded* — `watchdog_k` net-missed
    /// refresh rounds on a flow that expects responses? Complements
    /// [`Self::watchdog_expired`]: a gray channel that answers one round
    /// in several keeps resetting `last_response` (so the silence test
    /// never fires) yet accumulates net misses here.
    fn channel_degraded(&self) -> bool {
        let expects_responses =
            self.plan.sender_leg_to.is_some() || self.plan.receiver_leg_to.is_some();
        expects_responses && self.degraded_rounds >= self.cfg.watchdog_k
    }

    /// Degrade to pure self-adjusting mode: lowest queue, base rate,
    /// conservative DCTCP restart. The flow keeps making progress with no
    /// control plane at all and re-attaches when responses resume.
    /// `reset_window` distinguishes why we degrade: a dead or gray
    /// channel (`true`) may have left the flow blasting a stale
    /// reference rate with no recent feedback, so the window restarts
    /// from scratch; a load-shedding channel (`false`) is demonstrably
    /// alive — ACKs and backpressure replies are flowing, the current
    /// window is congestion-valid — so only the priority/rate state is
    /// demoted.
    fn enter_fallback(&mut self, reset_window: bool) {
        self.in_fallback = true;
        if reset_window {
            self.ssthresh = (self.engine.cwnd / 2.0).max(2.0);
            self.engine.cwnd = 1.0;
        }
        self.queue = self.cfg.lowest_queue();
        self.rref = self.cfg.base_rate();
        self.is_inter_queue = false;
        // A demotion applies immediately (no reordering risk).
        self.sync_tx_prio();
        self.engine.rtt.set_min_rto(self.cfg.min_rto_low);
    }
}

impl FlowAgent for PaseSender {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        self.started = true;
        // The watchdog measures silence from flow start.
        self.last_response = ctx.now();
        let sender_leg_sent = self.arbitrate(ctx);
        // Inter-rack: optionally wait for the child (ToR) arbitrator's
        // answer before injecting data; intra-rack, pruned and local-only
        // flows start at once on the endpoint arbitrators' decision.
        self.awaiting_initial_arb = self.cfg.wait_for_initial_arb && sender_leg_sent;
        if self.cfg.use_reference_rate && self.queue == 0 {
            self.engine.cwnd = self.reference_cwnd_pkts();
        } else if !self.cfg.use_reference_rate {
            self.engine.cwnd = 2.0; // DCTCP-style initial window
        } else {
            self.engine.cwnd = 1.0;
        }
        self.pump(ctx);
        if !self.spec.is_background() {
            self.arm_refresh(ctx);
        }
        if self.data_suppressed() {
            self.start_pace_probes(ctx);
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut AgentCtx<'_, '_>) {
        if self.done {
            return;
        }
        match pkt.kind {
            PacketKind::Ack => {
                let now = ctx.now();
                match self.engine.on_ack(pkt.seq, pkt.ts_echo, now) {
                    AckKind::New { newly_acked, .. } => {
                        self.recovery_probe = None;
                        self.on_new_ack(newly_acked, pkt.ece);
                    }
                    AckKind::Dup { .. } | AckKind::Stale => {}
                }
                if let Some(loss) = self.engine.take_loss_event() {
                    self.on_loss(loss);
                }
                if self.engine.complete() {
                    self.finish(ctx);
                    return;
                }
                self.pump(ctx);
            }
            PacketKind::ProbeAck => {
                let now = ctx.now();
                // The probe-ack still carries a cumulative ack.
                if let AckKind::New { newly_acked, .. } =
                    self.engine.on_ack(pkt.seq, pkt.ts_echo, now)
                {
                    self.on_new_ack(newly_acked, pkt.ece);
                }
                if self.engine.complete() {
                    self.finish(ctx);
                    return;
                }
                if let Some(at_send) = self.recovery_probe.take() {
                    if self.engine.acked() <= at_send && self.engine.flight_bytes() > 0 {
                        // No progress since the probe: the data really was
                        // lost — retransmit (paper §3.2).
                        self.engine.force_loss_rewind(ctx);
                        if let Some(loss) = self.engine.take_loss_event() {
                            self.on_loss(loss);
                        }
                    }
                }
                self.pump(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_, '_>) {
        if self.done {
            return;
        }
        if token == WAKEUP_TOKEN {
            // An arbitration response arrived.
            self.last_response = ctx.now();
            self.refresh_misses = 0;
            // Consume the piggybacked load-shed signal. A shed reply is a
            // real response — the silence watchdog stays quiet — but not
            // an answer: back the refresh cadence off multiplicatively
            // (every shedding sender does, so the storm drains itself) and
            // after `watchdog_k` net shed rounds degrade to self-adjusting
            // fallback: an arbitrator that only ever sheds us is not
            // arbitrating for us.
            let shed = ctx
                .service::<PaseHostService>()
                .map(|svc| svc.take_shed(self.spec.id))
                .unwrap_or(false);
            if shed {
                self.shed_backoff = (self.shed_backoff + 1).min(self.cfg.refresh_backoff_cap);
                // Capped so a long storm drains in a bounded number of
                // clean rounds once it ends.
                self.shed_rounds =
                    (self.shed_rounds + 1).min(self.cfg.watchdog_k.saturating_mul(2));
                if !self.in_fallback && self.shed_rounds >= self.cfg.watchdog_k {
                    self.enter_fallback(false);
                }
            } else {
                self.shed_backoff = self.shed_backoff.saturating_sub(1);
                // Asymmetric decay: shed rounds accumulate one at a time
                // (cautious entry) but drain two per clean reply, so a
                // flow parked in the lowest queue re-attaches soon after
                // the storm breaks instead of serving out the full
                // integrator.
                self.shed_rounds = self.shed_rounds.saturating_sub(2);
                if self.in_fallback && self.shed_rounds == 0 {
                    // The control plane is back *for good* — the shed
                    // integrator has fully drained, not just one lucky
                    // reply slipping through mid-storm (entering fallback
                    // resets cwnd, so exit/re-enter flapping is far worse
                    // than staying self-adjusting). Leave fallback and let
                    // the recompute below re-attach the flow to its
                    // arbitrated queue and reference rate (Algorithm 2
                    // transitions fire on the queue change). Re-arm
                    // promptly — the pending refresh may still be backed
                    // off far into the future.
                    self.in_fallback = false;
                    self.arm_refresh(ctx);
                }
            }
            self.recompute_effective(ctx);
            if self.awaiting_initial_arb {
                let have_sender_leg = ctx
                    .service::<PaseHostService>()
                    .map(|svc| svc.leg_results(self.spec.id).sender.is_some())
                    .unwrap_or(true);
                if have_sender_leg {
                    self.awaiting_initial_arb = false;
                    if self.cfg.use_reference_rate && self.queue == 0 {
                        self.engine.cwnd = self.reference_cwnd_pkts();
                    }
                }
            }
            self.pump(ctx);
            return;
        }
        if token >= PACE_TOKEN_BASE {
            if token == PACE_TOKEN_BASE + self.pace_epoch && self.data_suppressed() {
                self.send_pace_probe(ctx);
                self.pace_epoch += 1;
                ctx.set_timer(self.srtt(), PACE_TOKEN_BASE + self.pace_epoch);
            }
            return;
        }
        if token >= REFRESH_TOKEN_BASE {
            if token == REFRESH_TOKEN_BASE + self.refresh_epoch {
                // Fallback: never wait longer than one refresh period for
                // the initial arbitration response.
                self.awaiting_initial_arb = false;
                let now = ctx.now();
                // Watchdog bookkeeping: count silent rounds (a response
                // resets the counter via the WAKEUP path) and degrade to
                // self-adjusting mode after `watchdog_k` refresh periods
                // of silence — or after `watchdog_k` *net* misses on a
                // channel that is degraded rather than dead. "Missed"
                // is judged against the interval this round was actually
                // armed with (backoff included) plus one base RTT, so a
                // reply still in flight does not count against the
                // channel.
                if now >= self.last_response + self.refresh_interval + self.cfg.base_rtt {
                    self.refresh_misses = self.refresh_misses.saturating_add(1);
                    self.degraded_rounds = self.degraded_rounds.saturating_add(1);
                } else {
                    self.refresh_misses = 0;
                    self.degraded_rounds = self.degraded_rounds.saturating_sub(1);
                }
                if !self.in_fallback && (self.watchdog_expired(now) || self.channel_degraded()) {
                    self.enter_fallback(true);
                }
                let _ = self.arbitrate(ctx);
                self.pump(ctx);
                self.arm_refresh(ctx);
            }
            return;
        }
        // Engine RTO.
        if self.engine.timer_is_live(token) {
            if self.cfg.probe_on_timeout && self.queue > 0 && self.recovery_probe.is_none() {
                // Probe instead of retransmitting: the data may simply be
                // parked behind higher-priority traffic.
                ctx.sim.stats.note_timeout(self.spec.id);
                self.engine.defer_timeout(ctx);
                if self.engine.gave_up() {
                    // Deferrals spend the same RTO budget as real fires; a
                    // dead receiver cannot be probed forever.
                    self.abort(ctx);
                    return;
                }
                self.recovery_probe = Some(self.engine.acked());
                let mut probe = Packet::probe(
                    self.spec.id,
                    self.spec.src,
                    self.spec.dst,
                    self.engine.acked(),
                );
                probe.prio = self.tx_prio;
                ctx.sim.stats.note_probe(self.spec.id);
                ctx.send(probe);
            } else if self.engine.on_timer(token, ctx) {
                if let Some(loss) = self.engine.take_loss_event() {
                    self.on_loss(loss);
                }
                self.pump(ctx);
            } else if self.engine.gave_up() {
                self.abort(ctx);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}
