//! PASE configuration.
//!
//! Defaults follow Table 3 of the paper: 8 priority queues, 10 ms minimum
//! RTO for top-queue flows and 200 ms for the rest, 500-packet switch
//! buffers (set where topologies are built).

use netsim::time::{Rate, SimDuration};

/// The scheduling criterion arbitrators sort flows by (paper §3.1.1: the
/// `FlowSize` input "can be replaced by deadline ... for task-aware
/// scheduling").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Shortest remaining processing time (default; minimizes FCT).
    SrptSize,
    /// Earliest deadline first; flows without deadlines sort after all
    /// deadline flows, by remaining size.
    Edf,
    /// Task-aware: flows of older tasks (smaller task id) first, remaining
    /// size as the tiebreak; task-less flows sort last. Serializing whole
    /// tasks minimizes *task* completion times (the paper cites Baraat's
    /// decentralized task-aware scheduling as the third criterion).
    TaskAware,
}

/// Every knob of the PASE implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaseConfig {
    /// Maximum segment payload, bytes.
    pub mss: u32,
    /// Number of switch priority queues (Table 3: 8; Fig. 12b sweeps this).
    pub n_queues: u8,
    /// Scheduling criterion.
    pub criterion: Criterion,
    /// Minimum RTO for flows in the top queue (Table 3: 10 ms).
    pub min_rto_top: SimDuration,
    /// Minimum RTO for flows in lower queues (Table 3: 200 ms).
    pub min_rto_low: SimDuration,
    /// Maximum RTO.
    pub max_rto: SimDuration,
    /// DCTCP gain `g` for the marked-fraction EWMA (self-adjusting part).
    pub g: f64,
    /// Baseline RTT estimate used before samples exist and for the
    /// `Rref × RTT` window computation at flow start.
    pub base_rtt: SimDuration,
    /// How often sources re-contact arbitrators with updated remaining
    /// size (one base RTT by default).
    pub arb_refresh: SimDuration,
    /// Arbitrator flow entries not refreshed for this long are dropped
    /// (covers lost FlowDone messages).
    pub arb_expiry: SimDuration,
    /// End-to-end arbitration (false = local-only endpoint arbitration;
    /// Fig. 12a ablates this).
    pub end_to_end: bool,
    /// Early pruning: forward a request to the parent arbitrator only when
    /// the flow is mapped within the top `prune_depth` queues so far.
    pub early_pruning: bool,
    /// Number of top queues that survive pruning (paper §3.1.2: "sending
    /// flows belonging to the top two queues upwards ... provides the
    /// right balance").
    pub prune_depth: u8,
    /// Delegation: aggregation–core capacity is split into virtual links
    /// owned by the child ToR arbitrators.
    pub delegation: bool,
    /// How often delegated virtual-link capacities are rebalanced.
    pub deleg_period: SimDuration,
    /// Minimum share of a delegated link any child keeps (so a previously
    /// idle child can ramp up without waiting a full period).
    pub deleg_min_share: f64,
    /// Use the arbitrator's reference rate to set the window (false =
    /// PASE-DCTCP of Fig. 13a: queues only, DCTCP rate control).
    pub use_reference_rate: bool,
    /// Hold an inter-rack flow's first data until the child (ToR)
    /// arbitrator's response arrives (paper §3.1.2). Off by default: in
    /// this simulator the conservative start costs more AFCT than the
    /// band-0 pollution it avoids (see EXPERIMENTS.md, Fig. 11/12 notes).
    pub wait_for_initial_arb: bool,
    /// Probe-based loss recovery for flows in lower-priority queues
    /// (§3.2): on timeout, send a probe to distinguish loss from delay.
    pub probe_on_timeout: bool,
    /// Bottom-queue probing (§4.3.2): flows in the lowest queue send a
    /// header-only probe per RTT instead of a full data packet.
    pub probe_bottom_queue: bool,
    /// The base rate granted to flows that cannot make the top queue: one
    /// packet per RTT (paper §3.1.1).
    pub base_rate_pkts_per_rtt: u32,
    /// Control-plane watchdog: a sender that has gone `watchdog_k`
    /// refresh periods without any arbitration response assumes the
    /// arbitrators are unreachable and falls back to pure self-adjusting
    /// mode (lowest queue, DCTCP control laws) until responses resume.
    pub watchdog_k: u32,
    /// Cap on the exponent of the refresh backoff: while responses are
    /// missing, re-requests are spaced `arb_refresh × 2^min(misses, cap)`
    /// apart so a dead control plane is not hammered every RTT.
    pub refresh_backoff_cap: u32,
    /// Per-epoch control-message budget of every arbitrator (endpoint
    /// host-service legs and switch plugins alike). An epoch is one
    /// `arb_refresh` window; messages beyond the budget are shed with an
    /// explicit load-shed reply rather than silently queued. High enough
    /// by default that an unstormed arbitrator never sheds.
    pub ctrl_budget_per_epoch: u32,
    /// Overload protection master switch. On, overloaded arbitrators
    /// shed priority-aware (stale refreshes first, never responses or
    /// releases) with an explicit load-shed reply that makes senders
    /// back off. Off, the inbox is still bounded but naive: overflow is
    /// silently tail-dropped whatever the message — releases leak leases
    /// until expiry and senders hear nothing but their watchdogs (the
    /// `ext_overload` experiment ablates this to show the collapse).
    pub shed_enabled: bool,
}

impl Default for PaseConfig {
    fn default() -> Self {
        PaseConfig {
            mss: 1460,
            n_queues: 8,
            criterion: Criterion::SrptSize,
            min_rto_top: SimDuration::from_millis(10),
            min_rto_low: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(2),
            g: 1.0 / 16.0,
            base_rtt: SimDuration::from_micros(300),
            arb_refresh: SimDuration::from_micros(300),
            arb_expiry: SimDuration::from_micros(1200),
            end_to_end: true,
            early_pruning: true,
            prune_depth: 2,
            delegation: true,
            deleg_period: SimDuration::from_millis(1),
            deleg_min_share: 0.1,
            use_reference_rate: true,
            wait_for_initial_arb: false,
            probe_on_timeout: true,
            probe_bottom_queue: true,
            base_rate_pkts_per_rtt: 1,
            watchdog_k: 4,
            refresh_backoff_cap: 5,
            ctrl_budget_per_epoch: 512,
            shed_enabled: true,
        }
    }
}

impl PaseConfig {
    /// The paper's "base rate" (one packet per RTT) as a [`Rate`].
    pub fn base_rate(&self) -> Rate {
        let bits = (self.mss as u64 + 40) * 8 * self.base_rate_pkts_per_rtt as u64;
        let rtt_s = self.base_rtt.as_secs_f64();
        Rate::from_bps((bits as f64 / rtt_s) as u64)
    }

    /// The lowest queue index.
    pub fn lowest_queue(&self) -> u8 {
        self.n_queues - 1
    }

    /// Switch off every control-plane optimization (Fig. 11 baseline).
    pub fn without_optimizations(mut self) -> Self {
        self.early_pruning = false;
        self.delegation = false;
        self
    }

    /// Local-only arbitration (Fig. 12a baseline).
    pub fn local_only(mut self) -> Self {
        self.end_to_end = false;
        self
    }

    /// PASE-DCTCP (Fig. 13a baseline): no reference rate.
    pub fn without_reference_rate(mut self) -> Self {
        self.use_reference_rate = false;
        self
    }

    /// Disable overload protection (ext_overload ablation: arbitrators
    /// process everything, however hard the storm hits).
    pub fn without_shedding(mut self) -> Self {
        self.shed_enabled = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let c = PaseConfig::default();
        assert_eq!(c.n_queues, 8);
        assert_eq!(c.min_rto_top, SimDuration::from_millis(10));
        assert_eq!(c.min_rto_low, SimDuration::from_millis(200));
        assert!(c.end_to_end && c.early_pruning && c.delegation);
        assert_eq!(c.prune_depth, 2);
    }

    #[test]
    fn watchdog_defaults_are_sane() {
        let c = PaseConfig::default();
        // The watchdog must tolerate at least one lost refresh round
        // before declaring the control plane dead, and the backoff cap
        // must keep re-request spacing well under the arbitrator expiry
        // horizon scaled by a few round trips.
        assert!(c.watchdog_k >= 2);
        assert!(c.refresh_backoff_cap >= 1 && c.refresh_backoff_cap <= 16);
    }

    #[test]
    fn shedding_defaults_protect_without_perturbing_normal_runs() {
        let c = PaseConfig::default();
        assert!(c.shed_enabled);
        // The budget must comfortably exceed what a healthy arbitrator
        // sees in one refresh window, so shedding only bites under storms.
        assert!(c.ctrl_budget_per_epoch >= 128);
        assert!(!PaseConfig::default().without_shedding().shed_enabled);
    }

    #[test]
    fn base_rate_is_one_packet_per_rtt() {
        let c = PaseConfig::default();
        // 1500 B / 300 us = 40 Mbps.
        let r = c.base_rate();
        assert!((r.as_bps() as f64 - 40e6).abs() < 1e5, "{r}");
    }

    #[test]
    fn ablation_helpers() {
        let c = PaseConfig::default().without_optimizations();
        assert!(!c.early_pruning && !c.delegation);
        assert!(!PaseConfig::default().local_only().end_to_end);
        assert!(
            !PaseConfig::default()
                .without_reference_rate()
                .use_reference_rate
        );
    }
}
