//! Tree-topology metadata for the arbitration hierarchy.
//!
//! PASE's control plane "exploits the typical tree structure of data
//! center topologies" (paper §3.1.2). [`TreeInfo`] extracts that structure
//! from an arbitrary [`netsim::topology::Topology`]: which ToR a host
//! hangs off, which aggregation switch parents a ToR, and which core
//! switch parents an aggregation switch. One-, two- and three-tier trees
//! are all supported (missing levels simply have no parent).
//!
//! Node ids are dense, so every per-node attribute lives in a flat vector
//! indexed by [`NodeId::index`] — on a k=32 fat-tree (9.5k nodes) the
//! whole structure is a few hundred KB of contiguous memory, and the
//! lookups on the arbitration hot path (`tor_of`, `level`, `same_rack`)
//! are plain indexed loads instead of hash probes.

use netsim::ids::NodeId;
use netsim::time::Rate;
use netsim::topology::{NodeKind, Topology};

/// Hierarchy level of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Top-of-rack: has at least one host neighbor.
    Tor,
    /// Aggregation: neighbors are ToRs below and (optionally) a core above.
    Agg,
    /// Core: neighbors are aggregation switches only.
    Core,
}

/// Extracted tree structure. All vectors are indexed by dense node id;
/// entries for nodes a given attribute does not apply to (a switch in
/// `host_tor`, a host in `level`) are `None`.
#[derive(Debug, Clone)]
pub struct TreeInfo {
    /// Each host's ToR.
    host_tor: Vec<Option<NodeId>>,
    /// Each switch's level.
    level: Vec<Option<Level>>,
    /// Each switch's parent (ToR → agg, agg → core).
    parent: Vec<Option<NodeId>>,
    /// Capacity of the link `switch -> parent`.
    uplink_rate: Vec<Option<Rate>>,
    /// Children of each switch (aggs of a core, ToRs of an agg), sorted.
    children: Vec<Vec<NodeId>>,
}

impl TreeInfo {
    /// Classify a topology as a tree. Panics on non-tree structures (e.g.
    /// a switch with both host and core neighbors at distance 2 levels).
    pub fn from_topology(topo: &Topology) -> TreeInfo {
        let n = topo.n_nodes();
        let mut host_tor: Vec<Option<NodeId>> = vec![None; n];
        let mut level: Vec<Option<Level>> = vec![None; n];

        // Level 1: ToRs have host neighbors.
        for sw in topo.switches() {
            let has_host = topo
                .neighbors(sw)
                .iter()
                .any(|&(_, peer, _, _)| topo.kind(peer) == NodeKind::Host);
            if has_host {
                level[sw.index()] = Some(Level::Tor);
            }
        }
        for h in topo.hosts() {
            host_tor[h.index()] = Some(topo.host_tor(h));
        }
        // Level 2: aggs neighbor ToRs but no hosts.
        for sw in topo.switches() {
            if level[sw.index()].is_some() {
                continue;
            }
            let next_to_tor = topo
                .neighbors(sw)
                .iter()
                .any(|&(_, peer, _, _)| level[peer.index()] == Some(Level::Tor));
            if next_to_tor {
                level[sw.index()] = Some(Level::Agg);
            }
        }
        // Level 3: everything else is core.
        for sw in topo.switches() {
            level[sw.index()].get_or_insert(Level::Core);
        }

        // Parents: a ToR's agg neighbor; an agg's core neighbor. A node
        // with several upper neighbors keeps the lowest id (deterministic)
        // — multi-rooted trees are approximated by a single parent per
        // child for control-plane purposes.
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut uplink_rate: Vec<Option<Rate>> = vec![None; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for sw in topo.switches() {
            let my_level = level[sw.index()].expect("switch classified");
            let want = match my_level {
                Level::Tor => Level::Agg,
                Level::Agg => Level::Core,
                Level::Core => continue,
            };
            let mut ups: Vec<(NodeId, Rate)> = topo
                .neighbors(sw)
                .iter()
                .filter(|&&(_, peer, _, _)| level[peer.index()] == Some(want))
                .map(|&(_, peer, rate, _)| (peer, rate))
                .collect();
            ups.sort_by_key(|(id, _)| *id);
            if let Some(&(up, rate)) = ups.first() {
                parent[sw.index()] = Some(up);
                uplink_rate[sw.index()] = Some(rate);
                children[up.index()].push(sw);
            }
        }
        for kids in &mut children {
            kids.sort();
        }
        TreeInfo {
            host_tor,
            level,
            parent,
            uplink_rate,
            children,
        }
    }

    /// The ToR switch of a host.
    pub fn tor_of(&self, host: NodeId) -> NodeId {
        self.host_tor[host.index()].expect("node is a host")
    }

    /// A switch's hierarchy level.
    pub fn level(&self, sw: NodeId) -> Level {
        self.level[sw.index()].expect("node is a switch")
    }

    /// A switch's parent in the tree, if any.
    pub fn parent(&self, sw: NodeId) -> Option<NodeId> {
        self.parent[sw.index()]
    }

    /// Capacity of the link from `sw` to its parent.
    pub fn uplink_rate(&self, sw: NodeId) -> Option<Rate> {
        self.uplink_rate[sw.index()]
    }

    /// The children of a switch (ToRs of an agg; aggs of a core).
    pub fn children(&self, sw: NodeId) -> &[NodeId] {
        &self.children[sw.index()]
    }

    /// Are two hosts in the same rack?
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.tor_of(a) == self.tor_of(b)
    }

    /// Do two hosts share an aggregation subtree (i.e. the path between
    /// them does not cross the core)?
    pub fn same_agg_subtree(&self, a: NodeId, b: NodeId) -> bool {
        if self.same_rack(a, b) {
            return true;
        }
        let (ta, tb) = (self.tor_of(a), self.tor_of(b));
        match (self.parent[ta.index()], self.parent[tb.index()]) {
            (Some(pa), Some(pb)) => pa == pb,
            _ => true, // no aggregation level: single subtree
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::flow::{FlowSpec, ReceiverHint};
    use netsim::host::{AgentCtx, AgentFactory, FlowAgent};
    use netsim::queue::DropTailQdisc;
    use netsim::time::SimDuration;
    use netsim::topology::TopologyBuilder;
    use std::sync::Arc;

    struct NullFactory;
    struct NullAgent;
    impl FlowAgent for NullAgent {
        fn on_start(&mut self, _: &mut AgentCtx<'_, '_>) {}
        fn on_packet(&mut self, _: netsim::packet::Packet, _: &mut AgentCtx<'_, '_>) {}
        fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_, '_>) {}
        fn is_done(&self) -> bool {
            false
        }
    }
    impl AgentFactory for NullFactory {
        fn sender(&self, _: &FlowSpec) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
        fn receiver(&self, _: ReceiverHint) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
    }

    /// The paper's baseline: 3-tier, `tors` racks of `n` hosts, 2 aggs.
    fn three_tier(n: usize) -> (Topology, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>, NodeId) {
        let mut b = TopologyBuilder::new();
        let core = b.add_switch();
        let aggs = vec![b.add_switch(), b.add_switch()];
        let mut tors = vec![];
        let mut hosts = vec![];
        for &agg in &aggs {
            for _ in 0..2 {
                let tor = b.add_switch();
                tors.push(tor);
                b.connect(tor, agg, Rate::from_gbps(10), SimDuration::from_micros(25));
                for _ in 0..n {
                    let h = b.add_host();
                    hosts.push(h);
                    b.connect(h, tor, Rate::from_gbps(1), SimDuration::from_micros(25));
                }
            }
            b.connect(agg, core, Rate::from_gbps(10), SimDuration::from_micros(25));
        }
        let net = b.build(Arc::new(NullFactory), &|_| Box::new(DropTailQdisc::new(16)));
        (net.topo, hosts, tors, aggs, core)
    }

    #[test]
    fn classifies_three_tier() {
        let (topo, hosts, tors, aggs, core) = three_tier(3);
        let tree = TreeInfo::from_topology(&topo);
        for &t in &tors {
            assert_eq!(tree.level(t), Level::Tor);
        }
        for &a in &aggs {
            assert_eq!(tree.level(a), Level::Agg);
        }
        assert_eq!(tree.level(core), Level::Core);
        assert_eq!(tree.tor_of(hosts[0]), tors[0]);
        assert_eq!(tree.parent(tors[0]), Some(aggs[0]));
        assert_eq!(tree.parent(tors[3]), Some(aggs[1]));
        assert_eq!(tree.parent(aggs[0]), Some(core));
        assert_eq!(tree.parent(core), None);
        assert_eq!(tree.children(aggs[0]), &[tors[0], tors[1]]);
        assert_eq!(tree.uplink_rate(tors[0]), Some(Rate::from_gbps(10)));
    }

    #[test]
    fn rack_and_subtree_relations() {
        let (topo, hosts, ..) = three_tier(3);
        let tree = TreeInfo::from_topology(&topo);
        // hosts 0..3 in rack 0; 3..6 rack 1 (same agg); 6..9 rack 2.
        assert!(tree.same_rack(hosts[0], hosts[2]));
        assert!(!tree.same_rack(hosts[0], hosts[3]));
        assert!(tree.same_agg_subtree(hosts[0], hosts[5]));
        assert!(!tree.same_agg_subtree(hosts[0], hosts[6]));
    }

    #[test]
    fn single_rack_has_no_parents() {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch();
        let hosts = b.add_hosts(4);
        for &h in &hosts {
            b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(25));
        }
        let net = b.build(Arc::new(NullFactory), &|_| Box::new(DropTailQdisc::new(16)));
        let tree = TreeInfo::from_topology(&net.topo);
        assert_eq!(tree.level(sw), Level::Tor);
        assert_eq!(tree.parent(sw), None);
        assert!(tree.same_rack(hosts[0], hosts[3]));
        assert!(tree.same_agg_subtree(hosts[0], hosts[3]));
    }
}
