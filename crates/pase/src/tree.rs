//! Tree-topology metadata for the arbitration hierarchy.
//!
//! PASE's control plane "exploits the typical tree structure of data
//! center topologies" (paper §3.1.2). [`TreeInfo`] extracts that structure
//! from an arbitrary [`netsim::topology::Topology`]: which ToR a host
//! hangs off, which aggregation switch parents a ToR, and which core
//! switch parents an aggregation switch. One-, two- and three-tier trees
//! are all supported (missing levels simply have no parent).

use std::collections::HashMap;

use netsim::ids::NodeId;
use netsim::time::Rate;
use netsim::topology::{NodeKind, Topology};

/// Hierarchy level of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Top-of-rack: has at least one host neighbor.
    Tor,
    /// Aggregation: neighbors are ToRs below and (optionally) a core above.
    Agg,
    /// Core: neighbors are aggregation switches only.
    Core,
}

/// Extracted tree structure.
#[derive(Debug, Clone)]
pub struct TreeInfo {
    /// Each host's ToR.
    host_tor: HashMap<NodeId, NodeId>,
    /// Each switch's level.
    level: HashMap<NodeId, Level>,
    /// Each switch's parent (ToR → agg, agg → core).
    parent: HashMap<NodeId, NodeId>,
    /// Capacity of the link `switch -> parent`.
    uplink_rate: HashMap<NodeId, Rate>,
    /// Children of each switch (aggs of a core, ToRs of an agg).
    children: HashMap<NodeId, Vec<NodeId>>,
}

impl TreeInfo {
    /// Classify a topology as a tree. Panics on non-tree structures (e.g.
    /// a switch with both host and core neighbors at distance 2 levels).
    pub fn from_topology(topo: &Topology) -> TreeInfo {
        let mut host_tor = HashMap::new();
        let mut level = HashMap::new();

        // Level 1: ToRs have host neighbors.
        for sw in topo.switches() {
            let has_host = topo
                .neighbors(sw)
                .iter()
                .any(|&(_, peer, _, _)| topo.kind(peer) == NodeKind::Host);
            if has_host {
                level.insert(sw, Level::Tor);
            }
        }
        for h in topo.hosts() {
            host_tor.insert(h, topo.host_tor(h));
        }
        // Level 2: aggs neighbor ToRs but no hosts.
        for sw in topo.switches() {
            if level.contains_key(&sw) {
                continue;
            }
            let next_to_tor = topo
                .neighbors(sw)
                .iter()
                .any(|&(_, peer, _, _)| level.get(&peer) == Some(&Level::Tor));
            if next_to_tor {
                level.insert(sw, Level::Agg);
            }
        }
        // Level 3: everything else is core.
        for sw in topo.switches() {
            level.entry(sw).or_insert(Level::Core);
        }

        // Parents: a ToR's agg neighbor; an agg's core neighbor. A node
        // with several upper neighbors keeps the lowest id (deterministic)
        // — multi-rooted trees are approximated by a single parent per
        // child for control-plane purposes.
        let mut parent = HashMap::new();
        let mut uplink_rate = HashMap::new();
        let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for sw in topo.switches() {
            let my_level = level[&sw];
            let want = match my_level {
                Level::Tor => Level::Agg,
                Level::Agg => Level::Core,
                Level::Core => continue,
            };
            let mut ups: Vec<(NodeId, Rate)> = topo
                .neighbors(sw)
                .iter()
                .filter(|&&(_, peer, _, _)| level.get(&peer) == Some(&want))
                .map(|&(_, peer, rate, _)| (peer, rate))
                .collect();
            ups.sort_by_key(|(id, _)| *id);
            if let Some(&(up, rate)) = ups.first() {
                parent.insert(sw, up);
                uplink_rate.insert(sw, rate);
                children.entry(up).or_default().push(sw);
            }
        }
        for kids in children.values_mut() {
            kids.sort();
        }
        TreeInfo {
            host_tor,
            level,
            parent,
            uplink_rate,
            children,
        }
    }

    /// The ToR switch of a host.
    pub fn tor_of(&self, host: NodeId) -> NodeId {
        self.host_tor[&host]
    }

    /// A switch's hierarchy level.
    pub fn level(&self, sw: NodeId) -> Level {
        self.level[&sw]
    }

    /// A switch's parent in the tree, if any.
    pub fn parent(&self, sw: NodeId) -> Option<NodeId> {
        self.parent.get(&sw).copied()
    }

    /// Capacity of the link from `sw` to its parent.
    pub fn uplink_rate(&self, sw: NodeId) -> Option<Rate> {
        self.uplink_rate.get(&sw).copied()
    }

    /// The children of a switch (ToRs of an agg; aggs of a core).
    pub fn children(&self, sw: NodeId) -> &[NodeId] {
        self.children.get(&sw).map_or(&[], |v| v.as_slice())
    }

    /// Are two hosts in the same rack?
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.tor_of(a) == self.tor_of(b)
    }

    /// Do two hosts share an aggregation subtree (i.e. the path between
    /// them does not cross the core)?
    pub fn same_agg_subtree(&self, a: NodeId, b: NodeId) -> bool {
        if self.same_rack(a, b) {
            return true;
        }
        let (ta, tb) = (self.tor_of(a), self.tor_of(b));
        match (self.parent.get(&ta), self.parent.get(&tb)) {
            (Some(pa), Some(pb)) => pa == pb,
            _ => true, // no aggregation level: single subtree
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::flow::{FlowSpec, ReceiverHint};
    use netsim::host::{AgentCtx, AgentFactory, FlowAgent};
    use netsim::queue::DropTailQdisc;
    use netsim::time::SimDuration;
    use netsim::topology::TopologyBuilder;
    use std::sync::Arc;

    struct NullFactory;
    struct NullAgent;
    impl FlowAgent for NullAgent {
        fn on_start(&mut self, _: &mut AgentCtx<'_, '_>) {}
        fn on_packet(&mut self, _: netsim::packet::Packet, _: &mut AgentCtx<'_, '_>) {}
        fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_, '_>) {}
        fn is_done(&self) -> bool {
            false
        }
    }
    impl AgentFactory for NullFactory {
        fn sender(&self, _: &FlowSpec) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
        fn receiver(&self, _: ReceiverHint) -> Box<dyn FlowAgent> {
            Box::new(NullAgent)
        }
    }

    /// The paper's baseline: 3-tier, `tors` racks of `n` hosts, 2 aggs.
    fn three_tier(n: usize) -> (Topology, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>, NodeId) {
        let mut b = TopologyBuilder::new();
        let core = b.add_switch();
        let aggs = vec![b.add_switch(), b.add_switch()];
        let mut tors = vec![];
        let mut hosts = vec![];
        for &agg in &aggs {
            for _ in 0..2 {
                let tor = b.add_switch();
                tors.push(tor);
                b.connect(tor, agg, Rate::from_gbps(10), SimDuration::from_micros(25));
                for _ in 0..n {
                    let h = b.add_host();
                    hosts.push(h);
                    b.connect(h, tor, Rate::from_gbps(1), SimDuration::from_micros(25));
                }
            }
            b.connect(agg, core, Rate::from_gbps(10), SimDuration::from_micros(25));
        }
        let net = b.build(Arc::new(NullFactory), &|_| Box::new(DropTailQdisc::new(16)));
        (net.topo, hosts, tors, aggs, core)
    }

    #[test]
    fn classifies_three_tier() {
        let (topo, hosts, tors, aggs, core) = three_tier(3);
        let tree = TreeInfo::from_topology(&topo);
        for &t in &tors {
            assert_eq!(tree.level(t), Level::Tor);
        }
        for &a in &aggs {
            assert_eq!(tree.level(a), Level::Agg);
        }
        assert_eq!(tree.level(core), Level::Core);
        assert_eq!(tree.tor_of(hosts[0]), tors[0]);
        assert_eq!(tree.parent(tors[0]), Some(aggs[0]));
        assert_eq!(tree.parent(tors[3]), Some(aggs[1]));
        assert_eq!(tree.parent(aggs[0]), Some(core));
        assert_eq!(tree.parent(core), None);
        assert_eq!(tree.children(aggs[0]), &[tors[0], tors[1]]);
        assert_eq!(tree.uplink_rate(tors[0]), Some(Rate::from_gbps(10)));
    }

    #[test]
    fn rack_and_subtree_relations() {
        let (topo, hosts, ..) = three_tier(3);
        let tree = TreeInfo::from_topology(&topo);
        // hosts 0..3 in rack 0; 3..6 rack 1 (same agg); 6..9 rack 2.
        assert!(tree.same_rack(hosts[0], hosts[2]));
        assert!(!tree.same_rack(hosts[0], hosts[3]));
        assert!(tree.same_agg_subtree(hosts[0], hosts[5]));
        assert!(!tree.same_agg_subtree(hosts[0], hosts[6]));
    }

    #[test]
    fn single_rack_has_no_parents() {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch();
        let hosts = b.add_hosts(4);
        for &h in &hosts {
            b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(25));
        }
        let net = b.build(Arc::new(NullFactory), &|_| Box::new(DropTailQdisc::new(16)));
        let tree = TreeInfo::from_topology(&net.topo);
        assert_eq!(tree.level(sw), Level::Tor);
        assert_eq!(tree.parent(sw), None);
        assert!(tree.same_rack(hosts[0], hosts[3]));
        assert!(tree.same_agg_subtree(hosts[0], hosts[3]));
    }
}
