//! Property-based tests for the endpoint machinery: the byte tracker and
//! the RTT estimator must uphold their invariants for arbitrary inputs.

use proptest::prelude::*;

use netsim::time::SimDuration;
use transport::{ByteTracker, RttEstimator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ByteTracker against a naive bitset model.
    #[test]
    fn tracker_matches_naive_model(ranges in prop::collection::vec((0u64..2000, 1u64..300), 0..60)) {
        let mut tracker = ByteTracker::new();
        let mut model = vec![false; 4096];
        for (start, len) in ranges {
            let end = start + len;
            let had_new = model[start as usize..end as usize].iter().any(|b| !b);
            let reported = tracker.on_range(start, end);
            prop_assert_eq!(reported, had_new, "new-bytes report mismatch at {}..{}", start, end);
            for b in &mut model[start as usize..end as usize] {
                *b = true;
            }
            // Cumulative ack = longest true prefix.
            let cum = model.iter().position(|b| !b).unwrap_or(model.len()) as u64;
            prop_assert_eq!(tracker.cum_ack(), cum);
            // Total bytes.
            let total = model.iter().filter(|b| **b).count() as u64;
            prop_assert_eq!(tracker.bytes_received(), total);
        }
    }

    /// `contains` agrees with the model for arbitrary queries.
    #[test]
    fn tracker_contains_matches_model(
        ranges in prop::collection::vec((0u64..1000, 1u64..200), 0..30),
        queries in prop::collection::vec((0u64..1200, 1u64..200), 1..20),
    ) {
        let mut tracker = ByteTracker::new();
        let mut model = vec![false; 2048];
        for (start, len) in ranges {
            tracker.on_range(start, start + len);
            for b in &mut model[start as usize..(start + len) as usize] {
                *b = true;
            }
        }
        for (start, len) in queries {
            let end = start + len;
            let expected = model[start as usize..end as usize].iter().all(|b| *b);
            prop_assert_eq!(tracker.contains(start, end), expected, "query {}..{}", start, end);
        }
    }

    /// The gap count never exceeds the number of disjoint inserted ranges.
    #[test]
    fn tracker_gap_count_bounded(ranges in prop::collection::vec((0u64..5000, 1u64..100), 0..50)) {
        let mut tracker = ByteTracker::new();
        for (i, (start, len)) in ranges.iter().enumerate() {
            tracker.on_range(*start, start + len);
            prop_assert!(tracker.gaps() <= i + 1);
        }
    }

    /// RTO stays within its clamps and backoff is monotone.
    #[test]
    fn rto_respects_bounds(
        samples_us in prop::collection::vec(1u64..100_000, 1..50),
        backoffs in 0u32..10,
    ) {
        let min = SimDuration::from_micros(200);
        let max = SimDuration::from_millis(800);
        let mut est = RttEstimator::new(min, max);
        for s in &samples_us {
            est.on_sample(SimDuration::from_micros(*s));
            prop_assert!(est.rto() >= min && est.rto() <= max);
        }
        let mut prev = est.rto();
        for _ in 0..backoffs {
            est.on_timeout();
            let cur = est.rto();
            prop_assert!(cur >= prev, "backoff must not shrink the RTO");
            prop_assert!(cur <= max);
            prev = cur;
        }
        // A fresh sample resets the backoff.
        est.on_sample(SimDuration::from_micros(samples_us[0]));
        prop_assert_eq!(est.backoff(), 0);
    }

    /// SRTT stays within the convex hull of the samples.
    #[test]
    fn srtt_within_sample_range(samples_us in prop::collection::vec(10u64..1_000_000, 1..100)) {
        let mut est = RttEstimator::new(SimDuration::ZERO, SimDuration::from_secs(100));
        for s in &samples_us {
            est.on_sample(SimDuration::from_micros(*s));
        }
        let lo = *samples_us.iter().min().unwrap();
        let hi = *samples_us.iter().max().unwrap();
        let srtt = est.srtt().unwrap().as_micros_f64();
        prop_assert!(srtt >= lo as f64 * 0.99 && srtt <= hi as f64 * 1.01,
            "srtt {} outside [{}, {}]", srtt, lo, hi);
    }
}
