//! Randomized tests for the endpoint machinery: the byte tracker and the
//! RTT estimator must uphold their invariants for arbitrary inputs. Cases
//! are generated from netsim's seeded [`Rng`] so the suite is
//! deterministic and dependency-free.

use netsim::rng::Rng;
use netsim::time::SimDuration;
use transport::{ByteTracker, RttEstimator};

/// Random (start, len) ranges with `start < start_max`, `1 <= len < len_max`.
fn ranges(rng: &mut Rng, n_max: usize, start_max: u64, len_max: u64) -> Vec<(u64, u64)> {
    let n = rng.gen_index(n_max);
    (0..n)
        .map(|_| {
            (
                rng.gen_below(start_max),
                rng.gen_range_inclusive(1, len_max - 1),
            )
        })
        .collect()
}

const CASES: u64 = 128;

/// ByteTracker against a naive bitset model.
#[test]
fn tracker_matches_naive_model() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x7ac1 ^ seed);
        let mut tracker = ByteTracker::new();
        let mut model = vec![false; 4096];
        for (start, len) in ranges(&mut rng, 60, 2000, 300) {
            let end = start + len;
            let had_new = model[start as usize..end as usize].iter().any(|b| !b);
            let reported = tracker.on_range(start, end);
            assert_eq!(
                reported, had_new,
                "new-bytes report mismatch at {start}..{end}"
            );
            for b in &mut model[start as usize..end as usize] {
                *b = true;
            }
            // Cumulative ack = longest true prefix.
            let cum = model.iter().position(|b| !b).unwrap_or(model.len()) as u64;
            assert_eq!(tracker.cum_ack(), cum);
            // Total bytes.
            let total = model.iter().filter(|b| **b).count() as u64;
            assert_eq!(tracker.bytes_received(), total);
        }
    }
}

/// `contains` agrees with the model for arbitrary queries.
#[test]
fn tracker_contains_matches_model() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xc077 ^ seed);
        let mut tracker = ByteTracker::new();
        let mut model = vec![false; 2048];
        for (start, len) in ranges(&mut rng, 30, 1000, 200) {
            tracker.on_range(start, start + len);
            for b in &mut model[start as usize..(start + len) as usize] {
                *b = true;
            }
        }
        let n_queries = rng.gen_range_inclusive(1, 19);
        for _ in 0..n_queries {
            let start = rng.gen_below(1200);
            let end = start + rng.gen_range_inclusive(1, 199);
            let expected = model[start as usize..end as usize].iter().all(|b| *b);
            assert_eq!(
                tracker.contains(start, end),
                expected,
                "query {start}..{end}"
            );
        }
    }
}

/// The gap count never exceeds the number of disjoint inserted ranges.
#[test]
fn tracker_gap_count_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x9a05 ^ seed);
        let mut tracker = ByteTracker::new();
        for (i, (start, len)) in ranges(&mut rng, 50, 5000, 100).iter().enumerate() {
            tracker.on_range(*start, start + len);
            assert!(tracker.gaps() <= i + 1);
        }
    }
}

/// RTO stays within its clamps and backoff is monotone.
#[test]
fn rto_respects_bounds() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x2707 ^ seed);
        let n_samples = rng.gen_range_inclusive(1, 49);
        let samples_us: Vec<u64> = (0..n_samples)
            .map(|_| rng.gen_range_inclusive(1, 99_999))
            .collect();
        let backoffs = rng.gen_below(10);
        let min = SimDuration::from_micros(200);
        let max = SimDuration::from_millis(800);
        let mut est = RttEstimator::new(min, max);
        for s in &samples_us {
            est.on_sample(SimDuration::from_micros(*s));
            assert!(est.rto() >= min && est.rto() <= max);
        }
        let mut prev = est.rto();
        for _ in 0..backoffs {
            est.on_timeout();
            let cur = est.rto();
            assert!(cur >= prev, "backoff must not shrink the RTO");
            assert!(cur <= max);
            prev = cur;
        }
        // A fresh sample resets the backoff.
        est.on_sample(SimDuration::from_micros(samples_us[0]));
        assert_eq!(est.backoff(), 0);
    }
}

/// SRTT stays within the convex hull of the samples.
#[test]
fn srtt_within_sample_range() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5277 ^ seed);
        let n_samples = rng.gen_range_inclusive(1, 99);
        let samples_us: Vec<u64> = (0..n_samples)
            .map(|_| rng.gen_range_inclusive(10, 999_999))
            .collect();
        let mut est = RttEstimator::new(SimDuration::ZERO, SimDuration::from_secs(100));
        for s in &samples_us {
            est.on_sample(SimDuration::from_micros(*s));
        }
        let lo = *samples_us.iter().min().unwrap();
        let hi = *samples_us.iter().max().unwrap();
        let srtt = est.srtt().unwrap().as_micros_f64();
        assert!(
            srtt >= lo as f64 * 0.99 && srtt <= hi as f64 * 1.01,
            "srtt {srtt} outside [{lo}, {hi}]"
        );
    }
}
