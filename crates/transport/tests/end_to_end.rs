//! End-to-end tests: DCTCP-family flows over a real simulated network.

use std::sync::Arc;

use netsim::prelude::*;
use netsim::queue::RedEcnQdisc;
use transport::FamilyFactory;

const MSS_WIRE: u32 = 1500;

/// Single-rack star: `n` hosts behind one switch, 1 Gbps, 25 us links.
fn star_sim(n: usize, factory: FamilyFactory, qcap: usize, k: usize) -> (Simulation, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch();
    let hosts = b.add_hosts(n);
    for &h in &hosts {
        b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(25));
    }
    let net = b.build(Arc::new(factory), &|_| Box::new(RedEcnQdisc::new(qcap, k)));
    (Simulation::new(net), hosts)
}

#[test]
fn single_dctcp_flow_completes_with_sane_fct() {
    let (mut sim, hosts) = star_sim(2, FamilyFactory::dctcp(), 225, 20);
    let size = 100_000;
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[1],
        size,
        SimTime::ZERO,
    ));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(5)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let rec = sim.stats().flow(FlowId(0)).unwrap();
    let fct = rec.fct().unwrap();
    // Lower bound: pure serialization of ~100KB at 1 Gbps over two hops
    // plus propagation (~0.9 ms); upper bound: generous slow-start budget.
    assert!(
        fct > SimDuration::from_micros(800),
        "FCT implausibly low: {fct}"
    );
    assert!(
        fct < SimDuration::from_millis(10),
        "FCT implausibly high: {fct}"
    );
    assert_eq!(rec.timeouts, 0, "no timeouts expected on an idle network");
    assert_eq!(rec.drops, 0);
}

#[test]
fn dctcp_flow_is_deterministic() {
    let run = || {
        let (mut sim, hosts) = star_sim(4, FamilyFactory::dctcp(), 225, 20);
        for i in 0..3u64 {
            sim.add_flow(FlowSpec::new(
                FlowId(i),
                hosts[i as usize],
                hosts[3],
                50_000 + i * 10_000,
                SimTime::from_micros(i * 10),
            ));
        }
        sim.run(RunLimit::until_measured_done(SimTime::from_secs(5)));
        sim.stats()
            .flows()
            .map(|r| r.fct().unwrap().as_nanos())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(),
        run(),
        "identical configs must give identical results"
    );
}

#[test]
fn competing_dctcp_flows_share_and_complete() {
    let (mut sim, hosts) = star_sim(3, FamilyFactory::dctcp(), 225, 20);
    // Both senders target host 2: the receiver downlink is the bottleneck.
    let size = 500_000u64;
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[2],
        size,
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[1],
        hosts[2],
        size,
        SimTime::ZERO,
    ));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(5)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    let f0 = sim.stats().flow(FlowId(0)).unwrap().fct().unwrap();
    let f1 = sim.stats().flow(FlowId(1)).unwrap().fct().unwrap();
    // Fair sharing: both roughly double the solo time; neither starves.
    let ratio = f0.as_nanos() as f64 / f1.as_nanos() as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "DCTCP flows diverged: {f0} vs {f1}"
    );
    // Together they needed at least 2*size/rate = 8 ms.
    assert!(f0.max(f1) > SimDuration::from_millis(8));
}

#[test]
fn dctcp_keeps_queues_bounded_by_ecn() {
    let (mut sim, hosts) = star_sim(3, FamilyFactory::dctcp(), 225, 20);
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[2],
        2_000_000,
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[1],
        hosts[2],
        2_000_000,
        SimTime::ZERO,
    ));
    sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
    // With K=20 and a 225-packet buffer, ECN should prevent all drops.
    assert_eq!(
        sim.stats().data_pkts_dropped,
        0,
        "DCTCP should not overflow"
    );
    // And marks must actually have happened (the queue did congest).
    let netsim::node::Node::Switch(sw) = sim.node(NodeId(0)) else {
        panic!("node 0 is the switch");
    };
    let marked: u64 = sw.ports().iter().map(|p| p.qdisc_stats().marked_pkts).sum();
    assert!(marked > 0, "expected ECN marks under congestion");
}

#[test]
fn reno_survives_drop_tail_losses() {
    // Tiny queue to force real drops; Reno must still complete via fast
    // retransmit / RTO.
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch();
    let hosts = b.add_hosts(3);
    for &h in &hosts {
        b.connect(h, sw, Rate::from_gbps(1), SimDuration::from_micros(25));
    }
    let net = b.build(Arc::new(FamilyFactory::reno()), &|_| {
        Box::new(DropTailQdisc::new(8))
    });
    let mut sim = Simulation::new(net);
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[2],
        400_000,
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[1],
        hosts[2],
        400_000,
        SimTime::ZERO,
    ));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(30)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    assert!(
        sim.stats().data_pkts_dropped > 0,
        "test should actually exercise loss"
    );
}

#[test]
fn d2tcp_and_l2dct_complete() {
    for factory in [FamilyFactory::d2tcp(), FamilyFactory::l2dct()] {
        let (mut sim, hosts) = star_sim(4, factory, 225, 20);
        for i in 0..3u64 {
            sim.add_flow(
                FlowSpec::new(
                    FlowId(i),
                    hosts[i as usize],
                    hosts[3],
                    200_000,
                    SimTime::ZERO,
                )
                .with_deadline(SimDuration::from_millis(20)),
            );
        }
        let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(5)));
        assert_eq!(outcome, RunOutcome::MeasuredComplete);
    }
}

#[test]
fn l2dct_prefers_short_flows_over_long() {
    // One long flow started first, one short flow arriving later. Under
    // L2DCT the short flow should finish in a small multiple of its ideal
    // time despite the long flow, because the long flow's weight decays.
    let (mut sim, hosts) = star_sim(3, FamilyFactory::l2dct(), 225, 20);
    sim.add_flow(FlowSpec::new(
        FlowId(0),
        hosts[0],
        hosts[2],
        10_000_000,
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[1],
        hosts[2],
        50_000,
        SimTime::from_millis(20),
    ));
    sim.run(RunLimit::until_measured_done(SimTime::from_secs(10)));
    let short = sim.stats().flow(FlowId(1)).unwrap().fct().unwrap();
    assert!(
        short < SimDuration::from_millis(15),
        "short flow under L2DCT took {short}"
    );
}

#[test]
fn background_flow_does_not_block_termination() {
    let (mut sim, hosts) = star_sim(3, FamilyFactory::dctcp(), 225, 20);
    sim.add_flow(FlowSpec::background(
        FlowId(0),
        hosts[0],
        hosts[2],
        SimTime::ZERO,
    ));
    sim.add_flow(FlowSpec::new(
        FlowId(1),
        hosts[1],
        hosts[2],
        100_000,
        SimTime::from_millis(1),
    ));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(5)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    assert!(sim.stats().flow(FlowId(1)).unwrap().completed.is_some());
    assert!(sim.stats().flow(FlowId(0)).unwrap().completed.is_none());
}

#[test]
fn cross_rack_flow_traverses_tree() {
    // host - tor - agg - tor - host with 10G core links.
    let mut b = TopologyBuilder::new();
    let tor0 = b.add_switch();
    let tor1 = b.add_switch();
    let agg = b.add_switch();
    let h0 = b.add_host();
    let h1 = b.add_host();
    b.connect(h0, tor0, Rate::from_gbps(1), SimDuration::from_micros(25));
    b.connect(h1, tor1, Rate::from_gbps(1), SimDuration::from_micros(25));
    b.connect(tor0, agg, Rate::from_gbps(10), SimDuration::from_micros(25));
    b.connect(tor1, agg, Rate::from_gbps(10), SimDuration::from_micros(25));
    let net = b.build(Arc::new(FamilyFactory::dctcp()), &|spec| {
        let k = if spec.rate.as_bps() >= 10_000_000_000 {
            65
        } else {
            20
        };
        Box::new(RedEcnQdisc::new(225, k))
    });
    let mut sim = Simulation::new(net);
    sim.add_flow(FlowSpec::new(FlowId(0), h0, h1, 300_000, SimTime::ZERO));
    let outcome = sim.run(RunLimit::until_measured_done(SimTime::from_secs(5)));
    assert_eq!(outcome, RunOutcome::MeasuredComplete);
    // Sanity: the flow actually crossed the aggregation switch.
    let netsim::node::Node::Switch(aggsw) = sim.node(agg) else {
        panic!()
    };
    assert!(aggsw.ports().iter().map(|p| p.tx_pkts).sum::<u64>() > 200);
    let _ = MSS_WIRE;
}
