//! White-box tests of [`transport::TxEngine`]'s ACK processing, fast
//! retransmit, recovery, timers and the reordering hold, using a minimal
//! hand-built [`AgentCtx`] harness (no network).

use netsim::engine::{Ctx, Scheduler};
use netsim::host::{AgentCtx, HostCore};
use netsim::ids::{FlowId, NodeId, PortId};
use netsim::packet::PacketKind;
use netsim::port::Port;
use netsim::queue::DropTailQdisc;
use netsim::stats::StatsCollector;
use netsim::time::{Rate, SimDuration};
use transport::{AckKind, LossEvent, RttEstimator, TxEngine};

/// Drives a TxEngine against a scaffolded host context. Packets the engine
/// "sends" go into the port queue and are simply counted.
struct Harness {
    sched: Scheduler,
    stats: StatsCollector,
    core: HostCore,
    engine: TxEngine,
}

impl Harness {
    fn new(size: u64, cwnd: f64) -> Harness {
        let port = Port::new(
            PortId(0),
            NodeId(1),
            Rate::from_gbps(1),
            SimDuration::from_micros(10),
            Box::new(DropTailQdisc::new(4096)),
        );
        let rtt = RttEstimator::new(SimDuration::from_millis(1), SimDuration::from_secs(2));
        Harness {
            sched: Scheduler::new(),
            stats: StatsCollector::new(),
            core: HostCore {
                id: NodeId(0),
                port,
                incarnation: 0,
            },
            engine: TxEngine::new(FlowId(0), NodeId(0), NodeId(1), size, 1000, cwnd, rtt),
        }
    }

    /// Run `f` with a live AgentCtx.
    fn with_ctx<R>(&mut self, f: impl FnOnce(&mut TxEngine, &mut AgentCtx<'_, '_>) -> R) -> R {
        let mut ctx = Ctx {
            node: NodeId(0),
            sched: &mut self.sched,
            stats: &mut self.stats,
        };
        let mut actx = AgentCtx {
            flow: FlowId(0),
            host: &mut self.core,
            service: None,
            sim: &mut ctx,
        };
        f(&mut self.engine, &mut actx)
    }

    fn pump(&mut self) -> usize {
        self.with_ctx(|e, ctx| e.pump(ctx, |p| p.prio = 1))
    }

    fn ack(&mut self, seq: u64) -> AckKind {
        self.with_ctx(|e, ctx| {
            let now = ctx.now();
            e.on_ack(seq, None, now)
        })
    }
}

#[test]
fn pump_respects_the_window() {
    let mut h = Harness::new(100_000, 5.0);
    assert_eq!(h.pump(), 5, "initial burst = cwnd");
    assert_eq!(h.engine.flight_pkts(), 5);
    assert_eq!(h.pump(), 0, "window full");
    // One ack frees one slot.
    assert!(matches!(
        h.ack(1000),
        AckKind::New {
            newly_acked: 1000,
            ..
        }
    ));
    assert_eq!(h.pump(), 1);
}

#[test]
fn three_dupacks_trigger_fast_retransmit_once() {
    let mut h = Harness::new(100_000, 10.0);
    h.pump();
    assert!(matches!(h.ack(2000), AckKind::New { .. }));
    // Three duplicates of the same cumulative ack.
    assert!(matches!(h.ack(2000), AckKind::Dup { count: 1 }));
    assert!(matches!(h.ack(2000), AckKind::Dup { count: 2 }));
    assert!(matches!(h.ack(2000), AckKind::Dup { count: 3 }));
    assert_eq!(h.engine.take_loss_event(), Some(LossEvent::FastRetransmit));
    assert!(h.engine.in_recovery());
    // Further dupacks raise no more loss events while in recovery.
    assert!(matches!(h.ack(2000), AckKind::Dup { count: 4 }));
    assert_eq!(h.engine.take_loss_event(), None);
    // The retransmission goes out on the next pump (plus any new data the
    // window allows), and is accounted as retransmitted bytes.
    let recover_end = h.engine.snd_nxt();
    assert!(h.pump() >= 1, "fast retransmit must be sent");
    let rtx = h.stats.flow(FlowId(0)).map_or(0, |r| r.retransmitted_bytes);
    let _ = rtx; // flow not registered in this harness; accounting is a no-op
                 // Recovery ends when the ack passes the loss point.
    assert!(matches!(h.ack(recover_end), AckKind::New { .. }));
    assert!(!h.engine.in_recovery());
}

#[test]
fn stale_and_future_acks() {
    let mut h = Harness::new(10_000, 4.0);
    h.pump();
    assert!(matches!(h.ack(2000), AckKind::New { .. }));
    // An older cumulative ack is stale, not a duplicate.
    assert!(matches!(h.ack(1000), AckKind::Stale));
    // Acks are idempotent on completion.
    assert!(matches!(h.ack(2000), AckKind::Dup { .. }));
}

#[test]
fn timeout_rewinds_and_backs_off() {
    let mut h = Harness::new(50_000, 8.0);
    h.pump();
    let epoch = h.engine.timer_epoch();
    assert!(h.engine.timer_is_live(epoch));
    assert!(
        !h.engine.timer_is_live(epoch + 1),
        "future tokens are not live"
    );
    let fired = h.with_ctx(|e, ctx| e.on_timer(epoch, ctx));
    assert!(fired);
    assert_eq!(h.engine.take_loss_event(), Some(LossEvent::Timeout));
    // Go-back-N: the frontier rewound to the cumulative ack.
    assert_eq!(h.engine.snd_nxt(), 0);
    assert_eq!(h.engine.flight_bytes(), 0);
    // The same token cannot fire twice.
    let fired_again = h.with_ctx(|e, ctx| e.on_timer(epoch, ctx));
    assert!(!fired_again);
}

#[test]
fn idle_pumps_do_not_push_out_a_pending_rto() {
    let mut h = Harness::new(50_000, 4.0);
    h.pump();
    let epoch = h.engine.timer_epoch();
    // No-op pumps (PASE wakes its sender on every 100 µs arbitration
    // response) must not reset the timer, or the RTO — the only recovery
    // path once the ACK clock is lost — could never expire.
    for _ in 0..10 {
        assert_eq!(h.pump(), 0, "window is full");
        assert_eq!(h.engine.timer_epoch(), epoch, "deadline must be kept");
        assert!(h.engine.timer_is_live(epoch));
    }
    // An ACK for new data restarts it (RFC 6298): the old token dies.
    assert!(matches!(h.ack(1000), AckKind::New { .. }));
    assert_eq!(h.pump(), 1);
    assert!(h.engine.timer_epoch() > epoch);
    assert!(!h.engine.timer_is_live(epoch));
}

#[test]
fn deferred_timeout_keeps_data_outstanding() {
    let mut h = Harness::new(50_000, 4.0);
    h.pump();
    let flight = h.engine.flight_bytes();
    let epoch = h.engine.timer_epoch();
    assert!(h.engine.timer_is_live(epoch));
    h.with_ctx(|e, ctx| e.defer_timeout(ctx));
    // Nothing rewound; a fresh timer epoch was armed.
    assert_eq!(h.engine.flight_bytes(), flight);
    assert!(h.engine.timer_epoch() > epoch);
    assert_eq!(h.engine.take_loss_event(), None);
}

#[test]
fn consecutive_rtos_exhaust_into_give_up() {
    let mut h = Harness::new(50_000, 4.0);
    h.pump();
    let max = h.engine.max_consecutive_rtos;
    // Every RTO up to the budget rewinds and retries as before.
    for i in 1..max {
        let epoch = h.engine.timer_epoch();
        let fired = h.with_ctx(|e, ctx| e.on_timer(epoch, ctx));
        assert!(fired, "RTO {i} still retries");
        assert_eq!(h.engine.consecutive_rtos(), i);
        h.engine.take_loss_event();
        assert!(h.pump() > 0, "go-back-N resend after RTO {i}");
    }
    assert!(!h.engine.gave_up());
    // The RTO that exhausts the budget does not retry: no rewind, no
    // loss event, and the timer stays disarmed for good.
    let epoch = h.engine.timer_epoch();
    let fired = h.with_ctx(|e, ctx| e.on_timer(epoch, ctx));
    assert!(!fired, "exhausted engines do not retransmit");
    assert!(h.engine.gave_up());
    assert_eq!(h.engine.take_loss_event(), None, "no rewind on give-up");
    assert_eq!(h.pump(), 0, "given-up engines send nothing");
    assert!(
        !h.engine.timer_is_live(h.engine.timer_epoch()),
        "timer must stay disarmed after give-up"
    );
}

#[test]
fn an_ack_for_new_data_resets_the_rto_budget() {
    let mut h = Harness::new(50_000, 4.0);
    h.pump();
    let epoch = h.engine.timer_epoch();
    assert!(h.with_ctx(|e, ctx| e.on_timer(epoch, ctx)));
    h.engine.take_loss_event();
    h.pump();
    assert_eq!(h.engine.consecutive_rtos(), 1);
    assert!(matches!(h.ack(1000), AckKind::New { .. }));
    assert_eq!(
        h.engine.consecutive_rtos(),
        0,
        "progress refills the budget"
    );
    assert!(!h.engine.gave_up());
}

#[test]
fn deferrals_count_against_the_give_up_budget() {
    let mut h = Harness::new(50_000, 4.0);
    h.pump();
    // A prober deferring every timeout (PASE asks the receiver before
    // retransmitting) must still run out of budget against a dead peer.
    let max = h.engine.max_consecutive_rtos;
    for _ in 0..max {
        assert!(!h.engine.gave_up());
        h.with_ctx(|e, ctx| e.defer_timeout(ctx));
    }
    assert!(h.engine.gave_up());
    assert!(!h.engine.timer_is_live(h.engine.timer_epoch()));
}

#[test]
fn hold_blocks_new_data_until_drained() {
    let mut h = Harness::new(100_000, 4.0);
    h.pump();
    h.engine.hold_until_drained();
    assert!(h.engine.is_held());
    assert_eq!(h.pump(), 0, "held engines send nothing new");
    // Partial progress does not release the hold...
    h.ack(1000);
    assert!(h.engine.is_held());
    // ...full drain does.
    h.ack(4000);
    assert!(!h.engine.is_held());
    assert!(h.pump() > 0);
}

#[test]
fn completion_accounting() {
    let mut h = Harness::new(2_500, 10.0);
    assert_eq!(h.pump(), 3, "2.5 segments round up to 3 packets");
    assert!(!h.engine.complete());
    h.ack(2_500);
    assert!(h.engine.complete());
    assert_eq!(h.engine.remaining(), 0);
    assert_eq!(h.pump(), 0, "complete engines send nothing");
}

#[test]
fn sent_packets_carry_customization_and_sizes() {
    let mut h = Harness::new(2_500, 10.0);
    h.pump();
    // Drain the port's queue (first packet is in the serializer).
    let mut seen = vec![];
    let mut lens = vec![];
    // First in-flight packet: complete its transmission events.
    while let Some((_, kind)) = h.sched.pop() {
        if let netsim::event::EventKind::TxComplete(_) = kind {
            let mut ctx = Ctx {
                node: NodeId(0),
                sched: &mut h.sched,
                stats: &mut h.stats,
            };
            h.core.port.on_tx_complete(&mut ctx);
        } else if let netsim::event::EventKind::Deliver(pkt) = kind {
            if pkt.kind == PacketKind::Data {
                seen.push(pkt.seq);
                lens.push(pkt.payload_len);
                assert_eq!(pkt.prio, 1, "customization must be applied");
            }
        }
    }
    assert_eq!(seen, vec![0, 1000, 2000]);
    assert_eq!(lens, vec![1000, 1000, 500], "tail segment is partial");
}
