//! Regression test: out-of-order arrivals at the receiver.
//!
//! Failure-aware rerouting (netsim `route_live`) can re-hash a flow onto a
//! different ECMP path mid-stream, so segments may arrive out of order
//! even without loss. The shared receiver must buffer reordered segments
//! and acknowledge cumulatively — never treat a gap as permanent loss.

use netsim::engine::{Ctx, Scheduler};
use netsim::event::EventKind;
use netsim::flow::ReceiverHint;
use netsim::host::{AgentCtx, FlowAgent, HostCore};
use netsim::ids::{FlowId, NodeId, PortId};
use netsim::packet::{Packet, PacketKind};
use netsim::port::Port;
use netsim::queue::DropTailQdisc;
use netsim::stats::StatsCollector;
use netsim::time::{Rate, SimDuration};
use transport::{ReceiverConfig, SimpleReceiver};

const MSS: u32 = 1460;

/// A receiver host whose access port we can drain for emitted ACKs.
struct Rig {
    host: HostCore,
    sched: Scheduler,
    stats: StatsCollector,
    rx: SimpleReceiver,
}

impl Rig {
    fn new() -> Rig {
        let host = HostCore {
            id: NodeId(1),
            port: Port::new(
                PortId(0),
                NodeId(2), // ToR
                Rate::from_gbps(1),
                SimDuration::from_micros(25),
                Box::new(DropTailQdisc::new(64)),
            ),
            incarnation: 0,
        };
        let hint = ReceiverHint {
            flow: FlowId(7),
            src: NodeId(0),
            dst: NodeId(1),
        };
        Rig {
            host,
            sched: Scheduler::new(),
            stats: StatsCollector::new(),
            rx: SimpleReceiver::new(hint, ReceiverConfig::default()),
        }
    }

    /// Feed one data segment (seq in segment units) into the receiver and
    /// return the ACK it emitted.
    fn deliver_segment(&mut self, segment: u64) -> Packet {
        self.deliver_segment_from_incarnation(segment, 0)
            .expect("receiver must emit an ACK for every data segment")
    }

    /// Feed a segment stamped with a sender-host incarnation; returns the
    /// ACK, or `None` when the receiver discarded the segment.
    fn deliver_segment_from_incarnation(
        &mut self,
        segment: u64,
        incarnation: u32,
    ) -> Option<Packet> {
        let mut pkt = Packet::data(FlowId(7), NodeId(0), NodeId(1), segment * MSS as u64, MSS);
        pkt.incarnation = incarnation;
        {
            let mut ctx = Ctx {
                node: NodeId(1),
                sched: &mut self.sched,
                stats: &mut self.stats,
            };
            let mut actx = AgentCtx {
                flow: FlowId(7),
                host: &mut self.host,
                service: None,
                sim: &mut ctx,
            };
            self.rx.on_packet(pkt, &mut actx);
        }
        self.drain_one_ack()
    }

    /// Run the port's serializer until the ACK (if any) lands on the wire.
    fn drain_one_ack(&mut self) -> Option<Packet> {
        loop {
            let (target, kind) = self.sched.pop()?;
            match kind {
                EventKind::TxComplete(_) => {
                    let mut c = Ctx {
                        node: target,
                        sched: &mut self.sched,
                        stats: &mut self.stats,
                    };
                    self.host.port.on_tx_complete(&mut c);
                }
                EventKind::Deliver(pkt) => {
                    assert_eq!(pkt.kind, PacketKind::Ack);
                    return Some(*pkt);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }
}

#[test]
fn reordered_segments_are_buffered_and_cumulatively_acked() {
    let mut rig = Rig::new();

    // Segment 0 arrives in order: cum-ack advances to 1 MSS.
    let ack0 = rig.deliver_segment(0);
    assert_eq!(ack0.seq, MSS as u64);
    assert_eq!(ack0.sack, Some(0));

    // Segment 2 arrives early (segment 1 took the slow path). The
    // cumulative ack must NOT advance past the gap, but the data must be
    // buffered and reported via the selective field.
    let ack2 = rig.deliver_segment(2);
    assert_eq!(ack2.seq, MSS as u64, "cum-ack must hold at the gap");
    assert_eq!(ack2.sack, Some(2 * MSS as u64));
    assert_eq!(
        rig.rx.bytes_received(),
        2 * MSS as u64,
        "out-of-order segment must be buffered, not discarded"
    );

    // Segment 1 fills the gap: the frontier jumps over the buffered
    // segment 2 in one step — no retransmission of segment 2 needed.
    let ack1 = rig.deliver_segment(1);
    assert_eq!(
        ack1.seq,
        3 * MSS as u64,
        "filling the gap must ack all buffered contiguous data"
    );
    assert_eq!(rig.rx.bytes_received(), 3 * MSS as u64);
}

#[test]
fn duplicate_segment_reacks_without_double_counting() {
    let mut rig = Rig::new();
    rig.deliver_segment(0);
    let dup = rig.deliver_segment(0);
    // A duplicate still produces an ACK (the original may have been lost)
    // but received-byte accounting must not inflate.
    assert_eq!(dup.seq, MSS as u64);
    assert_eq!(rig.rx.bytes_received(), MSS as u64);
}

#[test]
fn segments_from_an_older_incarnation_are_discarded() {
    let mut rig = Rig::new();
    // The flow's first packet pins incarnation 3 (the sender host had
    // crashed and restarted before this flow started).
    let ack = rig
        .deliver_segment_from_incarnation(0, 3)
        .expect("first-seen incarnation is admitted");
    assert_eq!(ack.seq, MSS as u64);
    // A stray pre-crash packet (older incarnation) must be dropped
    // silently: no ACK — acknowledging it would confuse the restarted
    // sender — and no byte accounting.
    assert!(rig.deliver_segment_from_incarnation(1, 1).is_none());
    assert_eq!(rig.rx.bytes_received(), MSS as u64);
    // Current-incarnation traffic keeps flowing.
    let ack = rig
        .deliver_segment_from_incarnation(1, 3)
        .expect("pinned incarnation still admitted");
    assert_eq!(ack.seq, 2 * MSS as u64);
}

#[test]
fn a_newer_incarnation_resets_received_state() {
    let mut rig = Rig::new();
    rig.deliver_segment_from_incarnation(0, 0).unwrap();
    rig.deliver_segment_from_incarnation(1, 0).unwrap();
    assert_eq!(rig.rx.bytes_received(), 2 * MSS as u64);
    // The sender crashed and restarted; its new instance resends from
    // zero. Ranges received from the pre-crash instance must not make the
    // restarted flow appear further along than it is.
    let ack = rig
        .deliver_segment_from_incarnation(0, 1)
        .expect("newer incarnation admitted");
    assert_eq!(ack.seq, MSS as u64, "tracker must restart from scratch");
    assert_eq!(rig.rx.bytes_received(), MSS as u64);
}

#[test]
fn heavily_shuffled_arrival_order_converges() {
    let mut rig = Rig::new();
    // 8 segments delivered in a fixed shuffled order; the final ack must
    // cover all of them regardless of arrival order.
    let order = [3u64, 0, 7, 1, 2, 6, 4, 5];
    let mut last = 0;
    for &s in &order {
        last = rig.deliver_segment(s).seq;
    }
    assert_eq!(last, 8 * MSS as u64);
    assert_eq!(rig.rx.bytes_received(), 8 * MSS as u64);
}
