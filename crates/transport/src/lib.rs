//! # transport — endpoint machinery and the self-adjusting transports
//!
//! This crate provides:
//!
//! * the reusable sender machinery ([`tx::TxEngine`]: windows, cumulative
//!   ACK processing, fast retransmit, go-back-N timeouts) and receiver
//!   machinery ([`receiver::SimpleReceiver`], [`tracker::ByteTracker`]);
//! * RTT estimation with RFC 6298-style RTO management ([`rtt`]);
//! * the four *self-adjusting endpoint* transports the paper evaluates
//!   against: TCP (Reno), DCTCP, D2TCP and L2DCT
//!   ([`dctcp_family::FamilySender`]).
//!
//! The arbitration-based (PDQ) and in-network-prioritization (pFabric)
//! schemes and PASE itself live in their own crates, all building on the
//! same [`tx::TxEngine`]/receiver substrate where it fits their design.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dctcp_family;
pub mod factory;
pub mod params;
pub mod receiver;
pub mod rtt;
pub mod tracker;
pub mod tx;

pub use dctcp_family::{FamilySender, Flavor};
pub use factory::FamilyFactory;
pub use params::FamilyConfig;
pub use receiver::{ReceiverConfig, SimpleReceiver};
pub use rtt::{RttEstimator, DEFAULT_BACKOFF_CAP};
pub use tracker::ByteTracker;
pub use tx::{AckKind, LossEvent, TxEngine, DEFAULT_MAX_CONSECUTIVE_RTOS};
