//! RTT estimation and retransmission timeout management (RFC 6298 style).

use netsim::time::SimDuration;

/// Smoothed RTT estimator with exponential RTO backoff.
///
/// Follows the classic SRTT/RTTVAR update (RFC 6298) with configurable
/// minimum RTO — data-center transports use very small minimum RTOs
/// (Table 3: 10 ms for L2DCT/PASE top-queue flows, 1 ms for pFabric).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    /// Current backoff multiplier (power of two).
    backoff: u32,
    /// Ceiling on the backoff exponent. Consecutive timeouts never push
    /// the RTO multiplier beyond `2^backoff_cap` (the `max_rto` clamp
    /// still applies on top).
    backoff_cap: u32,
}

/// Default ceiling on the RTO backoff exponent (a 65536× multiplier — in
/// practice `max_rto` clamps long before this is reached).
pub const DEFAULT_BACKOFF_CAP: u32 = 16;

impl RttEstimator {
    /// Create an estimator with the given RTO clamp.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(min_rto <= max_rto, "min_rto must not exceed max_rto");
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            max_rto,
            backoff: 0,
            backoff_cap: DEFAULT_BACKOFF_CAP,
        }
    }

    /// Builder-style override of the backoff-exponent ceiling. Transports
    /// that must stay responsive across long outages (e.g. a link that
    /// comes back after seconds of blackout) cap the exponent low so the
    /// first retransmission after recovery is not minutes away.
    pub fn with_backoff_cap(mut self, cap: u32) -> Self {
        self.backoff_cap = cap.min(DEFAULT_BACKOFF_CAP);
        self.backoff = self.backoff.min(self.backoff_cap);
        self
    }

    /// The current backoff-exponent ceiling.
    pub fn backoff_cap(&self) -> u32 {
        self.backoff_cap
    }

    /// Incorporate a new RTT sample (resets any timeout backoff).
    pub fn on_sample(&mut self, sample: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - sample|
                let err = if sample > srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                self.rttvar = self.rttvar.mul_f64(0.75) + err.mul_f64(0.25);
                // SRTT = 7/8 SRTT + 1/8 sample
                self.srtt = Some(srtt.mul_f64(0.875) + sample.mul_f64(0.125));
            }
        }
        self.backoff = 0;
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Current retransmission timeout, including backoff.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.min_rto,
            Some(srtt) => srtt + self.rttvar.saturating_mul(4),
        };
        let backed_off = base.saturating_mul(1u64 << self.backoff.min(self.backoff_cap));
        backed_off.max(self.min_rto).min(self.max_rto)
    }

    /// Double the RTO after a timeout (Karn's algorithm: samples from
    /// retransmitted segments are not taken, and backoff persists until a
    /// fresh sample arrives).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(self.backoff_cap);
    }

    /// Current backoff exponent (0 when no outstanding timeouts).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// The configured minimum RTO.
    pub fn min_rto(&self) -> SimDuration {
        self.min_rto
    }

    /// Replace the minimum RTO (PASE changes it when a flow moves between
    /// the top queue and lower queues).
    pub fn set_min_rto(&mut self, min_rto: SimDuration) {
        self.min_rto = min_rto.min(self.max_rto);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_micros(x)
    }

    #[test]
    fn first_sample_initializes() {
        let mut r = RttEstimator::new(us(100), SimDuration::from_secs(1));
        assert_eq!(r.rto(), us(100)); // min_rto before any sample
        r.on_sample(us(300));
        assert_eq!(r.srtt(), Some(us(300)));
        // RTO = 300 + 4*150 = 900us.
        assert_eq!(r.rto(), us(900));
    }

    #[test]
    fn smoothing_converges() {
        let mut r = RttEstimator::new(us(1), SimDuration::from_secs(1));
        for _ in 0..100 {
            r.on_sample(us(500));
        }
        let srtt = r.srtt().unwrap();
        assert!(
            (srtt.as_micros_f64() - 500.0).abs() < 1.0,
            "srtt should converge to 500us, got {srtt}"
        );
        // Variance decays toward zero, so RTO approaches SRTT (clamped).
        assert!(r.rto() < us(600));
    }

    #[test]
    fn timeout_backoff_doubles_and_sample_resets() {
        let mut r = RttEstimator::new(us(100), SimDuration::from_secs(10));
        r.on_sample(us(200)); // RTO = 200 + 4*100 = 600
        let base = r.rto();
        r.on_timeout();
        assert_eq!(r.rto(), base.saturating_mul(2));
        r.on_timeout();
        assert_eq!(r.rto(), base.saturating_mul(4));
        r.on_sample(us(200));
        assert_eq!(r.backoff(), 0);
    }

    #[test]
    fn rto_clamped_to_bounds() {
        let mut r = RttEstimator::new(us(500), us(1000));
        r.on_sample(us(10)); // raw RTO would be 30us
        assert_eq!(r.rto(), us(500));
        for _ in 0..20 {
            r.on_timeout();
        }
        assert_eq!(r.rto(), us(1000));
    }

    #[test]
    fn backoff_cap_bounds_the_multiplier() {
        let mut r = RttEstimator::new(us(100), SimDuration::from_secs(100)).with_backoff_cap(3);
        assert_eq!(r.backoff_cap(), 3);
        r.on_sample(us(200)); // RTO = 200 + 4*100 = 600
        let base = r.rto();
        for _ in 0..10 {
            r.on_timeout();
        }
        // The exponent saturates at the cap: 600us * 2^3.
        assert_eq!(r.backoff(), 3);
        assert_eq!(r.rto(), base.saturating_mul(8));
        // A fresh sample still resets the backoff entirely (the smoothed
        // estimate shifts, so only the multiplier reset is asserted).
        r.on_sample(us(200));
        assert_eq!(r.backoff(), 0);
        assert!(r.rto() <= base);
    }

    #[test]
    fn backoff_cap_never_exceeds_the_default() {
        let r = RttEstimator::new(us(100), SimDuration::from_secs(1)).with_backoff_cap(99);
        assert_eq!(r.backoff_cap(), super::DEFAULT_BACKOFF_CAP);
    }

    #[test]
    fn min_rto_can_be_changed() {
        let mut r = RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(10));
        r.on_sample(us(300));
        assert_eq!(r.rto(), SimDuration::from_millis(200));
        r.set_min_rto(SimDuration::from_millis(10));
        assert_eq!(r.rto(), SimDuration::from_millis(10));
    }
}
