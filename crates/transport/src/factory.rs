//! Agent factories for the DCTCP family.

use netsim::flow::{FlowSpec, ReceiverHint};
use netsim::host::{AgentFactory, FlowAgent};

use crate::dctcp_family::{FamilySender, Flavor};
use crate::params::FamilyConfig;
use crate::receiver::{ReceiverConfig, SimpleReceiver};

/// Builds [`FamilySender`]s of one flavor plus the shared receiver.
#[derive(Debug, Clone)]
pub struct FamilyFactory {
    flavor: Flavor,
    cfg: FamilyConfig,
    rx_cfg: ReceiverConfig,
}

impl FamilyFactory {
    /// A factory for the given flavor with the given parameters.
    pub fn new(flavor: Flavor, cfg: FamilyConfig) -> FamilyFactory {
        FamilyFactory {
            flavor,
            cfg,
            rx_cfg: ReceiverConfig::default(),
        }
    }

    /// Plain TCP Reno with default parameters.
    pub fn reno() -> FamilyFactory {
        Self::new(Flavor::Reno, FamilyConfig::default())
    }

    /// DCTCP with default parameters.
    pub fn dctcp() -> FamilyFactory {
        Self::new(Flavor::Dctcp, FamilyConfig::default())
    }

    /// D2TCP with default parameters (deadlines come from flow specs).
    pub fn d2tcp() -> FamilyFactory {
        Self::new(Flavor::D2tcp, FamilyConfig::default())
    }

    /// L2DCT with default parameters.
    pub fn l2dct() -> FamilyFactory {
        Self::new(Flavor::L2dct, FamilyConfig::default())
    }
}

impl AgentFactory for FamilyFactory {
    fn sender(&self, spec: &FlowSpec) -> Box<dyn FlowAgent> {
        Box::new(FamilySender::new(spec, self.flavor, self.cfg))
    }

    fn receiver(&self, hint: ReceiverHint) -> Box<dyn FlowAgent> {
        Box::new(SimpleReceiver::new(hint, self.rx_cfg))
    }
}
