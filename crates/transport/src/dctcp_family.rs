//! The self-adjusting-endpoint transports: TCP (Reno), DCTCP, D2TCP, L2DCT.
//!
//! These four protocols share everything except their congestion window
//! policy (paper §2, "Self-Adjusting Endpoints"):
//!
//! * **TCP/Reno** — loss-based AIMD, no ECN. Baseline.
//! * **DCTCP** — ECN-fraction EWMA `α`, backoff `cwnd ← cwnd·(1 − α/2)`.
//! * **D2TCP** — deadline-aware DCTCP: penalty `p = α^d` with the
//!   deadline-imminence factor `d = Tc/D` clamped to `[0.5, 2]`.
//! * **L2DCT** — size-aware DCTCP: additive-increase weight and backoff
//!   scale shift with the bytes a flow has sent, approximating
//!   least-attained-service.
//!
//! One parameterized agent ([`FamilySender`]) implements all four through
//! the [`Flavor`] enum, which keeps their common machinery honest: every
//! difference between the protocols is visible in
//! `FamilySender::on_new_ack` and `FamilySender::on_loss`.

use netsim::flow::FlowSpec;
use netsim::host::{AgentCtx, FlowAgent};
use netsim::packet::{Packet, PacketKind};
use netsim::time::{SimDuration, SimTime};

use crate::params::FamilyConfig;
use crate::rtt::RttEstimator;
use crate::tx::{AckKind, LossEvent, TxEngine};

/// Which member of the family a sender speaks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Flavor {
    /// Plain TCP Reno (loss-based, ECN-incapable).
    Reno,
    /// DCTCP.
    Dctcp,
    /// D2TCP; the deadline is carried by the flow spec.
    D2tcp,
    /// L2DCT.
    L2dct,
}

/// Sender agent for the DCTCP family.
#[derive(Debug)]
pub struct FamilySender {
    engine: TxEngine,
    flavor: Flavor,
    cfg: FamilyConfig,
    /// DCTCP marked-fraction estimate.
    alpha: f64,
    ssthresh: f64,
    /// Sequence marking the end of the current observation window.
    obs_end: u64,
    obs_acked: u64,
    obs_marked: u64,
    /// ECE-triggered decrease is applied at most once per window: next
    /// decrease allowed when `cum_ack` passes this sequence.
    next_decrease_at: u64,
    /// Absolute deadline (D2TCP), if the flow has one.
    deadline_abs: Option<SimTime>,
    done: bool,
}

impl FamilySender {
    /// Create a sender for `spec`.
    pub fn new(spec: &FlowSpec, flavor: Flavor, cfg: FamilyConfig) -> FamilySender {
        let rtt = RttEstimator::new(cfg.min_rto, cfg.max_rto);
        FamilySender {
            engine: TxEngine::new(
                spec.id,
                spec.src,
                spec.dst,
                spec.size,
                cfg.mss,
                cfg.init_cwnd,
                rtt,
            ),
            flavor,
            cfg,
            alpha: 0.0,
            ssthresh: cfg.init_ssthresh,
            obs_end: 0,
            obs_acked: 0,
            obs_marked: 0,
            next_decrease_at: 0,
            deadline_abs: spec.deadline_abs(),
            done: false,
        }
    }

    /// The current congestion window, in packets (for tests/inspection).
    pub fn cwnd(&self) -> f64 {
        self.engine.cwnd
    }

    /// The current marked-fraction estimate `α` (for tests/inspection).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// L2DCT additive-increase weight for a flow that has sent `sent`
    /// bytes: `w_max` below `lo_bytes`, `w_min` above `hi_bytes`,
    /// log-linear in between. Approximates the bucketed weight table of the
    /// L2DCT paper.
    fn l2dct_weight(&self, sent: u64) -> f64 {
        let (wmin, wmax) = self.cfg.l2dct_w_bounds;
        let lo = self.cfg.l2dct_lo_bytes.max(1) as f64;
        let hi = self.cfg.l2dct_hi_bytes.max(2) as f64;
        let s = sent.max(1) as f64;
        if s <= lo {
            wmax
        } else if s >= hi {
            wmin
        } else {
            let frac = (s.ln() - lo.ln()) / (hi.ln() - lo.ln());
            wmax - frac * (wmax - wmin)
        }
    }

    /// D2TCP deadline-imminence factor `d = Tc / D`, clamped.
    fn d2tcp_d(&self, now: SimTime) -> f64 {
        let (dmin, dmax) = self.cfg.d2tcp_d_bounds;
        let Some(deadline) = self.deadline_abs else {
            return 1.0; // no deadline: behave like DCTCP
        };
        if now >= deadline {
            // Past the deadline the flow can no longer win; D2TCP's
            // gamma-correction reverts to neutral (DCTCP) behaviour
            // rather than stealing from still-meetable flows.
            return 1.0;
        }
        let d_remaining = (deadline - now).as_secs_f64();
        // Time needed to finish at ~3/4 of the current rate (D2TCP's Tc).
        let srtt = self
            .engine
            .rtt
            .srtt()
            .unwrap_or(SimDuration::from_micros(300))
            .as_secs_f64();
        let rate = 0.75 * self.engine.cwnd * self.engine.mss as f64 / srtt.max(1e-9);
        let tc = self.engine.remaining() as f64 / rate.max(1.0);
        (tc / d_remaining.max(1e-9)).clamp(dmin, dmax)
    }

    /// Additive increase on newly acknowledged bytes.
    fn on_new_ack(&mut self, newly: u64, ece: bool, now: SimTime) {
        // Fold the observation window for the DCTCP estimator.
        self.obs_acked += newly;
        if ece {
            self.obs_marked += newly;
        }
        if self.engine.acked() >= self.obs_end {
            if self.obs_acked > 0 {
                let f = self.obs_marked as f64 / self.obs_acked as f64;
                self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g * f;
            }
            self.obs_acked = 0;
            self.obs_marked = 0;
            self.obs_end = self.engine.snd_nxt();
        }

        // ECE-driven multiplicative decrease, at most once per window.
        if ece && self.flavor != Flavor::Reno && self.engine.acked() >= self.next_decrease_at {
            let p = match self.flavor {
                Flavor::Reno => unreachable!(),
                Flavor::Dctcp => self.alpha / 2.0,
                Flavor::D2tcp => self.alpha.powf(self.d2tcp_d(now)) / 2.0,
                Flavor::L2dct => {
                    // Long flows back off harder: scale by how far the
                    // flow's weight has decayed from w_max.
                    let (wmin, wmax) = self.cfg.l2dct_w_bounds;
                    let w = self.l2dct_weight(self.engine.acked());
                    (self.alpha / 2.0) * ((wmax - w + wmin) / wmax).clamp(0.0, 1.0)
                }
            };
            self.engine.cwnd = (self.engine.cwnd * (1.0 - p)).max(1.0);
            self.ssthresh = self.engine.cwnd;
            self.next_decrease_at = self.engine.snd_nxt();
            return; // no increase on the ACK that triggered a decrease
        }

        // Window growth (scaled for delayed ACKs, see
        // [`FamilyConfig::ack_growth_factor`]).
        let pkts = newly as f64 / self.engine.mss as f64 * self.cfg.ack_growth_factor;
        if self.engine.in_recovery() {
            return;
        }
        if self.engine.cwnd < self.ssthresh {
            self.engine.cwnd += pkts; // slow start
        } else {
            let w = match self.flavor {
                Flavor::L2dct => self.l2dct_weight(self.engine.acked()),
                _ => 1.0,
            };
            self.engine.cwnd += w * pkts / self.engine.cwnd;
        }
    }

    /// Window reaction to loss signals.
    fn on_loss(&mut self, loss: LossEvent) {
        match loss {
            LossEvent::FastRetransmit => {
                self.engine.cwnd = (self.engine.cwnd / 2.0).max(1.0);
                self.ssthresh = self.engine.cwnd;
            }
            LossEvent::Timeout => {
                self.ssthresh = (self.engine.cwnd / 2.0).max(2.0);
                self.engine.cwnd = 1.0;
            }
        }
    }

    fn customize(flavor: Flavor) -> impl FnMut(&mut Packet) {
        move |pkt: &mut Packet| {
            pkt.ecn_capable = flavor != Flavor::Reno;
        }
    }
}

impl FlowAgent for FamilySender {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        self.engine.pump(ctx, Self::customize(self.flavor));
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut AgentCtx<'_, '_>) {
        if !matches!(pkt.kind, PacketKind::Ack | PacketKind::ProbeAck) {
            return;
        }
        let now = ctx.now();
        match self.engine.on_ack(pkt.seq, pkt.ts_echo, now) {
            AckKind::New { newly_acked, .. } => {
                self.on_new_ack(newly_acked, pkt.ece, now);
            }
            AckKind::Dup { .. } | AckKind::Stale => {}
        }
        if let Some(loss) = self.engine.take_loss_event() {
            self.on_loss(loss);
        }
        if self.engine.complete() {
            ctx.flow_completed();
            self.done = true;
            return;
        }
        self.engine.pump(ctx, Self::customize(self.flavor));
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_, '_>) {
        if self.done {
            return;
        }
        if self.engine.on_timer(token, ctx) {
            if let Some(loss) = self.engine.take_loss_event() {
                self.on_loss(loss);
            }
            self.engine.pump(ctx, Self::customize(self.flavor));
        } else if self.engine.gave_up() {
            // The peer stopped responding for the engine's whole RTO
            // budget — almost certainly a crashed host. Stop retrying and
            // end the flow in a terminal, attributable state.
            ctx.flow_aborted(netsim::trace::AbortReason::MaxRtosExceeded);
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::flow::FlowSpec;
    use netsim::ids::{FlowId, NodeId};

    fn spec(size: u64) -> FlowSpec {
        FlowSpec::new(FlowId(0), NodeId(0), NodeId(1), size, SimTime::ZERO)
    }

    #[test]
    fn l2dct_weight_monotone_decreasing() {
        let s = FamilySender::new(&spec(1 << 30), Flavor::L2dct, FamilyConfig::default());
        let w0 = s.l2dct_weight(0);
        let w1 = s.l2dct_weight(100 * 1024);
        let w2 = s.l2dct_weight(500 * 1024);
        let w3 = s.l2dct_weight(10 * 1024 * 1024);
        assert_eq!(w0, 2.5);
        assert!(w1 < w0, "{w1} < {w0}");
        assert!(w2 < w1, "{w2} < {w1}");
        assert_eq!(w3, 0.125);
    }

    #[test]
    fn d2tcp_d_no_deadline_is_neutral() {
        let s = FamilySender::new(&spec(100_000), Flavor::D2tcp, FamilyConfig::default());
        assert_eq!(s.d2tcp_d(SimTime::from_millis(1)), 1.0);
    }

    #[test]
    fn d2tcp_d_clamps_and_grows_with_urgency() {
        let sp = spec(1_000_000).with_deadline(SimDuration::from_millis(10));
        let s = FamilySender::new(&sp, Flavor::D2tcp, FamilyConfig::default());
        // Far from the deadline with a big window: low urgency.
        let d_early = s.d2tcp_d(SimTime::from_micros(1));
        // Very close to the deadline: max urgency.
        let d_near = s.d2tcp_d(SimTime::from_nanos(9_999_999));
        // Past the deadline: back to neutral (no stealing from meetable
        // flows).
        let d_past = s.d2tcp_d(SimTime::from_millis(10));
        assert!((0.5..=2.0).contains(&d_early));
        assert_eq!(d_near, 2.0);
        assert_eq!(d_past, 1.0);
    }

    #[test]
    fn reno_packets_are_not_ecn_capable() {
        let mut c = FamilySender::customize(Flavor::Reno);
        let mut p = Packet::data(FlowId(0), NodeId(0), NodeId(1), 0, 1460);
        c(&mut p);
        assert!(!p.ecn_capable);
        let mut c = FamilySender::customize(Flavor::Dctcp);
        c(&mut p);
        assert!(p.ecn_capable);
    }
}
