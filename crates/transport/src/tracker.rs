//! Receiver-side byte-range tracking.
//!
//! Receivers record which byte ranges have arrived (possibly out of order)
//! and derive the cumulative acknowledgment from them. pFabric receivers
//! additionally report per-segment (selective) information, which falls out
//! of the same structure.

use std::collections::BTreeMap;

/// Tracks received byte ranges and the cumulative-ack frontier.
#[derive(Debug, Clone, Default)]
pub struct ByteTracker {
    /// Received, not-yet-contiguous ranges above the frontier:
    /// `start -> end` (exclusive), non-overlapping, non-adjacent.
    ooo: BTreeMap<u64, u64>,
    /// All bytes below this offset have been received.
    frontier: u64,
}

impl ByteTracker {
    /// A tracker with nothing received.
    pub fn new() -> Self {
        ByteTracker::default()
    }

    /// The cumulative-ack point: all bytes in `[0, frontier)` received.
    pub fn cum_ack(&self) -> u64 {
        self.frontier
    }

    /// Record receipt of `[start, end)`. Returns `true` if any byte of the
    /// range was new.
    pub fn on_range(&mut self, start: u64, end: u64) -> bool {
        assert!(start <= end, "invalid range {start}..{end}");
        if start == end {
            return false;
        }
        if end <= self.frontier {
            return false; // fully duplicate
        }
        let start = start.max(self.frontier);
        // Check whether [start, end) is fully covered by existing ranges.
        let mut new_bytes = false;
        let mut cursor = start;
        while cursor < end {
            // Find a stored range containing `cursor`.
            let covering = self
                .ooo
                .range(..=cursor)
                .next_back()
                .filter(|(_, &e)| e > cursor)
                .map(|(&s, &e)| (s, e));
            match covering {
                Some((_, e)) => cursor = e,
                None => {
                    new_bytes = true;
                    break;
                }
            }
        }
        if new_bytes {
            // Insert and coalesce.
            let mut s = start;
            let mut e = end;
            // Merge with any overlapping or adjacent ranges.
            let overlapping: Vec<u64> = self
                .ooo
                .range(..=e)
                .filter(|(_, &re)| re >= s)
                .map(|(&rs, _)| rs)
                .collect();
            for rs in overlapping {
                let re = self.ooo.remove(&rs).unwrap();
                s = s.min(rs);
                e = e.max(re);
            }
            self.ooo.insert(s, e);
        }
        // Advance the frontier through any now-contiguous ranges.
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.frontier {
                self.frontier = self.frontier.max(e);
                self.ooo.remove(&s);
            } else {
                break;
            }
        }
        new_bytes
    }

    /// Has the specific range `[start, end)` been fully received?
    pub fn contains(&self, start: u64, end: u64) -> bool {
        if end <= self.frontier {
            return true;
        }
        let start = start.max(self.frontier);
        let mut cursor = start;
        while cursor < end {
            match self
                .ooo
                .range(..=cursor)
                .next_back()
                .filter(|(_, &e)| e > cursor)
            {
                Some((_, &e)) => cursor = e,
                None => return false,
            }
        }
        true
    }

    /// Total bytes received.
    pub fn bytes_received(&self) -> u64 {
        self.frontier + self.ooo.iter().map(|(s, e)| e - s).sum::<u64>()
    }

    /// Number of discontiguous ranges held above the frontier.
    pub fn gaps(&self) -> usize {
        self.ooo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut t = ByteTracker::new();
        assert!(t.on_range(0, 1460));
        assert_eq!(t.cum_ack(), 1460);
        assert!(t.on_range(1460, 2920));
        assert_eq!(t.cum_ack(), 2920);
        assert_eq!(t.gaps(), 0);
        assert_eq!(t.bytes_received(), 2920);
    }

    #[test]
    fn out_of_order_holds_frontier() {
        let mut t = ByteTracker::new();
        assert!(t.on_range(1460, 2920));
        assert_eq!(t.cum_ack(), 0);
        assert_eq!(t.gaps(), 1);
        assert!(t.on_range(0, 1460));
        assert_eq!(t.cum_ack(), 2920);
        assert_eq!(t.gaps(), 0);
    }

    #[test]
    fn duplicates_report_false() {
        let mut t = ByteTracker::new();
        assert!(t.on_range(0, 1460));
        assert!(!t.on_range(0, 1460));
        assert!(t.on_range(2920, 4380));
        assert!(!t.on_range(2920, 4380));
        assert_eq!(t.cum_ack(), 1460);
    }

    #[test]
    fn partial_overlap_counts_as_new() {
        let mut t = ByteTracker::new();
        t.on_range(0, 1000);
        assert!(t.on_range(500, 1500)); // 500 new bytes
        assert_eq!(t.cum_ack(), 1500);
    }

    #[test]
    fn merge_across_multiple_ranges() {
        let mut t = ByteTracker::new();
        t.on_range(1000, 2000);
        t.on_range(3000, 4000);
        t.on_range(5000, 6000);
        assert_eq!(t.gaps(), 3);
        // One big range bridging all three.
        assert!(t.on_range(1500, 5500));
        assert_eq!(t.gaps(), 1);
        assert!(t.contains(1000, 6000));
        assert!(!t.contains(0, 6000));
        t.on_range(0, 1000);
        assert_eq!(t.cum_ack(), 6000);
        assert_eq!(t.bytes_received(), 6000);
    }

    #[test]
    fn contains_checks_coverage() {
        let mut t = ByteTracker::new();
        t.on_range(0, 100);
        t.on_range(200, 300);
        assert!(t.contains(0, 100));
        assert!(t.contains(250, 300));
        assert!(!t.contains(100, 200));
        assert!(!t.contains(0, 300));
    }

    #[test]
    fn empty_range_is_noop() {
        let mut t = ByteTracker::new();
        assert!(!t.on_range(100, 100));
        assert_eq!(t.cum_ack(), 0);
        assert_eq!(t.bytes_received(), 0);
    }

    #[test]
    fn adjacent_ranges_coalesce() {
        let mut t = ByteTracker::new();
        t.on_range(1000, 2000);
        t.on_range(2000, 3000);
        assert_eq!(t.gaps(), 1);
        assert!(t.contains(1000, 3000));
    }
}
