//! Reliable, window-based transmit engine.
//!
//! [`TxEngine`] implements the sender-side machinery shared by every
//! self-adjusting-endpoint transport in this workspace (TCP, DCTCP, D2TCP,
//! L2DCT, and PASE's end-host transport): sequencing, cumulative-ack
//! processing, duplicate-ack detection with NewReno-style recovery,
//! go-back-N retransmission timeouts with Karn's rule, and window-limited
//! transmission. Congestion-control policy (how `cwnd` reacts to ACKs,
//! marks and losses) stays in the protocol agents; the engine only supplies
//! mechanism.

use netsim::host::AgentCtx;
use netsim::ids::{FlowId, NodeId};
use netsim::packet::Packet;
use netsim::time::{SimDuration, SimTime};

use crate::rtt::RttEstimator;

/// What an arriving cumulative ACK meant to the sender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AckKind {
    /// Advanced the cumulative-ack frontier by `newly_acked` bytes.
    New {
        /// Bytes newly acknowledged.
        newly_acked: u64,
        /// RTT sample, if admissible under Karn's rule.
        rtt_sample: Option<SimDuration>,
    },
    /// A duplicate ACK; `count` duplicates seen so far at this frontier.
    Dup {
        /// Consecutive duplicates at the current frontier.
        count: u32,
    },
    /// The ACK was below the current frontier (stale); ignore.
    Stale,
}

/// Why the engine wants the agent to react to loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossEvent {
    /// Third duplicate ACK: fast retransmit fired; halve-or-mark per
    /// protocol policy.
    FastRetransmit,
    /// Retransmission timer expired: go-back-N was performed; collapse the
    /// window per protocol policy.
    Timeout,
}

/// Sender-side reliable transmission state.
#[derive(Debug)]
pub struct TxEngine {
    /// The flow being carried.
    pub flow: FlowId,
    /// Sender host.
    pub src: NodeId,
    /// Receiver host.
    pub dst: NodeId,
    /// Total application bytes to deliver.
    pub size: u64,
    /// Maximum payload per segment.
    pub mss: u32,
    /// Congestion window in packets (fractional; the transmit gate uses
    /// `floor(cwnd).max(1)`).
    pub cwnd: f64,
    /// RTT estimator / RTO source.
    pub rtt: RttEstimator,

    snd_nxt: u64,
    cum_ack: u64,
    /// Head segment scheduled for (fast) retransmission, if any.
    rtx_head: Option<u64>,
    dupacks: u32,
    /// NewReno recovery: highest sequence outstanding when loss was
    /// detected; recovery ends when `cum_ack` passes it.
    recover: Option<u64>,
    /// Karn's rule: suppress RTT samples for ACKs at or below this point
    /// (set whenever anything is retransmitted).
    karn_until: u64,
    /// Timer epoch; stale timer events carry an older epoch and are ignored.
    timer_epoch: u64,
    timer_armed: bool,
    timer_restart: bool,
    /// A hold point: the engine will not send *new* data at or beyond this
    /// sequence until the frontier reaches it (used by PASE's queue-move
    /// reordering guard). `None` means no hold.
    hold_at: Option<u64>,
    /// Loss event raised by ack/timer processing, consumed by the agent via
    /// [`TxEngine::take_loss_event`].
    pending_loss: Option<LossEvent>,
    /// RTOs fired (or deferred) since the last ACK for new data. When this
    /// reaches [`TxEngine::max_consecutive_rtos`] the engine gives up: the
    /// peer is unreachable (crashed host, partitioned rack) and retrying
    /// forever would just keep a dead flow alive.
    consecutive_rtos: u32,
    /// Give-up threshold; see [`DEFAULT_MAX_CONSECUTIVE_RTOS`].
    pub max_consecutive_rtos: u32,
    /// Set once the give-up threshold is crossed; the engine stops sending
    /// and arming timers. The agent should abort the flow.
    gave_up: bool,
}

/// Default bound on consecutive RTOs before a sender gives up on its peer.
/// With exponential backoff capped at `max_rto` this puts the give-up point
/// seconds out — far beyond any transient fabric fault, so only a genuinely
/// dead endpoint trips it.
pub const DEFAULT_MAX_CONSECUTIVE_RTOS: u32 = 8;

impl TxEngine {
    /// Create an engine for one flow.
    pub fn new(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        size: u64,
        mss: u32,
        init_cwnd: f64,
        rtt: RttEstimator,
    ) -> TxEngine {
        assert!(size > 0, "zero-length flow");
        assert!(mss > 0, "zero MSS");
        TxEngine {
            flow,
            src,
            dst,
            size,
            mss,
            cwnd: init_cwnd.max(1.0),
            rtt,
            snd_nxt: 0,
            cum_ack: 0,
            rtx_head: None,
            dupacks: 0,
            recover: None,
            karn_until: 0,
            timer_epoch: 0,
            timer_armed: false,
            timer_restart: false,
            hold_at: None,
            pending_loss: None,
            consecutive_rtos: 0,
            max_consecutive_rtos: DEFAULT_MAX_CONSECUTIVE_RTOS,
            gave_up: false,
        }
    }

    /// RTOs fired (or deferred) since the last ACK for new data.
    pub fn consecutive_rtos(&self) -> u32 {
        self.consecutive_rtos
    }

    /// Has the engine exhausted its RTO budget and given up on the peer?
    /// Once set, [`TxEngine::pump`] sends nothing and the RTO timer stays
    /// disarmed; the agent should move the flow to a terminal state.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    /// Bytes acknowledged so far.
    pub fn acked(&self) -> u64 {
        self.cum_ack
    }

    /// Bytes not yet acknowledged (the flow's *remaining size*, used as the
    /// scheduling criterion by PASE, pFabric and PDQ).
    pub fn remaining(&self) -> u64 {
        self.size - self.cum_ack
    }

    /// Bytes sent but not yet acknowledged.
    pub fn flight_bytes(&self) -> u64 {
        self.snd_nxt - self.cum_ack
    }

    /// Packets in flight (rounded up).
    pub fn flight_pkts(&self) -> u64 {
        (self.flight_bytes()).div_ceil(self.mss as u64)
    }

    /// Has every byte been acknowledged?
    pub fn complete(&self) -> bool {
        self.cum_ack >= self.size
    }

    /// Is the sender in NewReno recovery?
    pub fn in_recovery(&self) -> bool {
        self.recover.is_some()
    }

    /// The next unsent byte.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// Install a hold point at the current send frontier: no new data will
    /// be sent until everything outstanding is acknowledged. PASE uses this
    /// when a flow moves to a higher-priority queue so old-priority packets
    /// drain first (paper §3.2, packet reordering).
    pub fn hold_until_drained(&mut self) {
        if self.flight_bytes() > 0 {
            self.hold_at = Some(self.snd_nxt);
        }
    }

    /// Whether a hold point is currently blocking new data.
    pub fn is_held(&self) -> bool {
        match self.hold_at {
            Some(h) => self.cum_ack < h,
            None => false,
        }
    }

    /// Process a cumulative acknowledgment `ack_seq` (the receiver's next
    /// expected byte). Returns what the ACK meant; on the third duplicate
    /// the engine schedules a fast retransmit internally and reports it via
    /// [`TxEngine::take_loss_event`].
    pub fn on_ack(&mut self, ack_seq: u64, ts_echo: Option<SimTime>, now: SimTime) -> AckKind {
        if ack_seq > self.cum_ack {
            let newly = ack_seq - self.cum_ack;
            self.cum_ack = ack_seq;
            self.dupacks = 0;
            self.consecutive_rtos = 0;
            if self.snd_nxt < ack_seq {
                // Receiver knows more than we sent? Impossible unless the
                // counterpart acknowledged a retransmitted tail; clamp.
                self.snd_nxt = ack_seq;
            }
            // Clear the hold point once the frontier reaches it.
            if let Some(h) = self.hold_at {
                if self.cum_ack >= h {
                    self.hold_at = None;
                }
            }
            // Exit recovery when the loss window is fully acknowledged;
            // NewReno partial ack: retransmit the next hole.
            if let Some(rec) = self.recover {
                if ack_seq >= rec {
                    self.recover = None;
                } else {
                    self.rtx_head = Some(self.cum_ack);
                }
            }
            let rtt_sample = match ts_echo {
                Some(ts) if ack_seq > self.karn_until => now.checked_since(ts),
                _ => None,
            };
            if let Some(s) = rtt_sample {
                self.rtt.on_sample(s);
            }
            // RFC 6298: an ACK for new data restarts the RTO. The next
            // `arm_timer` (callers pump right after) re-arms from now.
            self.timer_restart = true;
            AckKind::New {
                newly_acked: newly,
                rtt_sample,
            }
        } else if ack_seq == self.cum_ack && !self.complete() && self.flight_bytes() > 0 {
            self.dupacks += 1;
            if self.dupacks == 3 && self.recover.is_none() {
                self.recover = Some(self.snd_nxt);
                self.rtx_head = Some(self.cum_ack);
                self.pending_loss = Some(LossEvent::FastRetransmit);
            }
            AckKind::Dup {
                count: self.dupacks,
            }
        } else {
            AckKind::Stale
        }
    }

    /// Retrieve (and clear) a pending loss event raised by the engine.
    pub fn take_loss_event(&mut self) -> Option<LossEvent> {
        self.pending_loss.take()
    }

    /// The token the currently armed timer carries.
    pub fn timer_epoch(&self) -> u64 {
        self.timer_epoch
    }

    /// Handle a timer event. Returns `true` if this was the live RTO timer
    /// expiring (the engine has already performed go-back-N and RTO
    /// backoff; the agent should collapse its window and call
    /// [`TxEngine::pump`]).
    pub fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_, '_>) -> bool {
        if token != self.timer_epoch || !self.timer_armed {
            return false;
        }
        self.timer_armed = false;
        if self.complete() || self.flight_bytes() == 0 {
            return false;
        }
        self.rtt.on_timeout();
        self.consecutive_rtos += 1;
        if self.consecutive_rtos >= self.max_consecutive_rtos {
            // Out of retries: no rewind, no re-arm. The agent observes
            // `gave_up()` and aborts the flow.
            self.gave_up = true;
            return false;
        }
        self.force_loss_rewind(ctx);
        true
    }

    /// Is `token` the currently armed, still-relevant RTO timer? Lets
    /// agents intercept a timeout (PASE probes instead of retransmitting).
    pub fn timer_is_live(&self, token: u64) -> bool {
        token == self.timer_epoch && self.timer_armed && !self.complete() && self.flight_bytes() > 0
    }

    /// Acknowledge a timeout without retransmitting: back off the RTO and
    /// re-arm. Used by PASE's probe-based loss recovery, which first asks
    /// the receiver whether data was lost or merely delayed in a low
    /// priority queue.
    /// Deferrals count against the same give-up budget as real RTO fires,
    /// so a prober cannot keep a flow to a dead receiver alive forever.
    pub fn defer_timeout(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        self.timer_armed = false;
        self.rtt.on_timeout();
        self.consecutive_rtos += 1;
        if self.consecutive_rtos >= self.max_consecutive_rtos {
            self.gave_up = true;
            return;
        }
        self.arm_timer(ctx);
    }

    /// Perform the go-back-N loss rewind immediately (PASE calls this when
    /// a probe confirms actual loss). Raises [`LossEvent::Timeout`].
    pub fn force_loss_rewind(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        ctx.sim.stats.note_timeout(self.flow);
        ctx.sim
            .stats
            .note_retransmit(self.flow, self.snd_nxt - self.cum_ack);
        // Karn's rule: suppress samples for everything about to be resent.
        self.karn_until = self.karn_until.max(self.snd_nxt);
        self.snd_nxt = self.cum_ack;
        self.rtx_head = None;
        self.recover = None;
        self.dupacks = 0;
        self.timer_armed = false;
        self.pending_loss = Some(LossEvent::Timeout);
    }

    /// Arm the RTO timer if data is outstanding. An already-armed timer
    /// keeps its deadline unless an ACK for new data arrived since
    /// (RFC 6298 restarts it then): resetting the deadline on *every*
    /// pump would let frequent no-op pumps — e.g. PASE's per-refresh
    /// control-plane wakeups, which arrive well inside one RTO — push
    /// the expiry out forever and starve the only recovery path once
    /// the ACK clock is lost.
    pub fn arm_timer(&mut self, ctx: &mut AgentCtx<'_, '_>) {
        if self.gave_up || self.complete() || (self.flight_bytes() == 0 && self.rtx_head.is_none())
        {
            return;
        }
        if self.timer_armed && !self.timer_restart {
            return;
        }
        self.timer_restart = false;
        self.timer_epoch += 1;
        self.timer_armed = true;
        ctx.set_timer(self.rtt.rto(), self.timer_epoch);
    }

    /// Is there anything the window would let us send right now?
    pub fn can_send(&self) -> bool {
        if self.gave_up || self.complete() {
            return false;
        }
        let window_pkts = self.cwnd.floor().max(1.0) as u64;
        if self.rtx_head.is_some() {
            return true;
        }
        if self.snd_nxt >= self.size || self.is_held() {
            return false;
        }
        self.flight_pkts() < window_pkts
    }

    /// Transmit as much as the window allows. `customize` is applied to
    /// every outgoing packet (to set priorities, ranks, protocol headers).
    /// Re-arms the RTO timer. Returns the number of packets sent.
    pub fn pump<F>(&mut self, ctx: &mut AgentCtx<'_, '_>, mut customize: F) -> usize
    where
        F: FnMut(&mut Packet),
    {
        let mut sent = 0;
        while self.can_send() {
            let (seq, is_rtx) = match self.rtx_head.take() {
                Some(seq) => (seq, true),
                None => (self.snd_nxt, false),
            };
            let len = self.mss.min((self.size - seq).min(u32::MAX as u64) as u32);
            debug_assert!(len > 0);
            let mut pkt = Packet::data(self.flow, self.src, self.dst, seq, len);
            customize(&mut pkt);
            ctx.send(pkt);
            sent += 1;
            if is_rtx {
                ctx.sim.stats.note_retransmit(self.flow, len as u64);
                self.karn_until = self.karn_until.max(self.snd_nxt);
            } else {
                self.snd_nxt = seq + len as u64;
            }
        }
        if sent > 0 || self.flight_bytes() > 0 {
            self.arm_timer(ctx);
        }
        sent
    }

    /// The sender's *demand*: the rate it could use if unconstrained, given
    /// how much data remains — `min(line_rate, remaining / rtt)`-style
    /// computations are done by callers; the engine just reports remaining
    /// payload.
    pub fn demand_bytes(&self) -> u64 {
        self.size.saturating_sub(self.cum_ack)
    }
}
