//! Configuration knobs for the DCTCP-family transports.
//!
//! Defaults follow Table 3 of the paper where given, and the respective
//! protocol papers otherwise.

use netsim::time::SimDuration;

/// Parameters shared by the whole DCTCP family.
#[derive(Debug, Clone, Copy)]
pub struct FamilyConfig {
    /// Maximum segment payload, bytes.
    pub mss: u32,
    /// Initial congestion window, packets.
    pub init_cwnd: f64,
    /// Window growth per acknowledged packet. Real DCTCP-family stacks
    /// run with delayed ACKs: the window grows by ~0.5 packets per acked
    /// packet in slow start (and congestion avoidance progresses at half
    /// the per-ACK textbook rate). We model that sender-side instead of
    /// implementing receiver-side ACK coalescing.
    pub ack_growth_factor: f64,
    /// Initial slow-start threshold, packets.
    pub init_ssthresh: f64,
    /// Minimum retransmission timeout (Table 3: 10 ms for L2DCT; we apply
    /// the same floor across the family — ns2's default 200 ms floor would
    /// dominate FCTs at data-center RTTs).
    pub min_rto: SimDuration,
    /// Maximum retransmission timeout.
    pub max_rto: SimDuration,
    /// DCTCP estimation gain `g` for the marked-fraction EWMA.
    pub g: f64,
    /// D2TCP deadline-imminence exponent bounds `(min, max)` — the paper
    /// uses `d ∈ [0.5, 2]`.
    pub d2tcp_d_bounds: (f64, f64),
    /// L2DCT weight bounds `(w_min, w_max)`.
    pub l2dct_w_bounds: (f64, f64),
    /// L2DCT: bytes sent below which a flow keeps `w_max`.
    pub l2dct_lo_bytes: u64,
    /// L2DCT: bytes sent above which a flow reaches `w_min` (log-linear
    /// interpolation in between).
    pub l2dct_hi_bytes: u64,
}

impl Default for FamilyConfig {
    fn default() -> Self {
        FamilyConfig {
            mss: 1460,
            init_cwnd: 2.0,
            ack_growth_factor: 0.5,
            init_ssthresh: f64::INFINITY,
            min_rto: SimDuration::from_millis(10),
            max_rto: SimDuration::from_secs(2),
            g: 1.0 / 16.0,
            d2tcp_d_bounds: (0.5, 2.0),
            l2dct_w_bounds: (0.125, 2.5),
            l2dct_lo_bytes: 50 * 1024,
            l2dct_hi_bytes: 1024 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = FamilyConfig::default();
        assert!(c.init_cwnd >= 1.0);
        assert!(c.ack_growth_factor > 0.0 && c.ack_growth_factor <= 1.0);
        assert!(c.g > 0.0 && c.g <= 1.0);
        assert!(c.d2tcp_d_bounds.0 < c.d2tcp_d_bounds.1);
        assert!(c.l2dct_w_bounds.0 < c.l2dct_w_bounds.1);
        assert!(c.l2dct_lo_bytes < c.l2dct_hi_bytes);
        assert!(c.min_rto < c.max_rto);
    }
}
